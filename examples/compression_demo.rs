//! Transparent per-list compression (paper §3.3).
//!
//! Writes the same file through MINIX LLD with and without the compression
//! hint and reports throughput, the on-medium ratio, and the extra
//! effective capacity — "using LLD, a file system can transparently use
//! compression to make more effective use of disk space".
//!
//! Run with: `cargo run --release --example compression_demo`

use minix_fs::{FsConfig, LdStore, MinixFs};
use simdisk::SimDisk;

fn data(len: usize) -> Vec<u8> {
    // Textual key=value content with some binary fields — compresses to
    // roughly the paper's assumed 60 %.
    let words = ["segment", "cleaner", "logical", "disk", "buffer", "cache"];
    let mut out = Vec::with_capacity(len + 64);
    let mut x = 0x243F6A8885A308D3u64;
    while out.len() < len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.extend_from_slice(words[(x >> 33) as usize % words.len()].as_bytes());
        out.push(b'=');
        out.extend_from_slice(((x >> 40) as u32).to_string().as_bytes());
        out.push(b' ');
        out.extend_from_slice(&x.to_le_bytes());
        out.push(b'\n');
    }
    out.truncate(len);
    out
}

fn run(compress: bool) -> (f64, f64, f64) {
    let disk = SimDisk::hp_c3010_with_capacity(96 << 20);
    let store = if compress {
        LdStore::format_compressed(disk, lld::LldConfig::default())
    } else {
        LdStore::format(disk, lld::LldConfig::default())
    }
    .expect("format");
    let mut fs = MinixFs::format(store, FsConfig::default()).expect("mkfs");

    let file_bytes = 24u64 << 20;
    let chunk = data(8192);
    let ino = fs.create("/big").expect("create");
    let t0 = fs.now_us();
    for i in 0..(file_bytes / 8192) {
        fs.write(ino, i * 8192, &chunk).expect("write");
    }
    fs.sync().expect("sync");
    let write_kbs = (file_bytes as f64 / 1024.0) / ((fs.now_us() - t0) as f64 / 1e6);

    fs.drop_caches().expect("drop caches");
    let mut buf = vec![0u8; 8192];
    let t0 = fs.now_us();
    for i in 0..(file_bytes / 8192) {
        fs.read(ino, i * 8192, &mut buf).expect("read");
    }
    let read_kbs = (file_bytes as f64 / 1024.0) / ((fs.now_us() - t0) as f64 / 1e6);

    let s = fs.store().lld().stats();
    let ratio = s.stored_bytes_written as f64 / s.user_bytes_written.max(1) as f64;
    (write_kbs, read_kbs, ratio)
}

fn main() {
    let (w0, r0, _) = run(false);
    let (w1, r1, ratio) = run(true);
    println!("24 MB sequential file through MINIX LLD:\n");
    println!("  without compression:  write {w0:>6.0} KB/s   read {r0:>6.0} KB/s");
    println!("  with compression:     write {w1:>6.0} KB/s   read {r1:>6.0} KB/s");
    println!("\n  on-medium ratio: {:.0}% of original", ratio * 100.0);
    println!(
        "  effective extra capacity: {:.0}% more storage for this data",
        (1.0 / ratio - 1.0) * 100.0
    );
    println!(
        "\n  (paper §4.2: writes stay within ~21% of the uncompressed rate because\n  \
         compression overlaps the previous segment's disk write; reads pay the\n  \
         full serialized decompression — measured {:.0}% and read {:.2}x slower)",
        (1.0 - w1 / w0) * 100.0,
        r0 / r1
    );
}
