//! Shadow-block transactions with `SwapContents` — the paper's §5.2/§5.4
//! recipe: "File systems using LD can implement isolation control by using
//! atomic recovery units and a primitive that would swap the physical
//! addresses of two logical blocks", and "such a primitive would be useful
//! for implementing transactions and multiversion data storage: new
//! versions of blocks can be installed atomically without losing the old
//! versions".
//!
//! A record store keeps each record in a *current* block with a *shadow*
//! block beside it. A transaction writes the new version into the shadows
//! (no isolation problem: readers only touch current blocks), then commits
//! by swapping every touched pair inside one ARU. The old versions live on
//! in the shadows — multiversion storage for free — and a crash anywhere
//! leaves either all new versions or all old ones.
//!
//! Run with: `cargo run --release --example transactions`

use ld_core::{Bid, FailureSet, LdError, ListHints, LogicalDisk, Pred, PredList};
use lld::{Lld, LldConfig};
use simdisk::SimDisk;

struct RecordStore {
    ld: Lld<SimDisk>,
    /// Per record: (current block, shadow block holding the previous
    /// version).
    records: Vec<(Bid, Bid)>,
}

impl RecordStore {
    fn create(nrecords: usize) -> Self {
        let disk = SimDisk::hp_c3010_with_capacity(32 << 20);
        let mut ld = Lld::format(disk, LldConfig::default()).expect("format");
        let lid = ld
            .new_list(PredList::Start, ListHints::default())
            .expect("list");
        let mut records = Vec::new();
        let mut pred = Pred::Start;
        for i in 0..nrecords {
            let current = ld.new_block(lid, pred).expect("alloc");
            let shadow = ld.new_block(lid, Pred::After(current)).expect("alloc");
            ld.write(current, format!("record {i} v0").as_bytes())
                .expect("init");
            pred = Pred::After(shadow);
            records.push((current, shadow));
        }
        ld.flush(FailureSet::PowerFailure).expect("flush");
        Self { ld, records }
    }

    fn read(&mut self, idx: usize) -> String {
        let (current, _) = self.records[idx];
        let mut buf = vec![0u8; 4096];
        let n = self.ld.read(current, &mut buf).expect("read");
        String::from_utf8_lossy(&buf[..n]).into_owned()
    }

    fn read_previous(&mut self, idx: usize) -> String {
        let (_, shadow) = self.records[idx];
        let mut buf = vec![0u8; 4096];
        let n = self.ld.read(shadow, &mut buf).expect("read");
        String::from_utf8_lossy(&buf[..n]).into_owned()
    }

    /// Updates several records as one transaction.
    fn transact(&mut self, updates: &[(usize, String)]) -> Result<(), LdError> {
        // Phase 1 (no isolation concerns): stage new versions in shadows.
        for (idx, value) in updates {
            let (_, shadow) = self.records[*idx];
            self.ld.write(shadow, value.as_bytes())?;
        }
        // Phase 2: commit — swap every pair inside one ARU.
        self.ld.begin_aru()?;
        for (idx, _) in updates {
            let (current, shadow) = self.records[*idx];
            self.ld.swap_contents(current, shadow)?;
        }
        self.ld.end_aru()?;
        self.ld.flush(FailureSet::PowerFailure)
    }
}

fn main() {
    let mut store = RecordStore::create(8);
    println!(
        "initial: r2 = {:?}, r5 = {:?}",
        store.read(2),
        store.read(5)
    );

    // A committed transaction over two records.
    store
        .transact(&[(2, "record 2 v1".into()), (5, "record 5 v1".into())])
        .expect("commit");
    println!(
        "after txn: r2 = {:?}, r5 = {:?} (previous versions retained: {:?}, {:?})",
        store.read(2),
        store.read(5),
        store.read_previous(2),
        store.read_previous(5),
    );

    // A transaction interrupted mid-commit: arm a crash so the disk dies
    // while the swaps are being flushed.
    store.ld.disk_mut().crash_after_writes(1);
    let result = store.transact(&[(2, "record 2 v2".into()), (5, "record 5 v2".into())]);
    println!("\ninterrupted transaction -> {result:?}");

    let config = store.ld.config().clone();
    let mut disk = store.ld.into_disk();
    disk.revive();
    let records = store.records;
    let mut ld = Lld::open(disk, config).expect("recover");
    let mut read = |bid: Bid| {
        let mut buf = vec![0u8; 4096];
        let n = ld.read(bid, &mut buf).expect("read");
        String::from_utf8_lossy(&buf[..n]).into_owned()
    };
    let r2 = read(records[2].0);
    let r5 = read(records[5].0);
    println!("after crash + recovery: r2 = {r2:?}, r5 = {r5:?}");
    let both_old = r2 == "record 2 v1" && r5 == "record 5 v1";
    let both_new = r2 == "record 2 v2" && r5 == "record 5 v2";
    assert!(
        both_old || both_new,
        "the transaction must be all-or-nothing"
    );
    println!(
        "-> {} (all-or-nothing held)",
        if both_new { "committed" } else { "rolled back" }
    );
}
