//! Atomic recovery units under fire.
//!
//! A "bank transfer" updates two account blocks. Without ARUs a crash
//! between the two writes can persist one half; with an ARU, recovery
//! keeps both or neither (paper §2.1: atomic recovery units make fsck-style
//! consistency checks unnecessary and support application transactions).
//!
//! The demo crashes the disk at every possible written-sector boundary and
//! tallies what recovery produced.
//!
//! Run with: `cargo run --example crash_recovery`

use ld_core::{Bid, FailureSet, LdError, ListHints, LogicalDisk, Pred, PredList};
use lld::{Lld, LldConfig};
use simdisk::SimDisk;

fn balances(ld: &mut Lld<SimDisk>, a: Bid, b: Bid) -> Option<(u64, u64)> {
    let mut buf = [0u8; 8];
    let read = |ld: &mut Lld<SimDisk>, bid, buf: &mut [u8; 8]| -> Option<u64> {
        match ld.read(bid, buf) {
            Ok(8) => Some(u64::from_le_bytes(*buf)),
            _ => None,
        }
    };
    let va = read(ld, a, &mut buf)?;
    let vb = read(ld, b, &mut buf)?;
    Some((va, vb))
}

/// Runs one transfer with a crash armed after `crash_after` sectors.
/// Returns the recovered balances.
fn run_once(crash_after: u64, use_aru: bool) -> Option<(u64, u64)> {
    let disk = SimDisk::hp_c3010_with_capacity(16 << 20);
    let config = LldConfig {
        flush_threshold_pct: 99, // Force partial-segment flushes.
        ..LldConfig::default()
    };
    let mut ld = Lld::format(disk, config).expect("format");
    let lid = ld
        .new_list(PredList::Start, ListHints::default())
        .expect("list");
    let a = ld.new_block(lid, Pred::Start).expect("alloc");
    let b = ld.new_block(lid, Pred::After(a)).expect("alloc");
    ld.write(a, &100u64.to_le_bytes()).expect("write");
    ld.write(b, &0u64.to_le_bytes()).expect("write");
    ld.flush(FailureSet::PowerFailure).expect("flush");

    // Transfer 40 from a to b. The unlucky application syncs between the
    // two writes (or a segment boundary falls there); the crash fires at
    // an arbitrary point of the disk traffic that follows.
    ld.disk_mut().crash_after_writes(crash_after);
    let attempt = (|| -> Result<(), LdError> {
        if use_aru {
            ld.begin_aru()?;
        }
        ld.write(a, &60u64.to_le_bytes())?;
        ld.flush(FailureSet::PowerFailure)?;
        ld.write(b, &40u64.to_le_bytes())?;
        if use_aru {
            ld.end_aru()?;
        }
        ld.flush(FailureSet::PowerFailure)
    })();
    let _ = attempt; // A crash mid-flush surfaces as an error; expected.

    let config = ld.config().clone();
    let mut disk = ld.into_disk();
    disk.revive();
    let mut ld = Lld::open(disk, config).expect("recover");
    balances(&mut ld, a, b)
}

fn main() {
    for use_aru in [false, true] {
        let mut consistent = 0u32;
        let mut torn = 0u32;
        let mut outcomes = std::collections::BTreeMap::new();
        // Crash after 0, 1, 2, ... sectors of the post-transfer flush.
        for crash_after in 0..24 {
            let Some((va, vb)) = run_once(crash_after, use_aru) else {
                continue;
            };
            *outcomes.entry((va, vb)).or_insert(0u32) += 1;
            if va + vb == 100 {
                consistent += 1;
            } else {
                torn += 1;
            }
        }
        println!(
            "{}: {} consistent recoveries, {} torn; outcomes: {:?}",
            if use_aru {
                "with ARU   "
            } else {
                "without ARU"
            },
            consistent,
            torn,
            outcomes
        );
        if use_aru {
            assert_eq!(torn, 0, "ARUs must never recover a torn transfer");
        }
    }
    println!("\nwith ARUs every crash point recovers to (100,0) or (60,40) — all or nothing.");
}
