//! Watching the segment cleaner and the disk reorganizer (paper §3.5).
//!
//! Fills a small disk, overwrites a hot subset until the cleaner must run,
//! then fragments two files by interleaving their writes and lets the
//! reorganizer cluster them back — showing how LD improves layout
//! *transparently*, with no file-system involvement.
//!
//! Run with: `cargo run --release --example cleaning_demo`

use ld_core::{FailureSet, ListHints, LogicalDisk, Pred, PredList};
use lld::{Lld, LldConfig};
use simdisk::SimDisk;

fn main() {
    let disk = SimDisk::hp_c3010_with_capacity(8 << 20);
    let config = LldConfig {
        segment_bytes: 128 << 10,
        ..LldConfig::default()
    };
    let mut ld = Lld::format(disk, config).expect("format");
    println!(
        "disk: {} segments x {} KB",
        ld.layout().segments,
        ld.layout().segment_bytes >> 10
    );

    // Fill 70% of the disk.
    let lid = ld
        .new_list(PredList::Start, ListHints::default())
        .expect("list");
    let nblocks = (ld.capacity_bytes() * 7 / 10 / 4096) as usize;
    let data = vec![0x5Au8; 4096];
    let mut bids = Vec::new();
    let mut pred = Pred::Start;
    for _ in 0..nblocks {
        let b = ld.new_block(lid, pred).expect("alloc");
        ld.write(b, &data).expect("write");
        bids.push(b);
        pred = Pred::After(b);
    }
    println!(
        "filled {} blocks; {} segments free",
        nblocks,
        ld.free_segments()
    );

    // Overwrite a hot 10% until the cleaner has to work.
    for round in 0..20 {
        for b in bids.iter().take(nblocks / 10) {
            ld.write(*b, &data).expect("overwrite");
        }
        if round % 5 == 4 {
            let s = ld.stats();
            println!(
                "round {:>2}: {} segments cleaned, {:.1} MB copied forward, {} free",
                round + 1,
                s.segments_cleaned,
                s.cleaner_bytes_copied as f64 / (1 << 20) as f64,
                ld.free_segments()
            );
        }
    }
    let s = ld.stats();
    println!(
        "\nwrite amplification so far: {:.2}x (user {:.1} MB + cleaner {:.1} MB)",
        (s.user_bytes_written + s.cleaner_bytes_copied) as f64 / s.user_bytes_written as f64,
        s.user_bytes_written as f64 / (1 << 20) as f64,
        s.cleaner_bytes_copied as f64 / (1 << 20) as f64,
    );

    // Fragment two new lists by interleaving, then reorganize.
    let a = ld
        .new_list(PredList::Start, ListHints::default())
        .expect("list");
    let b = ld
        .new_list(PredList::After(a), ListHints::default())
        .expect("list");
    let mut pa = Pred::Start;
    let mut pb = Pred::Start;
    let mut bids_a = Vec::new();
    for _ in 0..60 {
        let x = ld.new_block(a, pa).expect("alloc");
        ld.write(x, &data).expect("write");
        pa = Pred::After(x);
        bids_a.push(x);
        let y = ld.new_block(b, pb).expect("alloc");
        ld.write(y, &data).expect("write");
        pb = Pred::After(y);
    }
    ld.flush(FailureSet::PowerFailure).expect("flush");
    let spread = |ld: &Lld<SimDisk>, bids: &[ld_core::Bid]| {
        let segs: std::collections::HashSet<_> =
            bids.iter().filter_map(|&x| ld.block_segment(x)).collect();
        segs.len()
    };
    println!(
        "\nlist A spans {} segments after interleaved writes",
        spread(&ld, &bids_a)
    );
    let (lists, cleaned) = ld.reorganize(3, 4).expect("reorganize");
    ld.flush(FailureSet::PowerFailure).expect("flush");
    println!(
        "reorganizer rewrote {lists} lists and cleaned {cleaned} segments; \
         list A now spans {} segments",
        spread(&ld, &bids_a)
    );
}
