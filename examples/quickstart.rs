//! Quickstart: the Logical Disk interface in five minutes.
//!
//! Creates a log-structured Logical Disk (LLD) on a simulated HP C3010,
//! then walks through the four abstractions of the paper: logical block
//! numbers, block lists, atomic recovery units, and multiple block sizes.
//!
//! Run with: `cargo run --example quickstart`

use ld_core::{FailureSet, ListHints, LogicalDisk, Pred, PredList};
use lld::{Lld, LldConfig};
use simdisk::SimDisk;

fn main() {
    // A 64 MB partition of the paper's disk, formatted as an LLD with the
    // paper's configuration (0.5 MB segments, 4 KB blocks).
    let disk = SimDisk::hp_c3010_with_capacity(64 << 20);
    let mut ld = Lld::format(disk, LldConfig::default()).expect("format");
    println!(
        "formatted: {} segments of {} KB, {} MB payload capacity",
        ld.layout().segments,
        ld.layout().segment_bytes >> 10,
        ld.capacity_bytes() >> 20,
    );

    // 1. Block lists express logical relationships; LD clusters them.
    let file_a = ld
        .new_list(PredList::Start, ListHints::default())
        .expect("new list");
    // 2. Logical block numbers: LD picks physical locations, we never see
    //    them — and they can change (cleaning, reorganization) without any
    //    metadata cascade on our side.
    let b0 = ld.new_block(file_a, Pred::Start).expect("alloc");
    let b1 = ld.new_block(file_a, Pred::After(b0)).expect("alloc");
    ld.write(b0, b"hello, ").expect("write");
    ld.write(b1, b"logical disk!").expect("write");
    println!(
        "file_a blocks, in list order: {:?}",
        ld.list_blocks(file_a).unwrap()
    );

    // 3. Atomic recovery units: create a file and its directory entry as
    //    one indivisible operation — no fsck needed afterwards, ever.
    let dir = ld
        .new_list(PredList::After(file_a), ListHints::default())
        .expect("dir list");
    let created = ld_core::with_aru(&mut ld, |ld| {
        let dirent = ld.new_block(dir, Pred::Start)?;
        ld.write(dirent, b"name=notes.txt")?;
        let data = ld.new_block(dir, Pred::After(dirent))?;
        ld.write(data, b"file body")?;
        Ok((dirent, data))
    })
    .expect("atomic create");
    println!("atomically created blocks {:?}", created);

    // 4. Multiple block sizes: a 64-byte i-node block next to 4 KB data.
    let inode = ld
        .new_block_with_size(dir, Pred::Start, 64)
        .expect("small block");
    ld.write(inode, &[0xAB; 64]).expect("write inode");

    // Durability: everything before the Flush survives a crash.
    ld.flush(FailureSet::PowerFailure).expect("flush");

    // Crash! Drop all in-memory state and recover from the medium alone.
    let config = ld.config().clone();
    let mut disk = ld.into_disk();
    disk.crash_now();
    disk.revive();
    let mut ld = Lld::open(disk, config).expect("recover");
    println!(
        "recovered by reading {} segment summaries in {:.0} ms (simulated)",
        ld.stats().recovery_summaries_read,
        ld.stats().recovery_us as f64 / 1000.0,
    );

    let mut buf = vec![0u8; 4096];
    let n = ld.read(b1, &mut buf).expect("read");
    println!(
        "b1 after recovery: {:?}",
        std::str::from_utf8(&buf[..n]).unwrap()
    );
    let n = ld.read(inode, &mut buf).expect("read");
    assert_eq!(&buf[..n], &[0xAB; 64]);
    println!(
        "64-byte i-node block intact, list order preserved: {:?}",
        ld.list_blocks(dir).unwrap()
    );
}
