//! A tour of MINIX LLD — the paper's §4 artifact: an existing file system
//! turned log-structured by swapping its disk management for the Logical
//! Disk.
//!
//! Builds the same directory tree on plain MINIX (update-in-place store)
//! and on MINIX LLD (LD store), shows both behave identically at the API,
//! then crashes MINIX LLD and recovers it without any fsck-style repair.
//!
//! Run with: `cargo run --example fs_tour`

use minix_fs::{FsConfig, LdStore, MinixFs, RawStore};
use simdisk::SimDisk;

fn exercise<S: minix_fs::BlockStore>(fs: &mut MinixFs<S>, label: &str) {
    fs.mkdir("/projects").expect("mkdir");
    fs.mkdir("/projects/ld").expect("mkdir");
    let readme = fs.create("/projects/ld/README").expect("create");
    fs.write(
        readme,
        0,
        b"The Logical Disk separates file and disk management.",
    )
    .expect("write");
    let notes = fs.create("/projects/ld/notes.txt").expect("create");
    fs.write(notes, 0, &vec![b'x'; 20_000]).expect("write");

    let names: Vec<String> = fs
        .readdir("/projects/ld")
        .expect("readdir")
        .into_iter()
        .map(|d| d.name)
        .collect();
    println!("[{label}] /projects/ld -> {names:?}");

    let st = fs.stat(notes).expect("stat");
    println!("[{label}] notes.txt: {} bytes", st.size);

    fs.unlink("/projects/ld/notes.txt").expect("unlink");
    assert!(fs.lookup("/projects/ld/notes.txt").is_err());
    fs.sync().expect("sync");
}

fn main() {
    // Plain MINIX: bitmaps and update-in-place.
    let store = RawStore::format(SimDisk::hp_c3010_with_capacity(64 << 20)).expect("format");
    let mut minix = MinixFs::format(store, FsConfig::default()).expect("mkfs");
    exercise(&mut minix, "MINIX");

    // MINIX LLD: the same file system code over the Logical Disk.
    let store = LdStore::format(
        SimDisk::hp_c3010_with_capacity(64 << 20),
        lld::LldConfig::default(),
    )
    .expect("format");
    let mut minix_lld = MinixFs::format(store, FsConfig::default()).expect("mkfs");
    exercise(&mut minix_lld, "MINIX LLD");

    // Crash MINIX LLD: throw away every in-memory structure.
    println!("\ncrashing MINIX LLD (no clean shutdown, no checkpoint)...");
    let mut disk = minix_lld.into_store().into_disk();
    disk.crash_now();
    disk.revive();

    // Recovery = LD's one-sweep over segment summaries + a plain mount.
    let store = LdStore::mount(disk, lld::LldConfig::default()).expect("LD recovery");
    println!(
        "LD recovered from {} segment summaries in {:.0} ms (simulated)",
        store.lld().stats().recovery_summaries_read,
        store.lld().stats().recovery_us as f64 / 1000.0,
    );
    let mut recovered = MinixFs::mount(store, FsConfig::default()).expect("mount");

    let readme = recovered.lookup("/projects/ld/README").expect("lookup");
    let mut buf = vec![0u8; 128];
    let n = recovered.read(readme, 0, &mut buf).expect("read");
    println!(
        "README after crash: {:?}",
        std::str::from_utf8(&buf[..n]).unwrap()
    );
    assert!(recovered.lookup("/projects/ld/notes.txt").is_err());
    println!("unlinked file stayed unlinked; no fsck was ever run.");
}
