//! A tiny B-tree database on the Logical Disk — Figure 1's "Database FS
//! (B-trees)" client, using two §5.4 extensions:
//!
//! - **Offset addressing**: each index node addresses *all* of its
//!   children through a single list identifier (`block_at(lid, i)`),
//!   instead of storing one block address per child — "it makes it
//!   possible to improve their branching factor considerably".
//! - **Atomic recovery units**: a leaf split rewrites the root and two
//!   leaf groups as one indivisible operation, so a crash never exposes a
//!   half-split tree.
//!
//! The tree is two levels: a root block holding separator keys and one
//! list id per child group; each child group is a list of leaf blocks
//! addressed by offset. Keys and values are `u64`s.
//!
//! Run with: `cargo run --release --example btree_db`

use ld_core::{FailureSet, LdError, Lid, ListHints, LogicalDisk, Pred, PredList};
use lld::{Lld, LldConfig};
use simdisk::SimDisk;

const LEAF_CAP: usize = 128; // Key/value pairs per leaf block.
const GROUP_CAP: usize = 8; // Leaf blocks per child group.

/// One leaf block: a sorted run of (key, value) pairs.
#[derive(Debug, Clone, Default)]
struct Leaf {
    pairs: Vec<(u64, u64)>,
}

impl Leaf {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.pairs.len() * 16);
        out.extend_from_slice(&(self.pairs.len() as u32).to_le_bytes());
        for (k, v) in &self.pairs {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn decode(data: &[u8]) -> Self {
        if data.len() < 4 {
            return Self::default();
        }
        let n = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
        let pairs = (0..n)
            .map(|i| {
                let o = 4 + i * 16;
                (
                    u64::from_le_bytes(data[o..o + 8].try_into().unwrap()),
                    u64::from_le_bytes(data[o + 8..o + 16].try_into().unwrap()),
                )
            })
            .collect();
        Self { pairs }
    }
}

/// The database: root block + child groups.
struct BtreeDb {
    ld: Lld<SimDisk>,
    root_list: Lid,
    /// (separator lower bound, child group list). In-memory mirror of the
    /// root block; rebuilt from disk on open.
    children: Vec<(u64, Lid)>,
}

impl BtreeDb {
    fn create() -> Self {
        let disk = SimDisk::hp_c3010_with_capacity(64 << 20);
        let mut ld = Lld::format(disk, LldConfig::default()).expect("format");
        let root_list = ld
            .new_list(PredList::Start, ListHints::default())
            .expect("root list");
        let _root_block = ld.new_block(root_list, Pred::Start).expect("root block");
        let first_group = ld
            .new_list(PredList::After(root_list), ListHints::default())
            .expect("group");
        ld.new_block(first_group, Pred::Start).expect("first leaf");
        let mut db = Self {
            ld,
            root_list,
            children: vec![(0, first_group)],
        };
        db.write_root().expect("persist root");
        db
    }

    /// Re-opens the database from a (possibly crashed) device: the root is
    /// always block 0 of the first list in the list of lists.
    fn open(disk: SimDisk) -> Self {
        let mut ld = Lld::open(disk, LldConfig::default()).expect("recover");
        let root_list = *ld.list_of_lists().first().expect("root list exists");
        let root_block = ld.block_at(root_list, 0).expect("root block");
        let mut buf = vec![0u8; 4096];
        let n = ld.read(root_block, &mut buf).expect("read root");
        let data = &buf[..n];
        let count = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
        let children = (0..count)
            .map(|i| {
                let o = 4 + i * 16;
                (
                    u64::from_le_bytes(data[o..o + 8].try_into().unwrap()),
                    Lid(u64::from_le_bytes(data[o + 8..o + 16].try_into().unwrap())),
                )
            })
            .collect();
        Self {
            ld,
            root_list,
            children,
        }
    }

    fn write_root(&mut self) -> Result<(), LdError> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.children.len() as u32).to_le_bytes());
        for (low, lid) in &self.children {
            out.extend_from_slice(&low.to_le_bytes());
            out.extend_from_slice(&lid.0.to_le_bytes());
        }
        let root_block = self.ld.block_at(self.root_list, 0)?;
        self.ld.write(root_block, &out)
    }

    /// Which child group covers `key`.
    fn child_for(&self, key: u64) -> usize {
        match self.children.binary_search_by_key(&key, |(low, _)| *low) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    fn read_leaf(&mut self, group: Lid, idx: u64) -> Result<Leaf, LdError> {
        // Offset addressing: the leaf is named by (group, idx) alone.
        let bid = self.ld.block_at(group, idx)?;
        let mut buf = vec![0u8; 4096];
        let n = self.ld.read(bid, &mut buf)?;
        Ok(Leaf::decode(&buf[..n]))
    }

    fn group_len(&mut self, group: Lid) -> Result<u64, LdError> {
        Ok(self.ld.list_blocks(group)?.len() as u64)
    }

    fn get(&mut self, key: u64) -> Result<Option<u64>, LdError> {
        let (_, group) = self.children[self.child_for(key)];
        for idx in 0..self.group_len(group)? {
            let leaf = self.read_leaf(group, idx)?;
            if let Ok(pos) = leaf.pairs.binary_search_by_key(&key, |(k, _)| *k) {
                return Ok(Some(leaf.pairs[pos].1));
            }
        }
        Ok(None)
    }

    fn put(&mut self, key: u64, value: u64) -> Result<(), LdError> {
        let ci = self.child_for(key);
        let (_, group) = self.children[ci];
        // Find the leaf that should hold the key (first whose max >= key,
        // else the last).
        let len = self.group_len(group)?;
        let mut target = len - 1;
        for idx in 0..len {
            let leaf = self.read_leaf(group, idx)?;
            if leaf.pairs.last().is_none_or(|(k, _)| *k >= key) {
                target = idx;
                break;
            }
        }
        let mut leaf = self.read_leaf(group, target)?;
        match leaf.pairs.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(pos) => leaf.pairs[pos].1 = value,
            Err(pos) => leaf.pairs.insert(pos, (key, value)),
        }
        if leaf.pairs.len() <= LEAF_CAP {
            let bid = self.ld.block_at(group, target)?;
            return self.ld.write(bid, &leaf.encode());
        }
        // Leaf overflow: split it, atomically.
        let right = Leaf {
            pairs: leaf.pairs.split_off(leaf.pairs.len() / 2),
        };
        ld_core::with_aru(&mut self.ld, |ld| {
            let left_bid = ld.block_at(group, target)?;
            ld.write(left_bid, &leaf.encode())?;
            let right_bid = ld.new_block(group, Pred::After(left_bid))?;
            ld.write(right_bid, &right.encode())
        })?;
        // Group overflow: split the group into a new child list,
        // atomically with the root update.
        if self.group_len(group)? > GROUP_CAP as u64 {
            self.split_group(ci)?;
        }
        Ok(())
    }

    fn split_group(&mut self, ci: usize) -> Result<(), LdError> {
        let (_, group) = self.children[ci];
        let len = self.group_len(group)?;
        let mid = len / 2;
        let first_moved = self.ld.block_at(group, mid)?;
        let last = self.ld.block_at(group, len - 1)?;
        let mid_leaf = self.read_leaf(group, mid)?;
        let new_low = mid_leaf.pairs.first().expect("non-empty leaf").0;

        let new_group = self
            .ld
            .new_list(PredList::After(group), ListHints::default())?;
        // Move the upper half and publish the new root — all or nothing.
        let children = &mut self.children;
        children.insert(ci + 1, (new_low, new_group));
        let root_list = self.root_list;
        let mut out = Vec::new();
        out.extend_from_slice(&(children.len() as u32).to_le_bytes());
        for (low, lid) in children.iter() {
            out.extend_from_slice(&low.to_le_bytes());
            out.extend_from_slice(&lid.0.to_le_bytes());
        }
        ld_core::with_aru(&mut self.ld, |ld| {
            ld.move_sublist(group, first_moved, last, new_group, Pred::Start)?;
            let root_block = ld.block_at(root_list, 0)?;
            ld.write(root_block, &out)
        })
    }

    fn sync(&mut self) -> Result<(), LdError> {
        self.ld.flush(FailureSet::PowerFailure)
    }
}

fn main() {
    let mut db = BtreeDb::create();
    // Insert 4,000 keys in a scrambled order.
    let n = 4_000u64;
    for i in 0..n {
        let key = (i * 2654435761) % 1_000_000;
        db.put(key, key * 10).expect("put");
    }
    db.sync().expect("sync");
    println!(
        "inserted {} keys; root fan-out {} child groups (one Lid each, \
         children addressed by offset)",
        n,
        db.children.len()
    );

    // Point lookups.
    for i in [0u64, 1234, 3999] {
        let key = (i * 2654435761) % 1_000_000;
        assert_eq!(db.get(key).expect("get"), Some(key * 10));
    }
    println!("point lookups OK");

    // Crash and recover mid-life; the tree must come back whole.
    let mut disk = db.ld.into_disk();
    disk.crash_now();
    disk.revive();
    let mut db = BtreeDb::open(disk);
    let mut found = 0u64;
    for i in 0..n {
        let key = (i * 2654435761) % 1_000_000;
        if db.get(key).expect("get") == Some(key * 10) {
            found += 1;
        }
    }
    println!(
        "after crash + one-sweep recovery: {found}/{n} keys intact \
         (splits were ARU-atomic, so no half-split tree is possible)"
    );
    assert_eq!(found, n);
}
