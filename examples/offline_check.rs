//! Produce raw LLD disk images for the offline checker.
//!
//! Builds a small logical disk, runs a workload, and writes two image
//! files: one cleanly shut down (with a checkpoint) and one crashed
//! mid-workload. Point `ldck` at them:
//!
//! ```text
//! cargo run --example offline_check -- /tmp/clean.img /tmp/crashed.img
//! cargo run -p ldck -- --segment-bytes 64k --summary-bytes 4k /tmp/clean.img
//! cargo run -p ldck -- --segment-bytes 64k --summary-bytes 4k /tmp/crashed.img
//! ```
//!
//! Both must check clean: a crash leaves residue (an absent checkpoint,
//! maybe an incomplete ARU) but never an inconsistent image — that is the
//! paper's no-fsck claim, and `ldck` is the fsck that proves it.

use ld_core::{FailureSet, ListHints, LogicalDisk, Pred, PredList};
use lld::{Lld, LldConfig};
use simdisk::SimDisk;

fn workload(ld: &mut Lld<SimDisk>, files: usize) -> ld_core::Result<()> {
    for f in 0..files {
        let lid = ld.new_list(PredList::Start, ListHints::default())?;
        let mut prev = None;
        for i in 0..12u8 {
            let bid = ld.new_block(lid, prev.map_or(Pred::Start, Pred::After))?;
            ld.write(bid, &vec![f as u8 ^ i; 4096])?;
            prev = Some(bid);
        }
        if f % 2 == 0 {
            ld.flush(FailureSet::PowerFailure)?;
        }
    }
    Ok(())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let clean_path = args.next().unwrap_or_else(|| "clean.img".into());
    let crashed_path = args.next().unwrap_or_else(|| "crashed.img".into());
    let config = LldConfig::small_for_tests();

    // Clean shutdown: checkpoint written, marker valid.
    let disk = SimDisk::hp_c3010_with_capacity(4 << 20);
    let mut ld = Lld::format(disk, config.clone()).expect("format");
    workload(&mut ld, 6).expect("workload");
    ld.shutdown().expect("shutdown");
    std::fs::write(&clean_path, ld.into_disk().image_bytes()).expect("write image");
    println!("wrote {clean_path} (clean shutdown)");

    // Crash mid-workload: power fails after a fixed number of sector
    // writes; whatever made it to the platter is the image.
    let mut disk = SimDisk::hp_c3010_with_capacity(4 << 20);
    disk.crash_after_writes(900);
    let mut ld = Lld::format(disk, config).expect("format");
    let _ = workload(&mut ld, 24); // Dies partway through — that's the point.
    let mut disk = ld.into_disk();
    disk.revive();
    std::fs::write(&crashed_path, disk.image_bytes()).expect("write image");
    println!("wrote {crashed_path} (crashed mid-workload)");
}
