//! Umbrella crate for the Logical Disk (SOSP 1993) reproduction.
//!
//! This crate re-exports the workspace members so that examples and
//! integration tests can reach the whole system through one dependency.
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduced evaluation.

pub use ffs;
pub use fsutil;
pub use ld_core;
pub use ld_trace;
pub use ldck;
pub use ldcomp;
pub use lld;
pub use loge;
pub use minix_fs;
pub use simdisk;
pub use sprite_lfs;
