//! Property test: the MINIX file system behaves identically over the raw
//! update-in-place store and the Logical Disk store — the backend swap
//! that *is* the paper's contribution must be observably invisible.

use logical_disk_repro::minix_fs::{BlockStore, FsConfig, FsCpuModel, LdStore, MinixFs, RawStore};
use logical_disk_repro::simdisk::MemDisk;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create {
        name: u8,
    },
    Write {
        name: u8,
        offset: u16,
        len: u16,
        seed: u8,
    },
    Read {
        name: u8,
        offset: u16,
        len: u16,
    },
    Unlink {
        name: u8,
    },
    Truncate {
        name: u8,
    },
    Rename {
        from: u8,
        to: u8,
    },
    Mkdir {
        name: u8,
    },
    Readdir,
    Sync,
    DropCaches,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u8>().prop_map(|name| Op::Create { name: name % 24 }),
        6 => (any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>())
            .prop_map(|(n, o, l, s)| Op::Write {
                name: n % 24,
                offset: o % 20_000,
                len: l % 6_000,
                seed: s,
            }),
        5 => (any::<u8>(), any::<u16>(), any::<u16>())
            .prop_map(|(n, o, l)| Op::Read { name: n % 24, offset: o % 24_000, len: l % 8_000 }),
        2 => any::<u8>().prop_map(|name| Op::Unlink { name: name % 24 }),
        1 => any::<u8>().prop_map(|name| Op::Truncate { name: name % 24 }),
        2 => (any::<u8>(), any::<u8>())
            .prop_map(|(f, t)| Op::Rename { from: f % 24, to: t % 24 }),
        1 => any::<u8>().prop_map(|name| Op::Mkdir { name: name % 8 }),
        1 => Just(Op::Readdir),
        1 => Just(Op::Sync),
        1 => Just(Op::DropCaches),
    ]
}

fn payload(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(23) ^ seed)
        .collect()
}

/// Applies one op; returns a comparable observation string.
fn apply<S: BlockStore>(fs: &mut MinixFs<S>, op: &Op) -> String {
    match op {
        Op::Create { name } => format!("{:?}", fs.create(&format!("/f{name}"))),
        Op::Write {
            name,
            offset,
            len,
            seed,
        } => {
            let path = format!("/f{name}");
            match fs.lookup(&path) {
                Ok(ino) => format!(
                    "{:?}",
                    fs.write(ino, u64::from(*offset), &payload(*len as usize, *seed))
                ),
                Err(e) => format!("lookup-failed {e:?}"),
            }
        }
        Op::Read { name, offset, len } => {
            let path = format!("/f{name}");
            match fs.lookup(&path) {
                Ok(ino) => {
                    let mut buf = vec![0u8; *len as usize];
                    match fs.read(ino, u64::from(*offset), &mut buf) {
                        Ok(n) => format!("read {n} {:?}", fnv(&buf[..n])),
                        Err(e) => format!("read-failed {e:?}"),
                    }
                }
                Err(e) => format!("lookup-failed {e:?}"),
            }
        }
        Op::Unlink { name } => format!("{:?}", fs.unlink(&format!("/f{name}"))),
        Op::Truncate { name } => {
            let path = format!("/f{name}");
            match fs.lookup(&path) {
                Ok(ino) => format!("{:?}", fs.truncate(ino)),
                Err(e) => format!("lookup-failed {e:?}"),
            }
        }
        Op::Rename { from, to } => {
            format!("{:?}", fs.rename(&format!("/f{from}"), &format!("/f{to}")))
        }
        Op::Mkdir { name } => format!("{:?}", fs.mkdir(&format!("/d{name}"))),
        Op::Readdir => {
            let mut names: Vec<String> = fs
                .readdir("/")
                .expect("readdir")
                .into_iter()
                .map(|d| d.name)
                .collect();
            names.sort();
            format!("{names:?}")
        }
        Op::Sync => format!("{:?}", fs.sync()),
        Op::DropCaches => format!("{:?}", fs.drop_caches()),
    }
}

fn fnv(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn config() -> FsConfig {
    FsConfig {
        ninodes: 64,
        cache_bytes: 128 << 10,
        cpu: FsCpuModel::free(),
        ..FsConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backends_are_observably_identical(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let raw_store = RawStore::format(MemDisk::with_capacity(24 << 20)).expect("format raw");
        let mut raw = MinixFs::format(raw_store, config()).expect("mkfs raw");
        let ld_store = LdStore::format(
            MemDisk::with_capacity(24 << 20),
            logical_disk_repro::lld::LldConfig::small_for_tests(),
        )
        .expect("format ld");
        let mut ld = MinixFs::format(ld_store, config()).expect("mkfs ld");

        for (i, op) in ops.iter().enumerate() {
            let a = apply(&mut raw, op);
            let b = apply(&mut ld, op);
            prop_assert_eq!(a, b, "op {} = {:?} diverged", i, op);
        }
    }
}
