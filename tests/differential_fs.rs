//! Differential check: MINIX on the logical disk vs. MINIX on the raw
//! disk. The LLD layer below the file system changes *where* bytes live
//! (log-structured segments, cleaning, compression) and *how fast* — it
//! must never change *what* the file system reads back. One deterministic
//! workload runs against both stacks on identical fault-free media; every
//! file, directory listing, and size must come out byte-identical.

use logical_disk_repro::lld::LldConfig;
use logical_disk_repro::minix_fs::{
    BlockStore, FsConfig, FsCpuModel, LdStore, MinixFs, RawStore,
};
use logical_disk_repro::simdisk::SimDisk;

const CAPACITY: u64 = 24 << 20;

fn fs_config() -> FsConfig {
    FsConfig {
        ninodes: 256,
        cache_bytes: 256 << 10,
        cpu: FsCpuModel::free(),
        ..FsConfig::default()
    }
}

fn content(seed: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| ((seed * 131 + j * 17) % 251) as u8)
        .collect()
}

/// The deterministic workload: a directory tree, files of many sizes,
/// overwrites, renames, deletions, truncations, interleaved syncs.
fn run_workload<S: BlockStore>(fs: &mut MinixFs<S>) {
    fs.mkdir("/docs").unwrap();
    fs.mkdir("/docs/old").unwrap();
    fs.mkdir("/tmp").unwrap();
    for i in 0..18usize {
        let dir = match i % 3 {
            0 => "/docs",
            1 => "/docs/old",
            _ => "/tmp",
        };
        let path = format!("{dir}/file{i:02}");
        let ino = fs.create(&path).unwrap();
        fs.write(ino, 0, &content(i, 200 + i * 731)).unwrap();
        if i % 5 == 0 {
            fs.sync().unwrap();
        }
    }
    // Overwrites in the middle and past the end of existing files.
    for i in [0usize, 3, 7, 12] {
        let dir = match i % 3 {
            0 => "/docs",
            1 => "/docs/old",
            _ => "/tmp",
        };
        let ino = fs.lookup(&format!("{dir}/file{i:02}")).unwrap();
        fs.write(ino, 100 + i as u64 * 37, &content(500 + i, 900)).unwrap();
        fs.write(ino, (200 + i * 731) as u64, &content(600 + i, 400)).unwrap();
    }
    fs.rename("/docs/file00", "/tmp/renamed00").unwrap();
    fs.rename("/docs/old/file04", "/docs/file04").unwrap();
    fs.unlink("/tmp/file02").unwrap();
    fs.unlink("/docs/old/file07").unwrap();
    let ino = fs.lookup("/tmp/file05").unwrap();
    fs.truncate(ino).unwrap();
    fs.write(ino, 0, b"fresh start").unwrap();
    fs.sync().unwrap();
    // A second wave after the sync, reusing freed inodes and blocks.
    for i in 18..24usize {
        let path = format!("/tmp/wave2-{i}");
        let ino = fs.create(&path).unwrap();
        fs.write(ino, 0, &content(i, 1000 + i * 211)).unwrap();
    }
    fs.sync().unwrap();
}

/// Recursively reads the whole tree: (path, size, contents) per file plus
/// (path, child names) per directory, in traversal order.
fn walk<S: BlockStore>(
    fs: &mut MinixFs<S>,
    dir: &str,
    out: &mut Vec<(String, u64, Vec<u8>)>,
) {
    let entries = fs.readdir(dir).unwrap();
    let names: Vec<String> = entries
        .iter()
        .filter(|d| d.name != "." && d.name != "..")
        .map(|d| d.name.clone())
        .collect();
    out.push((dir.to_string(), names.len() as u64, names.join("\n").into_bytes()));
    for name in names {
        let path = if dir == "/" {
            format!("/{name}")
        } else {
            format!("{dir}/{name}")
        };
        let ino = fs.lookup(&path).unwrap();
        let st = fs.stat(ino).unwrap();
        if st.ftype == logical_disk_repro::minix_fs::FileType::Dir {
            walk(fs, &path, out);
        } else {
            let mut buf = vec![0u8; st.size as usize];
            let n = fs.read(ino, 0, &mut buf).unwrap();
            assert_eq!(n, st.size as usize, "{path} read short");
            out.push((path, u64::from(st.size), buf));
        }
    }
}

#[test]
fn minix_over_lld_matches_minix_over_raw_disk() {
    // The raw stack: classic update-in-place MINIX.
    let mut raw = MinixFs::format(
        RawStore::format(SimDisk::hp_c3010_with_capacity(CAPACITY)).unwrap(),
        fs_config(),
    )
    .unwrap();
    // The logical-disk stack: same file system, log-structured below.
    let lld_config = LldConfig {
        segment_bytes: 64 << 10,
        summary_bytes: 4 << 10,
        cpu: logical_disk_repro::lld::CpuModel::free(),
        ..LldConfig::default()
    };
    let mut lld = MinixFs::format(
        LdStore::format(SimDisk::hp_c3010_with_capacity(CAPACITY), lld_config).unwrap(),
        fs_config(),
    )
    .unwrap();

    run_workload(&mut raw);
    run_workload(&mut lld);

    // Compare through the cache first…
    let (mut a, mut b) = (Vec::new(), Vec::new());
    walk(&mut raw, "/", &mut a);
    walk(&mut lld, "/", &mut b);
    assert_eq!(a, b, "stacks diverged (cached reads)");

    // …then from the media: every cached page dropped, every byte must
    // come back off the (very differently laid out) disks identically.
    raw.drop_caches().unwrap();
    lld.drop_caches().unwrap();
    let (mut a, mut b) = (Vec::new(), Vec::new());
    walk(&mut raw, "/", &mut a);
    walk(&mut lld, "/", &mut b);
    assert_eq!(a, b, "stacks diverged (media reads)");
}
