//! Differential and ordering properties for the simdisk command queue.
//!
//! Two contracts from the queueing design are checked here at the
//! whole-stack and queue level:
//!
//! - **Depth-1 FCFS is the direct path.** With `queue_depth: 1` and the
//!   FCFS scheduler every seal is submitted and immediately drained, so
//!   the run must be *bit-identical* to `queue_depth: 0` — same final
//!   medium image, same simulated clock, same disk statistics. Queueing
//!   at depth 1 may not cost or save a single microsecond.
//! - **No scheduler reorders writes.** Whatever the scheduler does with
//!   reads, writes dispatch in submission order among themselves, reads
//!   never jump an overlapping request or a barrier, and coalescing
//!   never changes bytes. A reference execution that performs the same
//!   operations strictly FIFO on a second disk must end with the same
//!   image, and every read must see the medium as of its submission
//!   point.

use logical_disk_repro::ld_core::LogicalDisk;
use logical_disk_repro::lld::LldConfig;
use logical_disk_repro::minix_fs::{FsConfig, FsCpuModel, LdStore, MinixFs};
use logical_disk_repro::simdisk::{BlockDev, RequestQueue, Scheduler, SimDisk};
use proptest::prelude::*;

fn configs(queue_depth: u32, scheduler: Scheduler) -> (LldConfig, FsConfig) {
    (
        LldConfig {
            segment_bytes: 64 << 10,
            summary_bytes: 4 << 10,
            queue_depth,
            scheduler,
            ..LldConfig::default()
        },
        FsConfig {
            ninodes: 256,
            cache_bytes: 256 << 10,
            cpu: FsCpuModel::free(),
            ..FsConfig::default()
        },
    )
}

fn content(seed: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| ((seed * 31 + j * 7) % 251) as u8)
        .collect()
}

/// Runs a deterministic file-system workload with enough churn to seal
/// many segments, trigger the cleaner, and exercise partial flushes, then
/// shuts down cleanly. Returns the final image, clock, and disk stats.
fn run_workload(
    queue_depth: u32,
    scheduler: Scheduler,
) -> (
    Vec<u8>,
    u64,
    logical_disk_repro::simdisk::DiskStats,
    logical_disk_repro::lld::LldStats,
) {
    let (lld_config, fs_config) = configs(queue_depth, scheduler);
    let store = LdStore::format(SimDisk::hp_c3010_with_capacity(24 << 20), lld_config)
        .expect("format");
    let mut fs = MinixFs::format(store, fs_config).expect("mkfs");

    let mut live: Vec<String> = Vec::new();
    for i in 0..40usize {
        let path = format!("/f{i:02}");
        let ino = fs.create(&path).expect("create");
        fs.write(ino, 0, &content(i, 1500 + i * 217)).expect("write");
        live.push(path);
        if i % 3 == 0 {
            let p = &live[i / 2];
            let ino = fs.lookup(p).expect("lookup");
            fs.write(ino, 128, &content(100 + i, 900)).expect("overwrite");
        }
        if i % 7 == 4 {
            let p = live.remove(i % live.len());
            fs.unlink(&p).expect("unlink");
        }
        if i % 5 == 2 {
            fs.sync().expect("sync");
        }
    }
    fs.sync().expect("sync");

    let mut store = fs.into_store();
    let lld_stats = *store.lld().stats();
    store.lld_mut().shutdown().expect("shutdown");
    let disk = store.into_disk();
    let clock = disk.now_us();
    let stats = *disk.stats();
    (disk.image_bytes(), clock, stats, lld_stats)
}

/// The depth-1 FCFS differential: submitting each seal through the queue
/// and draining immediately must replay the exact direct-path run.
#[test]
fn fcfs_depth1_is_bit_identical_to_direct_path() {
    let (img0, clock0, disk0, lld0) = run_workload(0, Scheduler::Fcfs);
    let (img1, clock1, disk1, mut lld1) = run_workload(1, Scheduler::Fcfs);

    assert_eq!(clock0, clock1, "queueing at depth 1 changed the clock");
    assert_eq!(disk0, disk1, "queueing at depth 1 changed disk stats");
    assert_eq!(img0, img1, "queueing at depth 1 changed the medium");

    // The LLD stats agree except for the queue's own accounting.
    assert!(lld1.queued_segment_writes > 0, "depth 1 never used the queue");
    lld1.queued_segment_writes = 0;
    lld1.queued_reads = 0;
    lld1.queue_drains = 0;
    assert_eq!(lld0, lld1, "queueing at depth 1 changed LLD behaviour");
}

/// Depth-1 identity is scheduler-independent: with at most one request
/// in flight there is never a scheduling decision to make.
#[test]
fn depth1_identity_holds_for_every_scheduler() {
    let (img0, clock0, _, _) = run_workload(0, Scheduler::Fcfs);
    for sched in Scheduler::ALL {
        let (img, clock, _, _) = run_workload(1, sched);
        assert_eq!(clock0, clock, "{sched:?} at depth 1 changed the clock");
        assert_eq!(img0, img, "{sched:?} at depth 1 changed the medium");
    }
}

/// One step of the generated request script.
#[derive(Debug, Clone)]
enum ScriptOp {
    /// Write `len` sectors at `sector`, filled from `seed`.
    Write { sector: u64, len: u64, seed: u8 },
    /// Read `len` sectors at `sector`.
    Read { sector: u64, len: u64 },
    /// Full fence.
    Barrier,
}

fn op_strategy(total_sectors: u64) -> impl Strategy<Value = ScriptOp> {
    let span = total_sectors - 8;
    prop_oneof![
        4 => (0..span, 1u64..8, any::<u8>())
            .prop_map(|(sector, len, seed)| ScriptOp::Write { sector, len, seed }),
        3 => (0..span, 1u64..8).prop_map(|(sector, len)| ScriptOp::Read { sector, len }),
        1 => Just(ScriptOp::Barrier),
    ]
}

fn fill(seed: u8, bytes: usize) -> Vec<u8> {
    (0..bytes).map(|j| seed.wrapping_add(j as u8)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every scheduler preserves per-sector write ordering across write
    /// barriers: the queued execution ends with the same medium contents
    /// as a strict FIFO execution of the same script, write completions
    /// arrive in submission order, and every read returns the bytes the
    /// medium held at its submission point (so no read jumps an
    /// overlapping write, forward or backward).
    #[test]
    fn schedulers_preserve_write_order_and_read_consistency(
        script in proptest::collection::vec(op_strategy(4096), 1..40),
        sched_idx in 0usize..Scheduler::ALL.len(),
        coalesce in any::<bool>(),
    ) {
        let scheduler = Scheduler::ALL[sched_idx];
        let sector_bytes = 512usize;

        // Queued execution, driven to empty after all submissions.
        let mut disk = SimDisk::hp_c3010_with_capacity(4096 * 512);
        let mut queue = RequestQueue::new(scheduler, coalesce);
        // Reference execution: the same ops, strictly in order.
        let mut fifo_disk = SimDisk::hp_c3010_with_capacity(4096 * 512);
        // Expected read results, keyed by tag, captured at submission
        // time from the reference image.
        let mut expected_reads: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut write_tags: Vec<u64> = Vec::new();

        for op in &script {
            match *op {
                ScriptOp::Write { sector, len, seed } => {
                    let data = fill(seed, len as usize * sector_bytes);
                    let tag = queue.submit_write(&disk, sector, &data);
                    fifo_disk.write_sectors(sector, &data).expect("fifo write");
                    // Coalescing reuses the tail write's tag; ordering is
                    // asserted over surviving (distinct) tags.
                    if write_tags.last() != Some(&tag) {
                        write_tags.push(tag);
                    }
                }
                ScriptOp::Read { sector, len } => {
                    let tag = queue.submit_read(&disk, sector, len);
                    let mut buf = vec![0u8; len as usize * sector_bytes];
                    fifo_disk.read_sectors(sector, &mut buf).expect("fifo read");
                    expected_reads.push((tag, buf));
                }
                ScriptOp::Barrier => queue.barrier(),
            }
        }

        let completions = queue.drain(&mut disk);
        prop_assert!(queue.is_empty());

        // Writes completed in submission order among themselves.
        let completed_writes: Vec<u64> = completions
            .iter()
            .filter(|c| c.write)
            .map(|c| c.tag)
            .collect();
        prop_assert_eq!(
            &completed_writes, &write_tags,
            "{:?} reordered writes", scheduler
        );

        // Every read observed its submission-time medium state.
        for (tag, expected) in &expected_reads {
            let c = completions
                .iter()
                .find(|c| c.tag == *tag)
                .expect("read completion present");
            let got = c.result.as_ref().expect("read ok").as_ref().expect("data");
            prop_assert_eq!(
                got, expected,
                "{:?} let read tag {} see a reordered write", scheduler, tag
            );
        }

        // Same final medium as the FIFO reference.
        prop_assert_eq!(
            disk.image_bytes(),
            fifo_disk.image_bytes(),
            "{:?} changed the final medium contents",
            scheduler
        );
    }
}
