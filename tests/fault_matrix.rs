//! Media-fault matrix at the file-system level: fault seed × error rate ×
//! crash point. Whatever the medium does, MINIX LLD must never *silently*
//! corrupt data — every durable file either reads back byte-identical or
//! the read reports an error — and after a scrub pass the file system
//! must keep working on the degraded medium.
//!
//! Two properties split the fault classes:
//!
//! - **Transient faults + crash-anywhere**: transient sector errors are
//!   recoverable by definition (they succeed within `maxfail` retries),
//!   so all the crash-matrix invariants must hold unchanged — recovery
//!   sweeps through the faults, every durable file reads fully, and the
//!   post-scrub image checks clean with zero unreadable blocks.
//! - **Latent faults, clean shutdown**: latent sectors never read; the
//!   data written on them is genuinely lost. The invariant is honesty,
//!   not resurrection: reads either fail loudly or return exactly the
//!   right bytes, the scrub retires what it can into the remap table,
//!   and `ldck` cross-checks the table on the final image.

use logical_disk_repro::lld::LldConfig;
use logical_disk_repro::minix_fs::{FsConfig, FsCpuModel, LdStore, MinixFs};
use logical_disk_repro::simdisk::{FaultConfig, SimDisk};
use proptest::prelude::*;

/// Queue sampling mirrors tests/crash_matrix.rs: 0 = queueing off,
/// 1 = LOOK at depth 4 with write-behind, 2 = SATF at depth 8. Media
/// faults and crashes must be survivable with requests in flight.
fn queue_config(mode: u8) -> (u32, u32, logical_disk_repro::simdisk::Scheduler) {
    match mode {
        1 => (4, 3, logical_disk_repro::simdisk::Scheduler::Look),
        2 => (8, 4, logical_disk_repro::simdisk::Scheduler::Satf),
        _ => (0, 0, logical_disk_repro::simdisk::Scheduler::Fcfs),
    }
}

fn configs(queue_mode: u8) -> (LldConfig, FsConfig) {
    let (queue_depth, writeback_depth, scheduler) = queue_config(queue_mode);
    (
        LldConfig {
            queue_depth,
            writeback_depth,
            scheduler,
            segment_bytes: 64 << 10,
            summary_bytes: 4 << 10,
            // Deep enough for a multi-fault span: each retry of a span
            // gets past at most one transient sector per attempt.
            read_retries: 16,
            cpu: logical_disk_repro::lld::CpuModel::free(),
            ..LldConfig::default()
        },
        FsConfig {
            ninodes: 256,
            cache_bytes: 256 << 10,
            cpu: FsCpuModel::free(),
            ..FsConfig::default()
        },
    )
}

fn content(seed: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| ((seed * 31 + j * 7) % 251) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Transient faults are invisible above the disk-manager layer: the
    /// whole crash-matrix contract holds at any error rate and any crash
    /// point, and no block is ever reported unreadable.
    #[test]
    fn transient_faults_and_crash_recover_consistently(
        fault_seed in any::<u64>(),
        transient_ppm in 0u32..=5_000,
        maxfail in 1u32..=2,
        crash_after in 1u64..6_000,
        nfiles in 4usize..16,
        syncs in proptest::collection::vec(any::<bool>(), 16),
        queue_mode in 0u8..3,
    ) {
        let (lld_config, fs_config) = configs(queue_mode);
        let fault_cfg = FaultConfig {
            seed: fault_seed,
            transient_ppm,
            transient_max_failures: maxfail,
            ..FaultConfig::default()
        };
        let mut disk = SimDisk::hp_c3010_with_capacity(24 << 20);
        disk.set_faults(fault_cfg);
        let store = LdStore::format(disk, lld_config.clone()).expect("format");
        let mut fs = MinixFs::format(store, fs_config.clone()).expect("mkfs");

        let tracer = logical_disk_repro::ld_trace::Tracer::new(4096);
        fs.store_mut().lld_mut().disk_mut().set_tracer(tracer.clone());
        fs.store_mut().lld_mut().set_tracer(tracer.clone());
        fs.set_tracer(tracer.clone());

        // A durable baseline, written and synced on the faulty medium.
        let mut durable: Vec<(String, Vec<u8>)> = Vec::new();
        for i in 0..nfiles {
            let path = format!("/base{i:02}");
            let data = content(i, 512 + i * 301);
            let ino = fs.create(&path).expect("create");
            fs.write(ino, 0, &data).expect("write");
            durable.push((path, data));
        }
        fs.sync().expect("sync");

        // Chaos phase with the crash armed.
        fs.store_mut().disk_mut().crash_after_writes(crash_after);
        'chaos: for i in 0..16usize {
            let r: Result<(), logical_disk_repro::minix_fs::FsError> = (|| {
                let path = format!("/chaos{i:02}");
                let ino = fs.create(&path)?;
                fs.write(ino, 0, &content(100 + i, 2000))?;
                if i % 3 == 0 {
                    let (p, _) = &durable[i % durable.len()];
                    let ino = fs.lookup(p)?;
                    fs.write(ino, 64, &content(200 + i, 700))?;
                }
                if syncs[i] {
                    fs.sync()?;
                }
                Ok(())
            })();
            if r.is_err() {
                break 'chaos; // The crash fired.
            }
        }

        // Revive; the fault schedule survives (it belongs to the medium).
        let mut disk = fs.into_store().into_disk();
        disk.revive();
        let report = logical_disk_repro::ldck::check_image(&disk.image_bytes(), &lld_config);
        prop_assert!(
            report.is_clean(),
            "crashed image has errors: {:?}\n{}",
            report.findings,
            tracer.dump_tail(100)
        );
        // The recovery sweep itself runs against the faults.
        let store = LdStore::mount(disk, lld_config.clone()).expect("LD recovery under faults");
        let mut fs = MinixFs::mount(store, fs_config).expect("mount must succeed");
        fs.store_mut().lld_mut().disk_mut().set_tracer(tracer.clone());
        fs.store_mut().lld_mut().set_tracer(tracer.clone());
        fs.set_tracer(tracer.clone());

        // Every directory entry resolves and reads fully — retries make
        // transient faults invisible here.
        for d in fs.readdir("/").expect("readdir") {
            if d.name == "." || d.name == ".." {
                continue;
            }
            let path = format!("/{}", d.name);
            let ino = fs.lookup(&path).expect("entry resolves");
            let size = fs.stat(ino).expect("stat").size as usize;
            let mut buf = vec![0u8; size];
            prop_assert_eq!(
                fs.read(ino, 0, &mut buf).expect("read"),
                size,
                "{} truncated after recovery\n{}", &path, tracer.dump_tail(100)
            );
        }
        for (path, data) in &durable {
            let ino = fs.lookup(path).expect("baseline file survives");
            let mut buf = vec![0u8; data.len()];
            prop_assert_eq!(
                fs.read(ino, 0, &mut buf).expect("read baseline"),
                data.len(),
                "baseline {} truncated\n{}", path, tracer.dump_tail(100)
            );
        }
        prop_assert_eq!(
            fs.store().lld().stats().unreadable_blocks, 0,
            "transient faults must never exhaust the retry budget\n{}",
            tracer.dump_tail(100)
        );

        // Scrub the suspects the retries recorded; transient sectors
        // recover under probing, so nothing may be retired.
        let (_, remapped, unreadable) =
            fs.store_mut().lld_mut().scrub().expect("scrub");
        prop_assert_eq!(remapped, 0, "scrub retired a transient sector");
        prop_assert_eq!(unreadable, 0, "scrub lost a block to transient faults");

        // The file system still works on the faulty medium.
        let ino = fs.create("/after-scrub").expect("create after scrub");
        fs.write(ino, 0, b"alive").expect("write after scrub");
        fs.sync().expect("sync after scrub");

        let disk = fs.into_store().into_disk();
        let report = logical_disk_repro::ldck::check_image(&disk.image_bytes(), &lld_config);
        prop_assert!(
            report.is_clean(),
            "post-scrub image has errors: {:?}\n{}",
            report.findings,
            tracer.dump_tail(100)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Latent faults lose data but never integrity: each durable file
    /// either reads back byte-identical or the read reports an error,
    /// the scrub retires confirmed sectors into the remap table, and the
    /// cleanly-shut-down image passes `ldck` — remap table included.
    #[test]
    fn latent_faults_report_loss_never_corruption(
        fault_seed in any::<u64>(),
        latent_ppm in 0u32..=1_500,
        transient_ppm in 0u32..=3_000,
        nfiles in 6usize..24,
        queue_mode in 0u8..3,
    ) {
        let (lld_config, fs_config) = configs(queue_mode);
        let store = LdStore::format(
            SimDisk::hp_c3010_with_capacity(24 << 20),
            lld_config.clone(),
        )
        .expect("format");
        let mut fs = MinixFs::format(store, fs_config).expect("mkfs");

        let mut files: Vec<(String, Vec<u8>)> = Vec::new();
        for i in 0..nfiles {
            let path = format!("/f{i:02}");
            let data = content(i, 700 + i * 523);
            let ino = fs.create(&path).expect("create");
            fs.write(ino, 0, &data).expect("write");
            files.push((path, data));
        }
        fs.sync().expect("sync");

        // The defects were latent all along; the writes above landed on
        // them without noticing. Now they surface.
        let fault_cfg = FaultConfig {
            seed: fault_seed,
            latent_ppm,
            transient_ppm,
            ..FaultConfig::default()
        };
        fs.store_mut().disk_mut().set_faults(fault_cfg);
        fs.drop_caches().expect("drop caches");

        // Core invariant: loss is loud. A read may fail (latent sector
        // under the file or under metadata on its path) but whatever
        // succeeds must be exactly the written bytes.
        for (path, data) in &files {
            let r = (|| -> logical_disk_repro::minix_fs::Result<Vec<u8>> {
                let ino = fs.lookup(path)?;
                let mut buf = vec![0u8; data.len()];
                let got = fs.read(ino, 0, &mut buf)?;
                buf.truncate(got);
                Ok(buf)
            })();
            if let Ok(got) = r {
                prop_assert_eq!(
                    &got, data,
                    "{} read succeeded but returned wrong bytes", path
                );
            }
        }

        // Scrub: probe the whole medium, relocate what is still readable
        // off failing segments, retire confirmed sectors.
        let (_, remapped, _) =
            fs.store_mut().lld_mut().media_scan().expect("media scan");

        // The file system stays writable on the degraded medium — unless
        // the medium blocks the *read* path of the update (e.g. a latent
        // sector under the root directory). In that case the failure must
        // be the medium's, not scrambled state: the same update must
        // succeed once the medium stops failing.
        let probe = (|| -> logical_disk_repro::minix_fs::Result<()> {
            let ino = fs.create("/after-scrub")?;
            fs.write(ino, 0, b"alive")?;
            fs.sync()?;
            Ok(())
        })();
        if probe.is_err() {
            fs.store_mut().disk_mut().clear_faults();
            let ino = fs.create("/after-scrub2").expect("create on healed medium");
            fs.write(ino, 0, b"alive").expect("write on healed medium");
            fs.sync().expect("sync on healed medium");
        }

        // Clean shutdown carries the remap table into the checkpoint;
        // ldck must agree with it entry for entry.
        let mut store = fs.into_store();
        let table_len = store.lld().bad_sector_table().len() as u64;
        prop_assert_eq!(table_len, remapped, "scrub return disagrees with the table");
        use logical_disk_repro::ld_core::LogicalDisk;
        store.lld_mut().shutdown().expect("clean shutdown");
        let image = store.into_disk().image_bytes();
        let report = logical_disk_repro::ldck::check_image(&image, &lld_config);
        prop_assert!(
            report.is_clean(),
            "scrubbed image has errors: {:?}",
            report.findings
        );
        prop_assert_eq!(
            report.stats.bad_sectors, table_len,
            "checkpointed remap table must carry every retired sector"
        );
    }
}
