//! Crash-anywhere property test at the file-system level: whatever sector
//! the power fails on, MINIX LLD must recover to a consistent state — all
//! durable files fully readable, directory structure coherent, and the
//! file system writable afterwards. This is the paper's no-fsck claim
//! under adversarial timing.

use logical_disk_repro::lld::LldConfig;
use logical_disk_repro::minix_fs::{FsConfig, FsCpuModel, LdStore, MinixFs};
use logical_disk_repro::simdisk::SimDisk;
use proptest::prelude::*;

/// Queue sampling: 0 = queueing off (the historical direct path),
/// 1 = LOOK at depth 4 with write-behind, 2 = SATF at depth 8. The
/// crash invariants must hold identically — write-behind may only lose
/// an *unacknowledged* suffix, never synced data.
fn queue_config(mode: u8) -> (u32, u32, logical_disk_repro::simdisk::Scheduler) {
    match mode {
        1 => (4, 3, logical_disk_repro::simdisk::Scheduler::Look),
        2 => (8, 4, logical_disk_repro::simdisk::Scheduler::Satf),
        _ => (0, 0, logical_disk_repro::simdisk::Scheduler::Fcfs),
    }
}

fn configs(queue_mode: u8) -> (LldConfig, FsConfig) {
    let (queue_depth, writeback_depth, scheduler) = queue_config(queue_mode);
    (
        LldConfig {
            segment_bytes: 64 << 10,
            summary_bytes: 4 << 10,
            cpu: logical_disk_repro::lld::CpuModel::free(),
            queue_depth,
            writeback_depth,
            scheduler,
            ..LldConfig::default()
        },
        FsConfig {
            ninodes: 256,
            cache_bytes: 256 << 10,
            cpu: FsCpuModel::free(),
            ..FsConfig::default()
        },
    )
}

fn content(seed: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| ((seed * 31 + j * 7) % 251) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn any_crash_point_recovers_consistently(
        crash_after in 1u64..6_000,
        nfiles in 4usize..24,
        syncs in proptest::collection::vec(any::<bool>(), 24),
        queue_mode in 0u8..3,
    ) {
        let (lld_config, fs_config) = configs(queue_mode);
        let store = LdStore::format(
            SimDisk::hp_c3010_with_capacity(24 << 20),
            lld_config.clone(),
        )
        .expect("format");
        let mut fs = MinixFs::format(store, fs_config.clone()).expect("mkfs");

        // Trace the whole run; on failure the trailing events show what
        // the stack was doing when the invariant broke.
        let tracer = logical_disk_repro::ld_trace::Tracer::new(4096);
        fs.store_mut().lld_mut().disk_mut().set_tracer(tracer.clone());
        fs.store_mut().lld_mut().set_tracer(tracer.clone());
        fs.set_tracer(tracer.clone());

        // A durable baseline.
        let mut durable: Vec<(String, Vec<u8>)> = Vec::new();
        for i in 0..nfiles {
            let path = format!("/base{i:02}");
            let data = content(i, 512 + i * 301);
            let ino = fs.create(&path).expect("create");
            fs.write(ino, 0, &data).expect("write");
            durable.push((path, data));
        }
        fs.sync().expect("sync");

        // Chaos phase with the crash armed: creates, overwrites, deletes,
        // and scattered syncs, until the disk dies.
        fs.store_mut().disk_mut().crash_after_writes(crash_after);
        'chaos: for i in 0..24usize {
            let r: Result<(), logical_disk_repro::minix_fs::FsError> = (|| {
                let path = format!("/chaos{i:02}");
                let ino = fs.create(&path)?;
                fs.write(ino, 0, &content(100 + i, 2000))?;
                if i % 3 == 0 {
                    let (p, _) = &durable[i % durable.len()];
                    let ino = fs.lookup(p)?;
                    fs.write(ino, 64, &content(200 + i, 700))?;
                }
                if syncs[i] {
                    fs.sync()?;
                }
                Ok(())
            })();
            if r.is_err() {
                break 'chaos; // The crash fired.
            }
        }

        // Recover. Before mounting, the raw crashed image must pass the
        // offline consistency check — the no-fsck claim, verified by fsck.
        let mut disk = fs.into_store().into_disk();
        disk.revive();
        let report = logical_disk_repro::ldck::check_image(&disk.image_bytes(), &lld_config);
        prop_assert!(
            report.is_clean(),
            "crashed image has errors: {:?}\n{}",
            report.findings,
            tracer.dump_tail(100)
        );
        let store = LdStore::mount(disk, lld_config.clone()).expect("LD recovery must succeed");
        let mut fs = MinixFs::mount(store, fs_config).expect("mount must succeed");
        // Re-attach to the recovered stack (set_tracer records the
        // recovery sweep retroactively, so it lands in the timeline too).
        fs.store_mut().lld_mut().disk_mut().set_tracer(tracer.clone());
        fs.store_mut().lld_mut().set_tracer(tracer.clone());
        fs.set_tracer(tracer.clone());

        // Invariant 1: every directory entry resolves and reads fully.
        for d in fs.readdir("/").expect("readdir") {
            if d.name == "." || d.name == ".." {
                continue;
            }
            let path = format!("/{}", d.name);
            let ino = fs.lookup(&path).expect("entry resolves");
            let size = fs.stat(ino).expect("stat").size as usize;
            let mut buf = vec![0u8; size];
            prop_assert_eq!(
                fs.read(ino, 0, &mut buf).expect("read"),
                size,
                "{} truncated after recovery\n{}", &path, tracer.dump_tail(100)
            );
        }

        // Invariant 2: the pre-crash durable baseline still exists (its
        // blocks may since have been overwritten by the synced chaos
        // overwrites, so only existence + readability are asserted;
        // baseline files never deleted).
        for (path, data) in &durable {
            let ino = fs.lookup(path).expect("baseline file survives");
            let mut buf = vec![0u8; data.len()];
            prop_assert_eq!(
                fs.read(ino, 0, &mut buf).expect("read baseline"),
                data.len(),
                "baseline {} truncated\n{}", path, tracer.dump_tail(100)
            );
        }

        // Invariant 3: the file system still works.
        let ino = fs.create("/after-recovery").expect("create after recovery");
        fs.write(ino, 0, b"alive").expect("write after recovery");
        fs.sync().expect("sync after recovery");

        // Invariant 4: the post-recovery medium checks clean too.
        let disk = fs.into_store().into_disk();
        let report = logical_disk_repro::ldck::check_image(&disk.image_bytes(), &lld_config);
        prop_assert!(
            report.is_clean(),
            "post-recovery image has errors: {:?}\n{}",
            report.findings,
            tracer.dump_tail(100)
        );
    }
}
