//! Full-stack integration tests: MINIX over LLD over the simulated disk.

use logical_disk_repro::minix_fs::{
    BlockStore, FsConfig, FsError, InodeMode, LdStore, ListMode, MinixFs, RawStore,
};
use logical_disk_repro::simdisk::SimDisk;

fn lld_config() -> logical_disk_repro::lld::LldConfig {
    logical_disk_repro::lld::LldConfig {
        segment_bytes: 128 << 10,
        cpu: logical_disk_repro::lld::CpuModel::free(),
        ..logical_disk_repro::lld::LldConfig::default()
    }
}

fn fs_config() -> FsConfig {
    FsConfig {
        cache_bytes: 512 << 10,
        cpu: logical_disk_repro::minix_fs::FsCpuModel::free(),
        ..FsConfig::default()
    }
}

fn content(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| ((i * 31 + j * 7) % 251) as u8).collect()
}

/// Applies the same mixed workload to any backend and returns a digest of
/// the observable state.
fn workload<S: BlockStore>(fs: &mut MinixFs<S>) -> Vec<(String, Vec<u8>)> {
    fs.mkdir("/docs").expect("mkdir");
    fs.mkdir("/src").expect("mkdir");
    let mut live: Vec<(String, usize)> = Vec::new();
    for i in 0..120usize {
        let dir = if i % 3 == 0 { "/docs" } else { "/src" };
        let path = format!("{dir}/file{i:03}");
        let ino = fs.create(&path).expect("create");
        let len = 500 + (i * 137) % 9000;
        fs.write(ino, 0, &content(i, len)).expect("write");
        live.push((path, i));
        // Periodically delete an older file and overwrite another.
        if i % 7 == 3 && live.len() > 4 {
            let (victim, _) = live.remove(live.len() / 2);
            fs.unlink(&victim).expect("unlink");
        }
        if i % 5 == 2 && !live.is_empty() {
            let (path, seed) = live[live.len() / 3].clone();
            let ino = fs.lookup(&path).expect("lookup");
            fs.write(ino, 100, &content(seed + 1000, 300))
                .expect("overwrite");
        }
    }
    fs.sync().expect("sync");
    fs.drop_caches().expect("drop");

    // Digest: every live file's full contents, sorted by path.
    let mut out = Vec::new();
    for dir in ["/docs", "/src"] {
        for d in fs.readdir(dir).expect("readdir") {
            if d.name == "." || d.name == ".." {
                continue;
            }
            let path = format!("{dir}/{}", d.name);
            let ino = fs.lookup(&path).expect("lookup");
            let size = fs.stat(ino).expect("stat").size as usize;
            let mut buf = vec![0u8; size];
            assert_eq!(fs.read(ino, 0, &mut buf).expect("read"), size);
            out.push((path, buf));
        }
    }
    out.sort();
    out
}

#[test]
fn raw_and_ld_backends_agree_observably() {
    let raw_store = RawStore::format(SimDisk::hp_c3010_with_capacity(32 << 20)).expect("format");
    let mut raw = MinixFs::format(raw_store, fs_config()).expect("mkfs");
    let a = workload(&mut raw);

    let ld_store =
        LdStore::format(SimDisk::hp_c3010_with_capacity(32 << 20), lld_config()).expect("format");
    let mut ld = MinixFs::format(ld_store, fs_config()).expect("mkfs");
    let b = workload(&mut ld);

    assert_eq!(a.len(), b.len(), "same number of live files");
    for ((pa, ca), (pb, cb)) in a.iter().zip(b.iter()) {
        assert_eq!(pa, pb);
        assert_eq!(ca, cb, "contents of {pa} differ between backends");
    }
}

#[test]
fn ld_backend_state_survives_crash_and_remount() {
    let store =
        LdStore::format(SimDisk::hp_c3010_with_capacity(32 << 20), lld_config()).expect("format");
    let mut fs = MinixFs::format(store, fs_config()).expect("mkfs");
    let digest = workload(&mut fs);

    // Crash (drop everything in memory) and recover by sweep.
    let mut disk = fs.into_store().into_disk();
    disk.crash_now();
    disk.revive();
    let store = LdStore::mount(disk, lld_config()).expect("LD recovery");
    let mut fs = MinixFs::mount(store, fs_config()).expect("mount");

    for (path, expected) in &digest {
        let ino = fs.lookup(path).expect("recovered lookup");
        let mut buf = vec![0u8; expected.len()];
        assert_eq!(fs.read(ino, 0, &mut buf).expect("read"), expected.len());
        assert_eq!(&buf, expected, "contents of {path} after recovery");
    }
}

#[test]
fn all_configuration_variants_run_the_workload() {
    for list_mode in [ListMode::SingleList, ListMode::PerFile] {
        for inode_mode in [InodeMode::Packed, InodeMode::SmallBlocks] {
            let store = LdStore::format(SimDisk::hp_c3010_with_capacity(32 << 20), lld_config())
                .expect("format");
            let config = FsConfig {
                list_mode,
                inode_mode,
                ..fs_config()
            };
            let mut fs = MinixFs::format(store, config).expect("mkfs");
            let digest = workload(&mut fs);
            assert!(!digest.is_empty(), "{list_mode:?}/{inode_mode:?}");
        }
    }
}

#[test]
fn torn_segment_write_cannot_corrupt_the_file_system() {
    // Crash the disk at many different points mid-traffic; after each
    // crash the file system must mount and every reachable file must read
    // fully and match one of its two legitimate versions.
    for crash_after in [10u64, 50, 200, 500, 900, 1500, 2500] {
        let store = LdStore::format(SimDisk::hp_c3010_with_capacity(24 << 20), lld_config())
            .expect("format");
        let mut fs = MinixFs::format(store, fs_config()).expect("mkfs");
        let v1 = content(1, 5000);
        let v2 = content(2, 5000);
        let ino = fs.create("/target").expect("create");
        fs.write(ino, 0, &v1).expect("write");
        fs.sync().expect("sync");

        fs.store_mut().disk_mut().crash_after_writes(crash_after);
        // Overwrite with v2; a crash may interrupt anywhere.
        let _ = fs.write(ino, 0, &v2);
        let _ = fs.sync();

        let mut disk = fs.into_store().into_disk();
        disk.revive();
        let store = LdStore::mount(disk, lld_config()).expect("recovery");
        let mut fs = MinixFs::mount(store, fs_config()).expect("mount");
        let ino = fs.lookup("/target").expect("file still exists");
        let mut buf = vec![0u8; 5000];
        assert_eq!(
            fs.read(ino, 0, &mut buf).expect("read"),
            5000,
            "crash_after={crash_after}"
        );
        // The file system cache wrote v2 in 4 KB blocks; LD guarantees
        // recovery to a segment boundary, so each BLOCK is entirely v1 or
        // entirely v2 (the paper's guarantee is block-level, not
        // whole-file transactional unless the FS uses ARUs).
        for (i, chunk) in buf.chunks(4096).enumerate() {
            let lo = i * 4096;
            let hi = lo + chunk.len();
            assert!(
                chunk == &v1[lo..hi] || chunk == &v2[lo..hi],
                "crash_after={crash_after}: block {i} is neither version"
            );
        }
    }
}

#[test]
fn disk_full_surfaces_cleanly_through_the_stack() {
    let store =
        LdStore::format(SimDisk::hp_c3010_with_capacity(8 << 20), lld_config()).expect("format");
    let mut fs = MinixFs::format(store, fs_config()).expect("mkfs");
    let ino = fs.create("/hog").expect("create");
    let chunk = vec![0xFFu8; 64 << 10];
    let mut written = 0u64;
    let err = loop {
        match fs.write(ino, written, &chunk) {
            Ok(()) => written += chunk.len() as u64,
            Err(e) => break e,
        }
    };
    assert_eq!(err, FsError::NoSpace);
    assert!(written > 4 << 20, "most of the disk was usable");
    // The file system is still functional after ENOSPC.
    fs.sync().expect("sync after ENOSPC");
    let mut buf = vec![0u8; 4096];
    assert_eq!(fs.read(ino, 0, &mut buf).expect("read"), 4096);
}
