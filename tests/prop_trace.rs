//! Property tests for the observability layer: the tracer's per-layer
//! time attribution must reconcile with the disk's own counters to the
//! microsecond on arbitrary workloads, and the stats counters themselves
//! must be monotone (so phase deltas are always well-defined).

use logical_disk_repro::ld_trace::Tracer;
use logical_disk_repro::lld::{CpuModel, LldConfig};
use logical_disk_repro::minix_fs::{FsConfig, FsCpuModel, LdStore, MinixFs};
use logical_disk_repro::simdisk::SimDisk;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Write(u8, u16),
    Read(u8),
    Unlink(u8),
    Sync,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12).prop_map(Op::Create),
        (0u8..12, 1u16..6000).prop_map(|(i, len)| Op::Write(i, len)),
        (0u8..12).prop_map(Op::Read),
        (0u8..12).prop_map(Op::Unlink),
        Just(Op::Sync),
    ]
}

fn build_fs() -> MinixFs<LdStore<SimDisk>> {
    let lld_config = LldConfig {
        segment_bytes: 64 << 10,
        summary_bytes: 4 << 10,
        cpu: CpuModel::free(),
        ..LldConfig::default()
    };
    let fs_config = FsConfig {
        ninodes: 128,
        cache_bytes: 128 << 10,
        cpu: FsCpuModel::free(),
        ..FsConfig::default()
    };
    let store = LdStore::format(SimDisk::hp_c3010_with_capacity(16 << 20), lld_config)
        .expect("format");
    MinixFs::format(store, fs_config).expect("mkfs")
}

/// Applies one op, ignoring expected logical errors (missing file etc.) —
/// the properties under test are about accounting, not FS semantics.
fn apply(fs: &mut MinixFs<LdStore<SimDisk>>, op: &Op) {
    match op {
        Op::Create(i) => {
            let _ = fs.create(&format!("/f{i}"));
        }
        Op::Write(i, len) => {
            if let Ok(ino) = fs.lookup(&format!("/f{i}")) {
                let data: Vec<u8> = (0..*len).map(|j| (j % 251) as u8).collect();
                let _ = fs.write(ino, 0, &data);
            }
        }
        Op::Read(i) => {
            if let Ok(ino) = fs.lookup(&format!("/f{i}")) {
                let mut buf = vec![0u8; 4096];
                let _ = fs.read(ino, 0, &mut buf);
            }
        }
        Op::Unlink(i) => {
            let _ = fs.unlink(&format!("/f{i}"));
        }
        Op::Sync => {
            let _ = fs.sync();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tracer attributes every microsecond of disk busy time to
    /// exactly one mechanical component: each attribution component
    /// equals the corresponding `DiskStats` delta since attach, and the
    /// five components sum to the busy-time delta — to the microsecond,
    /// on arbitrary op sequences.
    #[test]
    fn attribution_reconciles_with_disk_counters(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut fs = build_fs();
        let tracer = Tracer::new(1024);
        let stats0 = *fs.store().disk().stats();
        fs.store_mut().lld_mut().disk_mut().set_tracer(tracer.clone());
        fs.store_mut().lld_mut().set_tracer(tracer.clone());
        fs.set_tracer(tracer.clone());

        for op in &ops {
            apply(&mut fs, op);
        }

        let delta = fs
            .store()
            .disk()
            .stats()
            .delta_since(&stats0)
            .expect("later snapshot");
        let attr = tracer.attribution();
        prop_assert_eq!(attr.seek_us, delta.seek_us, "seek\n{}", tracer.dump_tail(100));
        prop_assert_eq!(attr.rotation_us, delta.rotation_us, "rotation\n{}", tracer.dump_tail(100));
        prop_assert_eq!(attr.transfer_us, delta.transfer_us, "transfer\n{}", tracer.dump_tail(100));
        prop_assert_eq!(attr.switch_us, delta.switch_us, "switch\n{}", tracer.dump_tail(100));
        prop_assert_eq!(attr.overhead_us, delta.overhead_us, "overhead\n{}", tracer.dump_tail(100));
        prop_assert_eq!(attr.busy_us(), delta.busy_us());

        // The exported stream passes its own verifier, including the
        // attribution-sum and disk-busy cross-checks.
        let jsonl = tracer.to_jsonl(Some(delta.busy_us()));
        prop_assert!(
            logical_disk_repro::ld_trace::verify_jsonl(&jsonl).is_ok(),
            "exported trace fails verification"
        );
    }

    /// `DiskStats::busy_us` decomposes exactly into its five components
    /// at every point of an arbitrary workload (no hidden time sink), and
    /// both stats structs are monotone: a later snapshot minus an earlier
    /// one is always well-defined.
    #[test]
    fn stats_are_monotone_and_busy_decomposes(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut fs = build_fs();
        let mut prev_disk = *fs.store().disk().stats();
        let mut prev_lld = *fs.store().lld().stats();

        for op in &ops {
            apply(&mut fs, op);
            let disk = *fs.store().disk().stats();
            let lld = *fs.store().lld().stats();

            // Monotone: every counter moved forward (or stood still).
            prop_assert!(
                disk.delta_since(&prev_disk).is_some(),
                "disk counters regressed across {op:?}"
            );
            prop_assert!(
                lld.delta_since(&prev_lld).is_some(),
                "lld counters regressed across {op:?}"
            );

            // Exact decomposition of busy time.
            prop_assert_eq!(
                disk.busy_us(),
                disk.seek_us + disk.rotation_us + disk.transfer_us
                    + disk.switch_us + disk.overhead_us
            );

            prev_disk = disk;
            prev_lld = lld;
        }
    }

    /// Tracing is observation only: running the same op sequence with and
    /// without a tracer attached produces identical simulated clocks and
    /// identical disk stats (the zero-cost-when-disabled contract's other
    /// half — zero *interference* when enabled).
    #[test]
    fn tracing_never_changes_timing(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut plain = build_fs();
        for op in &ops {
            apply(&mut plain, op);
        }

        let mut traced = build_fs();
        let tracer = Tracer::new(64); // deliberately tiny: eviction must not matter
        traced.store_mut().lld_mut().disk_mut().set_tracer(tracer.clone());
        traced.store_mut().lld_mut().set_tracer(tracer.clone());
        traced.set_tracer(tracer.clone());
        for op in &ops {
            apply(&mut traced, op);
        }

        prop_assert_eq!(plain.now_us(), traced.now_us());
        prop_assert_eq!(*plain.store().disk().stats(), *traced.store().disk().stats());
        prop_assert_eq!(*plain.store().lld().stats(), *traced.store().lld().stats());
    }
}

/// DiskStats deltas across a stats reset come back as `None`, not a
/// panic — the regression that used to take down whole bench runs.
#[test]
fn delta_across_reset_is_none() {
    let mut fs = build_fs();
    let ino = fs.create("/x").expect("create");
    fs.write(ino, 0, &[7u8; 8192]).expect("write");
    fs.sync().expect("sync");
    let stale = *fs.store().disk().stats();
    assert!(stale.busy_us() > 0);
    fs.store_mut().disk_mut().reset_stats();
    let fresh = *fs.store().disk().stats();
    assert_eq!(fresh.delta_since(&stale), None, "underflow must be None");
}
