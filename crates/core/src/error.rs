//! Error type shared by all Logical Disk implementations.

use crate::types::{Bid, Lid, ReservationId};

/// Errors returned by [`crate::LogicalDisk`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LdError {
    /// The disk has no room for the requested allocation (and no
    /// reservation covers it).
    NoSpace,
    /// The block number is not currently allocated.
    UnknownBlock(Bid),
    /// The list identifier is not currently allocated.
    UnknownList(Lid),
    /// The block named as a predecessor is not on the given list.
    NotOnList {
        /// Block that was expected on the list.
        bid: Bid,
        /// The list that was searched.
        lid: Lid,
    },
    /// Data larger than the block's declared size class was written.
    BlockTooLarge {
        /// Bytes the caller tried to write.
        got: usize,
        /// The block's declared capacity.
        max: usize,
    },
    /// The destination buffer is too small for the block's contents.
    BufferTooSmall {
        /// Bytes the block holds.
        need: usize,
        /// Bytes the caller provided.
        got: usize,
    },
    /// `BeginARU` while an atomic recovery unit is already open (the
    /// prototype interface does not support concurrent ARUs, paper §2.2).
    AruAlreadyOpen,
    /// `EndARU` without a matching `BeginARU`.
    NoAruOpen,
    /// The reservation handle is unknown or already consumed/cancelled.
    UnknownReservation(ReservationId),
    /// A requested block size class is not supported by the implementation.
    UnsupportedBlockSize(usize),
    /// An offset-addressing index is beyond the end of the list (§5.4).
    IndexOutOfRange {
        /// The list that was indexed.
        lid: Lid,
        /// The requested position.
        index: u64,
    },
    /// The underlying device failed (crashed, out of range, ...).
    Device(String),
    /// The Logical Disk has been shut down; no further operations accepted.
    ShutDown,
}

impl std::fmt::Display for LdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LdError::NoSpace => write!(f, "no disk space available"),
            LdError::UnknownBlock(bid) => write!(f, "unknown logical block {bid}"),
            LdError::UnknownList(lid) => write!(f, "unknown block list {lid}"),
            LdError::NotOnList { bid, lid } => write!(f, "block {bid} is not on list {lid}"),
            LdError::BlockTooLarge { got, max } => {
                write!(f, "{got} bytes exceed the block's {max}-byte size class")
            }
            LdError::BufferTooSmall { need, got } => {
                write!(f, "buffer of {got} bytes too small for {need}-byte block")
            }
            LdError::AruAlreadyOpen => write!(f, "an atomic recovery unit is already open"),
            LdError::NoAruOpen => write!(f, "no atomic recovery unit is open"),
            LdError::UnknownReservation(id) => write!(f, "unknown reservation {}", id.0),
            LdError::UnsupportedBlockSize(s) => write!(f, "unsupported block size {s}"),
            LdError::IndexOutOfRange { lid, index } => {
                write!(f, "index {index} beyond the end of list {lid}")
            }
            LdError::Device(msg) => write!(f, "device error: {msg}"),
            LdError::ShutDown => write!(f, "logical disk is shut down"),
        }
    }
}

impl std::error::Error for LdError {}

/// Result alias for LD operations.
pub type Result<T> = std::result::Result<T, LdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_identifier() {
        let e = LdError::UnknownBlock(Bid(42));
        assert!(e.to_string().contains("b42"));
        let e = LdError::NotOnList {
            bid: Bid(1),
            lid: Lid(2),
        };
        assert!(e.to_string().contains("b1") && e.to_string().contains("l2"));
    }
}
