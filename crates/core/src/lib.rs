//! The Logical Disk (LD) interface — de Jonge, Kaashoek & Hsieh, SOSP 1993.
//!
//! LD defines a new interface to disk storage that separates **file
//! management** (the file system's job: naming, directories, consistency of
//! its own structures) from **disk management** (LD's job: physical block
//! placement, clustering, recovery). The interface rests on four
//! abstractions (paper §2.1):
//!
//! 1. **Logical block numbers** ([`Bid`]) — location-independent names. LD
//!    keeps the block-number map from `Bid` to physical address and may move
//!    blocks at will; file systems never see physical addresses, so
//!    cascading metadata updates do not occur.
//! 2. **Block lists** ([`Lid`]) — ordered lists expressing logical
//!    relationships among blocks, plus a single ordered *list of lists*. LD
//!    clusters a list's blocks physically, and neighbouring lists near each
//!    other.
//! 3. **Atomic recovery units** — bracketed command sequences
//!    ([`LogicalDisk::begin_aru`] / [`LogicalDisk::end_aru`]) that recover
//!    all-or-nothing after a crash.
//! 4. **Multiple block sizes** — different size classes (e.g. 4 KB data
//!    blocks and 64-byte i-nodes) may coexist.
//!
//! The [`LogicalDisk`] trait transcribes the prototype interface of the
//! paper's Table 1 plus the auxiliary primitives described in §2.2
//! (space reservations, sublist/list moves, per-list flush, shutdown).
//!
//! Two implementations live in this workspace: the log-structured `lld`
//! crate (the paper's LLD, §3) and [`model::ModelLd`], a deliberately
//! simple in-memory implementation used as a differential-testing oracle.

mod error;
pub mod model;
mod types;
pub mod wire;

pub use error::{LdError, Result};
pub use types::{Bid, FailureSet, Lid, ListHints, Pred, PredList, ReservationId};

/// The Logical Disk interface (paper Table 1 + §2.2 auxiliary primitives).
///
/// Implementations decide *where* blocks live; callers decide *what* blocks
/// mean. All operations take `&mut self`: the prototype interface is
/// single-threaded and does not support concurrent ARUs (paper §2.2; §5.4
/// discusses lifting this).
pub trait LogicalDisk {
    /// The default block size class in bytes (e.g. 4096).
    fn default_block_size(&self) -> usize;

    /// Total payload capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Bytes still available for new blocks (net of reservations).
    fn free_bytes(&self) -> u64;

    /// Reads logical block `bid` into `buf`; returns the number of bytes the
    /// block holds. (`Read(Bid, Buf, Cnt)` in Table 1.)
    fn read(&mut self, bid: Bid, buf: &mut [u8]) -> Result<usize>;

    /// Writes `data` as the new contents of logical block `bid`.
    /// (`Write(Bid, Buf, Cnt)` in Table 1.)
    ///
    /// `data` may be shorter than the block's size class but not longer.
    fn write(&mut self, bid: Bid, data: &[u8]) -> Result<()>;

    /// Allocates a new logical block on list `lid` after `pred`, in the
    /// default size class; returns its block number.
    /// (`NewBlock(Lid, PredBid)` in Table 1.)
    fn new_block(&mut self, lid: Lid, pred: Pred) -> Result<Bid> {
        let size = self.default_block_size();
        self.new_block_with_size(lid, pred, size)
    }

    /// Allocates a new logical block with an explicit size class — the
    /// "multiple block sizes" abstraction (e.g. 64-byte i-node blocks,
    /// paper §4.1).
    fn new_block_with_size(&mut self, lid: Lid, pred: Pred, size: usize) -> Result<Bid>;

    /// Removes block `bid` from list `lid` and frees its number.
    /// (`DeleteBlock(Bid, Lid, PredBidHint)` in Table 1.)
    ///
    /// `pred_hint` is an optimization only: if it names the true predecessor
    /// the removal is O(1); otherwise the list is searched from the front.
    fn delete_block(&mut self, bid: Bid, lid: Lid, pred_hint: Option<Bid>) -> Result<()>;

    /// Allocates a new, empty block list, inserted in the list of lists
    /// after `pred`. (`NewList(PredLid, Hints)` in Table 1.)
    fn new_list(&mut self, pred: PredList, hints: ListHints) -> Result<Lid>;

    /// Deletes list `lid` **and all blocks on it**.
    /// (`DeleteList(Lid, PredLidHint)` in Table 1.)
    fn delete_list(&mut self, lid: Lid, pred_hint: Option<Lid>) -> Result<()>;

    /// Opens an explicit atomic recovery unit: all commands up to the next
    /// [`end_aru`](Self::end_aru) recover all-or-nothing. (`BeginARU()`.)
    fn begin_aru(&mut self) -> Result<()>;

    /// Closes the open atomic recovery unit. (`EndARU()`.)
    fn end_aru(&mut self) -> Result<()>;

    /// After a successful return, the results of all previous commands
    /// survive the given failures. (`Flush(FailureSet)` in Table 1.)
    fn flush(&mut self, failures: FailureSet) -> Result<()>;

    /// Makes all previous commands affecting list `lid` durable — "the last
    /// primitive allows an easy implementation of fsync" (paper §2.2).
    fn flush_list(&mut self, lid: Lid) -> Result<()>;

    /// Reserves `bytes` of physical space so that later allocations cannot
    /// fail with [`LdError::NoSpace`] (paper §2.2: UNIX file systems cannot
    /// handle late write failures).
    fn reserve(&mut self, bytes: u64) -> Result<ReservationId>;

    /// Cancels the unused remainder of a reservation.
    fn cancel_reservation(&mut self, id: ReservationId) -> Result<()>;

    /// Converts `bytes` of the reservation into real allocation headroom
    /// (called as reserved blocks are actually allocated).
    fn draw_reservation(&mut self, id: ReservationId, bytes: u64) -> Result<()>;

    /// Moves the contiguous sublist `first..=last` of `src` so that it
    /// follows `dst_pred` on `dst` — one of the §2.2 primitives that "allow
    /// the file system to easily express changes in requested clustering".
    fn move_sublist(
        &mut self,
        src: Lid,
        first: Bid,
        last: Bid,
        dst: Lid,
        dst_pred: Pred,
    ) -> Result<()>;

    /// Moves a whole list to a new position in the list of lists.
    fn move_list(&mut self, lid: Lid, pred: PredList) -> Result<()>;

    /// Swaps the physical contents of two logical blocks — the
    /// `SwapContents` primitive of §5.4, "useful for implementing
    /// transactions and multiversion data storage: new versions of blocks
    /// can be installed atomically without losing the old versions".
    ///
    /// Both blocks keep their numbers, list positions, and size classes;
    /// only the stored bytes trade places, so each block's current content
    /// must fit the other's size class.
    fn swap_contents(&mut self, a: Bid, b: Bid) -> Result<()>;

    /// Returns the block at position `index` of list `lid` — the *offset
    /// addressing* extension of §5.4 ("lists could be indexed as arrays"),
    /// which lets a file system address a file's blocks by offset with no
    /// indirect blocks, and lets a B-tree node address all its children
    /// through one list identifier.
    fn block_at(&mut self, lid: Lid, index: u64) -> Result<Bid>;

    /// Returns the blocks of `lid` in list order (diagnostic/introspection;
    /// also what a disk reorganizer uses to cluster).
    fn list_blocks(&mut self, lid: Lid) -> Result<Vec<Bid>>;

    /// Returns the number of bytes currently stored in `bid`.
    fn block_len(&mut self, bid: Bid) -> Result<usize>;

    /// Shuts the Logical Disk down cleanly (paper §3.6: writes a valid
    /// checkpoint so the next start avoids the recovery sweep). Subsequent
    /// operations fail with [`LdError::ShutDown`].
    fn shutdown(&mut self) -> Result<()>;
}

/// Runs `f` inside an atomic recovery unit.
///
/// On success the ARU is closed with [`LogicalDisk::end_aru`]. If `f` fails,
/// the ARU is still closed (an ARU whose commands never reach the disk is
/// simply absent after recovery). The first error encountered is returned.
pub fn with_aru<L, T, F>(ld: &mut L, f: F) -> Result<T>
where
    L: LogicalDisk + ?Sized,
    F: FnOnce(&mut L) -> Result<T>,
{
    ld.begin_aru()?;
    let out = f(ld);
    let end = ld.end_aru();
    match (out, end) {
        (Ok(v), Ok(())) => Ok(v),
        (Err(e), _) => Err(e),
        (_, Err(e)) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::model::ModelLd;
    use super::*;

    #[test]
    fn with_aru_brackets_operations() {
        let mut ld = ModelLd::new(1 << 20, 4096);
        let lid = ld.new_list(PredList::Start, ListHints::default()).unwrap();
        let bid = with_aru(&mut ld, |ld| {
            let bid = ld.new_block(lid, Pred::Start)?;
            ld.write(bid, b"hello")?;
            Ok(bid)
        })
        .unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(ld.read(bid, &mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
    }

    #[test]
    fn with_aru_propagates_inner_error_and_closes() {
        let mut ld = ModelLd::new(1 << 20, 4096);
        let err = with_aru(&mut ld, |ld| ld.read(Bid(999), &mut [0u8; 8]).map(|_| ()));
        assert_eq!(err, Err(LdError::UnknownBlock(Bid(999))));
        // The ARU was closed despite the failure.
        assert_eq!(ld.begin_aru(), Ok(()));
        assert_eq!(ld.end_aru(), Ok(()));
    }
}
