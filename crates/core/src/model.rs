//! A deliberately simple in-memory [`LogicalDisk`] used as a
//! differential-testing oracle.
//!
//! `ModelLd` implements the full interface with the most obvious possible
//! data structures (hash maps and vectors) and no durability machinery.
//! Property tests run random operation sequences against both `ModelLd` and
//! the real log-structured implementation and require identical observable
//! behaviour; anything the two disagree on is a bug in one of them.

use std::collections::HashMap;

use crate::{
    Bid, FailureSet, LdError, Lid, ListHints, LogicalDisk, Pred, PredList, ReservationId, Result,
};

#[derive(Debug, Clone)]
struct ModelBlock {
    data: Vec<u8>,
    size_class: usize,
    list: Lid,
}

#[derive(Debug, Clone)]
struct ModelList {
    blocks: Vec<Bid>,
    #[allow(dead_code)] // Hints carry no observable behaviour in the model.
    hints: ListHints,
}

/// The in-memory reference implementation.
#[derive(Debug, Clone)]
pub struct ModelLd {
    blocks: HashMap<Bid, ModelBlock>,
    lists: HashMap<Lid, ModelList>,
    /// The list of lists, in order.
    list_order: Vec<Lid>,
    reservations: HashMap<ReservationId, u64>,
    /// Freed ids, reused LIFO — matching LLD's allocator so differential
    /// tests can compare returned ids directly.
    free_bids: Vec<u64>,
    free_lids: Vec<u64>,
    capacity: u64,
    allocated: u64,
    reserved: u64,
    default_block_size: usize,
    next_bid: u64,
    next_lid: u64,
    next_reservation: u64,
    aru_open: bool,
    shut_down: bool,
}

impl ModelLd {
    /// Creates a model disk with `capacity` bytes of payload space and the
    /// given default block size.
    ///
    /// # Panics
    ///
    /// Panics if `default_block_size` is zero.
    pub fn new(capacity: u64, default_block_size: usize) -> Self {
        assert!(default_block_size > 0, "block size must be non-zero");
        Self {
            blocks: HashMap::new(),
            lists: HashMap::new(),
            list_order: Vec::new(),
            reservations: HashMap::new(),
            free_bids: Vec::new(),
            free_lids: Vec::new(),
            capacity,
            allocated: 0,
            reserved: 0,
            default_block_size,
            next_bid: 0,
            next_lid: 0,
            next_reservation: 1,
            aru_open: false,
            shut_down: false,
        }
    }

    /// The lists currently allocated, in list-of-lists order.
    pub fn list_of_lists(&self) -> &[Lid] {
        &self.list_order
    }

    /// Number of allocated blocks (diagnostic).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    fn check_up(&self) -> Result<()> {
        if self.shut_down {
            Err(LdError::ShutDown)
        } else {
            Ok(())
        }
    }

    fn list_mut(&mut self, lid: Lid) -> Result<&mut ModelList> {
        self.lists.get_mut(&lid).ok_or(LdError::UnknownList(lid))
    }

    fn insert_into_list(list: &mut Vec<Bid>, bid: Bid, pred: Pred, lid: Lid) -> Result<()> {
        match pred {
            Pred::Start => {
                list.insert(0, bid);
                Ok(())
            }
            Pred::After(p) => {
                let pos = list
                    .iter()
                    .position(|&b| b == p)
                    .ok_or(LdError::NotOnList { bid: p, lid })?;
                list.insert(pos + 1, bid);
                Ok(())
            }
        }
    }
}

impl LogicalDisk for ModelLd {
    fn default_block_size(&self) -> usize {
        self.default_block_size
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn free_bytes(&self) -> u64 {
        self.capacity - self.allocated - self.reserved
    }

    fn read(&mut self, bid: Bid, buf: &mut [u8]) -> Result<usize> {
        self.check_up()?;
        let block = self.blocks.get(&bid).ok_or(LdError::UnknownBlock(bid))?;
        if buf.len() < block.data.len() {
            return Err(LdError::BufferTooSmall {
                need: block.data.len(),
                got: buf.len(),
            });
        }
        buf[..block.data.len()].copy_from_slice(&block.data);
        Ok(block.data.len())
    }

    fn write(&mut self, bid: Bid, data: &[u8]) -> Result<()> {
        self.check_up()?;
        let block = self
            .blocks
            .get_mut(&bid)
            .ok_or(LdError::UnknownBlock(bid))?;
        if data.len() > block.size_class {
            return Err(LdError::BlockTooLarge {
                got: data.len(),
                max: block.size_class,
            });
        }
        block.data = data.to_vec();
        Ok(())
    }

    fn new_block_with_size(&mut self, lid: Lid, pred: Pred, size: usize) -> Result<Bid> {
        self.check_up()?;
        if size == 0 {
            return Err(LdError::UnsupportedBlockSize(size));
        }
        if !self.lists.contains_key(&lid) {
            return Err(LdError::UnknownList(lid));
        }
        if self.free_bytes() < size as u64 {
            return Err(LdError::NoSpace);
        }
        let bid = match self.free_bids.last() {
            Some(&b) => Bid(b),
            None => Bid(self.next_bid),
        };
        // Validate the predecessor before committing the allocation.
        {
            let list = self.list_mut(lid)?;
            Self::insert_into_list(&mut list.blocks, bid, pred, lid)?;
        }
        if self.free_bids.pop().is_none() {
            self.next_bid += 1;
        }
        self.allocated += size as u64;
        self.blocks.insert(
            bid,
            ModelBlock {
                data: Vec::new(),
                size_class: size,
                list: lid,
            },
        );
        Ok(bid)
    }

    fn delete_block(&mut self, bid: Bid, lid: Lid, _pred_hint: Option<Bid>) -> Result<()> {
        self.check_up()?;
        let block = self.blocks.get(&bid).ok_or(LdError::UnknownBlock(bid))?;
        if block.list != lid {
            return Err(LdError::NotOnList { bid, lid });
        }
        let size = block.size_class;
        let list = self.list_mut(lid)?;
        let pos = list
            .blocks
            .iter()
            .position(|&b| b == bid)
            .ok_or(LdError::NotOnList { bid, lid })?;
        list.blocks.remove(pos);
        self.blocks.remove(&bid);
        self.free_bids.push(bid.0);
        self.allocated -= size as u64;
        Ok(())
    }

    fn new_list(&mut self, pred: PredList, hints: ListHints) -> Result<Lid> {
        self.check_up()?;
        let pos = match pred {
            PredList::Start => 0,
            PredList::After(p) => {
                self.list_order
                    .iter()
                    .position(|&l| l == p)
                    .ok_or(LdError::UnknownList(p))?
                    + 1
            }
        };
        let lid = match self.free_lids.pop() {
            Some(l) => Lid(l),
            None => {
                self.next_lid += 1;
                Lid(self.next_lid - 1)
            }
        };
        self.list_order.insert(pos, lid);
        self.lists.insert(
            lid,
            ModelList {
                blocks: Vec::new(),
                hints,
            },
        );
        Ok(lid)
    }

    fn delete_list(&mut self, lid: Lid, _pred_hint: Option<Lid>) -> Result<()> {
        self.check_up()?;
        let list = self.lists.remove(&lid).ok_or(LdError::UnknownList(lid))?;
        for bid in &list.blocks {
            if let Some(b) = self.blocks.remove(bid) {
                self.allocated -= b.size_class as u64;
                self.free_bids.push(bid.0);
            }
        }
        self.list_order.retain(|&l| l != lid);
        self.free_lids.push(lid.0);
        Ok(())
    }

    fn begin_aru(&mut self) -> Result<()> {
        self.check_up()?;
        if self.aru_open {
            return Err(LdError::AruAlreadyOpen);
        }
        self.aru_open = true;
        Ok(())
    }

    fn end_aru(&mut self) -> Result<()> {
        self.check_up()?;
        if !self.aru_open {
            return Err(LdError::NoAruOpen);
        }
        self.aru_open = false;
        Ok(())
    }

    fn flush(&mut self, _failures: FailureSet) -> Result<()> {
        self.check_up()
    }

    fn flush_list(&mut self, lid: Lid) -> Result<()> {
        self.check_up()?;
        if !self.lists.contains_key(&lid) {
            return Err(LdError::UnknownList(lid));
        }
        Ok(())
    }

    fn reserve(&mut self, bytes: u64) -> Result<ReservationId> {
        self.check_up()?;
        if self.free_bytes() < bytes {
            return Err(LdError::NoSpace);
        }
        let id = ReservationId(self.next_reservation);
        self.next_reservation += 1;
        self.reserved += bytes;
        self.reservations.insert(id, bytes);
        Ok(id)
    }

    fn cancel_reservation(&mut self, id: ReservationId) -> Result<()> {
        self.check_up()?;
        let bytes = self
            .reservations
            .remove(&id)
            .ok_or(LdError::UnknownReservation(id))?;
        self.reserved -= bytes;
        Ok(())
    }

    fn draw_reservation(&mut self, id: ReservationId, bytes: u64) -> Result<()> {
        self.check_up()?;
        let left = self
            .reservations
            .get_mut(&id)
            .ok_or(LdError::UnknownReservation(id))?;
        let take = bytes.min(*left);
        *left -= take;
        self.reserved -= take;
        if *left == 0 {
            self.reservations.remove(&id);
        }
        Ok(())
    }

    fn move_sublist(
        &mut self,
        src: Lid,
        first: Bid,
        last: Bid,
        dst: Lid,
        dst_pred: Pred,
    ) -> Result<()> {
        self.check_up()?;
        if !self.lists.contains_key(&dst) {
            return Err(LdError::UnknownList(dst));
        }
        let src_list = self.list_mut(src)?;
        let a = src_list
            .blocks
            .iter()
            .position(|&b| b == first)
            .ok_or(LdError::NotOnList {
                bid: first,
                lid: src,
            })?;
        let b = src_list
            .blocks
            .iter()
            .position(|&b| b == last)
            .ok_or(LdError::NotOnList {
                bid: last,
                lid: src,
            })?;
        if a > b {
            return Err(LdError::NotOnList {
                bid: last,
                lid: src,
            });
        }
        let moved: Vec<Bid> = src_list.blocks.drain(a..=b).collect();
        // Re-validate the destination predecessor *after* the drain so a
        // move within one list behaves correctly.
        let dst_list = self.list_mut(dst)?;
        let insert_at = match dst_pred {
            Pred::Start => 0,
            Pred::After(p) => {
                dst_list
                    .blocks
                    .iter()
                    .position(|&x| x == p)
                    .ok_or(LdError::NotOnList { bid: p, lid: dst })?
                    + 1
            }
        };
        for (i, bid) in moved.iter().enumerate() {
            dst_list.blocks.insert(insert_at + i, *bid);
        }
        for bid in moved {
            if let Some(block) = self.blocks.get_mut(&bid) {
                block.list = dst;
            }
        }
        Ok(())
    }

    fn move_list(&mut self, lid: Lid, pred: PredList) -> Result<()> {
        self.check_up()?;
        if !self.lists.contains_key(&lid) {
            return Err(LdError::UnknownList(lid));
        }
        self.list_order.retain(|&l| l != lid);
        let pos = match pred {
            PredList::Start => 0,
            PredList::After(p) => {
                self.list_order
                    .iter()
                    .position(|&l| l == p)
                    .ok_or(LdError::UnknownList(p))?
                    + 1
            }
        };
        self.list_order.insert(pos, lid);
        Ok(())
    }

    fn swap_contents(&mut self, a: Bid, b: Bid) -> Result<()> {
        self.check_up()?;
        let ea = self.blocks.get(&a).ok_or(LdError::UnknownBlock(a))?;
        let eb = self.blocks.get(&b).ok_or(LdError::UnknownBlock(b))?;
        if ea.data.len() > eb.size_class {
            return Err(LdError::BlockTooLarge {
                got: ea.data.len(),
                max: eb.size_class,
            });
        }
        if eb.data.len() > ea.size_class {
            return Err(LdError::BlockTooLarge {
                got: eb.data.len(),
                max: ea.size_class,
            });
        }
        if a == b {
            return Ok(());
        }
        let da = self.blocks.get(&a).expect("checked").data.clone(); // PANIC-OK: presence checked on the lines above
        let db = self.blocks.get(&b).expect("checked").data.clone(); // PANIC-OK: presence checked on the lines above
        self.blocks.get_mut(&a).expect("checked").data = db; // PANIC-OK: presence checked on the lines above
        self.blocks.get_mut(&b).expect("checked").data = da; // PANIC-OK: presence checked on the lines above
        Ok(())
    }

    fn block_at(&mut self, lid: Lid, index: u64) -> Result<Bid> {
        self.check_up()?;
        let list = self.lists.get(&lid).ok_or(LdError::UnknownList(lid))?;
        list.blocks
            .get(index as usize)
            .copied()
            .ok_or(LdError::IndexOutOfRange { lid, index })
    }

    fn list_blocks(&mut self, lid: Lid) -> Result<Vec<Bid>> {
        self.check_up()?;
        Ok(self
            .lists
            .get(&lid)
            .ok_or(LdError::UnknownList(lid))?
            .blocks
            .clone())
    }

    fn block_len(&mut self, bid: Bid) -> Result<usize> {
        self.check_up()?;
        Ok(self
            .blocks
            .get(&bid)
            .ok_or(LdError::UnknownBlock(bid))?
            .data
            .len())
    }

    fn shutdown(&mut self) -> Result<()> {
        self.check_up()?;
        self.shut_down = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ld() -> ModelLd {
        ModelLd::new(1 << 20, 4096)
    }

    #[test]
    fn blocks_keep_list_order() {
        let mut ld = ld();
        let lid = ld.new_list(PredList::Start, ListHints::default()).unwrap();
        let a = ld.new_block(lid, Pred::Start).unwrap();
        let c = ld.new_block(lid, Pred::After(a)).unwrap();
        let b = ld.new_block(lid, Pred::After(a)).unwrap();
        assert_eq!(ld.list_blocks(lid).unwrap(), vec![a, b, c]);
    }

    #[test]
    fn delete_block_removes_from_list_and_frees_space() {
        let mut ld = ld();
        let lid = ld.new_list(PredList::Start, ListHints::default()).unwrap();
        let free0 = ld.free_bytes();
        let a = ld.new_block(lid, Pred::Start).unwrap();
        assert_eq!(ld.free_bytes(), free0 - 4096);
        ld.delete_block(a, lid, None).unwrap();
        assert_eq!(ld.free_bytes(), free0);
        assert_eq!(ld.read(a, &mut [0u8; 8]), Err(LdError::UnknownBlock(a)));
        assert!(ld.list_blocks(lid).unwrap().is_empty());
    }

    #[test]
    fn delete_list_frees_all_blocks() {
        let mut ld = ld();
        let lid = ld.new_list(PredList::Start, ListHints::default()).unwrap();
        let a = ld.new_block(lid, Pred::Start).unwrap();
        let free_before = ld.free_bytes();
        ld.delete_list(lid, None).unwrap();
        assert_eq!(ld.free_bytes(), free_before + 4096);
        assert_eq!(ld.read(a, &mut [0u8; 8]), Err(LdError::UnknownBlock(a)));
        assert_eq!(ld.list_blocks(lid), Err(LdError::UnknownList(lid)));
    }

    #[test]
    fn list_of_lists_respects_predecessors() {
        let mut ld = ld();
        let a = ld.new_list(PredList::Start, ListHints::default()).unwrap();
        let c = ld
            .new_list(PredList::After(a), ListHints::default())
            .unwrap();
        let b = ld
            .new_list(PredList::After(a), ListHints::default())
            .unwrap();
        assert_eq!(ld.list_of_lists(), &[a, b, c]);
        ld.move_list(c, PredList::Start).unwrap();
        assert_eq!(ld.list_of_lists(), &[c, a, b]);
    }

    #[test]
    fn write_respects_size_class() {
        let mut ld = ld();
        let lid = ld.new_list(PredList::Start, ListHints::default()).unwrap();
        let small = ld.new_block_with_size(lid, Pred::Start, 64).unwrap();
        assert!(ld.write(small, &[0u8; 64]).is_ok());
        assert_eq!(
            ld.write(small, &[0u8; 65]),
            Err(LdError::BlockTooLarge { got: 65, max: 64 })
        );
    }

    #[test]
    fn no_space_is_reported_up_front() {
        let mut ld = ModelLd::new(8192, 4096);
        let lid = ld.new_list(PredList::Start, ListHints::default()).unwrap();
        let _a = ld.new_block(lid, Pred::Start).unwrap();
        let b = ld.new_block(lid, Pred::Start).unwrap();
        assert_eq!(ld.new_block(lid, Pred::Start), Err(LdError::NoSpace));
        ld.delete_block(b, lid, None).unwrap();
        assert!(ld.new_block(lid, Pred::Start).is_ok());
    }

    #[test]
    fn reservations_hold_space() {
        let mut ld = ModelLd::new(8192, 4096);
        let lid = ld.new_list(PredList::Start, ListHints::default()).unwrap();
        let r = ld.reserve(8192).unwrap();
        assert_eq!(ld.new_block(lid, Pred::Start), Err(LdError::NoSpace));
        ld.draw_reservation(r, 4096).unwrap();
        assert!(ld.new_block(lid, Pred::Start).is_ok());
        ld.cancel_reservation(r).unwrap();
        assert!(ld.new_block(lid, Pred::Start).is_ok());
        assert_eq!(
            ld.cancel_reservation(r),
            Err(LdError::UnknownReservation(r))
        );
    }

    #[test]
    fn move_sublist_between_lists() {
        let mut ld = ld();
        let src = ld.new_list(PredList::Start, ListHints::default()).unwrap();
        let dst = ld
            .new_list(PredList::After(src), ListHints::default())
            .unwrap();
        let mut bids = Vec::new();
        let mut pred = Pred::Start;
        for _ in 0..5 {
            let b = ld.new_block(src, pred).unwrap();
            bids.push(b);
            pred = Pred::After(b);
        }
        let d0 = ld.new_block(dst, Pred::Start).unwrap();
        ld.move_sublist(src, bids[1], bids[3], dst, Pred::After(d0))
            .unwrap();
        assert_eq!(ld.list_blocks(src).unwrap(), vec![bids[0], bids[4]]);
        assert_eq!(
            ld.list_blocks(dst).unwrap(),
            vec![d0, bids[1], bids[2], bids[3]]
        );
        // The moved blocks now belong to `dst`.
        ld.delete_block(bids[2], dst, Some(bids[1])).unwrap();
    }

    #[test]
    fn move_sublist_within_one_list_to_front() {
        let mut ld = ld();
        let lid = ld.new_list(PredList::Start, ListHints::default()).unwrap();
        let a = ld.new_block(lid, Pred::Start).unwrap();
        let b = ld.new_block(lid, Pred::After(a)).unwrap();
        let c = ld.new_block(lid, Pred::After(b)).unwrap();
        ld.move_sublist(lid, b, c, lid, Pred::Start).unwrap();
        assert_eq!(ld.list_blocks(lid).unwrap(), vec![b, c, a]);
    }

    #[test]
    fn aru_nesting_is_rejected() {
        let mut ld = ld();
        ld.begin_aru().unwrap();
        assert_eq!(ld.begin_aru(), Err(LdError::AruAlreadyOpen));
        ld.end_aru().unwrap();
        assert_eq!(ld.end_aru(), Err(LdError::NoAruOpen));
    }

    #[test]
    fn shutdown_blocks_everything() {
        let mut ld = ld();
        ld.shutdown().unwrap();
        assert_eq!(ld.flush(FailureSet::PowerFailure), Err(LdError::ShutDown));
        assert_eq!(
            ld.new_list(PredList::Start, ListHints::default()),
            Err(LdError::ShutDown)
        );
        assert_eq!(ld.shutdown(), Err(LdError::ShutDown));
    }

    #[test]
    fn read_shorter_block_reports_length() {
        let mut ld = ld();
        let lid = ld.new_list(PredList::Start, ListHints::default()).unwrap();
        let b = ld.new_block(lid, Pred::Start).unwrap();
        ld.write(b, b"xyz").unwrap();
        let mut buf = [0u8; 4096];
        assert_eq!(ld.read(b, &mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"xyz");
        assert_eq!(ld.block_len(b).unwrap(), 3);
        // A too-small buffer is rejected without partial copies.
        assert_eq!(
            ld.read(b, &mut [0u8; 2]),
            Err(LdError::BufferTooSmall { need: 3, got: 2 })
        );
    }
}
