//! Little-endian wire-format readers shared by every on-disk decoder.
//!
//! All the stacked formats in this workspace — LLD segment summaries and
//! checkpoints, the NVRAM staging image, and the file systems' metadata
//! blocks — are little-endian with length-checked regions. These helpers
//! read a fixed-width integer out of a byte slice at an offset.
//!
//! # Panics
//!
//! Indexing panics if the slice is shorter than `at + size_of::<T>()`;
//! callers bound-check the containing region (sector, summary body,
//! checkpoint payload) before decoding fields out of it. That is the same
//! contract `T::from_le_bytes(slice.try_into().unwrap())` had, without
//! scattering `unwrap` through the decoders.

/// Reads a little-endian `u16` at byte offset `at`.
#[inline]
pub fn le_u16(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

/// Reads a little-endian `u32` at byte offset `at`.
#[inline]
pub fn le_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

/// Reads a little-endian `u64` at byte offset `at`.
#[inline]
pub fn le_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes([
        b[at],
        b[at + 1],
        b[at + 2],
        b[at + 3],
        b[at + 4],
        b[at + 5],
        b[at + 6],
        b[at + 7],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_match_from_le_bytes_at_offsets() {
        let b: Vec<u8> = (1..=12).collect();
        assert_eq!(le_u16(&b, 3), u16::from_le_bytes([4, 5]));
        assert_eq!(le_u32(&b, 2), u32::from_le_bytes([3, 4, 5, 6]));
        assert_eq!(le_u64(&b, 1), u64::from_le_bytes([2, 3, 4, 5, 6, 7, 8, 9]));
    }
}
