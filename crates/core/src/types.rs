//! Identifier and parameter types of the LD interface.

/// A logical block number ("Bid" in the paper's Table 1).
///
/// Block numbers are location-independent names: the file system addresses
/// blocks by `Bid` and LD is free to move the physical data at any time. A
/// `Bid` stays valid from `NewBlock` until `DeleteBlock` (or until its list
/// is deleted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bid(pub u64);

impl std::fmt::Display for Bid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A block-list identifier ("Lid" in the paper's Table 1).
///
/// Lists express logical relationships between blocks; LD uses them for
/// physical clustering (intrafile and interfile) and, optionally, for
/// per-list compression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lid(pub u64);

impl std::fmt::Display for Lid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Insertion position within a block list.
///
/// The paper encodes "insert at the beginning" as a special `PredBid` value;
/// an enum expresses the same thing without a sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pred {
    /// Insert as the first block of the list.
    Start,
    /// Insert immediately after this block, which must be on the list.
    After(Bid),
}

/// Insertion position within the list of lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredList {
    /// Insert at the front of the list of lists.
    Start,
    /// Insert immediately after this list.
    After(Lid),
}

/// Per-list placement and representation hints passed to `NewList`
/// (paper §2.2: "whether the blocks in this list should be compressed and/or
/// clustered, and whether the list itself should be clustered near its
/// predecessor").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListHints {
    /// Physically cluster the blocks of this list in list order.
    pub cluster: bool,
    /// Transparently compress the blocks of this list.
    pub compress: bool,
    /// Place this list near its predecessor in the list of lists.
    pub interlist_cluster: bool,
}

impl Default for ListHints {
    fn default() -> Self {
        Self {
            cluster: true,
            compress: false,
            interlist_cluster: true,
        }
    }
}

impl ListHints {
    /// Hints requesting clustering but no compression (the common case).
    pub fn clustered() -> Self {
        Self::default()
    }

    /// Hints requesting transparent compression as well as clustering.
    pub fn compressed() -> Self {
        Self {
            compress: true,
            ..Self::default()
        }
    }
}

/// The failure classes a `Flush` must survive (paper Table 1:
/// `Flush(FailureSet)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailureSet {
    /// Power loss / system crash: volatile state is lost, the medium
    /// survives. This is the failure class every implementation must handle.
    #[default]
    PowerFailure,
}

/// Handle for a physical-space reservation (paper §2.2: primitives "for
/// reserving physical disk space for logical blocks and for cancelling such
/// reservations", addressing file systems that cannot handle late `write`
/// failures due to lack of space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReservationId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(Bid(7).to_string(), "b7");
        assert_eq!(Lid(3).to_string(), "l3");
    }

    #[test]
    fn default_hints_cluster_but_do_not_compress() {
        let h = ListHints::default();
        assert!(h.cluster && h.interlist_cluster && !h.compress);
        assert!(ListHints::compressed().compress);
    }
}
