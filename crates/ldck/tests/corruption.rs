//! Corruption-injection tests: `ldck` must stay silent on clean images and
//! flag each seeded corruption class with the right finding kind.
//!
//! Each test builds a cleanly shut down image (so a checkpoint exists),
//! seeds one specific corruption at the raw-byte level, and asserts that
//! the checker reports the corresponding error — the same classes a broken
//! cable, a firmware bug, or a misdirected write would produce.

use ld_core::{FailureSet, ListHints, LogicalDisk, Pred, PredList};
use ldck::{check_image, Kind, Severity};
use lld::checkpoint::{peek_image, CheckpointPeek, CheckpointView, SegStateView};
use lld::records::{fnv1a64, Record, Stamped, SummaryBuilder};
use lld::{Layout, Lld, LldConfig};
use simdisk::{MemDisk, SECTOR_SIZE};

fn config() -> LldConfig {
    LldConfig::small_for_tests()
}

/// Formats a small disk, runs a mixed workload, shuts down cleanly, and
/// returns the raw image plus its layout and parsed checkpoint.
fn clean_image() -> (Vec<u8>, Layout, CheckpointView) {
    let config = config();
    let mut ld = Lld::format(MemDisk::with_capacity(2 << 20), config.clone()).expect("format");
    let lid = ld
        .new_list(PredList::Start, ListHints::default())
        .expect("new_list");
    let mut prev = None;
    for i in 0..24u8 {
        let pred = prev.map_or(Pred::Start, Pred::After);
        let bid = ld.new_block(lid, pred).expect("new_block");
        ld.write(bid, &vec![i; 4096]).expect("write");
        prev = Some(bid);
    }
    // Delete a few so the summaries carry non-trivial history.
    let blocks = ld.list_blocks(lid).expect("list_blocks");
    for b in blocks.iter().take(3) {
        ld.delete_block(*b, lid, None).expect("delete_block");
    }
    ld.flush(FailureSet::PowerFailure).expect("flush");
    ld.shutdown().expect("shutdown");
    let image = ld.into_disk().image_bytes();

    let layout = Layout::compute(
        (image.len() / SECTOR_SIZE) as u64,
        config.segment_bytes,
        config.summary_bytes,
    );
    let CheckpointPeek::Valid(view) = peek_image(&image, &layout) else {
        panic!("clean shutdown must leave a valid checkpoint");
    };
    (image, layout, view)
}

fn kinds(report: &ldck::Report) -> Vec<Kind> {
    report.findings.iter().map(|f| f.kind).collect()
}

#[test]
fn clean_image_passes_silently() {
    let (image, _, _) = clean_image();
    let report = check_image(&image, &config());
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
    // Not merely error-free: a pristine checkpointed image has no findings
    // of any severity.
    assert!(report.findings.is_empty(), "noisy: {:?}", report.findings);
    assert!(report.stats.checkpoint);
    assert!(report.stats.blocks > 0 && report.stats.lists > 0);
}

#[test]
fn checkpointless_clean_image_passes_the_sweep() {
    let (mut image, _, _) = clean_image();
    // Clear the checkpoint marker — the state a crashed-after-restart
    // instance leaves behind. The sweep replay must agree.
    image[6] = 0;
    let report = check_image(&image, &config());
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
    assert!(!report.stats.checkpoint);
    assert!(kinds(&report).contains(&Kind::CheckpointAbsent));
}

/// Class 1: bit flips inside a live segment's summary. The segment's
/// records vanish (checksummed summaries fail closed), so the checkpoint's
/// usage table and block map now reference a dead segment.
#[test]
fn summary_bit_flip_is_flagged() {
    let (image, layout, view) = clean_image();
    let live_seg = view
        .usage
        .iter()
        .position(|u| u.state == SegStateView::Live && u.live_bytes > 0)
        .expect("a live segment") as u32;
    let base = layout.summary_base(live_seg) as usize * SECTOR_SIZE;
    for probe in [0usize, 9, 33] {
        let mut bad = image.clone();
        bad[base + probe] ^= 0x40;
        let report = check_image(&bad, &config());
        assert!(!report.is_clean(), "flip at +{probe} went unnoticed");
        let ks = kinds(&report);
        assert!(
            ks.contains(&Kind::LiveSegmentWithoutSummary)
                || ks.contains(&Kind::MappedBlockInDeadSegment),
            "flip at +{probe}: wrong findings {:?}",
            report.findings
        );
    }
}

/// Class 2: a torn or truncated checkpoint payload under a marker that
/// still claims validity — impossible by crash (the marker sector is
/// written last), so it must be reported as corruption.
#[test]
fn truncated_checkpoint_payload_is_flagged() {
    let (image, layout, view) = clean_image();
    let payload_seg = *view.payload_segments.first().expect("payload segment");
    let base = layout.segment_base(payload_seg) as usize * SECTOR_SIZE;

    // Zero the tail of the payload's first segment: a truncation.
    let mut bad = image.clone();
    bad[base + 64..base + layout.segment_bytes].fill(0);
    let report = check_image(&bad, &config());
    assert!(!report.is_clean());
    assert!(
        kinds(&report).contains(&Kind::CheckpointCorrupt),
        "wrong findings: {:?}",
        report.findings
    );

    // A single flipped payload byte is equally fatal.
    let mut bad = image.clone();
    bad[base + 40] ^= 0x01;
    let report = check_image(&bad, &config());
    assert!(kinds(&report).contains(&Kind::CheckpointCorrupt));
}

/// Rewrites the checkpoint payload via `tamper` and re-stamps the header
/// checksum, simulating consistent-looking but wrong checkpoint tables
/// (e.g. a buggy shutdown path).
fn patch_payload(image: &mut [u8], layout: &Layout, view: &CheckpointView, tamper: impl FnOnce(&mut [u8])) {
    let header_checksum_at = 16; // magic(4) ver(2) marker(1) pad(1) len(8) -> checksum
    let payload_len = {
        let b: [u8; 8] = image[8..16].try_into().expect("fixed");
        u64::from_le_bytes(b) as usize
    };
    let mut payload = Vec::with_capacity(view.payload_segments.len() * layout.segment_bytes);
    for &seg in &view.payload_segments {
        let base = layout.segment_base(seg) as usize * SECTOR_SIZE;
        payload.extend_from_slice(&image[base..base + layout.segment_bytes]);
    }
    payload.truncate(payload_len);
    tamper(&mut payload);
    let checksum = fnv1a64(&payload);
    for (i, &seg) in view.payload_segments.iter().enumerate() {
        let chunk_start = i * layout.segment_bytes;
        if chunk_start >= payload.len() {
            break;
        }
        let chunk = &payload[chunk_start..payload.len().min(chunk_start + layout.segment_bytes)];
        let base = layout.segment_base(seg) as usize * SECTOR_SIZE;
        image[base..base + chunk.len()].copy_from_slice(chunk);
    }
    image[header_checksum_at..header_checksum_at + 8].copy_from_slice(&checksum.to_le_bytes());
}

/// Class 3: the segment usage table disagrees with the block map — here a
/// live-byte count inflated behind a correct checksum. This is the
/// accounting the cleaner trusts when picking victims.
#[test]
fn tampered_usage_accounting_is_flagged() {
    let (mut image, layout, view) = clean_image();
    let nsegs = view.usage.len();
    let live_idx = view
        .usage
        .iter()
        .position(|u| u.state == SegStateView::Live && u.live_bytes > 0)
        .expect("a live segment");
    patch_payload(&mut image, &layout, &view, |payload| {
        // The usage table is the payload's tail: u32 count, then per
        // segment state(1) + live_bytes(8) + last_write_ts(8).
        let entry = payload.len() - nsegs * 17 + live_idx * 17;
        assert_eq!(payload[entry], 1, "expected a Live state byte");
        let lb: [u8; 8] = payload[entry + 1..entry + 9].try_into().expect("fixed");
        let inflated = u64::from_le_bytes(lb) + 512;
        payload[entry + 1..entry + 9].copy_from_slice(&inflated.to_le_bytes());
    });
    let report = check_image(&image, &config());
    assert!(!report.is_clean());
    assert!(
        kinds(&report).contains(&Kind::LiveBytesMismatch),
        "wrong findings: {:?}",
        report.findings
    );
}

/// Class 4: one segment's summary copied over another's (a misdirected
/// write). Both summaries then carry the same physical-write sequence
/// number, which the writer never produces.
#[test]
fn duplicated_summary_is_flagged() {
    let (image, layout, view) = clean_image();
    let live: Vec<u32> = view
        .usage
        .iter()
        .enumerate()
        .filter_map(|(s, u)| (u.state == SegStateView::Live).then_some(s as u32))
        .collect();
    let (src, dst) = (live[0], *live.last().expect("two live segments"));
    assert_ne!(src, dst, "workload must fill at least two segments");
    let s = layout.summary_base(src) as usize * SECTOR_SIZE;
    let d = layout.summary_base(dst) as usize * SECTOR_SIZE;
    let mut bad = image.clone();
    let copy: Vec<u8> = bad[s..s + layout.summary_bytes].to_vec();
    bad[d..d + layout.summary_bytes].copy_from_slice(&copy);
    let report = check_image(&bad, &config());
    assert!(!report.is_clean());
    assert!(
        kinds(&report).contains(&Kind::DuplicateSummarySeq),
        "wrong findings: {:?}",
        report.findings
    );
}

/// Class 5: a forged summary whose records make two blocks claim
/// overlapping byte ranges of one segment — checked through the sweep
/// (checkpoint marker cleared so the replay is authoritative).
#[test]
fn overlapping_extents_are_flagged() {
    let (mut image, layout, view) = clean_image();
    image[6] = 0; // Force sweep mode.

    // Highest ts/seq so the forged records win the replay ordering.
    let ts0 = view.ts + 10;
    let forged_seq = view.seq + 10;
    let free_seg = view
        .usage
        .iter()
        .position(|u| u.state == SegStateView::Free)
        .expect("a free segment") as u32;

    let mut b = SummaryBuilder::new();
    let stamp = |ts: u64, rec: Record| Stamped {
        ts,
        ends_aru: true,
        aru: None,
        rec,
    };
    b.push(stamp(ts0, Record::NewList { lid: 99, pred: None, hints: ListHints::default() }));
    b.push(stamp(ts0 + 1, Record::NewBlock { bid: 9001, lid: 99, size_class: 4096 }));
    b.push(stamp(
        ts0 + 2,
        Record::WriteBlock { bid: 9001, offset: 0, stored_len: 4096, logical_len: 4096, compressed: false },
    ));
    b.push(stamp(ts0 + 3, Record::NewBlock { bid: 9002, lid: 99, size_class: 4096 }));
    b.push(stamp(
        ts0 + 4,
        // Overlaps 9001's 0..4096 extent.
        Record::WriteBlock { bid: 9002, offset: 2048, stored_len: 4096, logical_len: 4096, compressed: false },
    ));
    b.push(stamp(ts0 + 5, Record::ListHead { lid: 99, first: Some(9001) }));
    b.push(stamp(ts0 + 6, Record::Link { bid: 9001, next: Some(9002) }));
    b.push(stamp(ts0 + 7, Record::Link { bid: 9002, next: None }));
    let summary = b.finish(forged_seq, layout.summary_bytes);
    let base = layout.summary_base(free_seg) as usize * SECTOR_SIZE;
    image[base..base + layout.summary_bytes].copy_from_slice(&summary);

    let report = check_image(&image, &config());
    assert!(!report.is_clean());
    assert!(
        kinds(&report).contains(&Kind::OverlappingExtents),
        "wrong findings: {:?}",
        report.findings
    );
}

/// Class 6: a summary whose physical-write sequence says "latest" but
/// whose newest record timestamp is older than records already durable
/// under earlier sequences — the signature of a queued segment write
/// reordered across a seal (the command queue must keep writes FIFO).
#[test]
fn reordered_seal_is_flagged() {
    let (mut image, layout, view) = clean_image();
    image[6] = 0; // Sweep mode; the checkpoint is not under test.

    // Newest sequence on the medium, but a timestamp from the distant
    // past: as if this segment write jumped the queue.
    let mut b = SummaryBuilder::new();
    b.push(Stamped {
        ts: 2,
        ends_aru: true,
        aru: None,
        rec: Record::EndAru,
    });
    let summary = b.finish(view.seq + 10, layout.summary_bytes);
    let free_seg = view
        .usage
        .iter()
        .position(|u| u.state == SegStateView::Free)
        .expect("a free segment") as u32;
    let base = layout.summary_base(free_seg) as usize * SECTOR_SIZE;
    image[base..base + layout.summary_bytes].copy_from_slice(&summary);

    let report = check_image(&image, &config());
    assert!(!report.is_clean());
    assert!(
        kinds(&report).contains(&Kind::SealReordered),
        "wrong findings: {:?}",
        report.findings
    );
}

/// A trailing explicit ARU that never ended is *not* corruption: recovery
/// discards it by design (§3.1). `ldck` reports it as info and stays
/// green.
#[test]
fn incomplete_trailing_aru_is_info_not_error() {
    let config = config();
    let mut ld = Lld::format(MemDisk::with_capacity(2 << 20), config.clone()).expect("format");
    let lid = ld
        .new_list(PredList::Start, ListHints::default())
        .expect("new_list");
    // Durable baseline, then an ARU big enough to seal segments mid-unit.
    let b0 = ld.new_block(lid, Pred::Start).expect("new_block");
    ld.write(b0, &[7u8; 4096]).expect("write");
    ld.flush(FailureSet::PowerFailure).expect("flush");
    ld.begin_aru().expect("begin_aru");
    let mut prev = b0;
    for i in 0..20u8 {
        let bid = ld.new_block(lid, Pred::After(prev)).expect("new_block");
        ld.write(bid, &vec![i; 4096]).expect("write");
        prev = bid;
    }
    // Crash with the ARU still open: sealed segments hold its records.
    let image = ld.into_disk().image_bytes();
    let report = check_image(&image, &config);
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
    let aru = report
        .findings
        .iter()
        .find(|f| f.kind == Kind::IncompleteAru)
        .expect("incomplete ARU must be reported");
    assert_eq!(aru.severity, Severity::Info);
}
