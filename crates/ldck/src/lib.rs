//! `ldck` — offline consistency checking for LLD disk images.
//!
//! The paper argues that LLD's recovery invariants are simple enough to
//! check mechanically: every piece of LD metadata is reconstructible from
//! the segment summaries alone (§3.6), and a clean shutdown additionally
//! leaves a checkpoint whose tables must agree with what the summaries
//! imply. `ldck` is the `fsck` counterpart for that claim: it walks a raw
//! disk image **without mounting it**, decodes the checkpoint region, every
//! segment summary, the block-number map, the list tables and the segment
//! usage table, and cross-checks them against each other.
//!
//! Two analysis modes, chosen by what the image contains:
//!
//! * **Checkpoint mode** — the image carries a valid clean-shutdown
//!   checkpoint (paper §3.6: "when the system is shut down mildly, LLD's
//!   data structures are stored on the disk"). The checkpointed tables are
//!   the authoritative state; `ldck` verifies their internal consistency
//!   *and* their agreement with the on-disk segment summaries.
//! * **Sweep mode** — no checkpoint (the post-crash state). `ldck` performs
//!   its own independent implementation of the one-sweep replay (§3.6) over
//!   the summaries — deliberately *not* sharing code with
//!   `lld::recovery` beyond the wire-format decoders, so the two
//!   implementations check each other — and then validates the
//!   reconstructed state.
//!
//! Findings are typed ([`Kind`]) and graded ([`Severity`]): `Error` means a
//! state unreachable by any crash (sector writes are atomic in the fault
//! model, and the writer orders summary and checkpoint writes so that torn
//! updates are detected by checksums and ignored) — i.e. real corruption.
//! `Warning` flags suspicious-but-recoverable structure, and `Info` reports
//! expected post-crash residue (incomplete ARUs, orphan blocks) that the
//! recovery sweep discards by design.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use lld::checkpoint::{peek_image, CheckpointPeek, CheckpointView, SegStateView};
use lld::layout::HEADER_SECTORS;
use lld::records::{decode_summary, Record, Summary};
use lld::{Layout, LldConfig, NO_SEG, NVRAM_SEG, OPEN_SEG, PROVISIONAL_LIST};
use simdisk::SECTOR_SIZE;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Expected post-crash residue; recovery handles it by design.
    Info,
    /// Suspicious structure that recovery tolerates but should not occur.
    Warning,
    /// A state no crash can produce under the fault model: corruption.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The invariant a finding is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// The image is not sector-aligned or too small for one segment.
    Geometry,
    /// The checkpoint marker claims validity but the checkpoint cannot be
    /// read back (torn header writes are impossible: the marker sector is
    /// written last).
    CheckpointCorrupt,
    /// No checkpoint — the normal state after a crash.
    CheckpointAbsent,
    /// A checkpoint that is older than summary records on the medium, or
    /// whose sequence counter has already been overtaken by a summary.
    CheckpointStale,
    /// The checkpoint lists the same payload segment twice.
    DuplicatePayloadSegment,
    /// A checkpoint payload segment is not marked Free in the checkpoint's
    /// own usage table.
    PayloadSegmentNotFree,
    /// A mapped block points into a segment holding checkpoint payload.
    MappedBlockInPayloadSegment,
    /// A mapped block points into a segment with no valid summary.
    MappedBlockInDeadSegment,
    /// A mapped block points into a segment the usage table marks Free.
    MappedBlockInFreeSegment,
    /// A checkpointed block still claims the volatile open segment.
    OpenSegmentReference,
    /// A block's physical extent exceeds the segment data region, or its
    /// segment id is beyond the device.
    BlockOutOfBounds,
    /// Two live blocks claim overlapping byte ranges of one segment.
    OverlappingExtents,
    /// A segment's recomputed live-byte count disagrees with the usage
    /// table.
    LiveBytesMismatch,
    /// The usage table marks a segment Live but it has no valid summary.
    LiveSegmentWithoutSummary,
    /// Two segment summaries carry the same physical-write sequence number.
    DuplicateSummarySeq,
    /// Ordering the valid summaries by physical-write sequence disagrees
    /// with ordering them by newest record timestamp. Record timestamps
    /// are assigned before their segment write is submitted and segment
    /// writes reach the medium in submission order (the command queue
    /// keeps writes FIFO and fences seals), so a later-sequenced summary
    /// whose newest record is *older* means a write was reordered across
    /// a seal.
    SealReordered,
    /// A block's logical length exceeds its size class.
    SizeClassViolation,
    /// A list's successor chain revisits a block (cycle or cross-link).
    ListCycle,
    /// A list's successor chain points at a block that does not exist.
    DanglingLink,
    /// A block is owned by one list but reached from another.
    ListOwnershipMismatch,
    /// A mapped block is not reachable from any list head.
    UnreachableBlock,
    /// A replayed block kept a list owner but its list never reaches it.
    UnattachedBlock,
    /// A replayed block was never attached to a list (recovery drops it).
    OrphanBlock,
    /// Records of an explicit ARU that never ended (recovery discards
    /// them — the paper's all-or-nothing guarantee, §3.1).
    IncompleteAru,
    /// The checkpoint's bad-sector remap table is not strictly increasing,
    /// or names a sector outside every segment (the scrubber only ever
    /// remaps sectors it read from segment regions).
    RemapTableMalformed,
    /// A live block's sector extent covers a sector the remap table
    /// declares bad — scrub relocates live data *before* remapping, so no
    /// reachable block may sit on a remapped sector.
    LiveBlockOnBadSector,
    /// A remapped sector lies in a segment the usage table does not mark
    /// Quarantined. Scrub quarantines every segment it confirms a bad
    /// sector in, and quarantine is permanent, so this should not occur.
    BadSectorSegmentNotQuarantined,
}

impl Kind {
    /// Stable lower-case name, for CLI output and tests.
    pub fn name(&self) -> &'static str {
        match self {
            Kind::Geometry => "geometry",
            Kind::CheckpointCorrupt => "checkpoint-corrupt",
            Kind::CheckpointAbsent => "checkpoint-absent",
            Kind::CheckpointStale => "checkpoint-stale",
            Kind::DuplicatePayloadSegment => "duplicate-payload-segment",
            Kind::PayloadSegmentNotFree => "payload-segment-not-free",
            Kind::MappedBlockInPayloadSegment => "mapped-block-in-payload-segment",
            Kind::MappedBlockInDeadSegment => "mapped-block-in-dead-segment",
            Kind::MappedBlockInFreeSegment => "mapped-block-in-free-segment",
            Kind::OpenSegmentReference => "open-segment-reference",
            Kind::BlockOutOfBounds => "block-out-of-bounds",
            Kind::OverlappingExtents => "overlapping-extents",
            Kind::LiveBytesMismatch => "live-bytes-mismatch",
            Kind::LiveSegmentWithoutSummary => "live-segment-without-summary",
            Kind::DuplicateSummarySeq => "duplicate-summary-seq",
            Kind::SealReordered => "seal-reordered",
            Kind::SizeClassViolation => "size-class-violation",
            Kind::ListCycle => "list-cycle",
            Kind::DanglingLink => "dangling-link",
            Kind::ListOwnershipMismatch => "list-ownership-mismatch",
            Kind::UnreachableBlock => "unreachable-block",
            Kind::UnattachedBlock => "unattached-block",
            Kind::OrphanBlock => "orphan-block",
            Kind::IncompleteAru => "incomplete-aru",
            Kind::RemapTableMalformed => "remap-table-malformed",
            Kind::LiveBlockOnBadSector => "live-block-on-bad-sector",
            Kind::BadSectorSegmentNotQuarantined => "bad-sector-segment-not-quarantined",
        }
    }
}

/// One consistency finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// Which invariant.
    pub kind: Kind,
    /// The segment involved, when one is identifiable.
    pub seg: Option<u32>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.kind.name())?;
        if let Some(seg) = self.seg {
            write!(f, " [seg {seg}]")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Aggregate numbers about the analyzed image.
#[derive(Debug, Clone, Default)]
pub struct ImageStats {
    /// Segments on the device.
    pub segments: u32,
    /// Segments with a valid summary.
    pub valid_summaries: u32,
    /// Records across all valid summaries.
    pub records: u64,
    /// Whether a valid checkpoint was found.
    pub checkpoint: bool,
    /// Blocks in the authoritative state (checkpoint or replay).
    pub blocks: u64,
    /// Lists in the authoritative state.
    pub lists: u64,
    /// Blocks whose data lives in the NVRAM image (checkpoint mode only;
    /// the NVRAM contents are outside the disk image and not checkable).
    pub nvram_blocks: u64,
    /// Sectors in the bad-block remap table: the checkpoint's table in
    /// checkpoint mode, or the set reconstructed from `RetireSector`
    /// records by the sweep replay.
    pub bad_sectors: u64,
}

/// The result of [`check_image`].
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in detection order.
    pub findings: Vec<Finding>,
    /// Aggregate numbers.
    pub stats: ImageStats,
}

impl Report {
    /// Findings of `Error` severity.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
    }

    /// True when the image has no `Error`-severity findings — the bar every
    /// freshly formatted, cleanly shut down, or crash-then-recovered image
    /// must clear.
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// The worst severity present, if any findings exist at all.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    fn push(&mut self, severity: Severity, kind: Kind, seg: Option<u32>, detail: String) {
        self.findings.push(Finding {
            severity,
            kind,
            seg,
            detail,
        });
    }
}

/// A block-map entry as `ldck` models it (either from the checkpoint or
/// from its own replay).
#[derive(Debug, Clone, Copy)]
struct Blk {
    seg: u32,
    offset: u32,
    stored_len: u32,
    logical_len: u32,
    size_class: u32,
    next: Option<u64>,
    list: u64,
}

/// The authoritative state under check.
#[derive(Debug, Default)]
struct State {
    blocks: BTreeMap<u64, Blk>,
    /// `lid -> first`.
    lists: BTreeMap<u64, Option<u64>>,
    /// Remapped sectors replayed from `RetireSector` records (sweep mode;
    /// in checkpoint mode the checkpoint's table is authoritative).
    bad_sectors: std::collections::BTreeSet<u64>,
}

/// Checks a raw LLD disk image for consistency.
///
/// `config` supplies the geometry (`segment_bytes` / `summary_bytes`) the
/// image was formatted with; the remaining fields are ignored. The image is
/// the full byte contents of the device, e.g. from
/// `simdisk::SimDisk::image_bytes`.
pub fn check_image(image: &[u8], config: &LldConfig) -> Report {
    let mut report = Report::default();

    // Geometry gate: everything downstream indexes sectors and segments.
    if !image.len().is_multiple_of(SECTOR_SIZE) {
        report.push(
            Severity::Error,
            Kind::Geometry,
            None,
            format!(
                "image length {} is not a multiple of the {SECTOR_SIZE}-byte sector",
                image.len()
            ),
        );
    }
    let total_sectors = (image.len() / SECTOR_SIZE) as u64;
    let segment_sectors = (config.segment_bytes / SECTOR_SIZE) as u64;
    if segment_sectors == 0
        || total_sectors.saturating_sub(HEADER_SECTORS) / segment_sectors == 0
    {
        report.push(
            Severity::Error,
            Kind::Geometry,
            None,
            format!(
                "{total_sectors} sectors cannot hold one {}-byte segment plus the header",
                config.segment_bytes
            ),
        );
        return report;
    }
    let layout = Layout::compute(total_sectors, config.segment_bytes, config.summary_bytes);
    report.stats.segments = layout.segments;

    // Decode every segment summary in one pass (the §3.6 sweep).
    let summaries = read_summaries(image, &layout);
    report.stats.valid_summaries = summaries.iter().flatten().count() as u32;
    report.stats.records = summaries
        .iter()
        .flatten()
        .map(|s| s.records.len() as u64)
        .sum();
    check_summary_seqs(&summaries, &mut report);
    check_summary_order(&summaries, &mut report);

    match peek_image(image, &layout) {
        CheckpointPeek::Corrupt(msg) => {
            report.push(Severity::Error, Kind::CheckpointCorrupt, None, msg);
            // The tables are unreadable; fall back to sweep mode so the
            // summaries still get their structural checks.
            let state = replay(&summaries, &mut report);
            check_state(&state, &summaries, &layout, None, &mut report);
            finish_stats(&state, &mut report);
        }
        CheckpointPeek::Absent => {
            report.push(
                Severity::Info,
                Kind::CheckpointAbsent,
                None,
                "no checkpoint; analyzing via recovery-sweep replay".into(),
            );
            let state = replay(&summaries, &mut report);
            check_state(&state, &summaries, &layout, None, &mut report);
            finish_stats(&state, &mut report);
        }
        CheckpointPeek::Valid(view) => {
            report.stats.checkpoint = true;
            report.stats.bad_sectors = view.bad_sectors.len() as u64;
            check_checkpoint_meta(&view, &summaries, &layout, &mut report);
            check_bad_sector_table(&view, &layout, &mut report);
            let state = state_from_view(&view);
            check_state(&state, &summaries, &layout, Some(&view), &mut report);
            finish_stats(&state, &mut report);
        }
    }
    report
}

fn finish_stats(state: &State, report: &mut Report) {
    if !report.stats.checkpoint {
        report.stats.bad_sectors = state.bad_sectors.len() as u64;
    }
    report.stats.blocks = state.blocks.len() as u64;
    report.stats.lists = state.lists.len() as u64;
    report.stats.nvram_blocks = state
        .blocks
        .values()
        .filter(|b| b.seg == NVRAM_SEG)
        .count() as u64;
}

/// Decodes the summary region of every segment. `None` per segment means
/// never-written, torn, or corrupt — indistinguishable offline, and all
/// three are ignored by recovery.
fn read_summaries(image: &[u8], layout: &Layout) -> Vec<Option<Summary>> {
    (0..layout.segments)
        .map(|seg| {
            let base = layout.summary_base(seg) as usize * SECTOR_SIZE;
            image
                .get(base..base + layout.summary_bytes)
                .and_then(decode_summary)
        })
        .collect()
}

/// Physical-write sequence numbers are strictly increasing across every
/// segment write, so no two summaries on the medium can share one; a
/// duplicate means a summary was copied or replayed onto the disk.
fn check_summary_seqs(summaries: &[Option<Summary>], report: &mut Report) {
    let mut by_seq: HashMap<u64, u32> = HashMap::new();
    for (seg, summary) in summaries.iter().enumerate() {
        let Some(s) = summary else { continue };
        if let Some(prev) = by_seq.insert(s.seq, seg as u32) {
            report.push(
                Severity::Error,
                Kind::DuplicateSummarySeq,
                Some(seg as u32),
                format!("summary seq {} also claimed by segment {prev}", s.seq),
            );
        }
    }
}

/// Write-order invariant: every record's timestamp is assigned before the
/// segment holding it is submitted, segment buffers only grow between
/// seals, and segment writes reach the medium in submission order. So
/// walking the valid summaries in physical-write-sequence order must see
/// non-decreasing newest-record timestamps. A decrease means a
/// later-submitted segment landed while an earlier one did not — a queued
/// write silently reordered across a seal.
fn check_summary_order(summaries: &[Option<Summary>], report: &mut Report) {
    let mut by_seq: Vec<(u64, u64, u32)> = summaries
        .iter()
        .enumerate()
        .filter_map(|(seg, summary)| {
            let s = summary.as_ref()?;
            let max_ts = s.records.iter().map(|r| r.ts).max()?;
            Some((s.seq, max_ts, seg as u32))
        })
        .collect();
    by_seq.sort_unstable();
    for w in by_seq.windows(2) {
        let (prev_seq, prev_ts, prev_seg) = w[0];
        let (seq, ts, seg) = w[1];
        if ts < prev_ts {
            report.push(
                Severity::Error,
                Kind::SealReordered,
                Some(seg),
                format!(
                    "write seq {seq} holds newest record ts {ts}, but earlier \
                     write seq {prev_seq} (segment {prev_seg}) already reached \
                     ts {prev_ts} — a write was reordered across a seal"
                ),
            );
        }
    }
}

/// Checkpoint-only cross-checks: the payload placement and the counters.
fn check_checkpoint_meta(
    view: &CheckpointView,
    summaries: &[Option<Summary>],
    layout: &Layout,
    report: &mut Report,
) {
    let mut seen = HashSet::new();
    for &seg in &view.payload_segments {
        if !seen.insert(seg) {
            report.push(
                Severity::Error,
                Kind::DuplicatePayloadSegment,
                Some(seg),
                "checkpoint lists this payload segment twice".into(),
            );
        }
        match view.usage.get(seg as usize) {
            Some(u) if u.state != SegStateView::Free => {
                report.push(
                    Severity::Error,
                    Kind::PayloadSegmentNotFree,
                    Some(seg),
                    format!(
                        "checkpoint payload occupies a segment its own usage table marks {:?}",
                        u.state
                    ),
                );
            }
            _ => {}
        }
    }

    // Counter monotonicity: the checkpoint is written at shutdown, after
    // every record and every segment write, so its counters must dominate
    // everything the summaries carry. A summary from a later generation
    // next to a stale checkpoint means the marker was forged or restored.
    let max_ts = summaries
        .iter()
        .flatten()
        .flat_map(|s| s.records.iter().map(|r| r.ts))
        .max()
        .unwrap_or(0);
    if view.ts < max_ts {
        report.push(
            Severity::Error,
            Kind::CheckpointStale,
            None,
            format!(
                "checkpoint ts {} is older than summary record ts {max_ts}",
                view.ts
            ),
        );
    }
    for (seg, summary) in summaries.iter().enumerate() {
        if let Some(s) = summary {
            if s.seq >= view.seq {
                report.push(
                    Severity::Error,
                    Kind::CheckpointStale,
                    Some(seg as u32),
                    format!(
                        "summary seq {} is not below the checkpoint's next seq {}",
                        s.seq, view.seq
                    ),
                );
            }
        }
    }

    // Usage table vs summaries: Live claims a summary worth keeping.
    for (seg, u) in view.usage.iter().enumerate() {
        if u.state == SegStateView::Live && summaries[seg].is_none() {
            report.push(
                Severity::Error,
                Kind::LiveSegmentWithoutSummary,
                Some(seg as u32),
                format!(
                    "usage table marks segment Live ({} live bytes) but it has no valid summary",
                    u.live_bytes
                ),
            );
        }
    }
    let _ = layout;
}

/// Validates the checkpoint's bad-sector remap table in isolation: the
/// scrubber serializes a `BTreeSet`, so the wire form must be strictly
/// increasing, and every entry must fall inside some segment (scrub only
/// probes sectors LLD actually read, all of which live in segment
/// regions). Placement relative to quarantined segments is a cross-check:
/// scrub quarantines the segment of every sector it remaps, and quarantine
/// is permanent, so a bad sector in a non-Quarantined segment means the
/// table and the usage table disagree about history.
fn check_bad_sector_table(view: &CheckpointView, layout: &Layout, report: &mut Report) {
    for (i, &sector) in view.bad_sectors.iter().enumerate() {
        if i > 0 && view.bad_sectors[i - 1] >= sector {
            report.push(
                Severity::Error,
                Kind::RemapTableMalformed,
                None,
                format!(
                    "remap table is not strictly increasing: sector {} follows {}",
                    sector,
                    view.bad_sectors[i - 1]
                ),
            );
        }
        let Some(seg) = layout.segment_of_sector(sector) else {
            report.push(
                Severity::Error,
                Kind::RemapTableMalformed,
                None,
                format!("remapped sector {sector} lies outside every segment"),
            );
            continue;
        };
        match view.usage.get(seg as usize) {
            Some(u) if u.state != SegStateView::Quarantined => {
                report.push(
                    Severity::Warning,
                    Kind::BadSectorSegmentNotQuarantined,
                    Some(seg),
                    format!(
                        "remapped sector {sector} sits in a segment marked {:?}, not Quarantined",
                        u.state
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Builds the model state from a parsed checkpoint.
fn state_from_view(view: &CheckpointView) -> State {
    let mut state = State::default();
    for b in &view.blocks {
        state.blocks.insert(
            b.bid,
            Blk {
                seg: b.seg,
                offset: b.offset,
                stored_len: b.stored_len,
                logical_len: b.logical_len,
                size_class: b.size_class,
                next: b.next,
                list: b.list,
            },
        );
    }
    for l in &view.lists {
        state.lists.insert(l.lid, l.first);
    }
    state
}

/// A record tagged with its physical position, for the replay sort.
struct RepRec {
    ts: u64,
    seq: u64,
    idx: u32,
    seg: u32,
    ends_aru: bool,
    aru: Option<u64>,
    rec: Record,
}

/// `ldck`'s own one-sweep replay (paper §3.6), independent of
/// `lld::recovery` except for the shared wire decoders. The semantics
/// mirror the recovery sweep exactly: global (ts, seq, idx) order, newest
/// physical copy per timestamp wins, explicit-ARU records deferred to their
/// `EndAru` and discarded when the unit never ended.
fn replay(summaries: &[Option<Summary>], report: &mut Report) -> State {
    let mut all: Vec<RepRec> = Vec::new();
    for (seg, summary) in summaries.iter().enumerate() {
        let Some(s) = summary else { continue };
        for (idx, r) in s.records.iter().enumerate() {
            all.push(RepRec {
                ts: r.ts,
                seq: s.seq,
                idx: idx as u32,
                seg: seg as u32,
                ends_aru: r.ends_aru,
                aru: r.aru,
                rec: r.rec,
            });
        }
    }
    all.sort_by_key(|r| (r.ts, r.seq, r.idx));

    let mut state = State::default();
    let mut pending: HashMap<u64, Vec<&RepRec>> = HashMap::new();
    for (i, r) in all.iter().enumerate() {
        // Duplicate physical copies of one logical record (a partial
        // segment superseded by its seal) share a timestamp; apply only
        // the newest copy.
        if all.get(i + 1).is_some_and(|next| next.ts == r.ts) {
            continue;
        }
        match r.aru {
            Some(id) if !r.ends_aru => pending.entry(id).or_default().push(r),
            Some(id) => {
                for p in pending.remove(&id).unwrap_or_default() {
                    apply(&mut state, p);
                }
                apply(&mut state, r);
            }
            None => apply(&mut state, r),
        }
    }
    if !pending.is_empty() {
        let count: usize = pending.values().map(Vec::len).sum();
        let mut ids: Vec<u64> = pending.keys().copied().collect();
        ids.sort_unstable();
        report.push(
            Severity::Info,
            Kind::IncompleteAru,
            None,
            format!(
                "{count} record(s) of never-ended ARU(s) {ids:?} discarded, \
                 as recovery would (§3.1 all-or-nothing)"
            ),
        );
    }
    state
}

fn apply(state: &mut State, r: &RepRec) {
    match r.rec {
        Record::NewBlock {
            bid,
            lid,
            size_class,
        } => {
            let e = state.blocks.entry(bid).or_insert(Blk {
                seg: NO_SEG,
                offset: 0,
                stored_len: 0,
                logical_len: 0,
                size_class: 0,
                next: None,
                list: PROVISIONAL_LIST,
            });
            e.list = lid;
            e.size_class = size_class;
        }
        Record::DeleteBlock { bid } => {
            state.blocks.remove(&bid);
        }
        Record::WriteBlock {
            bid,
            offset,
            stored_len,
            logical_len,
            compressed: _,
        } => {
            let e = ensure_block(state, bid);
            e.seg = r.seg;
            e.offset = offset;
            e.stored_len = stored_len;
            e.logical_len = logical_len;
        }
        Record::Link { bid, next } => {
            ensure_block(state, bid).next = next;
        }
        Record::ListHead { lid, first } => {
            *state.lists.entry(lid).or_insert(None) = first;
        }
        Record::NewList { lid, .. } => {
            state.lists.insert(lid, None);
        }
        Record::DeleteList { lid } => {
            let mut cur = state.lists.get(&lid).copied().flatten();
            let mut guard = state.blocks.len() + 1;
            while let Some(b) = cur {
                cur = state.blocks.get(&b).and_then(|e| e.next);
                state.blocks.remove(&b);
                guard -= 1;
                if guard == 0 {
                    break;
                }
            }
            state.lists.remove(&lid);
        }
        Record::ListOrder { lid, .. } => {
            state.lists.entry(lid).or_insert(None);
        }
        Record::EndAru => {}
        Record::Swap { a, b } => {
            if state.blocks.contains_key(&a) && state.blocks.contains_key(&b) {
                let ea = state.blocks[&a];
                let eb = state.blocks[&b];
                if let Some(ma) = state.blocks.get_mut(&a) {
                    ma.seg = eb.seg;
                    ma.offset = eb.offset;
                    ma.stored_len = eb.stored_len;
                    ma.logical_len = eb.logical_len;
                }
                if let Some(mb) = state.blocks.get_mut(&b) {
                    mb.seg = ea.seg;
                    mb.offset = ea.offset;
                    mb.stored_len = ea.stored_len;
                    mb.logical_len = ea.logical_len;
                }
            }
        }
        Record::RetireSector { sector } => {
            state.bad_sectors.insert(sector);
        }
        // Quarantine affects the usage table, which the sweep does not
        // model; the placement checks use the remap table instead.
        Record::Quarantine { .. } => {}
    }
}

fn ensure_block(state: &mut State, bid: u64) -> &mut Blk {
    state.blocks.entry(bid).or_insert(Blk {
        seg: NO_SEG,
        offset: 0,
        stored_len: 0,
        logical_len: 0,
        size_class: 0,
        next: None,
        list: PROVISIONAL_LIST,
    })
}

/// Structural checks on the authoritative state: physical placement,
/// extent disjointness, list-chain shape, and (in checkpoint mode) the
/// usage-table accounting.
fn check_state(
    state: &State,
    summaries: &[Option<Summary>],
    layout: &Layout,
    view: Option<&CheckpointView>,
    report: &mut Report,
) {
    let payload: HashSet<u32> = view
        .map(|v| v.payload_segments.iter().copied().collect())
        .unwrap_or_default();
    let bad: std::collections::BTreeSet<u64> = match view {
        Some(v) => v.bad_sectors.iter().copied().collect(),
        None => state.bad_sectors.clone(),
    };

    // Physical placement of every mapped block.
    let mut extents: BTreeMap<u32, Vec<(u32, u32, u64)>> = BTreeMap::new();
    let mut live: BTreeMap<u32, u64> = BTreeMap::new();
    for (&bid, b) in &state.blocks {
        if b.size_class != 0 && b.logical_len > b.size_class {
            report.push(
                Severity::Error,
                Kind::SizeClassViolation,
                real_seg(b.seg, layout),
                format!(
                    "block {bid} logical length {} exceeds its size class {}",
                    b.logical_len, b.size_class
                ),
            );
        }
        match b.seg {
            NO_SEG | NVRAM_SEG => continue,
            OPEN_SEG => {
                report.push(
                    Severity::Error,
                    Kind::OpenSegmentReference,
                    None,
                    format!("block {bid} claims the volatile open segment"),
                );
                continue;
            }
            seg if seg >= layout.segments => {
                report.push(
                    Severity::Error,
                    Kind::BlockOutOfBounds,
                    None,
                    format!("block {bid} maps to segment {seg}, device has {}", layout.segments),
                );
                continue;
            }
            seg => {
                if b.offset as usize + b.stored_len as usize > layout.data_bytes {
                    report.push(
                        Severity::Error,
                        Kind::BlockOutOfBounds,
                        Some(seg),
                        format!(
                            "block {bid} extent {}..{} exceeds the {}-byte data region",
                            b.offset,
                            b.offset as u64 + u64::from(b.stored_len),
                            layout.data_bytes
                        ),
                    );
                    continue;
                }
                if summaries[seg as usize].is_none() {
                    report.push(
                        Severity::Error,
                        Kind::MappedBlockInDeadSegment,
                        Some(seg),
                        format!("block {bid} maps into a segment with no valid summary"),
                    );
                }
                if payload.contains(&seg) {
                    report.push(
                        Severity::Error,
                        Kind::MappedBlockInPayloadSegment,
                        Some(seg),
                        format!("block {bid} maps into a checkpoint payload segment"),
                    );
                }
                if let Some(v) = view {
                    if v.usage[seg as usize].state == SegStateView::Free {
                        report.push(
                            Severity::Error,
                            Kind::MappedBlockInFreeSegment,
                            Some(seg),
                            format!("block {bid} maps into a segment marked Free"),
                        );
                    }
                }
                *live.entry(seg).or_default() += u64::from(b.stored_len);
                if b.stored_len > 0 {
                    extents.entry(seg).or_default().push((b.offset, b.stored_len, bid));
                    if !bad.is_empty() {
                        let (start, count) =
                            layout.data_sector_span(seg, b.offset as usize, b.stored_len as usize);
                        if let Some(&s) = bad.range(start..start + count).next() {
                            report.push(
                                Severity::Error,
                                Kind::LiveBlockOnBadSector,
                                Some(seg),
                                format!("block {bid} occupies remapped bad sector {s}"),
                            );
                        }
                    }
                }
            }
        }
    }

    // No two live blocks may claim the same sectors of a segment.
    for (seg, mut spans) in extents {
        spans.sort_unstable();
        for w in spans.windows(2) {
            let (ao, al, abid) = w[0];
            let (bo, _, bbid) = w[1];
            if ao as u64 + u64::from(al) > bo.into() {
                report.push(
                    Severity::Error,
                    Kind::OverlappingExtents,
                    Some(seg),
                    format!(
                        "blocks {abid} ({ao}+{al}) and {bbid} (at {bo}) overlap in the data region"
                    ),
                );
            }
        }
    }

    // Checkpoint mode: the stored per-segment accounting must match what
    // the block map implies. (Scratch segments are skipped: their live
    // bytes track the open segment's pending tail, which is volatile.)
    if let Some(v) = view {
        for (seg, u) in v.usage.iter().enumerate() {
            if u.state != SegStateView::Live {
                continue;
            }
            let recomputed = live.get(&(seg as u32)).copied().unwrap_or(0);
            if recomputed != u.live_bytes {
                report.push(
                    Severity::Error,
                    Kind::LiveBytesMismatch,
                    Some(seg as u32),
                    format!(
                        "usage table records {} live bytes, block map implies {recomputed}",
                        u.live_bytes
                    ),
                );
            }
        }
    }

    check_chains(state, view.is_some(), report);
}

/// Maps a possibly-sentinel segment id to a reportable one.
fn real_seg(seg: u32, layout: &Layout) -> Option<u32> {
    (seg < layout.segments).then_some(seg)
}

/// Walks every list's successor chain: acyclic, complete, and owned by the
/// list that reaches it.
fn check_chains(state: &State, authoritative: bool, report: &mut Report) {
    let mut visited: HashSet<u64> = HashSet::new();
    for (&lid, &first) in &state.lists {
        let mut cur = first;
        let mut guard = state.blocks.len() + 1;
        while let Some(b) = cur {
            if guard == 0 {
                break;
            }
            guard -= 1;
            if !visited.insert(b) {
                report.push(
                    Severity::Error,
                    Kind::ListCycle,
                    None,
                    format!("list {lid} revisits block {b} (cycle or cross-linked lists)"),
                );
                break;
            }
            let Some(e) = state.blocks.get(&b) else {
                report.push(
                    Severity::Error,
                    Kind::DanglingLink,
                    None,
                    format!("list {lid} links to block {b}, which does not exist"),
                );
                break;
            };
            // A checkpoint stores ownership explicitly; the replay only
            // derives it, so the comparison is meaningful in checkpoint
            // mode alone.
            if authoritative && e.list != lid {
                report.push(
                    Severity::Error,
                    Kind::ListOwnershipMismatch,
                    None,
                    format!("block {b} is owned by list {} but chained on list {lid}", e.list),
                );
            }
            cur = e.next;
        }
    }

    for (&bid, b) in &state.blocks {
        if visited.contains(&bid) {
            continue;
        }
        if authoritative {
            report.push(
                Severity::Error,
                Kind::UnreachableBlock,
                None,
                format!("block {bid} (list {}) is not reachable from any list head", b.list),
            );
        } else if b.list == PROVISIONAL_LIST {
            report.push(
                Severity::Info,
                Kind::OrphanBlock,
                None,
                format!("block {bid} was never attached to a list; recovery drops it"),
            );
        } else {
            report.push(
                Severity::Warning,
                Kind::UnattachedBlock,
                None,
                format!("block {bid} claims list {} but is not on its chain", b.list),
            );
        }
    }
}
