//! `ldck` command line: check an LLD disk image file.
//!
//! ```text
//! ldck [--segment-bytes N] [--summary-bytes N] [--quiet] IMAGE
//! ldck --selftest
//! ```
//!
//! Exit status: 0 when the image has no error-severity findings, 1 when it
//! does, 2 on usage or I/O problems.

use std::process::ExitCode;

use ldck::{check_image, Report, Severity};

struct Options {
    segment_bytes: usize,
    summary_bytes: usize,
    quiet: bool,
    selftest: bool,
    image: Option<String>,
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("ldck: {msg}");
            eprintln!(
                "usage: ldck [--segment-bytes N] [--summary-bytes N] [--quiet] IMAGE\n\
                 \x20      ldck --selftest"
            );
            return ExitCode::from(2);
        }
    };

    if opts.selftest {
        return selftest();
    }

    let Some(path) = opts.image.as_deref() else {
        eprintln!("ldck: no image file given (or use --selftest)");
        return ExitCode::from(2);
    };
    let image = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("ldck: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let config = lld::LldConfig {
        segment_bytes: opts.segment_bytes,
        summary_bytes: opts.summary_bytes,
        ..lld::LldConfig::default()
    };
    let report = check_image(&image, &config);
    print_report(&report, opts.quiet);
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        segment_bytes: 512 << 10,
        summary_bytes: 8 << 10,
        quiet: false,
        selftest: false,
        image: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--segment-bytes" => {
                let v = args.next().ok_or("--segment-bytes needs a value")?;
                opts.segment_bytes = parse_size(&v)?;
            }
            "--summary-bytes" => {
                let v = args.next().ok_or("--summary-bytes needs a value")?;
                opts.summary_bytes = parse_size(&v)?;
            }
            "-q" | "--quiet" => opts.quiet = true,
            "--selftest" => opts.selftest = true,
            s if s.starts_with('-') => return Err(format!("unknown option {s}")),
            _ => {
                if opts.image.is_some() {
                    return Err("more than one image file given".into());
                }
                opts.image = Some(arg);
            }
        }
    }
    Ok(opts)
}

/// Parses a byte size with an optional `k`/`m` suffix (e.g. `512k`).
fn parse_size(s: &str) -> Result<usize, String> {
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'k' | b'K') => (&s[..s.len() - 1], 1usize << 10),
        Some(b'm' | b'M') => (&s[..s.len() - 1], 1usize << 20),
        _ => (s, 1),
    };
    digits
        .parse::<usize>()
        .map(|n| n * mult)
        .map_err(|_| format!("invalid size {s:?}"))
}

fn print_report(report: &Report, quiet: bool) {
    for f in &report.findings {
        if quiet && f.severity < Severity::Warning {
            continue;
        }
        println!("{f}");
    }
    let s = &report.stats;
    if !quiet {
        println!(
            "{} segments, {} valid summaries, {} records, checkpoint: {}, \
             {} blocks on {} lists",
            s.segments,
            s.valid_summaries,
            s.records,
            if s.checkpoint { "yes" } else { "no" },
            s.blocks,
            s.lists,
        );
        if s.bad_sectors > 0 {
            println!("{} remapped bad sector(s)", s.bad_sectors);
        }
    }
    let errors = report.errors().count();
    if errors > 0 {
        println!("ldck: {errors} error(s) found");
    } else if !quiet {
        println!("ldck: image is consistent");
    }
}

/// Built-in smoke test used by CI: formats an in-memory image, dirties and
/// cleanly shuts it down, and expects `ldck` to pass it, to pass its
/// crash-mode (checkpoint-invalidated) variant, and to flag a seeded
/// summary corruption, a forged remap-table entry under a live block, and
/// an unsorted remap table.
fn selftest() -> ExitCode {
    use ld_core::{FailureSet, ListHints, LogicalDisk, Pred, PredList};

    let config = lld::LldConfig::small_for_tests();
    let disk = simdisk::MemDisk::with_capacity(2 << 20);
    let mut ld = match lld::Lld::format(disk, config.clone()) {
        Ok(ld) => ld,
        Err(e) => return fail(&format!("format failed: {e}")),
    };
    let result = (|| -> ld_core::Result<()> {
        let lid = ld.new_list(PredList::Start, ListHints::default())?;
        let mut prev = None;
        for i in 0..24u8 {
            let pred = prev.map_or(Pred::Start, Pred::After);
            let bid = ld.new_block(lid, pred)?;
            ld.write(bid, &vec![i; 4096])?;
            prev = Some(bid);
        }
        ld.flush(FailureSet::PowerFailure)?;
        ld.shutdown()
    })();
    if let Err(e) = result {
        return fail(&format!("workload failed: {e}"));
    }
    let image = ld.into_disk().image_bytes();

    // 1. A cleanly shut down image must be consistent.
    let clean = check_image(&image, &config);
    if !clean.is_clean() || !clean.stats.checkpoint {
        print_report(&clean, false);
        return fail("clean image did not pass");
    }

    // 2. The same image with the checkpoint marker cleared (= what a
    //    started-then-crashed instance leaves behind) must also pass, via
    //    the sweep path.
    let mut crashed = image.clone();
    crashed[6] = 0;
    let swept = check_image(&crashed, &config);
    if !swept.is_clean() || swept.stats.checkpoint {
        print_report(&swept, false);
        return fail("checkpoint-less image did not pass the sweep check");
    }

    // 3. Corrupting one live summary byte must be detected.
    let layout = lld::Layout::compute(
        (image.len() / simdisk::SECTOR_SIZE) as u64,
        config.segment_bytes,
        config.summary_bytes,
    );
    let lld::checkpoint::CheckpointPeek::Valid(view) =
        lld::checkpoint::peek_image(&image, &layout)
    else {
        return fail("clean image lost its checkpoint");
    };
    let Some(live_seg) = view
        .usage
        .iter()
        .position(|u| u.state == lld::checkpoint::SegStateView::Live)
    else {
        return fail("no live segment to corrupt");
    };
    let mut corrupt = image.clone();
    let target = layout.summary_base(live_seg as u32) as usize * simdisk::SECTOR_SIZE;
    corrupt[target + 16] ^= 0xFF;
    let flagged = check_image(&corrupt, &config);
    if flagged.is_clean() {
        print_report(&flagged, false);
        return fail("summary corruption went undetected");
    }

    // 4. A remap table claiming a sector under a live block must be
    //    flagged: scrub relocates data before remapping, so no honest
    //    image pairs a live extent with a bad sector.
    let Some(live_sector) = view
        .blocks
        .iter()
        .find(|b| b.seg < layout.segments && b.stored_len > 0)
        .map(|b| layout.data_sector_span(b.seg, b.offset as usize, b.stored_len as usize).0)
    else {
        return fail("no on-disk live block to forge a remap entry for");
    };
    let mut forged = image.clone();
    if !lld::checkpoint::forge_bad_sector_table(&mut forged, &layout, &[live_sector]) {
        return fail("could not forge a bad-sector table");
    }
    let remapped = check_image(&forged, &config);
    if remapped.is_clean() {
        print_report(&remapped, false);
        return fail("live block on a remapped sector went undetected");
    }

    // 5. An unsorted remap table is structurally malformed.
    let mut unsorted = image.clone();
    let s0 = layout.segment_base(0);
    if !lld::checkpoint::forge_bad_sector_table(&mut unsorted, &layout, &[s0 + 1, s0]) {
        return fail("could not forge an unsorted bad-sector table");
    }
    let malformed = check_image(&unsorted, &config);
    if malformed.is_clean() {
        print_report(&malformed, false);
        return fail("unsorted remap table went undetected");
    }

    println!("ldck: selftest passed");
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("ldck: selftest: {msg}");
    ExitCode::from(1)
}
