//! Property tests for the LZSS codec.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any byte vector round-trips exactly.
    #[test]
    fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let c = ldcomp::compress(&data);
        prop_assert!(c.len() <= ldcomp::compress_bound(data.len()));
        let d = ldcomp::decompress(&c).unwrap();
        prop_assert_eq!(d, data);
    }

    /// Highly structured data (repeated small alphabet) round-trips and shrinks.
    #[test]
    fn roundtrip_structured(
        seed in any::<u64>(),
        alphabet in 1usize..8,
        len in 64usize..4096,
    ) {
        let mut x = seed | 1;
        let data: Vec<u8> = (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x as usize % alphabet) as u8
            })
            .collect();
        let c = ldcomp::compress(&data);
        let d = ldcomp::decompress(&c).unwrap();
        prop_assert_eq!(&d, &data);
        if len >= 1024 {
            prop_assert!(c.len() < data.len(), "small-alphabet data must compress");
        }
    }

    /// Decompression of arbitrary garbage never panics.
    #[test]
    fn decompress_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = ldcomp::decompress(&data);
    }
}
