//! Lossless block compressor for LLD's per-list compression hint.
//!
//! The paper (§3.3) uses an algorithm due to Wheeler, chosen "for its
//! simplicity and performance" and achieving a compression ratio of about
//! 60 % (compressed size / original size) on file-system data. Wheeler's
//! code is not published in reusable form, so this crate substitutes an
//! LZSS-style compressor with the same operational profile: byte-oriented,
//! single-pass, bounded window, fast enough that a software implementation
//! sits between the disk's media rate and an order of magnitude below it.
//!
//! The evaluation only depends on two properties of the codec, both modeled
//! explicitly:
//!
//! - the **ratio** (~60 % on the benchmark's synthetic file data; the
//!   workload generator in `ld-bench` emits data calibrated for that), and
//! - the **bandwidth** relative to the disk, captured by [`CostModel`] and
//!   charged to the simulated clock. The defaults are derived from the
//!   paper's §4.2 measurements: with compression, writes run at 1600 KB/s
//!   (compression pipelined with the previous segment's disk write, so
//!   compression is the bottleneck) and reads at 800 KB/s (read and
//!   decompression serialized).
//!
//! # Format
//!
//! One tag byte (`0` = stored, `1` = LZSS), then a little-endian `u32`
//! payload length, then the payload. Incompressible input falls back to
//! stored form, so `compress` never expands input by more than
//! [`HEADER_LEN`] bytes.

/// Bytes of framing added to stored (incompressible) input.
pub const HEADER_LEN: usize = 5;

const TAG_STORED: u8 = 0;
const TAG_LZSS: u8 = 1;

/// Sliding-window size (offsets are 12 bits).
const WINDOW: usize = 4096;
/// Shortest match worth encoding.
const MIN_MATCH: usize = 3;
/// Longest encodable match (4-bit length field).
const MAX_MATCH: usize = MIN_MATCH + 15;

/// Errors returned by [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The input is shorter than the fixed header.
    Truncated,
    /// The tag byte names an unknown format.
    BadTag(u8),
    /// The token stream is malformed (offset before start of output,
    /// stream ends mid-token, or the output length disagrees with the
    /// header).
    Corrupt(&'static str),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed input truncated"),
            CompressError::BadTag(t) => write!(f, "unknown compression tag {t}"),
            CompressError::Corrupt(what) => write!(f, "corrupt compressed stream: {what}"),
        }
    }
}

impl std::error::Error for CompressError {}

/// Compresses `input`, falling back to stored form when LZSS would not
/// shrink it.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let lzss = lzss_encode(input);
    if lzss.len() < input.len() {
        let mut out = Vec::with_capacity(HEADER_LEN + lzss.len());
        out.push(TAG_LZSS);
        out.extend_from_slice(&(input.len() as u32).to_le_bytes());
        out.extend_from_slice(&lzss);
        out
    } else {
        let mut out = Vec::with_capacity(HEADER_LEN + input.len());
        out.push(TAG_STORED);
        out.extend_from_slice(&(input.len() as u32).to_le_bytes());
        out.extend_from_slice(input);
        out
    }
}

/// Decompresses a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    if input.len() < HEADER_LEN {
        return Err(CompressError::Truncated);
    }
    let tag = input[0];
    let len = u32::from_le_bytes([input[1], input[2], input[3], input[4]]) as usize;
    let body = &input[HEADER_LEN..];
    match tag {
        TAG_STORED => {
            if body.len() != len {
                return Err(CompressError::Corrupt("stored length mismatch"));
            }
            Ok(body.to_vec())
        }
        TAG_LZSS => lzss_decode(body, len),
        other => Err(CompressError::BadTag(other)),
    }
}

/// Upper bound on `compress(input).len()` for an input of `len` bytes.
pub fn compress_bound(len: usize) -> usize {
    HEADER_LEN + len
}

fn lzss_encode(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // Hash chains over 3-byte prefixes for match finding.
    const HASH_BITS: usize = 12;
    const HASH_SIZE: usize = 1 << HASH_BITS;
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; input.len()];

    let hash = |a: u8, b: u8, c: u8| -> usize {
        let v = (a as u32) | ((b as u32) << 8) | ((c as u32) << 16);
        (v.wrapping_mul(2654435761) >> (32 - HASH_BITS as u32)) as usize & (HASH_SIZE - 1)
    };

    let mut i = 0usize;
    let mut flag_pos = usize::MAX;
    let mut flag_bit = 8u8;
    let mut push_token = |out: &mut Vec<u8>, is_literal: bool, bytes: &[u8]| {
        if flag_bit == 8 {
            flag_pos = out.len();
            out.push(0);
            flag_bit = 0;
        }
        if is_literal {
            out[flag_pos] |= 1 << flag_bit;
        }
        flag_bit += 1;
        out.extend_from_slice(bytes);
    };

    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash(input[i], input[i + 1], input[i + 2]);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < 64 {
                let max = (input.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l == MAX_MATCH {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
            // Insert the current position into its chain.
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            // Match token: 12-bit (offset - 1), 4-bit (length - MIN_MATCH).
            let off = best_off - 1;
            let len = best_len - MIN_MATCH;
            let b0 = (off & 0xFF) as u8;
            let b1 = (((off >> 8) & 0x0F) as u8) | ((len as u8) << 4);
            push_token(&mut out, false, &[b0, b1]);
            // Register the skipped positions in the hash chains too, so
            // later matches can point into this region.
            for j in i + 1..i + best_len {
                if j + MIN_MATCH <= input.len() {
                    let h = hash(input[j], input[j + 1], input[j + 2]);
                    prev[j] = head[h];
                    head[h] = j;
                }
            }
            i += best_len;
        } else {
            push_token(&mut out, true, &[input[i]]);
            i += 1;
        }
    }
    out
}

fn lzss_decode(body: &[u8], expected_len: usize) -> Result<Vec<u8>, CompressError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0usize;
    while i < body.len() {
        let flags = body[i];
        i += 1;
        for bit in 0..8 {
            if i >= body.len() {
                break;
            }
            if out.len() >= expected_len {
                return Err(CompressError::Corrupt("data after final token"));
            }
            if flags & (1 << bit) != 0 {
                out.push(body[i]);
                i += 1;
            } else {
                if i + 1 >= body.len() {
                    return Err(CompressError::Corrupt("match token truncated"));
                }
                let b0 = body[i] as usize;
                let b1 = body[i + 1] as usize;
                i += 2;
                let off = (b0 | ((b1 & 0x0F) << 8)) + 1;
                let len = (b1 >> 4) + MIN_MATCH;
                if off > out.len() {
                    return Err(CompressError::Corrupt("offset before start"));
                }
                if out.len() + len > expected_len {
                    return Err(CompressError::Corrupt("output overrun"));
                }
                let start = out.len() - off;
                // Overlapping copy must proceed byte-by-byte.
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            }
        }
    }
    if out.len() != expected_len {
        return Err(CompressError::Corrupt("length mismatch"));
    }
    Ok(out)
}

/// Modeled CPU cost of compression, charged to the simulated clock.
///
/// Derived from the paper's §4.2 measurements on a 33 MHz SPARC (see the
/// crate docs): compression ~1600 KB/s of input, decompression ~1000 KB/s
/// of output. "As processor speeds increase the compression bandwidth will
/// increase and will not be a bottleneck" (§3.3) — scale the fields up to
/// model that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Compression throughput in input bytes per second.
    pub compress_bytes_per_sec: u64,
    /// Decompression throughput in output bytes per second.
    pub decompress_bytes_per_sec: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            compress_bytes_per_sec: 1_600_000,
            decompress_bytes_per_sec: 1_000_000,
        }
    }
}

impl CostModel {
    /// A model so fast compression never bottlenecks (hardware assist).
    pub fn free() -> Self {
        Self {
            compress_bytes_per_sec: u64::MAX,
            decompress_bytes_per_sec: u64::MAX,
        }
    }

    /// Microseconds to compress `len` input bytes.
    pub fn compress_us(&self, len: usize) -> u64 {
        if self.compress_bytes_per_sec == u64::MAX {
            0
        } else {
            (len as u64) * 1_000_000 / self.compress_bytes_per_sec
        }
    }

    /// Microseconds to decompress to `len` output bytes.
    pub fn decompress_us(&self, len: usize) -> u64 {
        if self.decompress_bytes_per_sec == u64::MAX {
            0
        } else {
            (len as u64) * 1_000_000 / self.decompress_bytes_per_sec
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn roundtrip_repetitive_shrinks() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(100);
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 3,
            "repetitive text should shrink a lot"
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_input_is_stored_with_bounded_overhead() {
        let mut data = vec![0u8; 4096];
        let mut x = 0x9E3779B97F4A7C15u64;
        for b in data.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = (x >> 32) as u8;
        }
        let c = compress(&data);
        assert!(c.len() <= compress_bound(data.len()));
        assert_eq!(c[0], TAG_STORED);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_long_runs_and_overlapping_matches() {
        roundtrip(&vec![0u8; 100_000]);
        let mut data = Vec::new();
        for i in 0..50_000u32 {
            data.push((i % 7) as u8);
        }
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        roundtrip(&data);
    }

    #[test]
    fn truncated_input_is_rejected() {
        assert_eq!(decompress(&[]), Err(CompressError::Truncated));
        assert_eq!(decompress(&[1, 2, 3]), Err(CompressError::Truncated));
    }

    #[test]
    fn bad_tag_is_rejected() {
        assert_eq!(decompress(&[9, 0, 0, 0, 0]), Err(CompressError::BadTag(9)));
    }

    #[test]
    fn corrupt_streams_do_not_panic() {
        let data = b"hello hello hello hello hello hello".repeat(10);
        let mut c = compress(&data);
        assert_eq!(c[0], TAG_LZSS);
        // Flip every byte one at a time; decompression must return Ok or
        // Err, never panic.
        for i in 0..c.len() {
            c[i] ^= 0xFF;
            let _ = decompress(&c);
            c[i] ^= 0xFF;
        }
        // Truncate at every length.
        for l in 0..c.len() {
            let _ = decompress(&c[..l]);
        }
    }

    #[test]
    fn stored_length_mismatch_is_rejected() {
        let mut c = compress(&[7u8; 8]);
        if c[0] == TAG_STORED {
            c.push(0xAA);
            assert_eq!(
                decompress(&c),
                Err(CompressError::Corrupt("stored length mismatch"))
            );
        }
    }

    #[test]
    fn cost_model_charges_linear_time() {
        let m = CostModel::default();
        assert_eq!(m.compress_us(1_600_000), 1_000_000);
        assert_eq!(m.decompress_us(500_000), 500_000);
        let f = CostModel::free();
        assert_eq!(f.compress_us(1 << 30), 0);
        assert_eq!(f.decompress_us(1 << 30), 0);
    }

    #[test]
    fn filesystemish_data_reaches_paper_ratio() {
        // Synthetic "file system" content: textual lines with shared
        // vocabulary, the kind of data for which the paper assumes a 60 %
        // ratio. The bench workload generator produces the same shape.
        let mut data = Vec::new();
        let words = [
            "config", "value", "system", "kernel", "buffer", "logical", "disk", "segment",
        ];
        let mut x = 42u64;
        while data.len() < 64 << 10 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = words[(x >> 33) as usize % words.len()];
            data.extend_from_slice(w.as_bytes());
            data.push(b'=');
            data.extend_from_slice(((x >> 16) as u16).to_string().as_bytes());
            data.push(b'\n');
        }
        let c = compress(&data);
        let ratio = c.len() as f64 / data.len() as f64;
        assert!(
            ratio < 0.65,
            "ratio {ratio:.2} should be at or below the paper's 60% ballpark"
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }
}
