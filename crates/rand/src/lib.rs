//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a package registry, so the
//! workspace ships a minimal, deterministic implementation of exactly the
//! `rand 0.8` surface it consumes: `StdRng` + `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range}` over half-open integer ranges, and
//! `SliceRandom::shuffle`.
//!
//! The generator is SplitMix64, seeded purely from the caller-provided
//! seed — there is deliberately no entropy source, so every workload in
//! the benchmark harness is reproducible bit-for-bit across runs and
//! machines (the real `StdRng` makes no cross-version stability promise;
//! this one does).

use std::ops::Range;

/// Core of a random number generator: a 64-bit output stream.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators. Only `seed_from_u64` is provided — the one
/// constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Sr: SampleRange<T>>(&mut self, range: Sr) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::RngCore;

    /// Slice shuffling (stand-in for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }
}
