//! Vendored offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace ships a
//! small, deterministic property-testing harness implementing exactly the
//! proptest 1.x surface its tests use:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(..)]`, multiple
//!   `#[test]` functions, `arg in strategy` bindings);
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] returning
//!   [`test_runner::TestCaseError`] so helpers can use `?`;
//! - strategies: `any::<T>()`, integer ranges, tuples, `Just`,
//!   `.prop_map(..)`, weighted [`prop_oneof!`], `collection::vec`,
//!   `sample::Index`;
//! - [`test_runner::Config`] (`ProptestConfig::with_cases`).
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** On failure the harness panics with the case number
//!   and a debug dump of every generated input; seeds are a pure function
//!   of (module path, test name, case index) so a failure replays exactly
//!   under `cargo test`.
//! - **No persistence files and no entropy.** Generation is fully
//!   deterministic, which also keeps the whole workspace free of OS
//!   randomness (enforced by `xtask lint`).

pub mod test_runner {
    //! Case driving: configuration, RNG, and failure type.

    use std::fmt;

    /// Per-test configuration (stand-in for `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be discarded (`prop_assume!`-style).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            Self::Fail(reason.into())
        }

        /// A rejected (discarded) case with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            Self::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Fail(r) => write!(f, "{r}"),
                Self::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result of one test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 generator driving all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator from a raw seed.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// The generator for one case of one test: a pure function of the
        /// test's identity and the case index, so failures replay exactly.
        pub fn for_case(module: &str, test: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in module.bytes().chain([0x1f]).chain(test.bytes()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut rng = Self::new(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            rng.next_u64(); // decorrelate nearby seeds
            rng
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty bound");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Strategy trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree: `new_value` draws a
    /// fresh value directly (no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Weighted choice among strategies of one value type (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// A union of `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if the arms are empty or all weights are zero — a
        /// malformed `prop_oneof!`, which is a programming error.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Self { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.new_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    lo + rng.below(span) as $t
                }
            }
        )+};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A/a);
    impl_tuple_strategy!(A/a, B/b);
    impl_tuple_strategy!(A/a, B/b, C/c);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    //! Sampling helpers (`prop::sample`).

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A deferred index into a collection whose size is chosen later
    /// (stand-in for `proptest::sample::Index`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `[0, len)`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`, matching real proptest.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Self(rng.next_u64())
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible element counts for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of the element strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with the given element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + if span > 0 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias so `prop::sample::Index`-style paths resolve.
    pub use crate as prop;
}

/// Defines `#[test]` functions that run a body over generated inputs.
///
/// Supported form (one or more functions, each with its own attributes):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_test(x in 0u8..10, v in collection::vec(any::<bool>(), 3)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$attr:meta])*
        $vis:vis fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        $vis fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    module_path!(),
                    stringify!($name),
                    case as u64,
                );
                $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {}
                    Ok(Err($crate::test_runner::TestCaseError::Fail(reason))) => panic!(
                        "proptest case {}/{} of `{}` failed: {}\ninputs:\n{}",
                        case + 1, config.cases, stringify!($name), reason, inputs
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest case {}/{} of `{}` panicked; inputs:\n{}",
                            case + 1, config.cases, stringify!($name), inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Weighted (or unweighted) choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Asserts inside a proptest body/helper, returning `Err(TestCaseError)`
/// instead of panicking so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: {:?}",
            format!($($fmt)+), l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (5u8..9).new_value(&mut rng);
            assert!((5..9).contains(&v));
            let w = (0usize..4096).new_value(&mut rng);
            assert!(w < 4096);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(2);
        let s = crate::collection::vec(any::<u8>(), 1..100);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((1..100).contains(&v.len()));
        }
        let exact = crate::collection::vec(any::<bool>(), 24usize);
        assert_eq!(exact.new_value(&mut rng).len(), 24);
    }

    #[test]
    fn oneof_weights_cover_all_arms() {
        let mut rng = TestRng::new(3);
        let s = prop_oneof![
            3 => Just(0u8),
            1 => Just(1u8),
            1 => (2u8..4),
        ];
        let mut seen = [false; 4];
        for _ in 0..400 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all arms reachable: {seen:?}");
    }

    #[test]
    fn index_projects_into_len() {
        let mut rng = TestRng::new(4);
        for _ in 0..100 {
            let i = any::<prop::sample::Index>().new_value(&mut rng);
            assert!(i.index(64) < 64);
            assert!(i.index(1) == 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = crate::collection::vec((any::<u16>(), 0u8..7), 1..50);
        let a = s.new_value(&mut TestRng::for_case("m", "t", 9));
        let b = s.new_value(&mut TestRng::for_case("m", "t", 9));
        let c = s.new_value(&mut TestRng::for_case("m", "t", 10));
        assert_eq!(a, b);
        assert_ne!(a, c, "distinct cases should differ (overwhelmingly)");
    }

    fn helper(x: u8) -> Result<(), TestCaseError> {
        prop_assert!(x < 200, "x too big: {}", x);
        prop_assert_eq!(x % 1, 0);
        prop_assert_ne!(x as u16 + 1, 0u16);
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments before `#[test]` must parse.
        #[test]
        fn macro_end_to_end(x in 0u8..100, v in crate::collection::vec(any::<bool>(), 0..5)) {
            helper(x)?;
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn second_fn_in_same_block(pair in (any::<u8>(), 1u16..9)) {
            prop_assert!(pair.1 >= 1 && pair.1 < 9);
        }
    }

    mod failing {
        use crate::prelude::*;
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            pub fn always_fails(x in 0u8..10) {
                prop_assert!(x > 250, "impossible");
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_case_reports_inputs() {
        failing::always_fails();
    }
}
