//! Sparse in-memory sector store.
//!
//! A simulated disk can be multiple gigabytes; most experiments touch a small
//! fraction of it. Sectors are stored in lazily allocated fixed-size pages so
//! memory scales with the touched footprint, not the disk capacity.
//! Unwritten sectors read back as zeroes, like a freshly formatted drive.

use crate::geometry::SECTOR_SIZE;

/// Sectors per page: 128 sectors = 64 KiB pages.
const SECTORS_PER_PAGE: u64 = 128;
const PAGE_BYTES: usize = SECTORS_PER_PAGE as usize * SECTOR_SIZE;

/// Lazily allocated sector array.
#[derive(Debug)]
pub struct SparseStore {
    pages: Vec<Option<Box<[u8]>>>,
    total_sectors: u64,
}

impl SparseStore {
    /// Creates a store for `total_sectors` sectors, initially all zero.
    pub fn new(total_sectors: u64) -> Self {
        let npages = total_sectors.div_ceil(SECTORS_PER_PAGE) as usize;
        Self {
            pages: (0..npages).map(|_| None).collect(),
            total_sectors,
        }
    }

    /// Number of addressable sectors.
    pub fn total_sectors(&self) -> u64 {
        self.total_sectors
    }

    /// Bytes of memory currently committed to page storage.
    pub fn resident_bytes(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count() * PAGE_BYTES
    }

    /// Copies the entire sector array into one contiguous buffer
    /// (`total_sectors * SECTOR_SIZE` bytes, unwritten sectors zero) — the
    /// raw disk image, for offline analysis tools.
    pub fn snapshot(&self) -> Vec<u8> {
        let total = self.total_sectors as usize * SECTOR_SIZE;
        let mut out = vec![0u8; total];
        for (i, page) in self.pages.iter().enumerate() {
            if let Some(data) = page {
                let start = i * PAGE_BYTES;
                let end = (start + PAGE_BYTES).min(total);
                out[start..end].copy_from_slice(&data[..end - start]);
            }
        }
        out
    }

    /// Restores the sector array from a contiguous image previously
    /// captured with [`snapshot`](Self::snapshot). All-zero pages stay
    /// unallocated, so sparsity survives a snapshot/load round trip.
    ///
    /// # Panics
    ///
    /// Panics if the image is not a whole number of pages covering exactly
    /// this store's capacity (i.e. anything but a [`snapshot`](Self::snapshot)
    /// of an identically-sized store).
    pub fn load(&mut self, image: &[u8]) {
        assert_eq!(
            image.len(),
            self.total_sectors as usize * SECTOR_SIZE,
            "image size must match device capacity"
        );
        for (i, chunk) in image.chunks(PAGE_BYTES).enumerate() {
            if chunk.iter().all(|&b| b == 0) {
                self.pages[i] = None;
            } else {
                let mut page = vec![0u8; PAGE_BYTES].into_boxed_slice();
                page[..chunk.len()].copy_from_slice(chunk);
                self.pages[i] = Some(page);
            }
        }
    }

    /// Reads one sector into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `sector` is out of range or `buf` is not exactly one sector;
    /// the device front-end validates user-facing ranges before calling.
    pub fn read_sector(&self, sector: u64, buf: &mut [u8]) {
        assert!(sector < self.total_sectors, "sector {sector} out of range");
        assert_eq!(buf.len(), SECTOR_SIZE);
        let (page, offset) = Self::locate(sector);
        match &self.pages[page] {
            Some(data) => buf.copy_from_slice(&data[offset..offset + SECTOR_SIZE]),
            None => buf.fill(0),
        }
    }

    /// Writes one sector from `data`.
    ///
    /// # Panics
    ///
    /// Panics if `sector` is out of range or `data` is not exactly one sector.
    pub fn write_sector(&mut self, sector: u64, data: &[u8]) {
        assert!(sector < self.total_sectors, "sector {sector} out of range");
        assert_eq!(data.len(), SECTOR_SIZE);
        let (page, offset) = Self::locate(sector);
        let page = self.pages[page].get_or_insert_with(|| vec![0u8; PAGE_BYTES].into_boxed_slice());
        page[offset..offset + SECTOR_SIZE].copy_from_slice(data);
    }

    fn locate(sector: u64) -> (usize, usize) {
        let page = (sector / SECTORS_PER_PAGE) as usize;
        let offset = (sector % SECTORS_PER_PAGE) as usize * SECTOR_SIZE;
        (page, offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_sectors_read_zero() {
        let store = SparseStore::new(1000);
        let mut buf = [0xAAu8; SECTOR_SIZE];
        store.read_sector(999, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(store.resident_bytes(), 0);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut store = SparseStore::new(10_000);
        let mut data = [0u8; SECTOR_SIZE];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        store.write_sector(4242, &data);
        let mut buf = [0u8; SECTOR_SIZE];
        store.read_sector(4242, &mut buf);
        assert_eq!(buf, data);
        // Neighbouring sector in the same page is untouched.
        store.read_sector(4243, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn memory_scales_with_touched_pages_not_capacity() {
        // 1 GiB disk, touch two far-apart sectors: two pages resident.
        let mut store = SparseStore::new((1 << 30) / SECTOR_SIZE as u64);
        let data = [1u8; SECTOR_SIZE];
        store.write_sector(0, &data);
        store.write_sector(store.total_sectors() - 1, &data);
        assert_eq!(store.resident_bytes(), 2 * PAGE_BYTES);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let mut store = SparseStore::new(8);
        store.write_sector(8, &[0u8; SECTOR_SIZE]);
    }
}
