//! Disk geometry: cylinders, heads, sectors per track, and CHS mapping.

/// Size of one disk sector in bytes.
///
/// All transfers to and from the simulated disk are in whole sectors.
pub const SECTOR_SIZE: usize = 512;

/// Physical geometry of a simulated disk.
///
/// Logical sector numbers are mapped onto (cylinder, head, sector) triples in
/// the conventional order: sectors within a track, then tracks within a
/// cylinder, then cylinders. The timing model uses the mapping to decide when
/// a transfer crosses a track or cylinder boundary and how far a seek moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of cylinders (seek positions).
    pub cylinders: u32,
    /// Number of heads, i.e. tracks per cylinder.
    pub heads: u32,
    /// Number of sectors in one track.
    pub sectors_per_track: u32,
}

/// A decomposed physical position on the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chs {
    /// Cylinder index, `0..cylinders`.
    pub cylinder: u32,
    /// Head (track-within-cylinder) index, `0..heads`.
    pub head: u32,
    /// Sector index within the track, `0..sectors_per_track`.
    pub sector: u32,
}

impl Geometry {
    /// Creates a geometry and validates that no dimension is zero.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; a zero-sized disk is always a
    /// configuration bug, never a runtime condition.
    pub fn new(cylinders: u32, heads: u32, sectors_per_track: u32) -> Self {
        assert!(
            cylinders > 0 && heads > 0 && sectors_per_track > 0,
            "disk geometry dimensions must be non-zero"
        );
        Self {
            cylinders,
            heads,
            sectors_per_track,
        }
    }

    /// Returns the smallest geometry with the given track shape whose
    /// capacity is at least `bytes`.
    ///
    /// Used by tests and benchmarks to build a disk "of roughly N megabytes"
    /// without hand-computing cylinder counts.
    pub fn with_capacity(bytes: u64, heads: u32, sectors_per_track: u32) -> Self {
        let per_cyl = u64::from(heads) * u64::from(sectors_per_track) * SECTOR_SIZE as u64;
        let cylinders = bytes.div_ceil(per_cyl).max(1);
        Self::new(
            u32::try_from(cylinders).expect("capacity requires too many cylinders"), // PANIC-OK: documented panic contract (see # Panics)
            heads,
            sectors_per_track,
        )
    }

    /// Total number of addressable sectors.
    pub fn total_sectors(&self) -> u64 {
        u64::from(self.cylinders) * self.sectors_per_cylinder()
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_sectors() * SECTOR_SIZE as u64
    }

    /// Number of sectors in one cylinder.
    pub fn sectors_per_cylinder(&self) -> u64 {
        u64::from(self.heads) * u64::from(self.sectors_per_track)
    }

    /// Maps a logical sector number to its physical position.
    ///
    /// # Panics
    ///
    /// Panics if `sector` is beyond the end of the disk; callers are expected
    /// to have validated the range (the device front-end does).
    pub fn chs(&self, sector: u64) -> Chs {
        assert!(
            sector < self.total_sectors(),
            "sector {sector} out of range (disk has {} sectors)",
            self.total_sectors()
        );
        let per_cyl = self.sectors_per_cylinder();
        let spt = u64::from(self.sectors_per_track);
        let cylinder = (sector / per_cyl) as u32;
        let within = sector % per_cyl;
        Chs {
            cylinder,
            head: (within / spt) as u32,
            sector: (within % spt) as u32,
        }
    }

    /// Returns the cylinder that holds `sector`.
    pub fn cylinder_of(&self, sector: u64) -> u32 {
        self.chs(sector).cylinder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chs_roundtrip_covers_all_dimensions() {
        let g = Geometry::new(4, 3, 5);
        assert_eq!(g.total_sectors(), 60);
        let mut seen = Vec::new();
        for s in 0..g.total_sectors() {
            let chs = g.chs(s);
            assert!(chs.cylinder < 4 && chs.head < 3 && chs.sector < 5);
            seen.push((chs.cylinder, chs.head, chs.sector));
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 60, "CHS mapping must be a bijection");
    }

    #[test]
    fn chs_orders_sectors_then_tracks_then_cylinders() {
        let g = Geometry::new(2, 2, 4);
        assert_eq!(
            g.chs(0),
            Chs {
                cylinder: 0,
                head: 0,
                sector: 0
            }
        );
        assert_eq!(
            g.chs(3),
            Chs {
                cylinder: 0,
                head: 0,
                sector: 3
            }
        );
        assert_eq!(
            g.chs(4),
            Chs {
                cylinder: 0,
                head: 1,
                sector: 0
            }
        );
        assert_eq!(
            g.chs(8),
            Chs {
                cylinder: 1,
                head: 0,
                sector: 0
            }
        );
    }

    #[test]
    fn with_capacity_rounds_up_to_whole_cylinders() {
        let g = Geometry::with_capacity(1, 2, 4);
        assert_eq!(g.cylinders, 1);
        let g = Geometry::with_capacity(400 << 20, 19, 60);
        assert!(g.capacity_bytes() >= 400 << 20);
        assert!(g.capacity_bytes() - (400 << 20) < g.sectors_per_cylinder() * SECTOR_SIZE as u64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chs_rejects_out_of_range_sector() {
        let g = Geometry::new(1, 1, 4);
        let _ = g.chs(4);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_geometry_rejected() {
        let _ = Geometry::new(0, 1, 1);
    }
}
