//! Operation and timing statistics for a simulated disk.

/// Counters accumulated by a [`crate::SimDisk`].
///
/// The time fields decompose where simulated disk time went, which the
/// benchmark harness uses to attribute costs (seek-bound vs transfer-bound
/// workloads) when regenerating the paper's tables.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of read requests.
    pub read_ops: u64,
    /// Read requests served entirely from the drive's read-ahead buffer.
    pub cached_reads: u64,
    /// Read requests that missed the read-ahead buffer and went to the
    /// medium (only counted while the drive has a read-ahead buffer, so
    /// `cached_reads + cache_misses == read_ops` on such drives).
    pub cache_misses: u64,
    /// Number of write requests.
    pub write_ops: u64,
    /// Sectors read.
    pub sectors_read: u64,
    /// Sectors written.
    pub sectors_written: u64,
    /// Non-null seeks performed.
    pub seeks: u64,
    /// Time spent seeking, microseconds.
    pub seek_us: u64,
    /// Time spent waiting for rotation, microseconds.
    pub rotation_us: u64,
    /// Time spent transferring data, microseconds.
    pub transfer_us: u64,
    /// Time spent on head/cylinder switches during transfers, microseconds.
    pub switch_us: u64,
    /// Per-command host and controller overhead, microseconds.
    pub overhead_us: u64,
    /// Sector-read attempts failed by the media-fault model.
    pub read_faults: u64,
}

impl DiskStats {
    /// Total time the disk spent servicing requests, microseconds.
    pub fn busy_us(&self) -> u64 {
        self.seek_us + self.rotation_us + self.transfer_us + self.switch_us + self.overhead_us
    }

    /// Total bytes transferred in either direction.
    pub fn bytes_transferred(&self) -> u64 {
        (self.sectors_read + self.sectors_written) * crate::geometry::SECTOR_SIZE as u64
    }

    /// Returns `self - earlier`, for measuring a benchmark phase.
    ///
    /// Returns `None` if `earlier` is not actually an earlier snapshot of
    /// the same counter set (any field would underflow) — e.g. snapshots
    /// taken across a [`crate::SimDisk::reset_stats`].
    pub fn delta_since(&self, earlier: &DiskStats) -> Option<DiskStats> {
        Some(DiskStats {
            read_ops: self.read_ops.checked_sub(earlier.read_ops)?,
            cached_reads: self.cached_reads.checked_sub(earlier.cached_reads)?,
            cache_misses: self.cache_misses.checked_sub(earlier.cache_misses)?,
            write_ops: self.write_ops.checked_sub(earlier.write_ops)?,
            sectors_read: self.sectors_read.checked_sub(earlier.sectors_read)?,
            sectors_written: self.sectors_written.checked_sub(earlier.sectors_written)?,
            seeks: self.seeks.checked_sub(earlier.seeks)?,
            seek_us: self.seek_us.checked_sub(earlier.seek_us)?,
            rotation_us: self.rotation_us.checked_sub(earlier.rotation_us)?,
            transfer_us: self.transfer_us.checked_sub(earlier.transfer_us)?,
            switch_us: self.switch_us.checked_sub(earlier.switch_us)?,
            overhead_us: self.overhead_us.checked_sub(earlier.overhead_us)?,
            read_faults: self.read_faults.checked_sub(earlier.read_faults)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_time_sums_components() {
        let s = DiskStats {
            seek_us: 10,
            rotation_us: 20,
            transfer_us: 30,
            switch_us: 5,
            overhead_us: 7,
            ..DiskStats::default()
        };
        assert_eq!(s.busy_us(), 72);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = DiskStats {
            read_ops: 3,
            sectors_read: 24,
            seek_us: 100,
            ..DiskStats::default()
        };
        let b = DiskStats {
            read_ops: 5,
            sectors_read: 40,
            seek_us: 180,
            ..DiskStats::default()
        };
        let d = b.delta_since(&a).expect("b is later than a");
        assert_eq!(d.read_ops, 2);
        assert_eq!(d.sectors_read, 16);
        assert_eq!(d.seek_us, 80);
    }

    // Regression: `delta_since` used to subtract with bare `-`, panicking
    // when the "earlier" snapshot was taken after a stats reset (or from a
    // different disk).
    #[test]
    fn delta_since_underflow_is_none_not_a_panic() {
        let newer = DiskStats {
            read_ops: 3,
            ..DiskStats::default()
        };
        let older = DiskStats {
            read_ops: 5,
            ..DiskStats::default()
        };
        assert_eq!(newer.delta_since(&older), None);
        // The reflexive delta is all-zero, not an error.
        assert_eq!(newer.delta_since(&newer), Some(DiskStats::default()));
    }
}
