//! Disk timing model: seek curve, rotational latency, and transfer rate.
//!
//! The model follows the structure used by Ruemmler and Wilkes' disk modeling
//! work: a square-root seek curve (acceleration-limited short seeks, roughly
//! linear long seeks), an explicit rotational position derived from simulated
//! time, and per-sector transfer at the media rate. Track and cylinder
//! switches during a multi-sector transfer are charged a fixed cost; the
//! on-disk layout is assumed to be skewed so that a sequential transfer does
//! not additionally lose a revolution at each boundary.

use crate::geometry::Geometry;

/// Timing parameters of a simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingModel {
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Single-cylinder (track-to-track) seek time in microseconds.
    pub min_seek_us: u64,
    /// Full-stroke seek time in microseconds.
    pub max_seek_us: u64,
    /// Head-switch cost within a cylinder, microseconds.
    pub head_switch_us: u64,
    /// Per-request host + controller overhead in microseconds, charged once
    /// per `read`/`write` call before any mechanical activity.
    pub command_overhead_us: u64,
    /// SCSI bus transfer time per sector, microseconds — the rate at which
    /// the drive's read-ahead buffer is drained (SCSI-2 fast: ~10 MB/s).
    pub bus_sector_us: u64,
    /// Size of the drive's read-ahead buffer in sectors (0 disables the
    /// drive cache). After a media read the drive keeps reading the
    /// following sectors into its buffer; requests inside the buffered
    /// range cost only command overhead + bus transfer.
    pub readahead_buffer_sectors: u64,
}

impl TimingModel {
    /// Duration of one full revolution in microseconds.
    pub fn revolution_us(&self) -> u64 {
        // 60 s / rpm, in microseconds.
        60_000_000 / u64::from(self.rpm)
    }

    /// Time for one sector to pass under the head, in microseconds.
    pub fn sector_us(&self, geometry: &Geometry) -> u64 {
        self.revolution_us() / u64::from(geometry.sectors_per_track)
    }

    /// Media transfer rate in bytes per second.
    pub fn media_rate_bytes_per_sec(&self, geometry: &Geometry) -> u64 {
        let bytes_per_rev =
            u64::from(geometry.sectors_per_track) * crate::geometry::SECTOR_SIZE as u64;
        bytes_per_rev * 1_000_000 / self.revolution_us()
    }

    /// Seek time between two cylinders.
    ///
    /// Zero for a null seek; otherwise a square-root curve from
    /// [`min_seek_us`](Self::min_seek_us) at distance 1 to
    /// [`max_seek_us`](Self::max_seek_us) at full stroke.
    pub fn seek_us(&self, geometry: &Geometry, from_cyl: u32, to_cyl: u32) -> u64 {
        let distance = u64::from(from_cyl.abs_diff(to_cyl));
        if distance == 0 {
            return 0;
        }
        let max_distance = u64::from(geometry.cylinders.saturating_sub(1)).max(1);
        let span = self.max_seek_us.saturating_sub(self.min_seek_us) as f64;
        // Normalize so distance 1 costs `min_seek_us` and a full stroke costs
        // exactly `max_seek_us`.
        let denom = (max_distance - 1).max(1) as f64;
        let frac = ((distance - 1) as f64 / denom).sqrt();
        self.min_seek_us + (span * frac).round() as u64
    }

    /// Effective revolution length used for angular math: exactly
    /// `sectors_per_track * sector_us`, so sector positions tile the
    /// revolution without a fractional dead zone (≤ 0.1 % shorter than the
    /// nominal revolution due to integer division).
    pub fn effective_revolution_us(&self, geometry: &Geometry) -> u64 {
        u64::from(geometry.sectors_per_track) * self.sector_us(geometry)
    }

    /// The sector index currently passing under the heads at absolute
    /// simulated time `now_us`.
    ///
    /// All tracks are assumed to rotate in phase (skew is folded into the
    /// boundary-switch costs instead).
    pub fn sector_under_head(&self, geometry: &Geometry, now_us: u64) -> u32 {
        let angle_us = now_us % self.effective_revolution_us(geometry);
        (angle_us / self.sector_us(geometry)) as u32
    }

    /// Rotational delay until `target_sector` arrives under the head, given
    /// the current time.
    pub fn rotational_wait_us(&self, geometry: &Geometry, now_us: u64, target_sector: u32) -> u64 {
        let sector_us = self.sector_us(geometry);
        let rev = self.effective_revolution_us(geometry);
        let angle_us = now_us % rev;
        let target_us = u64::from(target_sector) * sector_us;
        if target_us >= angle_us {
            target_us - angle_us
        } else {
            rev - (angle_us - target_us)
        }
    }
}

/// Timing and geometry preset for the HP C3010 disk used in the paper's
/// evaluation (SCSI-II, ~2 GB, 5400 rpm, 11.5 ms average seek).
///
/// The seek endpoints are chosen so that the average seek over uniformly
/// random request pairs is ~11.5 ms, and the track density so that a
/// user-level process streaming 0.5 MB segments sees ~2400 KB/s while
/// back-to-back 4 KB writes see ~300 KB/s — the two raw-disk throughputs
/// reported in Section 4.2 (validated by experiment E12 and a unit test
/// below).
pub mod hp_c3010 {
    use super::TimingModel;
    use crate::geometry::Geometry;

    /// Full-disk geometry (~2.1 GB).
    pub fn geometry() -> Geometry {
        Geometry::new(3650, 19, 60)
    }

    /// Geometry for a partition-sized disk of at least `bytes` capacity with
    /// the same track shape (the paper uses a 400 MB partition).
    pub fn geometry_with_capacity(bytes: u64) -> Geometry {
        Geometry::with_capacity(bytes, 19, 60)
    }

    /// Timing parameters.
    pub fn timing() -> TimingModel {
        TimingModel {
            rpm: 5400,
            min_seek_us: 2_000,
            max_seek_us: 20_000,
            head_switch_us: 1_000,
            command_overhead_us: 1_500,
            bus_sector_us: 51,             // ~10 MB/s SCSI-2 fast.
            readahead_buffer_sectors: 256, // 128 KB drive cache segment.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (Geometry, TimingModel) {
        (hp_c3010::geometry(), hp_c3010::timing())
    }

    #[test]
    fn revolution_matches_rpm() {
        let (_, t) = model();
        // 5400 rpm => 11.11 ms per revolution.
        assert_eq!(t.revolution_us(), 11_111);
    }

    #[test]
    fn seek_zero_distance_is_free() {
        let (g, t) = model();
        assert_eq!(t.seek_us(&g, 100, 100), 0);
    }

    #[test]
    fn seek_curve_is_monotone_and_bounded() {
        let (g, t) = model();
        let mut last = 0;
        for d in [1u32, 2, 10, 100, 1000, g.cylinders - 1] {
            let s = t.seek_us(&g, 0, d);
            assert!(s >= last, "seek curve must be monotone");
            assert!(s >= t.min_seek_us && s <= t.max_seek_us);
            last = s;
        }
        assert_eq!(t.seek_us(&g, 0, g.cylinders - 1), t.max_seek_us);
    }

    #[test]
    fn average_random_seek_is_near_paper_value() {
        // The HP C3010 has an 11.5 ms average seek; check the calibrated
        // curve lands within 10 % of that over uniformly random pairs.
        let (g, t) = model();
        let mut total = 0u64;
        let mut n = 0u64;
        let mut x = 12345u64;
        for _ in 0..100_000 {
            // Simple xorshift; no rand dependency needed here.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = (x % u64::from(g.cylinders)) as u32;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let b = (x % u64::from(g.cylinders)) as u32;
            total += t.seek_us(&g, a, b);
            n += 1;
        }
        let avg = total / n;
        assert!(
            (10_350..=12_650).contains(&avg),
            "average seek {avg} us should be within 10% of 11.5 ms"
        );
    }

    #[test]
    fn rotational_wait_is_less_than_one_revolution() {
        let (g, t) = model();
        for now in [0u64, 17, 5_000, 11_110, 11_111, 123_456] {
            for target in [0u32, 1, 30, 59] {
                let w = t.rotational_wait_us(&g, now, target);
                assert!(w < t.revolution_us());
                // After waiting, the target sector is under the head.
                let arrived = t.sector_under_head(&g, now + w);
                assert_eq!(arrived, target);
            }
        }
    }

    #[test]
    fn media_rate_supports_paper_segment_throughput() {
        // 60 sectors/track at 5400 rpm = ~2.76 MB/s media rate, enough that
        // 0.5 MB segment writes land near the paper's 2400 KB/s after
        // overheads.
        let (g, t) = model();
        let rate = t.media_rate_bytes_per_sec(&g);
        assert!((2_600_000..=2_900_000).contains(&rate), "media rate {rate}");
    }
}
