//! A tagged command queue with pluggable, fully deterministic I/O
//! schedulers.
//!
//! The queue sits *in front of* a [`BlockDev`]: callers `submit` reads and
//! writes (each gets a monotonically increasing tag), the queue `dispatch`es
//! them one at a time in scheduler order, and every dispatched request
//! produces a [`Completion`]. Nothing here spends simulated time of its
//! own — all timing still comes from the device executing the chosen
//! request — so a queue at depth 1 is *bit-identical in time and state* to
//! calling the device directly.
//!
//! # Determinism rules
//!
//! Every schedule is a pure function of the submission order and the
//! simulated clock:
//!
//! - ties always break by submission tag (lowest first);
//! - all internal collections are order-preserving (`VecDeque`); there is
//!   no hash-map iteration anywhere in the dispatch path;
//! - cost estimates come from [`BlockDev::sched_access_us`] and friends,
//!   which are themselves functions of the simulated clock only.
//!
//! # Ordering rules (crash semantics)
//!
//! The scheduler may reorder *reads* freely with respect to each other and
//! to non-overlapping writes. It never reorders:
//!
//! - a write with respect to another write — **writes dispatch FIFO among
//!   themselves**, so a crash mid-queue loses a clean *suffix* of the
//!   submitted writes, exactly like the unqueued path loses the tail of an
//!   interrupted request;
//! - any two overlapping requests;
//! - anything across a [`RequestQueue::barrier`], which is a full fence.
//!
//! Adjacent-request coalescing is restricted to the same shape: a write
//! that starts exactly where the *most recently submitted* (still pending)
//! write ends is merged into it. The merged request writes its sectors in
//! ascending order, so the per-sector tear semantics of a crash are
//! identical to issuing the two writes back to back.

use std::collections::VecDeque;

use crate::{BlockDev, DiskError, SECTOR_SIZE};

/// Upper bound on a coalesced request, in sectors (4 MB). Keeps merged
/// multi-segment writebacks within one realistic transfer.
const MAX_COALESCED_SECTORS: u64 = 8192;

/// Which scheduler orders the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// First come, first served: dispatch in submission order.
    #[default]
    Fcfs,
    /// Shortest seek time first: nearest cylinder to the current head
    /// position.
    Sstf,
    /// Elevator: sweep the cylinders in one direction, reverse at the last
    /// request (LOOK variant — no run-out to the disk edge).
    Look,
    /// Shortest access time first: full positioning cost (command
    /// overhead plus seek plus rotational wait) from the CHS geometry and
    /// the rotational position model, evaluated at the current simulated
    /// clock.
    Satf,
}

impl Scheduler {
    /// Stable lowercase name (CLI / JSON).
    pub fn name(self) -> &'static str {
        match self {
            Scheduler::Fcfs => "fcfs",
            Scheduler::Sstf => "sstf",
            Scheduler::Look => "look",
            Scheduler::Satf => "satf",
        }
    }

    /// Inverse of [`Scheduler::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "fcfs" => Scheduler::Fcfs,
            "sstf" => Scheduler::Sstf,
            "look" => Scheduler::Look,
            "satf" => Scheduler::Satf,
            _ => return None,
        })
    }

    /// All schedulers, for sweeps.
    pub const ALL: [Scheduler; 4] = [
        Scheduler::Fcfs,
        Scheduler::Sstf,
        Scheduler::Look,
        Scheduler::Satf,
    ];
}

/// Queue counters. All monotonically increasing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests accepted by `submit_*` (including ones later coalesced).
    pub submitted: u64,
    /// Requests sent to the device.
    pub dispatched: u64,
    /// Requests completed (== dispatched; kept separate for the classic
    /// submit/dispatch/complete accounting).
    pub completed: u64,
    /// Submitted requests that were merged into an already pending one
    /// instead of queueing separately.
    pub coalesced: u64,
    /// Sectors absorbed by coalescing.
    pub coalesced_sectors: u64,
    /// Barriers submitted.
    pub barriers: u64,
    /// Sum over dispatches of the pending-queue depth at dispatch time;
    /// `depth_sum / dispatched` is the mean effective depth.
    pub depth_sum: u64,
    /// Maximum pending-queue depth seen at any dispatch.
    pub max_depth: u64,
}

impl QueueStats {
    /// Mean queue depth observed at dispatch time.
    pub fn mean_depth(&self) -> f64 {
        if self.dispatched == 0 {
            return 0.0;
        }
        self.depth_sum as f64 / self.dispatched as f64
    }
}

#[derive(Debug)]
enum Op {
    Read { sector: u64, count: u64 },
    Write { sector: u64, data: Vec<u8> },
    Barrier,
}

impl Op {
    fn span(&self) -> Option<(u64, u64)> {
        match self {
            Op::Read { sector, count } => Some((*sector, *count)),
            Op::Write { sector, data } => Some((*sector, (data.len() / SECTOR_SIZE) as u64)),
            Op::Barrier => None,
        }
    }
}

#[derive(Debug)]
struct Request {
    tag: u64,
    op: Op,
}

/// The outcome of one dispatched request.
#[derive(Debug)]
pub struct Completion {
    /// Submission tag (the surviving tag, for coalesced writes).
    pub tag: u64,
    /// First sector of the request.
    pub sector: u64,
    /// Sectors covered.
    pub sectors: u64,
    /// Whether this was a write.
    pub write: bool,
    /// `Ok(Some(data))` for reads, `Ok(None)` for writes, or the device
    /// error.
    pub result: Result<Option<Vec<u8>>, DiskError>,
}

/// The tagged command queue. See the module docs for the ordering and
/// determinism contract.
#[derive(Debug, Default)]
pub struct RequestQueue {
    scheduler: Scheduler,
    coalesce: bool,
    pending: VecDeque<Request>,
    next_tag: u64,
    /// Elevator direction for [`Scheduler::Look`]: sweeping toward higher
    /// cylinders when true.
    look_up: bool,
    stats: QueueStats,
    tracer: Option<ld_trace::Tracer>,
}

impl RequestQueue {
    /// Creates an empty queue. Coalescing merges sector-adjacent ascending
    /// writes (see module docs); it never changes write ordering.
    pub fn new(scheduler: Scheduler, coalesce: bool) -> Self {
        Self {
            scheduler,
            coalesce,
            look_up: true,
            ..Self::default()
        }
    }

    /// The configured scheduler.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Counters so far.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Pending requests (barriers excluded — they occupy no device time).
    pub fn len(&self) -> usize {
        self.pending
            .iter()
            .filter(|r| !matches!(r.op, Op::Barrier))
            .count()
    }

    /// Whether no request is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether any pending request overlaps `[sector, sector + count)`.
    pub fn overlaps(&self, sector: u64, count: u64) -> bool {
        self.pending.iter().any(|r| match r.op.span() {
            Some((s, c)) => s < sector + count && sector < s + c,
            None => false,
        })
    }

    /// Attaches a tracer for `QueueSubmit`/`QueueDispatch`/`QueueComplete`
    /// events. Queue events carry no attributed time of their own.
    pub fn set_tracer(&mut self, tracer: ld_trace::Tracer) {
        self.tracer = Some(tracer);
    }

    /// Detaches the tracer.
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    fn trace(&self, at_us: u64, event: ld_trace::Event) {
        if let Some(t) = &self.tracer {
            t.record(at_us, event);
        }
    }

    /// Queues a read of `count` sectors at `sector`; returns its tag. The
    /// data arrives in the corresponding [`Completion`].
    pub fn submit_read<D: BlockDev>(&mut self, disk: &D, sector: u64, count: u64) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.stats.submitted += 1;
        self.trace(
            disk.now_us(),
            ld_trace::Event::QueueSubmit {
                tag,
                sector,
                sectors: count,
            },
        );
        self.pending.push_back(Request {
            tag,
            op: Op::Read { sector, count },
        });
        tag
    }

    /// Queues a write; returns the tag of the request that will carry it
    /// (an earlier request's tag when the write coalesces into it).
    pub fn submit_write<D: BlockDev>(&mut self, disk: &D, sector: u64, data: &[u8]) -> u64 {
        let count = (data.len() / SECTOR_SIZE) as u64;
        self.stats.submitted += 1;
        // Coalesce into the most recently submitted request when it is a
        // still-pending write ending exactly where this one starts. Only
        // the tail request qualifies, so no barrier and no other write can
        // sit between the two halves.
        if self.coalesce {
            if let Some(last) = self.pending.back_mut() {
                if let Op::Write {
                    sector: s0,
                    data: d0,
                } = &mut last.op
                {
                    let c0 = (d0.len() / SECTOR_SIZE) as u64;
                    if *s0 + c0 == sector && c0 + count <= MAX_COALESCED_SECTORS {
                        d0.extend_from_slice(data);
                        self.stats.coalesced += 1;
                        self.stats.coalesced_sectors += count;
                        let tag = last.tag;
                        self.trace(
                            disk.now_us(),
                            ld_trace::Event::QueueSubmit {
                                tag,
                                sector,
                                sectors: count,
                            },
                        );
                        return tag;
                    }
                }
            }
        }
        let tag = self.next_tag;
        self.next_tag += 1;
        self.trace(
            disk.now_us(),
            ld_trace::Event::QueueSubmit {
                tag,
                sector,
                sectors: count,
            },
        );
        self.pending.push_back(Request {
            tag,
            op: Op::Write {
                sector,
                data: data.to_vec(),
            },
        });
        tag
    }

    /// Inserts a full ordering fence: nothing submitted after the barrier
    /// dispatches before everything submitted ahead of it has completed.
    pub fn barrier(&mut self) {
        self.stats.barriers += 1;
        self.pending.push_back(Request {
            tag: self.next_tag,
            op: Op::Barrier,
        });
        self.next_tag += 1;
    }

    /// Indices of requests allowed to dispatch now: everything before the
    /// first barrier that (a) overlaps no earlier pending request and
    /// (b) for writes, follows no earlier pending write (writes are FIFO).
    fn eligible(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut write_seen = false;
        for (i, r) in self.pending.iter().enumerate() {
            let (sector, count) = match r.op.span() {
                None => break, // Barrier: nothing beyond it is eligible.
                Some(span) => span,
            };
            let overlaps_earlier = self.pending.iter().take(i).any(|p| match p.op.span() {
                Some((s, c)) => s < sector + count && sector < s + c,
                None => false,
            });
            let is_write = matches!(r.op, Op::Write { .. });
            if !(overlaps_earlier || (is_write && write_seen)) {
                out.push(i);
            }
            write_seen |= is_write;
        }
        out
    }

    /// Picks which eligible request to dispatch, per the scheduler. All
    /// ties break by position in `eligible` (== submission order).
    fn pick<D: BlockDev>(&mut self, disk: &D, eligible: &[usize]) -> usize {
        let cyl_of = |i: usize| {
            let (sector, _) = self.pending[i].op.span().expect("eligible is never a barrier"); // PANIC-OK: eligible() filters barriers out
            disk.sched_cylinder(sector)
        };
        match self.scheduler {
            Scheduler::Fcfs => eligible[0],
            Scheduler::Sstf => {
                let head = disk.sched_head_cylinder();
                *eligible
                    .iter()
                    .min_by_key(|&&i| cyl_of(i).abs_diff(head))
                    .expect("eligible set is non-empty") // PANIC-OK: dispatch_one guarantees a candidate
            }
            Scheduler::Look => {
                let head = disk.sched_head_cylinder();
                let ahead = |c: u64| {
                    if self.look_up {
                        c >= head
                    } else {
                        c <= head
                    }
                };
                let in_sweep = eligible
                    .iter()
                    .filter(|&&i| ahead(cyl_of(i)))
                    .min_by_key(|&&i| cyl_of(i).abs_diff(head))
                    .copied();
                match in_sweep {
                    Some(i) => i,
                    None => {
                        // Nothing left in this direction: reverse.
                        self.look_up = !self.look_up;
                        *eligible
                            .iter()
                            .min_by_key(|&&i| cyl_of(i).abs_diff(head))
                            .expect("eligible set is non-empty") // PANIC-OK: dispatch_one guarantees a candidate
                    }
                }
            }
            Scheduler::Satf => {
                let access = |i: usize| {
                    let (sector, _) = self.pending[i]
                        .op
                        .span()
                        .expect("eligible is never a barrier"); // PANIC-OK: eligible() filters barriers out
                    disk.sched_access_us(sector)
                };
                *eligible
                    .iter()
                    .min_by_key(|&&i| access(i))
                    .expect("eligible set is non-empty") // PANIC-OK: dispatch_one guarantees a candidate
            }
        }
    }

    /// Dispatches the scheduler's best eligible request against the
    /// device and returns its completion; `None` when the queue is empty.
    pub fn dispatch_one<D: BlockDev>(&mut self, disk: &mut D) -> Option<Completion> {
        // A barrier at the front has everything ahead of it completed:
        // it is satisfied, drop it.
        while matches!(self.pending.front().map(|r| &r.op), Some(Op::Barrier)) {
            self.pending.pop_front();
        }
        self.pending.front()?;
        let eligible = self.eligible();
        debug_assert!(!eligible.is_empty(), "front request is always eligible");
        let idx = self.pick(disk, &eligible);
        let depth = self.len() as u64;
        self.stats.dispatched += 1;
        self.stats.depth_sum += depth;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        let req = self.pending.remove(idx).expect("picked index is in range"); // PANIC-OK: idx comes from eligible()
        self.trace(
            disk.now_us(),
            ld_trace::Event::QueueDispatch {
                tag: req.tag,
                depth,
            },
        );
        let t0 = disk.now_us();
        let completion = match req.op {
            Op::Read { sector, count } => {
                let mut buf = vec![0u8; (count as usize) * SECTOR_SIZE];
                let result = disk.read_sectors(sector, &mut buf).map(|()| Some(buf));
                Completion {
                    tag: req.tag,
                    sector,
                    sectors: count,
                    write: false,
                    result,
                }
            }
            Op::Write { sector, data } => {
                let sectors = (data.len() / SECTOR_SIZE) as u64;
                let result = disk.write_sectors(sector, &data).map(|()| None);
                Completion {
                    tag: req.tag,
                    sector,
                    sectors,
                    write: true,
                    result,
                }
            }
            // Unreachable: eligible() never yields a barrier. Kept as a
            // harmless empty completion rather than a panic path.
            Op::Barrier => Completion {
                tag: req.tag,
                sector: 0,
                sectors: 0,
                write: false,
                result: Ok(None),
            },
        };
        self.stats.completed += 1;
        self.trace(
            disk.now_us(),
            ld_trace::Event::QueueComplete {
                tag: completion.tag,
                us: disk.now_us() - t0,
            },
        );
        Some(completion)
    }

    /// Dispatches until the queue is empty, collecting completions in
    /// dispatch order.
    pub fn drain<D: BlockDev>(&mut self, disk: &mut D) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(c) = self.dispatch_one(disk) {
            out.push(c);
        }
        out
    }

    /// Drops every pending request without dispatching (crash / device
    /// down). The requests are simply lost, like a powered-off drive's
    /// queue.
    pub fn abandon(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockDev, SimDisk};

    fn disk() -> SimDisk {
        SimDisk::hp_c3010_with_capacity(16 << 20)
    }

    #[test]
    fn depth1_fcfs_is_bit_identical_to_direct_calls() {
        let script: &[(u64, bool)] = &[(0, true), (4096, true), (0, false), (9000, true)];
        let run_direct = |disk: &mut SimDisk| {
            for &(sector, write) in script {
                let data = vec![0xA5u8; 8 * SECTOR_SIZE];
                if write {
                    disk.write_sectors(sector, &data).unwrap();
                } else {
                    let mut buf = vec![0u8; 8 * SECTOR_SIZE];
                    disk.read_sectors(sector, &mut buf).unwrap();
                }
            }
        };
        let run_queued = |disk: &mut SimDisk| {
            let mut q = RequestQueue::new(Scheduler::Fcfs, true);
            for &(sector, write) in script {
                let data = vec![0xA5u8; 8 * SECTOR_SIZE];
                if write {
                    q.submit_write(disk, sector, &data);
                } else {
                    q.submit_read(disk, sector, 8);
                }
                // Depth 1: dispatch immediately after each submit.
                let c = q.dispatch_one(disk).unwrap();
                assert!(c.result.is_ok());
            }
        };
        let mut a = disk();
        run_direct(&mut a);
        let mut b = disk();
        run_queued(&mut b);
        assert_eq!(a.now_us(), b.now_us(), "clock must be bit-identical");
        assert_eq!(a.stats(), b.stats(), "stats must be bit-identical");
        assert_eq!(a.image_bytes(), b.image_bytes());
    }

    #[test]
    fn writes_dispatch_fifo_under_every_scheduler() {
        // Scattered writes: any seek-optimizing scheduler would love to
        // reorder these, and must not.
        let sectors = [20_000u64, 4, 12_000, 300, 7_777];
        for sched in Scheduler::ALL {
            let mut d = disk();
            let mut q = RequestQueue::new(sched, false);
            let mut tags = Vec::new();
            for (i, &s) in sectors.iter().enumerate() {
                let data = vec![i as u8; SECTOR_SIZE];
                tags.push(q.submit_write(&d, s, &data));
            }
            let done: Vec<u64> = q.drain(&mut d).into_iter().map(|c| c.tag).collect();
            assert_eq!(done, tags, "{sched:?} reordered writes");
        }
    }

    #[test]
    fn look_orders_scattered_reads_by_position() {
        let mut d = disk();
        // Lay down data far apart so cylinders differ.
        let total = d.total_sectors();
        let sectors = [total - 8, 8, total / 2, total / 4];
        for &s in &sectors {
            d.write_sectors(s, &vec![1u8; SECTOR_SIZE]).unwrap();
        }
        let mut q = RequestQueue::new(Scheduler::Look, false);
        for &s in &sectors {
            q.submit_read(&d, s, 1);
        }
        let order: Vec<u64> = q.drain(&mut d).into_iter().map(|c| c.sector).collect();
        // Head starts wherever the setup writes left it; the elevator must
        // visit each side in monotone cylinder order. Weak but scheduler-
        // revealing check: the order is not submission order and every
        // read completed.
        assert_eq!(order.len(), sectors.len());
        assert_ne!(order, sectors.to_vec(), "LOOK should have reordered");
    }

    #[test]
    fn satf_picks_cheapest_access_first() {
        let mut d = disk();
        let far = d.total_sectors() - 8;
        let mut q = RequestQueue::new(Scheduler::Satf, false);
        // Submit the far read first, the near read second.
        q.submit_read(&d, far, 8);
        q.submit_read(&d, 0, 8);
        let order: Vec<u64> = q.drain(&mut d).into_iter().map(|c| c.sector).collect();
        assert_eq!(order, vec![0, far], "SATF must take the cheap one first");
    }

    #[test]
    fn overlapping_requests_keep_submission_order() {
        let mut d = disk();
        let far = d.total_sectors() - 8;
        let mut q = RequestQueue::new(Scheduler::Satf, false);
        // An expensive write, then an overlapping read: the read must not
        // jump ahead (it would return stale data).
        q.submit_write(&d, far, &vec![0x77u8; SECTOR_SIZE]);
        q.submit_read(&d, far, 1);
        let done = q.drain(&mut d);
        assert!(done[0].write);
        assert_eq!(done[1].result.as_ref().unwrap().as_deref(), Some(&[0x77u8; SECTOR_SIZE][..]));
    }

    #[test]
    fn barrier_is_a_full_fence() {
        let mut d = disk();
        let far = d.total_sectors() - 8;
        let mut q = RequestQueue::new(Scheduler::Satf, false);
        q.submit_read(&d, far, 1); // Expensive.
        q.barrier();
        q.submit_read(&d, 0, 1); // Cheap, but fenced behind the barrier.
        let order: Vec<u64> = q.drain(&mut d).into_iter().map(|c| c.sector).collect();
        assert_eq!(order, vec![far, 0]);
        assert_eq!(q.stats().barriers, 1);
    }

    #[test]
    fn adjacent_ascending_writes_coalesce() {
        let mut d = disk();
        let mut q = RequestQueue::new(Scheduler::Fcfs, true);
        let t0 = q.submit_write(&d, 100, &vec![1u8; 2 * SECTOR_SIZE]);
        let t1 = q.submit_write(&d, 102, &vec![2u8; SECTOR_SIZE]);
        assert_eq!(t0, t1, "adjacent ascending write must merge");
        // Descending adjacency and gaps do not merge.
        let t2 = q.submit_write(&d, 99, &vec![3u8; SECTOR_SIZE]);
        assert_ne!(t0, t2);
        let done = q.drain(&mut d);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].sectors, 3, "merged request covers both writes");
        assert_eq!(q.stats().coalesced, 1);
        assert_eq!(q.stats().coalesced_sectors, 1);
        let mut buf = vec![0u8; 4 * SECTOR_SIZE];
        d.read_sectors(99, &mut buf).unwrap();
        assert_eq!(&buf[..SECTOR_SIZE], &[3u8; SECTOR_SIZE][..]);
        assert_eq!(&buf[SECTOR_SIZE..3 * SECTOR_SIZE], &vec![1u8; 2 * SECTOR_SIZE][..]);
        assert_eq!(&buf[3 * SECTOR_SIZE..], &[2u8; SECTOR_SIZE][..]);
    }

    #[test]
    fn coalescing_saves_positioning_time() {
        // Two adjacent segment-sized writes as one request beat the same
        // writes issued back to back: one command overhead, one rotational
        // wait.
        let data = vec![0xC3u8; 128 * SECTOR_SIZE];
        let mut a = disk();
        a.write_sectors(1000, &data).unwrap();
        a.write_sectors(1128, &data).unwrap();
        let mut b = disk();
        let mut q = RequestQueue::new(Scheduler::Fcfs, true);
        q.submit_write(&b, 1000, &data);
        q.submit_write(&b, 1128, &data);
        q.drain(&mut b);
        assert!(
            b.now_us() < a.now_us(),
            "coalesced {} us must beat back-to-back {} us",
            b.now_us(),
            a.now_us()
        );
        assert_eq!(a.image_bytes(), b.image_bytes());
    }

    #[test]
    fn queue_depth_statistics_accumulate() {
        let mut d = disk();
        let mut q = RequestQueue::new(Scheduler::Sstf, false);
        for i in 0..4u64 {
            q.submit_read(&d, i * 1000, 1);
        }
        q.drain(&mut d);
        let s = *q.stats();
        assert_eq!(s.submitted, 4);
        assert_eq!(s.dispatched, 4);
        assert_eq!(s.completed, 4);
        assert_eq!(s.max_depth, 4);
        assert_eq!(s.depth_sum, 4 + 3 + 2 + 1);
        assert!((s.mean_depth() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn schedules_are_deterministic() {
        for sched in Scheduler::ALL {
            let run = || {
                let mut d = disk();
                let mut q = RequestQueue::new(sched, true);
                for i in 0..12u64 {
                    let s = (i * 7919) % (d.total_sectors() - 8);
                    if i % 3 == 0 {
                        q.submit_write(&d, s, &vec![i as u8; SECTOR_SIZE]);
                    } else {
                        q.submit_read(&d, s, 1);
                    }
                }
                let tags: Vec<u64> = q.drain(&mut d).into_iter().map(|c| c.tag).collect();
                (tags, d.now_us())
            };
            assert_eq!(run(), run(), "{sched:?} schedule must be reproducible");
        }
    }
}
