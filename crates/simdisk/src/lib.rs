//! Simulated disk substrate for the Logical Disk reproduction.
//!
//! The paper's evaluation ran on an HP C3010 (SCSI-II, ~2 GB, 5400 rpm,
//! 11.5 ms average seek) behind SunOS raw-disk system calls. This crate
//! substitutes a deterministic simulator with the same mechanical behaviour:
//!
//! - CHS [`Geometry`] with sector-granularity addressing,
//! - a [`TimingModel`] with a square-root seek curve, explicit rotational
//!   position, per-sector transfer, head/cylinder switch costs, and
//!   per-command overhead,
//! - sparse in-memory storage (capacity-independent memory use),
//! - crash and torn-write fault injection for recovery experiments,
//! - per-request [`DiskStats`] so benchmarks can attribute simulated time.
//!
//! Two devices are provided: [`SimDisk`] (full timing model, used by every
//! experiment) and [`MemDisk`] (zero-cost, used by unit tests that only care
//! about contents). Both implement [`BlockDev`].

mod faults;
mod geometry;
pub mod queue;
mod stats;
mod store;
mod timing;

pub use faults::FaultConfig;
pub use geometry::{Chs, Geometry, SECTOR_SIZE};
pub use queue::{Completion, QueueStats, RequestQueue, Scheduler};
pub use stats::DiskStats;
pub use timing::{hp_c3010, TimingModel};

use faults::FaultState;
use store::SparseStore;

/// Errors returned by simulated block devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskError {
    /// The request touches sectors beyond the end of the device.
    OutOfRange {
        /// First sector of the offending request.
        sector: u64,
        /// Sectors requested.
        count: u64,
    },
    /// The buffer length is not a whole number of sectors.
    Misaligned {
        /// Offending buffer length in bytes.
        len: usize,
    },
    /// An injected crash fired during this request; a prefix of the write
    /// may have reached the medium (a torn write).
    Crashed,
    /// The device is down after a crash; call [`SimDisk::revive`] first.
    Down,
    /// A media fault made this sector unreadable on this attempt (see
    /// [`FaultConfig`]); transient faults succeed on retry, latent and
    /// grown defects persist until the sector is abandoned.
    Unreadable {
        /// The sector that failed to read.
        sector: u64,
    },
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::OutOfRange { sector, count } => {
                write!(f, "request for {count} sectors at {sector} is out of range")
            }
            DiskError::Misaligned { len } => {
                write!(f, "buffer of {len} bytes is not sector aligned")
            }
            DiskError::Crashed => write!(f, "injected crash fired during request"),
            DiskError::Down => write!(f, "device is down after a crash"),
            DiskError::Unreadable { sector } => {
                write!(f, "media fault: sector {sector} unreadable")
            }
        }
    }
}

impl std::error::Error for DiskError {}

/// A sector-addressed block device with a simulated clock.
///
/// The clock is the backbone of every experiment: devices advance it while
/// servicing requests, and hosts advance it explicitly (via
/// [`advance_us`](BlockDev::advance_us)) to model computation between
/// requests. Throughput numbers in the reproduced tables are derived from
/// this clock, never from wall-clock time.
pub trait BlockDev {
    /// Number of addressable sectors.
    fn total_sectors(&self) -> u64;

    /// Reads `buf.len() / SECTOR_SIZE` sectors starting at `sector`.
    fn read_sectors(&mut self, sector: u64, buf: &mut [u8]) -> Result<(), DiskError>;

    /// Writes `data.len() / SECTOR_SIZE` sectors starting at `sector`.
    fn write_sectors(&mut self, sector: u64, data: &[u8]) -> Result<(), DiskError>;

    /// Current simulated time in microseconds.
    fn now_us(&self) -> u64;

    /// Advances simulated time by `us` without touching the medium (host
    /// computation, think time, modeled CPU costs).
    fn advance_us(&mut self, us: u64);

    /// Capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.total_sectors() * SECTOR_SIZE as u64
    }

    /// Bytes of battery-backed NVRAM attached to the device (0 = none).
    ///
    /// Baker et al. (ASPLOS 1992) showed 0.5 MB of NVRAM absorbs most
    /// partially-written segments in an LFS; the paper (§5.3) expects "that
    /// similar results can be obtained for LLD". NVRAM contents survive
    /// crashes but not device replacement.
    fn nvram_bytes(&self) -> usize {
        0
    }

    /// Writes into NVRAM at `offset`. Fails [`DiskError::OutOfRange`] when
    /// the device has no (or too little) NVRAM.
    fn nvram_write(&mut self, offset: usize, data: &[u8]) -> Result<(), DiskError> {
        let _ = offset;
        Err(DiskError::OutOfRange {
            sector: 0,
            count: data.len() as u64,
        })
    }

    /// Reads from NVRAM at `offset`.
    fn nvram_read(&mut self, offset: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        let _ = offset;
        Err(DiskError::OutOfRange {
            sector: 0,
            count: buf.len() as u64,
        })
    }

    /// Scheduling hint: the cylinder holding `sector`. Devices without
    /// mechanical positions (see [`MemDisk`]) return 0, which degrades
    /// every scheduler in [`queue`] to FCFS tie-breaking.
    fn sched_cylinder(&self, sector: u64) -> u64 {
        let _ = sector;
        0
    }

    /// Scheduling hint: the cylinder the head currently rests on.
    fn sched_head_cylinder(&self) -> u64 {
        0
    }

    /// Scheduling hint: estimated positioning cost (command overhead +
    /// seek + rotational wait, in microseconds) to begin a transfer at
    /// `sector` if it were dispatched right now. Pure: consults only the
    /// simulated clock and head position, never moves either.
    fn sched_access_us(&self, sector: u64) -> u64 {
        let _ = sector;
        0
    }
}

/// The full disk simulator.
#[derive(Debug)]
pub struct SimDisk {
    geometry: Geometry,
    timing: TimingModel,
    store: SparseStore,
    clock_us: u64,
    head_cylinder: u32,
    stats: DiskStats,
    /// Sector range currently held in the drive's read-ahead buffer.
    cache_range: (u64, u64),
    /// Battery-backed NVRAM; survives crashes.
    nvram: Vec<u8>,
    /// Remaining sectors until an injected crash fires, if armed.
    crash_after_writes: Option<u64>,
    down: bool,
    /// Media-fault model; `None` (the default) costs one branch per sector.
    faults: Option<FaultState>,
    /// Optional event tracer; `None` costs one branch per request.
    tracer: Option<ld_trace::Tracer>,
}

impl SimDisk {
    /// Creates a zero-filled disk with the given geometry and timing.
    pub fn new(geometry: Geometry, timing: TimingModel) -> Self {
        Self {
            geometry,
            timing,
            store: SparseStore::new(geometry.total_sectors()),
            clock_us: 0,
            head_cylinder: 0,
            stats: DiskStats::default(),
            cache_range: (0, 0),
            nvram: Vec::new(),
            crash_after_writes: None,
            down: false,
            faults: None,
            tracer: None,
        }
    }

    /// Attaches `bytes` of battery-backed NVRAM (zero-initialized).
    pub fn with_nvram(mut self, bytes: usize) -> Self {
        self.nvram = vec![0u8; bytes];
        self
    }

    /// Creates the paper's HP C3010 disk (full ~2 GB capacity).
    pub fn hp_c3010() -> Self {
        Self::new(hp_c3010::geometry(), hp_c3010::timing())
    }

    /// Creates an HP C3010-like disk with at least `bytes` capacity — the
    /// paper's benchmarks use a 400 MB partition of the 2 GB drive.
    pub fn hp_c3010_with_capacity(bytes: u64) -> Self {
        Self::new(hp_c3010::geometry_with_capacity(bytes), hp_c3010::timing())
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The timing model.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Resets statistics to zero (the clock is left running).
    ///
    /// An attached tracer keeps its running attribution totals; attach a
    /// fresh tracer alongside a stats reset when the two must reconcile.
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }

    /// Attaches an event tracer. Every subsequent microsecond of busy
    /// time is reported as a typed event ([`ld_trace::Event`]), so the
    /// tracer's attribution sums exactly to the busy time accumulated
    /// from this call on. Tracing never touches the simulated clock:
    /// timings are bit-identical with or without a tracer.
    pub fn set_tracer(&mut self, tracer: ld_trace::Tracer) {
        self.tracer = Some(tracer);
    }

    /// Detaches the tracer, if any.
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&ld_trace::Tracer> {
        self.tracer.as_ref()
    }

    /// Records `event` at the current simulated time (no-op untraced).
    #[inline]
    fn trace(&self, event: ld_trace::Event) {
        if let Some(t) = &self.tracer {
            t.record(self.clock_us, event);
        }
    }

    /// Bytes of host memory committed to disk contents.
    pub fn resident_bytes(&self) -> usize {
        self.store.resident_bytes()
    }

    /// Arms a crash that fires after `sectors` more sectors have been
    /// written. A crash mid-request persists the sectors written so far
    /// (a torn write), fails the request with [`DiskError::Crashed`], and
    /// takes the device [down](DiskError::Down) until [`revive`](Self::revive).
    pub fn crash_after_writes(&mut self, sectors: u64) {
        self.crash_after_writes = Some(sectors);
    }

    /// Crashes the device immediately; all subsequent requests fail with
    /// [`DiskError::Down`] until revived. Contents already written persist.
    pub fn crash_now(&mut self) {
        self.down = true;
    }

    /// Whether the device is down after a crash.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Brings a crashed device back online, clearing any armed crash
    /// countdown (so a disk crashed via [`crash_now`](Self::crash_now)
    /// cannot immediately re-crash from a stale
    /// [`crash_after_writes`](Self::crash_after_writes)). The medium
    /// retains exactly the sectors that were durably written; media-fault
    /// state (grown defects, transient counters) also survives.
    pub fn revive(&mut self) {
        self.down = false;
        self.crash_after_writes = None;
    }

    /// Enables the deterministic media-fault model. Faults survive crashes
    /// and revives (they are properties of the medium, not of the host).
    pub fn set_faults(&mut self, config: FaultConfig) {
        self.faults = Some(FaultState::new(config));
    }

    /// Disables media-fault injection.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// The active fault configuration, if any.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.faults.as_ref().map(|f| f.config())
    }

    /// The raw disk image as one contiguous byte buffer. Out-of-band
    /// analysis access (`ldck`): charges no simulated time, records no
    /// stats, and works even while the device is down after a crash.
    pub fn image_bytes(&self) -> Vec<u8> {
        self.store.snapshot()
    }

    /// Restores the medium from an [`image_bytes`](Self::image_bytes)
    /// snapshot of an identically-sized device. Out-of-band like its
    /// counterpart: charges no simulated time, records no stats, and does
    /// not consult the fault model — it models swapping platters in, not
    /// I/O. The drive's read-ahead buffer is discarded (it cached the old
    /// platters).
    ///
    /// # Panics
    ///
    /// Panics if the image size does not match this device's capacity.
    pub fn load_image(&mut self, image: &[u8]) {
        self.store.load(image);
        self.cache_range = (0, 0);
    }

    /// Positions the head and clock for a transfer: charges per-command
    /// overhead, the seek, and the rotational wait for the first sector.
    fn position_for(&mut self, sector: u64) {
        self.clock_us += self.timing.command_overhead_us;
        self.stats.overhead_us += self.timing.command_overhead_us;
        if self.timing.command_overhead_us > 0 {
            self.trace(ld_trace::Event::CmdOverhead {
                us: self.timing.command_overhead_us,
            });
        }

        let chs = self.geometry.chs(sector);
        let seek = self
            .timing
            .seek_us(&self.geometry, self.head_cylinder, chs.cylinder);
        if seek > 0 {
            self.trace(ld_trace::Event::SeekStart {
                from_cyl: self.head_cylinder,
                to_cyl: chs.cylinder,
            });
            self.stats.seeks += 1;
            self.stats.seek_us += seek;
            self.clock_us += seek;
            self.head_cylinder = chs.cylinder;
            self.trace(ld_trace::Event::SeekDone { us: seek });
        }

        let rot = self
            .timing
            .rotational_wait_us(&self.geometry, self.clock_us, chs.sector);
        self.stats.rotation_us += rot;
        self.clock_us += rot;
        if rot > 0 {
            self.trace(ld_trace::Event::RotWait { us: rot });
        }
    }

    /// Transfers `count` sectors starting at `sector`, advancing the clock
    /// across track and cylinder boundaries. `op` is called once per sector
    /// with the sector number and may abort the transfer early (crash).
    fn transfer<F>(&mut self, sector: u64, count: u64, mut op: F) -> Result<(), DiskError>
    where
        F: FnMut(&mut Self, u64) -> Result<(), DiskError>,
    {
        let sector_us = self.timing.sector_us(&self.geometry);
        let mut prev_cylinder = self.geometry.chs(sector).cylinder;
        let mut moved = 0u64;
        let mut result = Ok(());
        for i in 0..count {
            let cur_sector = sector + i;
            let chs = self.geometry.chs(cur_sector);
            if i > 0 && chs.sector == 0 {
                // Crossed a track boundary. Layout skew is assumed to match
                // the switch cost, so no extra rotational wait is charged.
                if chs.cylinder != prev_cylinder {
                    let t = self.timing.min_seek_us;
                    self.stats.switch_us += t;
                    self.clock_us += t;
                    self.head_cylinder = chs.cylinder;
                    self.trace(ld_trace::Event::HeadSwitch { us: t });
                } else {
                    self.stats.switch_us += self.timing.head_switch_us;
                    self.clock_us += self.timing.head_switch_us;
                    self.trace(ld_trace::Event::HeadSwitch {
                        us: self.timing.head_switch_us,
                    });
                }
            }
            self.clock_us += sector_us;
            self.stats.transfer_us += sector_us;
            moved += 1;
            if let Err(e) = op(self, cur_sector) {
                // A crash mid-transfer: time up to and including the
                // aborting sector was already charged; report it.
                result = Err(e);
                break;
            }
            prev_cylinder = chs.cylinder;
        }
        if moved > 0 {
            self.trace(ld_trace::Event::Transfer {
                sectors: moved,
                us: moved * sector_us,
            });
        }
        result
    }

    fn check(&self, sector: u64, len: usize) -> Result<u64, DiskError> {
        if self.down {
            return Err(DiskError::Down);
        }
        if len == 0 || !len.is_multiple_of(SECTOR_SIZE) {
            return Err(DiskError::Misaligned { len });
        }
        let count = (len / SECTOR_SIZE) as u64;
        if sector
            .checked_add(count)
            .is_none_or(|end| end > self.geometry.total_sectors())
        {
            return Err(DiskError::OutOfRange { sector, count });
        }
        Ok(count)
    }
}

impl BlockDev for SimDisk {
    fn total_sectors(&self) -> u64 {
        self.geometry.total_sectors()
    }

    fn read_sectors(&mut self, sector: u64, buf: &mut [u8]) -> Result<(), DiskError> {
        let count = self.check(sector, buf.len())?;
        self.stats.read_ops += 1;
        // Drive read-ahead buffer: a request entirely within the buffered
        // range is served at bus speed with no mechanical activity (the
        // drive filled its cache segment while the host was busy).
        let (c0, c1) = self.cache_range;
        if self.timing.readahead_buffer_sectors > 0 && sector >= c0 && sector + count <= c1 {
            self.stats.cached_reads += 1;
            self.trace(ld_trace::Event::CacheHit {
                sector,
                sectors: count,
            });
            self.clock_us += self.timing.command_overhead_us;
            self.stats.overhead_us += self.timing.command_overhead_us;
            if self.timing.command_overhead_us > 0 {
                self.trace(ld_trace::Event::CmdOverhead {
                    us: self.timing.command_overhead_us,
                });
            }
            let t = count * self.timing.bus_sector_us;
            self.clock_us += t;
            self.stats.transfer_us += t;
            if t > 0 {
                self.trace(ld_trace::Event::Transfer {
                    sectors: count,
                    us: t,
                });
            }
            for (i, chunk) in buf.chunks_mut(SECTOR_SIZE).enumerate() {
                self.store.read_sector(sector + i as u64, chunk);
                self.stats.sectors_read += 1;
            }
            return Ok(());
        }
        if self.timing.readahead_buffer_sectors > 0 {
            self.stats.cache_misses += 1;
            self.trace(ld_trace::Event::CacheMiss {
                sector,
                sectors: count,
            });
        }
        self.position_for(sector);
        let mut bufs: Vec<&mut [u8]> = buf.chunks_mut(SECTOR_SIZE).collect();
        self.transfer(sector, count, |disk, s| {
            let now = disk.clock_us;
            if let Some(f) = disk.faults.as_mut() {
                if f.read_fails(s, now) {
                    disk.stats.read_faults += 1;
                    return Err(DiskError::Unreadable { sector: s });
                }
            }
            let idx = (s - sector) as usize;
            disk.store.read_sector(s, bufs[idx]);
            disk.stats.sectors_read += 1;
            Ok(())
        })?;
        // The drive keeps reading ahead into its buffer; the head ends up
        // at the end of the buffered range.
        if self.timing.readahead_buffer_sectors > 0 {
            let mut end = (sector + count + self.timing.readahead_buffer_sectors)
                .min(self.geometry.total_sectors());
            if let Some(f) = &self.faults {
                // Read-ahead stops at the first persistently bad sector —
                // the drive cannot buffer what it cannot read.
                let mut e = sector + count;
                while e < end && !f.persistently_bad(e) {
                    e += 1;
                }
                end = e;
            }
            self.cache_range = (sector, end);
            self.head_cylinder = self.geometry.cylinder_of(end - 1);
        }
        Ok(())
    }

    fn write_sectors(&mut self, sector: u64, data: &[u8]) -> Result<(), DiskError> {
        let count = self.check(sector, data.len())?;
        self.stats.write_ops += 1;
        // Writes move the head and may invalidate buffered data; drop the
        // read-ahead buffer (conservative, like disabling write caching).
        self.cache_range = (0, 0);
        self.position_for(sector);
        let chunks: Vec<&[u8]> = data.chunks(SECTOR_SIZE).collect();
        self.transfer(sector, count, |disk, s| {
            if let Some(left) = disk.crash_after_writes {
                if left == 0 {
                    disk.down = true;
                    return Err(DiskError::Crashed);
                }
                disk.crash_after_writes = Some(left - 1);
            }
            let idx = (s - sector) as usize;
            disk.store.write_sector(s, chunks[idx]);
            disk.stats.sectors_written += 1;
            if let Some(f) = disk.faults.as_mut() {
                // A grown defect fires silently: the write lands, the
                // damage shows up on the next read of the sector.
                f.write_grows_defect(s);
            }
            Ok(())
        })
    }

    fn now_us(&self) -> u64 {
        self.clock_us
    }

    fn advance_us(&mut self, us: u64) {
        self.clock_us += us;
    }

    fn nvram_bytes(&self) -> usize {
        self.nvram.len()
    }

    fn nvram_write(&mut self, offset: usize, data: &[u8]) -> Result<(), DiskError> {
        if self.down {
            return Err(DiskError::Down);
        }
        if offset + data.len() > self.nvram.len() {
            return Err(DiskError::OutOfRange {
                sector: offset as u64,
                count: data.len() as u64,
            });
        }
        self.nvram[offset..offset + data.len()].copy_from_slice(data);
        // Battery-backed RAM over the host bus: ~2 µs per 512 bytes.
        self.clock_us += 2 * (data.len().div_ceil(512) as u64);
        Ok(())
    }

    fn nvram_read(&mut self, offset: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        if self.down {
            return Err(DiskError::Down);
        }
        if offset + buf.len() > self.nvram.len() {
            return Err(DiskError::OutOfRange {
                sector: offset as u64,
                count: buf.len() as u64,
            });
        }
        buf.copy_from_slice(&self.nvram[offset..offset + buf.len()]);
        self.clock_us += 2 * (buf.len().div_ceil(512) as u64);
        Ok(())
    }

    fn sched_cylinder(&self, sector: u64) -> u64 {
        if sector >= self.geometry.total_sectors() {
            return 0;
        }
        u64::from(self.geometry.cylinder_of(sector))
    }

    fn sched_head_cylinder(&self) -> u64 {
        u64::from(self.head_cylinder)
    }

    fn sched_access_us(&self, sector: u64) -> u64 {
        // Mirrors `position_for` without side effects: overhead, then the
        // seek, then the rotational wait evaluated at the clock the platter
        // would show once the head arrives.
        if sector >= self.geometry.total_sectors() {
            return u64::MAX;
        }
        let chs = self.geometry.chs(sector);
        let seek = self
            .timing
            .seek_us(&self.geometry, self.head_cylinder, chs.cylinder);
        let arrive = self.clock_us + self.timing.command_overhead_us + seek;
        let rot = self
            .timing
            .rotational_wait_us(&self.geometry, arrive, chs.sector);
        self.timing.command_overhead_us + seek + rot
    }
}

/// A timing-free in-memory device for unit tests that only care about
/// contents. The clock ticks by one microsecond per request so ordering
/// observations still work.
#[derive(Debug)]
pub struct MemDisk {
    store: SparseStore,
    clock_us: u64,
    nvram: Vec<u8>,
}

impl MemDisk {
    /// Creates a zero-filled device with `total_sectors` sectors.
    pub fn new(total_sectors: u64) -> Self {
        Self {
            store: SparseStore::new(total_sectors),
            clock_us: 0,
            nvram: Vec::new(),
        }
    }

    /// Attaches `bytes` of NVRAM.
    pub fn with_nvram_bytes(mut self, bytes: usize) -> Self {
        self.nvram = vec![0u8; bytes];
        self
    }

    /// Creates a device with at least `bytes` capacity.
    pub fn with_capacity(bytes: u64) -> Self {
        Self::new(bytes.div_ceil(SECTOR_SIZE as u64))
    }

    /// The raw disk image as one contiguous byte buffer (see
    /// [`SimDisk::image_bytes`]).
    pub fn image_bytes(&self) -> Vec<u8> {
        self.store.snapshot()
    }

    /// Restores the medium from an [`image_bytes`](Self::image_bytes)
    /// snapshot of an identically-sized device (see
    /// [`SimDisk::load_image`]).
    ///
    /// # Panics
    ///
    /// Panics if the image size does not match this device's capacity.
    pub fn load_image(&mut self, image: &[u8]) {
        self.store.load(image);
    }
}

impl BlockDev for MemDisk {
    fn total_sectors(&self) -> u64 {
        self.store.total_sectors()
    }

    fn read_sectors(&mut self, sector: u64, buf: &mut [u8]) -> Result<(), DiskError> {
        if buf.is_empty() || !buf.len().is_multiple_of(SECTOR_SIZE) {
            return Err(DiskError::Misaligned { len: buf.len() });
        }
        let count = (buf.len() / SECTOR_SIZE) as u64;
        if sector
            .checked_add(count)
            .is_none_or(|end| end > self.total_sectors())
        {
            return Err(DiskError::OutOfRange { sector, count });
        }
        for (i, chunk) in buf.chunks_mut(SECTOR_SIZE).enumerate() {
            self.store.read_sector(sector + i as u64, chunk);
        }
        self.clock_us += 1;
        Ok(())
    }

    fn write_sectors(&mut self, sector: u64, data: &[u8]) -> Result<(), DiskError> {
        if data.is_empty() || !data.len().is_multiple_of(SECTOR_SIZE) {
            return Err(DiskError::Misaligned { len: data.len() });
        }
        let count = (data.len() / SECTOR_SIZE) as u64;
        if sector
            .checked_add(count)
            .is_none_or(|end| end > self.total_sectors())
        {
            return Err(DiskError::OutOfRange { sector, count });
        }
        for (i, chunk) in data.chunks(SECTOR_SIZE).enumerate() {
            self.store.write_sector(sector + i as u64, chunk);
        }
        self.clock_us += 1;
        Ok(())
    }

    fn now_us(&self) -> u64 {
        self.clock_us
    }

    fn advance_us(&mut self, us: u64) {
        self.clock_us += us;
    }

    fn nvram_bytes(&self) -> usize {
        self.nvram.len()
    }

    fn nvram_write(&mut self, offset: usize, data: &[u8]) -> Result<(), DiskError> {
        if offset + data.len() > self.nvram.len() {
            return Err(DiskError::OutOfRange {
                sector: offset as u64,
                count: data.len() as u64,
            });
        }
        self.nvram[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn nvram_read(&mut self, offset: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        if offset + buf.len() > self.nvram.len() {
            return Err(DiskError::OutOfRange {
                sector: offset as u64,
                count: buf.len() as u64,
            });
        }
        buf.copy_from_slice(&self.nvram[offset..offset + buf.len()]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_disk() -> SimDisk {
        // 16 MB-ish disk with C3010 timing for fast tests.
        SimDisk::hp_c3010_with_capacity(16 << 20)
    }

    #[test]
    fn roundtrip_multi_sector() {
        let mut disk = small_disk();
        let data: Vec<u8> = (0..4 * SECTOR_SIZE).map(|i| (i % 255) as u8).collect();
        disk.write_sectors(100, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        disk.read_sectors(100, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn misaligned_and_out_of_range_rejected() {
        let mut disk = small_disk();
        let mut buf = vec![0u8; 100];
        assert_eq!(
            disk.read_sectors(0, &mut buf),
            Err(DiskError::Misaligned { len: 100 })
        );
        let mut buf = vec![0u8; SECTOR_SIZE];
        let last = disk.total_sectors();
        assert!(matches!(
            disk.read_sectors(last, &mut buf),
            Err(DiskError::OutOfRange { .. })
        ));
        // Overflowing sector+count must not panic.
        assert!(matches!(
            disk.write_sectors(u64::MAX, &buf),
            Err(DiskError::OutOfRange { .. })
        ));
    }

    #[test]
    fn clock_advances_while_servicing() {
        let mut disk = small_disk();
        let t0 = disk.now_us();
        let data = vec![7u8; 8 * SECTOR_SIZE];
        disk.write_sectors(0, &data).unwrap();
        assert!(disk.now_us() > t0);
        let stats = *disk.stats();
        assert_eq!(stats.write_ops, 1);
        assert_eq!(stats.sectors_written, 8);
        assert_eq!(stats.busy_us(), disk.now_us() - t0);
    }

    #[test]
    fn sequential_large_write_hits_paper_bandwidth() {
        // Section 4.2: "A user-level process writing 0.5 Mbyte segments to
        // the disk partition in a tight loop achieves a throughput of
        // 2400 Kbyte/s on this configuration."
        let mut disk = SimDisk::hp_c3010_with_capacity(64 << 20);
        let seg = vec![0xABu8; 512 << 10];
        let t0 = disk.now_us();
        let mut sector = 0;
        let total = 32u64; // 16 MB in 0.5 MB segments.
        for _ in 0..total {
            disk.write_sectors(sector, &seg).unwrap();
            sector += (seg.len() / SECTOR_SIZE) as u64;
        }
        let elapsed_s = (disk.now_us() - t0) as f64 / 1e6;
        let kb_per_s = (total as f64 * 512.0) / elapsed_s;
        assert!(
            (2100.0..=2700.0).contains(&kb_per_s),
            "0.5MB segment throughput {kb_per_s:.0} KB/s should be near 2400"
        );
    }

    #[test]
    fn back_to_back_small_writes_lose_a_revolution() {
        // Section 4.2: "a program that writes back-to-back 4-Kbyte blocks to
        // the disk achieves a throughput of only 300 Kbyte per second".
        let mut disk = SimDisk::hp_c3010_with_capacity(64 << 20);
        let block = vec![0x5Au8; 4096];
        let t0 = disk.now_us();
        let n = 256u64; // 1 MB total.
        for i in 0..n {
            disk.write_sectors(i * 8, &block).unwrap();
        }
        let elapsed_s = (disk.now_us() - t0) as f64 / 1e6;
        let kb_per_s = (n as f64 * 4.0) / elapsed_s;
        assert!(
            (250.0..=400.0).contains(&kb_per_s),
            "back-to-back 4KB throughput {kb_per_s:.0} KB/s should be near 300"
        );
    }

    #[test]
    fn crash_after_writes_tears_the_request() {
        let mut disk = small_disk();
        disk.crash_after_writes(3);
        let data: Vec<u8> = (0..8 * SECTOR_SIZE).map(|_| 0xEEu8).collect();
        assert_eq!(disk.write_sectors(0, &data), Err(DiskError::Crashed));
        assert!(disk.is_down());
        assert_eq!(disk.write_sectors(0, &data[..512]), Err(DiskError::Down));

        disk.revive();
        let mut buf = vec![0u8; 8 * SECTOR_SIZE];
        disk.read_sectors(0, &mut buf).unwrap();
        // Exactly the first three sectors were persisted.
        assert!(buf[..3 * SECTOR_SIZE].iter().all(|&b| b == 0xEE));
        assert!(buf[3 * SECTOR_SIZE..].iter().all(|&b| b == 0));
    }

    #[test]
    fn crash_now_preserves_previous_writes() {
        let mut disk = small_disk();
        let data = vec![9u8; SECTOR_SIZE];
        disk.write_sectors(5, &data).unwrap();
        disk.crash_now();
        let mut buf = vec![0u8; SECTOR_SIZE];
        assert_eq!(disk.read_sectors(5, &mut buf), Err(DiskError::Down));
        disk.revive();
        disk.read_sectors(5, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn memdisk_matches_simdisk_contents() {
        let mut a = MemDisk::with_capacity(1 << 20);
        let mut b = small_disk();
        let data: Vec<u8> = (0..16 * SECTOR_SIZE)
            .map(|i| (i * 31 % 251) as u8)
            .collect();
        a.write_sectors(17, &data).unwrap();
        b.write_sectors(17, &data).unwrap();
        let mut ba = vec![0u8; data.len()];
        let mut bb = vec![0u8; data.len()];
        a.read_sectors(17, &mut ba).unwrap();
        b.read_sectors(17, &mut bb).unwrap();
        assert_eq!(ba, bb);
    }

    #[test]
    fn drive_readahead_buffer_accelerates_sequential_reads() {
        let mut disk = SimDisk::hp_c3010_with_capacity(16 << 20);
        let data = vec![3u8; 64 << 10];
        disk.write_sectors(0, &data).unwrap();
        let mut buf = vec![0u8; 4096];
        // First read misses (media access), following sequential reads hit
        // the drive's read-ahead buffer at bus speed.
        disk.read_sectors(0, &mut buf).unwrap();
        let t0 = disk.now_us();
        let hits0 = disk.stats().cached_reads;
        for i in 1..8u64 {
            disk.read_sectors(i * 8, &mut buf).unwrap();
            assert_eq!(buf, vec![3u8; 4096]);
        }
        let per_read = (disk.now_us() - t0) / 7;
        assert_eq!(disk.stats().cached_reads, hits0 + 7);
        // Bus speed: ~1.5 ms overhead + 8 × 51 µs, far below one rotation.
        assert!(
            per_read < 3_000,
            "cached sequential reads took {per_read} us each"
        );
        // A far-away read misses the buffer and re-primes it.
        let far = disk.total_sectors() - 16;
        disk.read_sectors(far, &mut buf).unwrap();
        assert_eq!(disk.stats().cached_reads, hits0 + 7);
        // A write invalidates the buffer.
        disk.read_sectors(far + 8, &mut buf).unwrap(); // Cached.
        assert_eq!(disk.stats().cached_reads, hits0 + 8);
        disk.write_sectors(0, &data[..512]).unwrap();
        disk.read_sectors(far + 8, &mut buf).unwrap(); // Miss again.
        assert_eq!(disk.stats().cached_reads, hits0 + 8);
    }

    // Regression guard: `revive` must clear a countdown armed by
    // `crash_after_writes` even when the crash actually fired via
    // `crash_now` — a revived disk with a stale countdown would re-crash
    // on the first writes after recovery.
    #[test]
    fn revive_clears_stale_crash_countdown() {
        let mut disk = small_disk();
        disk.crash_after_writes(1000);
        disk.crash_now();
        assert!(disk.is_down());
        disk.revive();
        // Write more sectors than the stale countdown allowed; with the
        // countdown cleared this must succeed.
        let data = vec![1u8; 4 * SECTOR_SIZE];
        for i in 0..300u64 {
            disk.write_sectors(i * 4, &data).unwrap();
        }
        assert!(!disk.is_down());
    }

    #[test]
    fn transient_fault_fails_then_recovers_on_retry() {
        let mut disk = small_disk();
        let data = vec![0x42u8; 4 * SECTOR_SIZE];
        disk.write_sectors(64, &data).unwrap();
        disk.set_faults(FaultConfig {
            seed: 3,
            transient_ppm: 1_000_000, // Every sector.
            transient_max_failures: 2,
            ..FaultConfig::default()
        });
        let mut buf = vec![0u8; 4 * SECTOR_SIZE];
        let mut attempts = 0;
        loop {
            attempts += 1;
            match disk.read_sectors(64, &mut buf) {
                Ok(()) => break,
                Err(DiskError::Unreadable { sector }) => {
                    assert!((64..68).contains(&sector));
                    assert!(attempts < 32, "transient faults must be bounded");
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(attempts > 1, "at least one attempt must have failed");
        assert_eq!(buf, data, "recovered read returns the true contents");
        assert!(disk.stats().read_faults > 0);
    }

    #[test]
    fn latent_fault_persists_and_grown_defect_triggers_on_write() {
        let mut disk = small_disk();
        let data = vec![7u8; SECTOR_SIZE];
        disk.write_sectors(10, &data).unwrap();
        disk.set_faults(FaultConfig {
            seed: 5,
            latent_ppm: 1_000_000,
            ..FaultConfig::default()
        });
        let mut buf = vec![0u8; SECTOR_SIZE];
        for _ in 0..5 {
            assert_eq!(
                disk.read_sectors(10, &mut buf),
                Err(DiskError::Unreadable { sector: 10 })
            );
        }
        // Grown defects: readable until written.
        let mut disk = small_disk();
        disk.write_sectors(20, &data).unwrap();
        disk.set_faults(FaultConfig {
            seed: 5,
            grown_ppm: 1_000_000,
            ..FaultConfig::default()
        });
        disk.read_sectors(20, &mut buf).unwrap();
        disk.write_sectors(20, &data).unwrap();
        assert_eq!(
            disk.read_sectors(20, &mut buf),
            Err(DiskError::Unreadable { sector: 20 })
        );
    }

    #[test]
    fn fault_model_off_is_bit_identical_in_time_and_stats() {
        let run = |fault_config: Option<FaultConfig>| {
            let mut disk = small_disk();
            if let Some(cfg) = fault_config {
                disk.set_faults(cfg);
            }
            let data = vec![0x11u8; 64 << 10];
            disk.write_sectors(0, &data).unwrap();
            let mut buf = vec![0u8; 64 << 10];
            disk.read_sectors(0, &mut buf).unwrap();
            disk.read_sectors(32, &mut buf[..4096]).unwrap();
            (disk.now_us(), *disk.stats())
        };
        // No fault model vs. an attached-but-all-zero-rate model: same
        // clock, same stats — the model is free when its rates are zero.
        assert_eq!(run(None), run(Some(FaultConfig::default())));
    }

    #[test]
    fn host_think_time_shows_up_on_the_clock() {
        let mut disk = small_disk();
        let t0 = disk.now_us();
        disk.advance_us(12_345);
        assert_eq!(disk.now_us(), t0 + 12_345);
        // Think time is not disk busy time.
        assert_eq!(disk.stats().busy_us(), 0);
    }
}
