//! Deterministic media-fault injection.
//!
//! Real HP C3010-class drives fail per sector, not just wholesale:
//! transient ECC errors that succeed on retry, latent sector errors that
//! persist until the sector is rewritten elsewhere, and grown defects that
//! appear when a marginal sector is written. This module models all three
//! plus an optional background error rate, driven entirely by a stored
//! seed and the simulated clock — the same seed always yields the same
//! fault schedule, so every experiment stays reproducible.
//!
//! Whether a sector is fault-scheduled is a pure function of
//! `(seed, fault kind, sector)` via a SplitMix64-style mixer; no state is
//! kept for healthy sectors, so the model costs one hash per sector read
//! and nothing at all when disabled.

use std::collections::{HashMap, HashSet};

/// Configuration of the media-fault model. All rates are per-million
/// sectors (ppm); a rate of 0 disables that fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Fraction of sectors (ppm) with a transient read fault: the first
    /// few reads fail, then the sector reads fine forever.
    pub transient_ppm: u32,
    /// Upper bound on how many times a transient sector fails before it
    /// recovers (the exact count per sector is seed-derived, `1..=max`).
    pub transient_max_failures: u32,
    /// Fraction of sectors (ppm) with a latent sector error: every read
    /// fails until the data is relocated and the sector retired.
    pub latent_ppm: u32,
    /// Fraction of sectors (ppm) that grow a defect when written: the
    /// write completes but every subsequent read of the sector fails.
    pub grown_ppm: u32,
    /// Background one-off read-error rate (ppm per read attempt), keyed
    /// by the simulated clock so a retry at a later time succeeds.
    pub background_ppm: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            transient_ppm: 0,
            transient_max_failures: 2,
            latent_ppm: 0,
            grown_ppm: 0,
            background_ppm: 0,
        }
    }
}

impl FaultConfig {
    /// Whether any fault class is enabled.
    pub fn any_enabled(&self) -> bool {
        self.transient_ppm > 0
            || self.latent_ppm > 0
            || self.grown_ppm > 0
            || self.background_ppm > 0
    }
}

/// Live fault state: the config plus the little memory the model needs
/// (how often each transient sector has already failed, and which sectors
/// have grown defects).
#[derive(Debug)]
pub(crate) struct FaultState {
    config: FaultConfig,
    /// Failures already delivered per transient-scheduled sector.
    transient_fails: HashMap<u64, u32>,
    /// Sectors whose defect has been triggered by a write.
    grown_bad: HashSet<u64>,
}

/// SplitMix64-style mixer: a high-quality pure hash of (seed, salt, x).
fn mix(seed: u64, salt: u64, x: u64) -> u64 {
    let mut z = seed
        ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether a hash falls inside a ppm-sized window.
fn scheduled(h: u64, ppm: u32) -> bool {
    ppm > 0 && h % 1_000_000 < u64::from(ppm)
}

const SALT_TRANSIENT: u64 = 1;
const SALT_TRANSIENT_COUNT: u64 = 2;
const SALT_LATENT: u64 = 3;
const SALT_GROWN: u64 = 4;
const SALT_BACKGROUND: u64 = 5;

impl FaultState {
    pub(crate) fn new(config: FaultConfig) -> Self {
        Self {
            config,
            transient_fails: HashMap::new(),
            grown_bad: HashSet::new(),
        }
    }

    pub(crate) fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decides whether a media read of `sector` at simulated time `now_us`
    /// fails. Mutates only the transient failure counters.
    pub(crate) fn read_fails(&mut self, sector: u64, now_us: u64) -> bool {
        let seed = self.config.seed;
        if self.grown_bad.contains(&sector) {
            return true;
        }
        if scheduled(mix(seed, SALT_LATENT, sector), self.config.latent_ppm) {
            return true;
        }
        if scheduled(mix(seed, SALT_TRANSIENT, sector), self.config.transient_ppm) {
            let budget = 1 + (mix(seed, SALT_TRANSIENT_COUNT, sector)
                % u64::from(self.config.transient_max_failures.max(1)))
                as u32;
            let delivered = self.transient_fails.entry(sector).or_insert(0);
            if *delivered < budget {
                *delivered += 1;
                return true;
            }
        }
        if scheduled(
            mix(seed, SALT_BACKGROUND, now_us ^ sector.rotate_left(32)),
            self.config.background_ppm,
        ) {
            return true;
        }
        false
    }

    /// Whether `sector` fails reads persistently (latent error or a
    /// triggered grown defect) — a pure probe that consumes no transient
    /// budget, used to stop the drive's read-ahead at the first bad
    /// sector (a real drive cannot buffer what it cannot read).
    pub(crate) fn persistently_bad(&self, sector: u64) -> bool {
        self.grown_bad.contains(&sector)
            || scheduled(
                mix(self.config.seed, SALT_LATENT, sector),
                self.config.latent_ppm,
            )
    }

    /// Called after a sector write; returns true when the write triggered
    /// a grown defect (the data was written, but the sector will fail
    /// every subsequent read).
    pub(crate) fn write_grows_defect(&mut self, sector: u64) -> bool {
        if scheduled(mix(self.config.seed, SALT_GROWN, sector), self.config.grown_ppm)
            && self.grown_bad.insert(sector)
        {
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig {
            seed: 42,
            transient_ppm: 50_000,
            latent_ppm: 10_000,
            ..FaultConfig::default()
        };
        let mut a = FaultState::new(cfg);
        let mut b = FaultState::new(cfg);
        for sector in 0..10_000u64 {
            assert_eq!(a.read_fails(sector, 0), b.read_fails(sector, 0));
        }
    }

    #[test]
    fn transient_sectors_recover_after_bounded_failures() {
        let cfg = FaultConfig {
            seed: 7,
            transient_ppm: 1_000_000, // Every sector transient.
            transient_max_failures: 3,
            ..FaultConfig::default()
        };
        let mut f = FaultState::new(cfg);
        let mut failures = 0;
        while f.read_fails(123, 0) {
            failures += 1;
            assert!(failures <= 3, "transient failures must be bounded");
        }
        assert!(failures >= 1);
        // Recovered for good.
        for _ in 0..10 {
            assert!(!f.read_fails(123, 0));
        }
    }

    #[test]
    fn latent_sectors_never_recover() {
        let cfg = FaultConfig {
            seed: 9,
            latent_ppm: 1_000_000,
            ..FaultConfig::default()
        };
        let mut f = FaultState::new(cfg);
        for _ in 0..20 {
            assert!(f.read_fails(55, 0));
        }
    }

    #[test]
    fn grown_defects_fire_only_after_a_write() {
        let cfg = FaultConfig {
            seed: 11,
            grown_ppm: 1_000_000,
            ..FaultConfig::default()
        };
        let mut f = FaultState::new(cfg);
        assert!(!f.read_fails(77, 0), "untouched sector reads fine");
        assert!(f.write_grows_defect(77));
        assert!(f.read_fails(77, 0), "written sector is now bad");
        // Triggering is idempotent.
        assert!(!f.write_grows_defect(77));
    }

    #[test]
    fn background_errors_depend_on_the_clock() {
        let cfg = FaultConfig {
            seed: 13,
            background_ppm: 500_000,
            ..FaultConfig::default()
        };
        let mut f = FaultState::new(cfg);
        // At ~50% per attempt, 64 attempts at distinct times must contain
        // both outcomes (deterministically, given the fixed seed).
        let outcomes: Vec<bool> = (0..64u64).map(|t| f.read_fails(1, t * 1000)).collect();
        assert!(outcomes.iter().any(|&x| x));
        assert!(outcomes.iter().any(|&x| !x));
    }

    #[test]
    fn disabled_config_never_faults() {
        let mut f = FaultState::new(FaultConfig::default());
        assert!(!FaultConfig::default().any_enabled());
        for sector in 0..1000 {
            assert!(!f.read_fails(sector, sector * 17));
            assert!(!f.write_grows_defect(sector));
        }
    }
}
