//! JSONL encoding and (minimal) decoding of trace files.
//!
//! The format is deliberately flat — one JSON object per line, values
//! limited to unsigned integers, short enum names, and integer arrays —
//! so both sides can be implemented dependency-free. The decoder only
//! understands what the encoder emits; it is not a general JSON parser.
//!
//! Line kinds:
//!
//! - events: `{"at_us":N,"seq":N,"ev":"SeekDone","us":N}`
//! - attribution: `{"meta":"attribution","seek_us":N,...,"busy_us":N}`
//! - cross-check: `{"meta":"disk_busy_us","busy_us":N}`
//! - histograms: `{"meta":"hist","name":"...","unit":"...","count":N,"sum":N,"max":N,"buckets":[..]}`
//! - tracer info: `{"meta":"tracer","capacity":N,"recorded":N,"dropped":N}`
//!
//! Consumers may also interleave their own context lines (e.g. the bench
//! harness writes `{"meta":"run",...}` headers); unknown lines are
//! skipped by the reader.

use crate::attr::Attribution;
use crate::event::{Event, FsOpKind, TraceEvent};

/// Extracts the u64 value of `"key":N` from a flat JSON line.
pub fn get_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string value of `"key":"..."` from a flat JSON line.
pub fn get_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extracts the integer array value of `"key":[..]` from a flat line.
pub fn get_u64_array(line: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\":[");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find(']')?;
    let body = &rest[..end];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|s| s.trim().parse().ok()).collect()
}

/// Encodes one stamped event as a JSONL line (no trailing newline).
pub fn encode_event(e: &TraceEvent) -> String {
    let head = format!("{{\"at_us\":{},\"seq\":{},\"ev\":\"{}\"", e.at_us, e.seq, e.event.name());
    let body = match e.event {
        Event::SeekStart { from_cyl, to_cyl } => {
            format!(",\"from_cyl\":{from_cyl},\"to_cyl\":{to_cyl}")
        }
        Event::SeekDone { us }
        | Event::RotWait { us }
        | Event::HeadSwitch { us }
        | Event::CmdOverhead { us } => format!(",\"us\":{us}"),
        Event::Transfer { sectors, us } => format!(",\"sectors\":{sectors},\"us\":{us}"),
        Event::CacheHit { sector, sectors } | Event::CacheMiss { sector, sectors } => {
            format!(",\"sector\":{sector},\"sectors\":{sectors}")
        }
        Event::SegmentSeal {
            seg,
            write_seq,
            fill_bytes,
            cap_bytes,
        } => format!(
            ",\"seg\":{seg},\"write_seq\":{write_seq},\"fill_bytes\":{fill_bytes},\"cap_bytes\":{cap_bytes}"
        ),
        Event::PartialWrite { seg, bytes } => format!(",\"seg\":{seg},\"bytes\":{bytes}"),
        Event::CleanerPass {
            reclaimed,
            bytes_copied,
        } => format!(",\"reclaimed\":{reclaimed},\"bytes_copied\":{bytes_copied}"),
        Event::RecoverySweep { summaries, us } => {
            format!(",\"summaries\":{summaries},\"us\":{us}")
        }
        Event::FsOp { op, start_us, us } => {
            format!(",\"op\":\"{}\",\"start_us\":{start_us},\"us\":{us}", op.name())
        }
        Event::ReadRetry { sector, attempt, us } => {
            format!(",\"sector\":{sector},\"attempt\":{attempt},\"us\":{us}")
        }
        Event::SectorRemap { sector } => format!(",\"sector\":{sector}"),
        Event::ScrubPass {
            relocated,
            remapped,
            unreadable,
        } => format!(",\"relocated\":{relocated},\"remapped\":{remapped},\"unreadable\":{unreadable}"),
        Event::QueueSubmit {
            tag,
            sector,
            sectors,
        } => format!(",\"tag\":{tag},\"sector\":{sector},\"sectors\":{sectors}"),
        Event::QueueDispatch { tag, depth } => format!(",\"tag\":{tag},\"depth\":{depth}"),
        Event::QueueComplete { tag, us } => format!(",\"tag\":{tag},\"us\":{us}"),
    };
    format!("{head}{body}}}")
}

/// Decodes an event line produced by [`encode_event`]. Returns `None` for
/// meta lines, foreign lines, or malformed input.
pub fn decode_event(line: &str) -> Option<TraceEvent> {
    let at_us = get_u64(line, "at_us")?;
    let seq = get_u64(line, "seq")?;
    let ev = get_str(line, "ev")?;
    let event = match ev {
        "SeekStart" => Event::SeekStart {
            from_cyl: get_u64(line, "from_cyl")? as u32,
            to_cyl: get_u64(line, "to_cyl")? as u32,
        },
        "SeekDone" => Event::SeekDone {
            us: get_u64(line, "us")?,
        },
        "RotWait" => Event::RotWait {
            us: get_u64(line, "us")?,
        },
        "Transfer" => Event::Transfer {
            sectors: get_u64(line, "sectors")?,
            us: get_u64(line, "us")?,
        },
        "HeadSwitch" => Event::HeadSwitch {
            us: get_u64(line, "us")?,
        },
        "CmdOverhead" => Event::CmdOverhead {
            us: get_u64(line, "us")?,
        },
        "CacheHit" => Event::CacheHit {
            sector: get_u64(line, "sector")?,
            sectors: get_u64(line, "sectors")?,
        },
        "CacheMiss" => Event::CacheMiss {
            sector: get_u64(line, "sector")?,
            sectors: get_u64(line, "sectors")?,
        },
        "SegmentSeal" => Event::SegmentSeal {
            seg: get_u64(line, "seg")? as u32,
            write_seq: get_u64(line, "write_seq")?,
            fill_bytes: get_u64(line, "fill_bytes")?,
            cap_bytes: get_u64(line, "cap_bytes")?,
        },
        "PartialWrite" => Event::PartialWrite {
            seg: get_u64(line, "seg")? as u32,
            bytes: get_u64(line, "bytes")?,
        },
        "CleanerPass" => Event::CleanerPass {
            reclaimed: get_u64(line, "reclaimed")?,
            bytes_copied: get_u64(line, "bytes_copied")?,
        },
        "RecoverySweep" => Event::RecoverySweep {
            summaries: get_u64(line, "summaries")?,
            us: get_u64(line, "us")?,
        },
        "FsOp" => Event::FsOp {
            op: FsOpKind::from_name(get_str(line, "op")?)?,
            start_us: get_u64(line, "start_us")?,
            us: get_u64(line, "us")?,
        },
        "ReadRetry" => Event::ReadRetry {
            sector: get_u64(line, "sector")?,
            attempt: get_u64(line, "attempt")?,
            us: get_u64(line, "us")?,
        },
        "SectorRemap" => Event::SectorRemap {
            sector: get_u64(line, "sector")?,
        },
        "ScrubPass" => Event::ScrubPass {
            relocated: get_u64(line, "relocated")?,
            remapped: get_u64(line, "remapped")?,
            unreadable: get_u64(line, "unreadable")?,
        },
        "QueueSubmit" => Event::QueueSubmit {
            tag: get_u64(line, "tag")?,
            sector: get_u64(line, "sector")?,
            sectors: get_u64(line, "sectors")?,
        },
        "QueueDispatch" => Event::QueueDispatch {
            tag: get_u64(line, "tag")?,
            depth: get_u64(line, "depth")?,
        },
        "QueueComplete" => Event::QueueComplete {
            tag: get_u64(line, "tag")?,
            us: get_u64(line, "us")?,
        },
        _ => return None,
    };
    Some(TraceEvent { at_us, seq, event })
}

/// Encodes the attribution meta line. The `retry_us` and readahead memo
/// fields are emitted only when nonzero, so traces from runs that never
/// exercised them are byte-identical to the old format.
pub fn encode_attribution(a: &Attribution) -> String {
    let retry = if a.retry_us > 0 {
        format!(",\"retry_us\":{}", a.retry_us)
    } else {
        String::new()
    };
    let cache = if a.cache_hits > 0 || a.cache_misses > 0 {
        format!(
            ",\"cache_hits\":{},\"cache_misses\":{}",
            a.cache_hits, a.cache_misses
        )
    } else {
        String::new()
    };
    format!(
        "{{\"meta\":\"attribution\",\"seek_us\":{},\"rotation_us\":{},\"transfer_us\":{},\"switch_us\":{},\"overhead_us\":{}{}{},\"busy_us\":{}}}",
        a.seek_us, a.rotation_us, a.transfer_us, a.switch_us, a.overhead_us, retry, cache, a.busy_us()
    )
}

/// Decodes an attribution meta line (returns `None` for other lines).
pub fn decode_attribution(line: &str) -> Option<Attribution> {
    if get_str(line, "meta") != Some("attribution") {
        return None;
    }
    Some(Attribution {
        seek_us: get_u64(line, "seek_us")?,
        rotation_us: get_u64(line, "rotation_us")?,
        transfer_us: get_u64(line, "transfer_us")?,
        switch_us: get_u64(line, "switch_us")?,
        overhead_us: get_u64(line, "overhead_us")?,
        retry_us: get_u64(line, "retry_us").unwrap_or(0),
        cache_hits: get_u64(line, "cache_hits").unwrap_or(0),
        cache_misses: get_u64(line, "cache_misses").unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_variant_roundtrips() {
        let events = [
            Event::SeekStart { from_cyl: 3, to_cyl: 900 },
            Event::SeekDone { us: 11_500 },
            Event::RotWait { us: 5_500 },
            Event::Transfer { sectors: 8, us: 408 },
            Event::HeadSwitch { us: 1_600 },
            Event::CmdOverhead { us: 1_100 },
            Event::CacheHit { sector: 40, sectors: 8 },
            Event::CacheMiss { sector: 48, sectors: 8 },
            Event::SegmentSeal { seg: 7, write_seq: 42, fill_bytes: 500_000, cap_bytes: 520_192 },
            Event::PartialWrite { seg: 8, bytes: 12_000 },
            Event::CleanerPass { reclaimed: 3, bytes_copied: 90_000 },
            Event::RecoverySweep { summaries: 788, us: 12_000_000 },
            Event::FsOp { op: FsOpKind::Create, start_us: 100, us: 250 },
            Event::ReadRetry { sector: 4096, attempt: 2, us: 14_000 },
            Event::SectorRemap { sector: 4096 },
            Event::ScrubPass { relocated: 12, remapped: 3, unreadable: 0 },
            Event::QueueSubmit { tag: 17, sector: 2048, sectors: 128 },
            Event::QueueDispatch { tag: 17, depth: 6 },
            Event::QueueComplete { tag: 17, us: 190_000 },
        ];
        for (i, event) in events.into_iter().enumerate() {
            let stamped = TraceEvent { at_us: 1000 + i as u64, seq: i as u64, event };
            let line = encode_event(&stamped);
            let back = decode_event(&line);
            assert_eq!(back, Some(stamped), "roundtrip failed for {line}");
        }
    }

    #[test]
    fn attribution_roundtrips() {
        let a = Attribution {
            seek_us: 1,
            rotation_us: 2,
            transfer_us: 3,
            switch_us: 4,
            overhead_us: 5,
            ..Attribution::default()
        };
        let line = encode_attribution(&a);
        assert!(!line.contains("retry_us"), "zero memo stays off the wire");
        assert!(!line.contains("cache_"), "zero memo stays off the wire");
        assert_eq!(decode_attribution(&line), Some(a));
        assert_eq!(get_u64(&line, "busy_us"), Some(15));
        // Nonzero memos roundtrip and leave busy untouched.
        let b = Attribution {
            retry_us: 9,
            cache_hits: 2,
            cache_misses: 1,
            ..a
        };
        let line = encode_attribution(&b);
        assert_eq!(decode_attribution(&line), Some(b));
        assert_eq!(get_u64(&line, "busy_us"), Some(15));
    }

    #[test]
    fn foreign_and_malformed_lines_are_rejected_not_panicked() {
        assert_eq!(decode_event(""), None);
        assert_eq!(decode_event("{\"meta\":\"run\"}"), None);
        assert_eq!(decode_event("{\"at_us\":5,\"seq\":1,\"ev\":\"Nope\"}"), None);
        assert_eq!(decode_attribution("{\"garbage\":true}"), None);
        assert_eq!(get_u64_array("{\"b\":[1, 2,3]}", "b"), Some(vec![1, 2, 3]));
        assert_eq!(get_u64_array("{\"b\":[]}", "b"), Some(vec![]));
    }
}
