//! Per-layer time attribution.
//!
//! The tracer keeps running totals of every microsecond of simulated disk
//! busy time, keyed by the mechanical component that consumed it. Unlike
//! the event ring (which is bounded and drops old events), these totals
//! are exact for the tracer's whole lifetime, so the attribution table
//! always sums to precisely `DiskStats::busy_us()` accumulated since the
//! tracer was attached.

/// Where simulated disk busy time went, in microseconds. The five
/// components mirror `DiskStats` and sum exactly to its `busy_us()`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Attribution {
    /// Arm movement.
    pub seek_us: u64,
    /// Rotational latency.
    pub rotation_us: u64,
    /// Data transfer (media or bus rate).
    pub transfer_us: u64,
    /// Head/cylinder switches during transfers.
    pub switch_us: u64,
    /// Per-command host and controller overhead.
    pub overhead_us: u64,
    /// Memo: time consumed by read attempts that failed on a media fault
    /// and were retried. Those attempts drove the mechanism as usual, so
    /// their time is *already inside* the five components above; this
    /// field is informational and excluded from [`busy_us`](Self::busy_us).
    pub retry_us: u64,
    /// Memo: read requests served from the drive's read-ahead buffer.
    /// Counts, not time — a hit's (bus-rate) time is already inside the
    /// transfer/overhead components.
    pub cache_hits: u64,
    /// Memo: read requests that missed the read-ahead buffer and went to
    /// the medium.
    pub cache_misses: u64,
}

impl Attribution {
    /// Total attributed busy time — by construction the exact sum of the
    /// five components.
    pub fn busy_us(&self) -> u64 {
        self.seek_us + self.rotation_us + self.transfer_us + self.switch_us + self.overhead_us
    }

    /// The components as `(label, us)` pairs, fixed order.
    pub fn components(&self) -> [(&'static str, u64); 5] {
        [
            ("seek", self.seek_us),
            ("rotation", self.rotation_us),
            ("transfer", self.transfer_us),
            ("switch", self.switch_us),
            ("overhead", self.overhead_us),
        ]
    }

    /// Renders the attribution table. Percentages are integer tenths (no
    /// float formatting drift); the `us` column sums exactly to the
    /// printed total.
    pub fn render(&self) -> String {
        let busy = self.busy_us();
        let mut out = String::from("component        us      share\n");
        out.push_str("---------------------------------\n");
        for (label, us) in self.components() {
            let tenths = (us * 1000).checked_div(busy).unwrap_or(0);
            out.push_str(&format!(
                "{label:<10} {us:>12}     {:>3}.{}%\n",
                tenths / 10,
                tenths % 10
            ));
        }
        out.push_str(&format!("{:<10} {busy:>12}    100.0%\n", "busy"));
        if self.retry_us > 0 {
            // Memo row: retry time is a subset of the components above,
            // not a sixth component, so it sits outside the 100% total.
            let tenths = (self.retry_us * 1000).checked_div(busy).unwrap_or(0);
            out.push_str(&format!(
                "{:<10} {:>12}     {:>3}.{}%  (memo: included above)\n",
                "retry",
                self.retry_us,
                tenths / 10,
                tenths % 10
            ));
        }
        if self.cache_hits > 0 || self.cache_misses > 0 {
            // Memo row: request counts, not time — hit time is bus-rate
            // transfer + overhead, already inside the components above.
            let total = self.cache_hits + self.cache_misses;
            let tenths = (self.cache_hits * 1000).checked_div(total).unwrap_or(0);
            out.push_str(&format!(
                "{:<10} {:>6} hits / {} misses  ({:>3}.{}% hit rate)\n",
                "readahead",
                self.cache_hits,
                self.cache_misses,
                tenths / 10,
                tenths % 10
            ));
        }
        out
    }

    /// One-line summary for table footnotes.
    pub fn footnote(&self) -> String {
        let busy = self.busy_us();
        let pct = |us: u64| {
            let tenths = (us * 1000).checked_div(busy).unwrap_or(0);
            format!("{}.{}%", tenths / 10, tenths % 10)
        };
        let mut out = format!(
            "seek {} ({}) + rotation {} ({}) + transfer {} ({}) + switch {} ({}) + overhead {} ({}) = busy {} us",
            self.seek_us,
            pct(self.seek_us),
            self.rotation_us,
            pct(self.rotation_us),
            self.transfer_us,
            pct(self.transfer_us),
            self.switch_us,
            pct(self.switch_us),
            self.overhead_us,
            pct(self.overhead_us),
            busy,
        );
        if self.retry_us > 0 {
            out.push_str(&format!(" [retry memo {} us]", self.retry_us));
        }
        if self.cache_hits > 0 || self.cache_misses > 0 {
            out.push_str(&format!(
                " [readahead {} hits / {} misses]",
                self.cache_hits, self.cache_misses
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_sum_to_busy() {
        let a = Attribution {
            seek_us: 10,
            rotation_us: 20,
            transfer_us: 30,
            switch_us: 5,
            overhead_us: 7,
            ..Attribution::default()
        };
        assert_eq!(a.busy_us(), 72);
        let total: u64 = a.components().iter().map(|(_, us)| us).sum();
        assert_eq!(total, a.busy_us());
    }

    #[test]
    fn retry_memo_is_excluded_from_busy_and_components() {
        let a = Attribution {
            seek_us: 10,
            transfer_us: 30,
            retry_us: 25,
            ..Attribution::default()
        };
        assert_eq!(a.busy_us(), 40, "retry memo must not inflate busy");
        let total: u64 = a.components().iter().map(|(_, us)| us).sum();
        assert_eq!(total, 40);
        assert!(a.render().contains("memo"));
        assert!(a.footnote().contains("retry memo 25 us"));
        // Zero memo leaves the rendering untouched (zero-cost when off).
        let quiet = Attribution {
            retry_us: 0,
            ..a
        };
        assert!(!quiet.render().contains("memo"));
        assert!(!quiet.footnote().contains("memo"));
    }

    #[test]
    fn readahead_memo_is_counts_only_and_quiet_when_zero() {
        let a = Attribution {
            transfer_us: 40,
            cache_hits: 3,
            cache_misses: 1,
            ..Attribution::default()
        };
        assert_eq!(a.busy_us(), 40, "readahead memo must not inflate busy");
        assert!(a.render().contains("readahead"));
        assert!(a.render().contains("3 hits / 1 misses"));
        assert!(a.render().contains("75.0% hit rate"));
        assert!(a.footnote().contains("readahead 3 hits / 1 misses"));
        // Zero counters leave both renderings untouched, so traces from
        // cacheless runs are byte-identical to the old format.
        let quiet = Attribution {
            cache_hits: 0,
            cache_misses: 0,
            ..a
        };
        assert!(!quiet.render().contains("readahead"));
        assert!(!quiet.footnote().contains("readahead"));
    }

    #[test]
    fn render_handles_zero_busy() {
        let a = Attribution::default();
        let s = a.render();
        assert!(s.contains("busy"));
        assert!(s.contains("0.0%"));
    }

    #[test]
    fn footnote_mentions_every_component() {
        let a = Attribution {
            seek_us: 1,
            rotation_us: 2,
            transfer_us: 3,
            switch_us: 4,
            overhead_us: 5,
            ..Attribution::default()
        };
        let f = a.footnote();
        for needle in ["seek 1", "rotation 2", "transfer 3", "switch 4", "overhead 5", "busy 15"] {
            assert!(f.contains(needle), "missing {needle} in {f}");
        }
    }
}
