//! `ldtrace` — renders a JSONL trace produced by `ld-trace` (e.g. via
//! `repro --trace`) as a human-readable I/O timeline, metric histograms,
//! and the per-layer time-attribution table, verifying that the
//! attribution components sum exactly to the disk's busy time.
//!
//! ```text
//! ldtrace <trace.jsonl> [--tail N]    # render + verify (default N=40)
//! ldtrace --selftest                  # record/export/parse roundtrip
//! ```
//!
//! Exit codes: 0 clean, 1 verification failure, 2 usage/IO error.

use std::process::ExitCode;

use ld_trace::{jsonl, Attribution, Event, FsOpKind, Tracer};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--selftest") {
        return selftest();
    }
    let mut tail = 40usize;
    let mut path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tail" => {
                tail = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--tail needs a number"),
                }
            }
            "--help" | "-h" => return usage(""),
            _ if a.starts_with("--") => return usage(&format!("unknown flag {a}")),
            _ => path = Some(a),
        }
    }
    let Some(path) = path else {
        return usage("no trace file given");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ldtrace: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    render(&text, tail)
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("ldtrace: {err}");
    }
    eprintln!("usage: ldtrace <trace.jsonl> [--tail N] | --selftest");
    ExitCode::from(if err.is_empty() { 0 } else { 2 })
}

/// Renders every run section in the file (the bench harness interleaves
/// `{"meta":"run",...}` headers between tracer exports).
fn render(text: &str, tail: usize) -> ExitCode {
    let mut failures = 0u32;
    let mut section = String::new();
    let mut title = String::from("trace");
    let mut any = false;
    for line in text.lines() {
        if jsonl::get_str(line, "meta") == Some("run") {
            if any {
                failures += render_section(&title, &section, tail);
            }
            let exp = jsonl::get_str(line, "exp").unwrap_or("?");
            let fs = jsonl::get_str(line, "fs").unwrap_or("?");
            title = format!("{exp} / {fs}");
            section.clear();
            any = true;
            continue;
        }
        any = true;
        section.push_str(line);
        section.push('\n');
    }
    if !section.is_empty() || any {
        failures += render_section(&title, &section, tail);
    }
    if failures > 0 {
        eprintln!("ldtrace: {failures} section(s) failed verification");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders one tracer export; returns 1 on verification failure.
fn render_section(title: &str, text: &str, tail: usize) -> u32 {
    println!("== {title} ==");
    let events: Vec<_> = text.lines().filter_map(jsonl::decode_event).collect();
    let shown = events.len().min(tail);
    if shown > 0 {
        println!(
            "-- timeline (last {shown} of {} buffered events) --",
            events.len()
        );
        for e in &events[events.len() - shown..] {
            println!("{e}");
        }
    } else {
        println!("-- no events buffered --");
    }

    for line in text.lines() {
        if jsonl::get_str(line, "meta") != Some("hist") {
            continue;
        }
        let (Some(name), Some(count)) = (
            jsonl::get_str(line, "name"),
            jsonl::get_u64(line, "count"),
        ) else {
            continue;
        };
        if count == 0 {
            continue;
        }
        let unit = jsonl::get_str(line, "unit").unwrap_or("");
        let sum = jsonl::get_u64(line, "sum").unwrap_or(0);
        let max = jsonl::get_u64(line, "max").unwrap_or(0);
        println!(
            "-- {name}: n={count} mean={} max={max} {unit} --",
            sum / count.max(1)
        );
        if let Some(buckets) = jsonl::get_u64_array(line, "buckets") {
            let peak = buckets.iter().copied().max().unwrap_or(1).max(1);
            for (i, &c) in buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let lo = ld_trace::Histogram::bucket_lo(i);
                let bar = "#".repeat(((c * 40).div_ceil(peak)) as usize);
                println!("  >= {lo:>10} {unit}: {c:>8} {bar}");
            }
        }
    }

    let attr = text.lines().find_map(jsonl::decode_attribution);
    if let Some(a) = attr {
        println!("-- per-layer time attribution --");
        print!("{}", a.render());
    }
    match ld_trace::verify_jsonl(text) {
        Ok(()) => {
            println!("verification: attribution sums exactly to disk busy time");
            println!();
            0
        }
        Err(e) => {
            println!("verification FAILED: {e}");
            println!();
            1
        }
    }
}

/// Offline self-test: record a synthetic mixed workload, export, parse it
/// back, and verify every cross-check `ldtrace` relies on.
fn selftest() -> ExitCode {
    let t = Tracer::new(128);
    let mut clock = 0u64;
    let mut busy = 0u64;
    // A deterministic little workload exercising every variant.
    for i in 0..200u64 {
        let seek = 1_000 + (i * 37) % 9_000;
        let rot = (i * 131) % 11_120;
        let xfer = 51 * (1 + i % 8);
        t.record(
            clock,
            Event::SeekStart {
                from_cyl: (i % 1_000) as u32,
                to_cyl: ((i * 13) % 2_000) as u32,
            },
        );
        clock += seek;
        t.record(clock, Event::SeekDone { us: seek });
        clock += rot;
        t.record(clock, Event::RotWait { us: rot });
        clock += xfer;
        t.record(clock, Event::Transfer { sectors: 1 + i % 8, us: xfer });
        t.record(clock, Event::CmdOverhead { us: 1_100 });
        clock += 1_100;
        busy += seek + rot + xfer + 1_100;
        if i % 16 == 0 {
            t.record(clock, Event::HeadSwitch { us: 1_600 });
            clock += 1_600;
            busy += 1_600;
        }
        // Queue + read-ahead memo events: no busy time of their own (the
        // mechanical components above already carry it), but they must
        // survive the JSONL roundtrip, feed the queue-depth histogram,
        // and land in the attribution memo counters.
        if i % 4 == 0 {
            t.record(clock, Event::QueueSubmit { tag: i, sector: i * 64, sectors: 8 });
            t.record(clock, Event::QueueDispatch { tag: i, depth: 1 + i % 6 });
            t.record(clock, Event::QueueComplete { tag: i, us: xfer });
        }
        if i % 5 == 0 {
            t.record(clock, Event::CacheHit { sector: i * 64, sectors: 8 });
        } else if i % 5 == 1 {
            t.record(clock, Event::CacheMiss { sector: i * 64, sectors: 8 });
        }
        if i % 25 == 0 {
            t.record(
                clock,
                Event::SegmentSeal {
                    seg: (i / 25) as u32,
                    write_seq: i,
                    fill_bytes: 400_000 + i * 100,
                    cap_bytes: 520_192,
                },
            );
            t.record(
                clock,
                Event::FsOp {
                    op: FsOpKind::Sync,
                    start_us: clock - 500,
                    us: 500,
                },
            );
        }
    }
    t.record(clock, Event::CleanerPass { reclaimed: 2, bytes_copied: 123_456 });
    t.record(clock, Event::RecoverySweep { summaries: 788, us: 12_000_000 });

    let a = t.attribution();
    if a.busy_us() != busy {
        eprintln!(
            "ldtrace selftest: attribution busy {} != expected {busy}",
            a.busy_us()
        );
        return ExitCode::FAILURE;
    }
    if a.cache_hits != 40 || a.cache_misses != 40 {
        eprintln!(
            "ldtrace selftest: read-ahead memo counters wrong ({}/{}, expected 40/40)",
            a.cache_hits, a.cache_misses
        );
        return ExitCode::FAILURE;
    }
    // 50 dispatches at depths 1..=6 feed the queue-depth histogram.
    let (qname, _, qdepth) = &t.histograms()[4];
    if *qname != "queue_depth" || qdepth.count() != 50 || qdepth.max() != 5 {
        eprintln!(
            "ldtrace selftest: queue-depth histogram wrong ({qname}, n={}, max={})",
            qdepth.count(),
            qdepth.max()
        );
        return ExitCode::FAILURE;
    }
    let jsonl_text = t.to_jsonl(Some(busy));
    if let Err(e) = ld_trace::verify_jsonl(&jsonl_text) {
        eprintln!("ldtrace selftest: clean export failed verification: {e}");
        return ExitCode::FAILURE;
    }
    // A corrupted busy line must be caught.
    let corrupted = t.to_jsonl(Some(busy + 1));
    if ld_trace::verify_jsonl(&corrupted).is_ok() {
        eprintln!("ldtrace selftest: corrupted export passed verification");
        return ExitCode::FAILURE;
    }
    // Ring accounting: 200 iterations emit >128 events, so the ring is
    // full and the oldest were dropped, yet attribution stayed exact.
    if t.dropped() == 0 || t.tail(usize::MAX).len() != t.capacity() {
        eprintln!("ldtrace selftest: ring accounting wrong");
        return ExitCode::FAILURE;
    }
    // The parsed-back event stream must reconstruct verbatim.
    let reparsed: Vec<_> = jsonl_text
        .lines()
        .filter_map(jsonl::decode_event)
        .collect();
    if reparsed != t.tail(usize::MAX) {
        eprintln!("ldtrace selftest: JSONL roundtrip mismatch");
        return ExitCode::FAILURE;
    }
    // Attribution line roundtrip.
    let parsed_attr: Option<Attribution> =
        jsonl_text.lines().find_map(jsonl::decode_attribution);
    if parsed_attr != Some(a) {
        eprintln!("ldtrace selftest: attribution roundtrip mismatch");
        return ExitCode::FAILURE;
    }
    println!(
        "ldtrace selftest: ok ({} events recorded, {} buffered, busy {} us attributed exactly)",
        t.recorded(),
        t.tail(usize::MAX).len(),
        busy
    );
    ExitCode::SUCCESS
}
