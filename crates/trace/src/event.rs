//! Typed trace events.
//!
//! Every event is `Copy` and fixed-size so recording one into the
//! pre-allocated ring buffer never allocates — the zero-cost-when-disabled
//! contract of the tracer extends to "cheap when enabled" on hot paths.

/// A file-system operation kind, for [`Event::FsOp`] spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsOpKind {
    /// Path lookup.
    Lookup,
    /// File creation.
    Create,
    /// Directory creation.
    Mkdir,
    /// File read.
    Read,
    /// File write.
    Write,
    /// File removal.
    Unlink,
    /// Flush of all dirty state.
    Sync,
    /// Truncate to zero length.
    Truncate,
}

impl FsOpKind {
    /// Stable wire/display name.
    pub fn name(self) -> &'static str {
        match self {
            FsOpKind::Lookup => "lookup",
            FsOpKind::Create => "create",
            FsOpKind::Mkdir => "mkdir",
            FsOpKind::Read => "read",
            FsOpKind::Write => "write",
            FsOpKind::Unlink => "unlink",
            FsOpKind::Sync => "sync",
            FsOpKind::Truncate => "truncate",
        }
    }

    /// Inverse of [`name`](Self::name), for the JSONL reader.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "lookup" => FsOpKind::Lookup,
            "create" => FsOpKind::Create,
            "mkdir" => FsOpKind::Mkdir,
            "read" => FsOpKind::Read,
            "write" => FsOpKind::Write,
            "unlink" => FsOpKind::Unlink,
            "sync" => FsOpKind::Sync,
            "truncate" => FsOpKind::Truncate,
            _ => return None,
        })
    }
}

/// One structured trace event. Time fields are *simulated* microseconds —
/// the tracer never consults a wall clock (determinism invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The disk arm started moving between cylinders.
    SeekStart {
        /// Cylinder the arm left.
        from_cyl: u32,
        /// Cylinder the arm moved to.
        to_cyl: u32,
    },
    /// The seek completed after `us` microseconds.
    SeekDone {
        /// Seek duration.
        us: u64,
    },
    /// The head waited for the platter to rotate to the target sector.
    RotWait {
        /// Rotational delay.
        us: u64,
    },
    /// Data moved between host and medium.
    Transfer {
        /// Sectors transferred.
        sectors: u64,
        /// Transfer time (media or bus rate).
        us: u64,
    },
    /// Head or cylinder switch during a multi-track transfer.
    HeadSwitch {
        /// Switch time.
        us: u64,
    },
    /// Per-command host/controller overhead.
    CmdOverhead {
        /// Overhead charged for this command.
        us: u64,
    },
    /// A read was served from the drive's read-ahead buffer.
    CacheHit {
        /// First sector of the request.
        sector: u64,
        /// Sectors requested.
        sectors: u64,
    },
    /// A read missed the read-ahead buffer (media access).
    CacheMiss {
        /// First sector of the request.
        sector: u64,
        /// Sectors requested.
        sectors: u64,
    },
    /// LLD sealed the open segment and wrote it to disk.
    SegmentSeal {
        /// Physical segment chosen.
        seg: u32,
        /// Segment-write sequence number.
        write_seq: u64,
        /// Payload bytes in the segment at seal.
        fill_bytes: u64,
        /// Payload capacity of a segment.
        cap_bytes: u64,
    },
    /// LLD wrote a below-threshold partial segment (§3.2).
    PartialWrite {
        /// Scratch segment used.
        seg: u32,
        /// Payload bytes written.
        bytes: u64,
    },
    /// One cleaner invocation finished.
    CleanerPass {
        /// Segments reclaimed by this pass.
        reclaimed: u64,
        /// Live bytes copied forward (write amplification).
        bytes_copied: u64,
    },
    /// A one-sweep recovery (§3.6) completed.
    RecoverySweep {
        /// Segment summaries read.
        summaries: u64,
        /// Simulated time the sweep took.
        us: u64,
    },
    /// A completed file-system operation span.
    FsOp {
        /// Operation kind.
        op: FsOpKind,
        /// Simulated time the operation started.
        start_us: u64,
        /// Operation latency.
        us: u64,
    },
    /// LLD re-drove a read after a media fault (one event per retry).
    ReadRetry {
        /// Sector that failed on the previous attempt.
        sector: u64,
        /// Retry ordinal (1 = first retry).
        attempt: u64,
        /// Simulated time the failed attempt consumed (memo; this time is
        /// already attributed to the mechanical components it used).
        us: u64,
    },
    /// A failing sector was quarantined into the bad-sector remap table.
    SectorRemap {
        /// The retired sector.
        sector: u64,
    },
    /// A scrub/relocate pass over suspect segments completed.
    ScrubPass {
        /// Live blocks migrated off failing media.
        relocated: u64,
        /// Sectors newly added to the bad-sector table.
        remapped: u64,
        /// Live blocks that stayed unreadable after retries.
        unreadable: u64,
    },
    /// A request entered the tagged command queue.
    QueueSubmit {
        /// Submission tag (the surviving tag when the request coalesced
        /// into an earlier one).
        tag: u64,
        /// First sector of the request.
        sector: u64,
        /// Sectors covered.
        sectors: u64,
    },
    /// The scheduler handed a queued request to the device.
    QueueDispatch {
        /// Submission tag of the chosen request.
        tag: u64,
        /// Pending-queue depth at dispatch time (including the chosen
        /// request); feeds the queue-depth histogram.
        depth: u64,
    },
    /// A dispatched request finished on the device.
    QueueComplete {
        /// Submission tag.
        tag: u64,
        /// Device service time (memo; this time is already attributed to
        /// the mechanical components it used).
        us: u64,
    },
}

impl Event {
    /// Stable wire/display name of the variant.
    pub fn name(&self) -> &'static str {
        match self {
            Event::SeekStart { .. } => "SeekStart",
            Event::SeekDone { .. } => "SeekDone",
            Event::RotWait { .. } => "RotWait",
            Event::Transfer { .. } => "Transfer",
            Event::HeadSwitch { .. } => "HeadSwitch",
            Event::CmdOverhead { .. } => "CmdOverhead",
            Event::CacheHit { .. } => "CacheHit",
            Event::CacheMiss { .. } => "CacheMiss",
            Event::SegmentSeal { .. } => "SegmentSeal",
            Event::PartialWrite { .. } => "PartialWrite",
            Event::CleanerPass { .. } => "CleanerPass",
            Event::RecoverySweep { .. } => "RecoverySweep",
            Event::FsOp { .. } => "FsOp",
            Event::ReadRetry { .. } => "ReadRetry",
            Event::SectorRemap { .. } => "SectorRemap",
            Event::ScrubPass { .. } => "ScrubPass",
            Event::QueueSubmit { .. } => "QueueSubmit",
            Event::QueueDispatch { .. } => "QueueDispatch",
            Event::QueueComplete { .. } => "QueueComplete",
        }
    }
}

/// An event stamped with the simulated clock and a monotone sequence
/// number (the sequence disambiguates events at the same instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time the event was recorded.
    pub at_us: u64,
    /// Monotone per-tracer sequence number.
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>12} us] #{:<6} ", self.at_us, self.seq)?;
        match self.event {
            Event::SeekStart { from_cyl, to_cyl } => {
                write!(f, "SeekStart    cyl {from_cyl} -> {to_cyl}")
            }
            Event::SeekDone { us } => write!(f, "SeekDone     {us} us"),
            Event::RotWait { us } => write!(f, "RotWait      {us} us"),
            Event::Transfer { sectors, us } => {
                write!(f, "Transfer     {sectors} sectors, {us} us")
            }
            Event::HeadSwitch { us } => write!(f, "HeadSwitch   {us} us"),
            Event::CmdOverhead { us } => write!(f, "CmdOverhead  {us} us"),
            Event::CacheHit { sector, sectors } => {
                write!(f, "CacheHit     {sectors} sectors @ {sector}")
            }
            Event::CacheMiss { sector, sectors } => {
                write!(f, "CacheMiss    {sectors} sectors @ {sector}")
            }
            Event::SegmentSeal {
                seg,
                write_seq,
                fill_bytes,
                cap_bytes,
            } => {
                let pct = (fill_bytes * 100).checked_div(cap_bytes).unwrap_or(0);
                write!(
                    f,
                    "SegmentSeal  seg {seg} (write #{write_seq}), {fill_bytes} B ({pct}% full)"
                )
            }
            Event::PartialWrite { seg, bytes } => {
                write!(f, "PartialWrite seg {seg}, {bytes} B")
            }
            Event::CleanerPass {
                reclaimed,
                bytes_copied,
            } => write!(
                f,
                "CleanerPass  reclaimed {reclaimed} segs, copied {bytes_copied} B"
            ),
            Event::RecoverySweep { summaries, us } => {
                write!(f, "RecoverySweep {summaries} summaries, {us} us")
            }
            Event::FsOp { op, start_us, us } => {
                write!(f, "FsOp         {} started {start_us}, {us} us", op.name())
            }
            Event::ReadRetry { sector, attempt, us } => {
                write!(f, "ReadRetry    sector {sector}, attempt {attempt}, {us} us")
            }
            Event::SectorRemap { sector } => write!(f, "SectorRemap  sector {sector}"),
            Event::ScrubPass {
                relocated,
                remapped,
                unreadable,
            } => write!(
                f,
                "ScrubPass    relocated {relocated}, remapped {remapped}, unreadable {unreadable}"
            ),
            Event::QueueSubmit {
                tag,
                sector,
                sectors,
            } => write!(f, "QueueSubmit  tag {tag}, {sectors} sectors @ {sector}"),
            Event::QueueDispatch { tag, depth } => {
                write!(f, "QueueDispatch tag {tag}, depth {depth}")
            }
            Event::QueueComplete { tag, us } => {
                write!(f, "QueueComplete tag {tag}, {us} us")
            }
        }
    }
}
