//! Fixed-bucket log2 histograms.
//!
//! Buckets are powers of two: bucket 0 holds the value 0, bucket `i`
//! (1-based) holds values in `[2^(i-1), 2^i)`. 33 buckets cover every
//! value below 2^32; larger values saturate into the last bucket. Fixed
//! arrays mean recording never allocates.

/// Number of buckets (value 0, then 32 power-of-two ranges).
pub const BUCKETS: usize = 33;

/// A log2 histogram with fixed buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index for a value.
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Lower bound of bucket `i` (inclusive).
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Renders a compact multi-line bar view of the non-empty buckets.
    pub fn render(&self, name: &str, unit: &str) -> String {
        let mut out = format!(
            "{name}: n={} mean={} max={} {unit}\n",
            self.count, self.mean(), self.max
        );
        if self.count == 0 {
            return out;
        }
        let peak = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        let hi = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0);
        let lo = self.buckets.iter().position(|&c| c > 0).unwrap_or(0);
        for i in lo..=hi {
            let c = self.buckets[i];
            let bar = "#".repeat(((c * 40).div_ceil(peak)) as usize);
            out.push_str(&format!(
                "  >= {:>10} {unit}: {c:>8} {bar}\n",
                Self::bucket_lo(i)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2..3
        assert_eq!(h.buckets()[3], 2); // 4..7
        assert_eq!(h.buckets()[4], 1); // 8
        assert_eq!(h.buckets()[10], 1); // 512..1023
        assert_eq!(h.buckets()[11], 1); // 1024..2047
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn huge_values_saturate_into_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.buckets()[BUCKETS - 1], 1);
    }

    #[test]
    fn render_marks_nonempty_range() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(100);
        let s = h.render("lat", "us");
        assert!(s.contains("n=2"));
        assert!(s.contains("#"));
    }
}
