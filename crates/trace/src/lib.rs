//! `ld-trace` — structured event tracing and metrics for the Logical Disk
//! stack.
//!
//! The paper's evaluation (§4.2) is an argument about *where simulated
//! time goes*: seek-bound small-file traffic vs transfer-bound segment
//! writes. End-of-run counters (`DiskStats`, `LldStats`) answer "how
//! much"; this crate answers "when and why" without giving up the
//! determinism of the simulated clock:
//!
//! - a bounded ring-buffer [`Tracer`] recording typed [`Event`]s stamped
//!   with the **simulated** clock (never wall time),
//! - running [`Attribution`] totals whose five components sum *exactly*
//!   to the disk's `busy_us()` accumulated while the tracer was attached,
//! - log2 [`Histogram`]s (seek distance, rotational wait, segment fill at
//!   seal, per-FS-op latency),
//! - JSONL export and the `ldtrace` CLI that renders an I/O timeline and
//!   the per-layer time-attribution table.
//!
//! # Cost model
//!
//! Layers hold an `Option<Tracer>`; with `None` the only cost is the
//! branch. With a tracer attached, recording an event is a fixed-size
//! copy into a pre-allocated ring plus a few integer adds — no per-event
//! allocation, no clock reads beyond what the layer already knows.
//!
//! The tracer handle is a cheap clone (`Rc`): attach the same tracer to
//! the disk, the LLD, and the file system to get one interleaved
//! timeline.
//!
//! # Example
//!
//! ```
//! use ld_trace::{Event, Tracer};
//!
//! let tracer = Tracer::new(1024);
//! tracer.record(10, Event::SeekDone { us: 11_500 });
//! tracer.record(21_500, Event::RotWait { us: 5_500 });
//! assert_eq!(tracer.attribution().busy_us(), 17_000);
//! let jsonl = tracer.to_jsonl(Some(17_000));
//! assert!(ld_trace::verify_jsonl(&jsonl).is_ok());
//! ```

mod attr;
mod event;
mod hist;
pub mod jsonl;

pub use attr::Attribution;
pub use event::{Event, FsOpKind, TraceEvent};
pub use hist::{Histogram, BUCKETS};

use std::cell::RefCell;
use std::rc::Rc;

/// Default ring capacity used by integration points that do not care.
pub const DEFAULT_CAPACITY: usize = 4096;

#[derive(Debug)]
struct Inner {
    /// Pre-allocated ring; grows by `push` only until `cap` is reached.
    ring: Vec<TraceEvent>,
    cap: usize,
    /// Next slot to overwrite once the ring is full.
    next: usize,
    /// Events ever recorded (recorded - ring length = dropped).
    recorded: u64,
    seq: u64,
    attr: Attribution,
    hist_seek_cyl: Histogram,
    hist_rot_us: Histogram,
    hist_seal_fill_pct: Histogram,
    hist_fsop_us: Histogram,
    hist_queue_depth: Histogram,
}

/// A shared, cheaply-clonable tracing handle.
///
/// See the [crate docs](crate) for the cost model. All methods take
/// `&self`; interior mutability keeps call sites free of borrow
/// plumbing. The tracer is single-threaded by design (the whole
/// simulation is), matching the deterministic-clock invariant.
#[derive(Debug, Clone)]
pub struct Tracer(Rc<RefCell<Inner>>);

impl Tracer {
    /// Creates a tracer whose ring holds up to `capacity` events
    /// (clamped to at least 16). The ring is pre-allocated here so the
    /// recording path never allocates.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(16);
        Self(Rc::new(RefCell::new(Inner {
            ring: Vec::with_capacity(cap),
            cap,
            next: 0,
            recorded: 0,
            seq: 0,
            attr: Attribution::default(),
            hist_seek_cyl: Histogram::new(),
            hist_rot_us: Histogram::new(),
            hist_seal_fill_pct: Histogram::new(),
            hist_fsop_us: Histogram::new(),
            hist_queue_depth: Histogram::new(),
        })))
    }

    /// Records `event` at simulated time `at_us`.
    ///
    /// Reentrant calls (impossible in the current single-threaded stack,
    /// but cheap to be safe about) drop the event instead of panicking.
    pub fn record(&self, at_us: u64, event: Event) {
        let Ok(mut inner) = self.0.try_borrow_mut() else {
            return;
        };
        let inner = &mut *inner;
        match event {
            Event::SeekStart { from_cyl, to_cyl } => {
                inner
                    .hist_seek_cyl
                    .record(u64::from(from_cyl.abs_diff(to_cyl)));
            }
            Event::SeekDone { us } => inner.attr.seek_us += us,
            Event::RotWait { us } => {
                inner.attr.rotation_us += us;
                inner.hist_rot_us.record(us);
            }
            Event::Transfer { us, .. } => inner.attr.transfer_us += us,
            Event::HeadSwitch { us } => inner.attr.switch_us += us,
            Event::CmdOverhead { us } => inner.attr.overhead_us += us,
            Event::SegmentSeal {
                fill_bytes,
                cap_bytes,
                ..
            } => {
                if let Some(pct) = (fill_bytes * 100).checked_div(cap_bytes) {
                    inner.hist_seal_fill_pct.record(pct);
                }
            }
            Event::FsOp { us, .. } => inner.hist_fsop_us.record(us),
            // Memo only: the failed attempt's time already flowed into the
            // mechanical components via the events the disk emitted.
            Event::ReadRetry { us, .. } => inner.attr.retry_us += us,
            // Memo counters: a hit/miss's time is already attributed to
            // the (bus or mechanical) components the read used.
            Event::CacheHit { .. } => inner.attr.cache_hits += 1,
            Event::CacheMiss { .. } => inner.attr.cache_misses += 1,
            // Queue events carry no time of their own — the device charges
            // every microsecond when the request actually dispatches.
            Event::QueueDispatch { depth, .. } => inner.hist_queue_depth.record(depth),
            _ => {}
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.recorded += 1;
        let stamped = TraceEvent { at_us, seq, event };
        if inner.ring.len() < inner.cap {
            inner.ring.push(stamped);
        } else {
            inner.ring[inner.next] = stamped;
            inner.next = (inner.next + 1) % inner.cap;
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.0.borrow().cap
    }

    /// Events ever recorded (including those since evicted).
    pub fn recorded(&self) -> u64 {
        self.0.borrow().recorded
    }

    /// Events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        let inner = self.0.borrow();
        inner.recorded - inner.ring.len() as u64
    }

    /// The last `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let inner = self.0.borrow();
        let len = inner.ring.len();
        let take = n.min(len);
        let mut out = Vec::with_capacity(take);
        // Ring order: `next..len` is the oldest stretch once wrapped.
        for i in 0..len {
            let idx = if len == inner.cap {
                (inner.next + i) % len
            } else {
                i
            };
            out.push(inner.ring[idx]);
        }
        out.split_off(len - take)
    }

    /// Human-readable dump of the trailing `n` events, for attaching to
    /// assertion failures in crash tests.
    pub fn dump_tail(&self, n: usize) -> String {
        let events = self.tail(n);
        let mut out = format!(
            "--- trace tail ({} of {} recorded, {} dropped) ---\n",
            events.len(),
            self.recorded(),
            self.dropped()
        );
        for e in &events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Exact per-component busy-time attribution since the tracer was
    /// created (independent of ring eviction).
    pub fn attribution(&self) -> Attribution {
        self.0.borrow().attr
    }

    /// The metric histograms as `(name, unit, histogram)` triples.
    pub fn histograms(&self) -> [(&'static str, &'static str, Histogram); 5] {
        let inner = self.0.borrow();
        [
            ("seek_distance", "cyl", inner.hist_seek_cyl),
            ("rotational_wait", "us", inner.hist_rot_us),
            ("segment_fill_at_seal", "%", inner.hist_seal_fill_pct),
            ("fs_op_latency", "us", inner.hist_fsop_us),
            ("queue_depth", "reqs", inner.hist_queue_depth),
        ]
    }

    /// Writes the trace as JSONL: tracer info, all ring events (oldest
    /// first), histograms, the attribution line, and — when the caller
    /// provides the disk's own counter — a `disk_busy_us` cross-check
    /// line that `ldtrace` verifies against the attribution sum.
    pub fn export_jsonl<W: std::io::Write>(
        &self,
        w: &mut W,
        disk_busy_us: Option<u64>,
    ) -> std::io::Result<()> {
        let inner = self.0.borrow();
        writeln!(
            w,
            "{{\"meta\":\"tracer\",\"capacity\":{},\"recorded\":{},\"dropped\":{}}}",
            inner.cap,
            inner.recorded,
            inner.recorded - inner.ring.len() as u64
        )?;
        drop(inner);
        for e in self.tail(usize::MAX) {
            writeln!(w, "{}", jsonl::encode_event(&e))?;
        }
        for (name, unit, h) in self.histograms() {
            let buckets: Vec<String> = h.buckets().iter().map(u64::to_string).collect();
            writeln!(
                w,
                "{{\"meta\":\"hist\",\"name\":\"{name}\",\"unit\":\"{unit}\",\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[{}]}}",
                h.count(),
                h.sum(),
                h.max(),
                buckets.join(",")
            )?;
        }
        writeln!(w, "{}", jsonl::encode_attribution(&self.attribution()))?;
        if let Some(busy) = disk_busy_us {
            writeln!(w, "{{\"meta\":\"disk_busy_us\",\"busy_us\":{busy}}}")?;
        }
        Ok(())
    }

    /// [`export_jsonl`](Self::export_jsonl) into a `String`.
    pub fn to_jsonl(&self, disk_busy_us: Option<u64>) -> String {
        let mut buf = Vec::new();
        self.export_jsonl(&mut buf, disk_busy_us).expect("Vec write"); // PANIC-OK: writing to a Vec<u8> cannot fail.
        String::from_utf8_lossy(&buf).into_owned()
    }
}

/// A consistency failure found in a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// No attribution line present.
    MissingAttribution,
    /// The attribution components do not sum to its own busy total (file
    /// corrupt or hand-edited).
    AttributionSumMismatch {
        /// Sum of the five components.
        components: u64,
        /// The recorded busy total.
        busy: u64,
    },
    /// The attribution total disagrees with the disk's busy counter.
    DiskBusyMismatch {
        /// Attribution busy total.
        attributed: u64,
        /// `DiskStats::busy_us()` recorded at export.
        disk: u64,
    },
    /// Event sequence numbers go backwards (interleaved files).
    OutOfOrder {
        /// Line number (1-based) of the offending event.
        line: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::MissingAttribution => write!(f, "no attribution line in trace"),
            TraceError::AttributionSumMismatch { components, busy } => write!(
                f,
                "attribution components sum to {components} but busy is {busy}"
            ),
            TraceError::DiskBusyMismatch { attributed, disk } => write!(
                f,
                "attributed busy {attributed} us != disk busy {disk} us"
            ),
            TraceError::OutOfOrder { line } => {
                write!(f, "event sequence goes backwards at line {line}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Verifies one tracer's worth of JSONL: events parse and are in order,
/// and the attribution line sums exactly (against itself and, when a
/// `disk_busy_us` line is present, against the disk counter).
pub fn verify_jsonl(text: &str) -> Result<(), TraceError> {
    let mut last_seq: Option<u64> = None;
    let mut attr: Option<Attribution> = None;
    let mut attr_busy: Option<u64> = None;
    let mut disk_busy: Option<u64> = None;
    for (i, line) in text.lines().enumerate() {
        if let Some(e) = jsonl::decode_event(line) {
            if last_seq.is_some_and(|s| e.seq < s) {
                return Err(TraceError::OutOfOrder { line: i + 1 });
            }
            last_seq = Some(e.seq);
        } else if let Some(a) = jsonl::decode_attribution(line) {
            attr_busy = jsonl::get_u64(line, "busy_us");
            attr = Some(a);
        } else if jsonl::get_str(line, "meta") == Some("disk_busy_us") {
            disk_busy = jsonl::get_u64(line, "busy_us");
        }
    }
    let attr = attr.ok_or(TraceError::MissingAttribution)?;
    let busy = attr_busy.unwrap_or(0);
    if attr.busy_us() != busy {
        return Err(TraceError::AttributionSumMismatch {
            components: attr.busy_us(),
            busy,
        });
    }
    if let Some(disk) = disk_busy {
        if disk != attr.busy_us() {
            return Err(TraceError::DiskBusyMismatch {
                attributed: attr.busy_us(),
                disk,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_tail() {
        let t = Tracer::new(16);
        for i in 0..40u64 {
            t.record(i, Event::SeekDone { us: i });
        }
        assert_eq!(t.recorded(), 40);
        assert_eq!(t.dropped(), 24);
        let tail = t.tail(1000);
        assert_eq!(tail.len(), 16);
        assert_eq!(tail[0].at_us, 24);
        assert_eq!(tail[15].at_us, 39);
        // Attribution survives eviction: all 40 seeks counted.
        assert_eq!(t.attribution().seek_us, (0..40).sum::<u64>());
    }

    #[test]
    fn tail_returns_newest_n_in_order() {
        let t = Tracer::new(16);
        for i in 0..10u64 {
            t.record(i, Event::RotWait { us: 1 });
        }
        let tail = t.tail(3);
        assert_eq!(tail.iter().map(|e| e.at_us).collect::<Vec<_>>(), [7, 8, 9]);
    }

    #[test]
    fn attribution_components_route_correctly() {
        let t = Tracer::new(64);
        t.record(0, Event::SeekDone { us: 10 });
        t.record(0, Event::RotWait { us: 20 });
        t.record(0, Event::Transfer { sectors: 4, us: 30 });
        t.record(0, Event::HeadSwitch { us: 5 });
        t.record(0, Event::CmdOverhead { us: 7 });
        // Non-time events contribute nothing to attribution.
        t.record(0, Event::CacheHit { sector: 0, sectors: 1 });
        t.record(
            0,
            Event::FsOp {
                op: FsOpKind::Read,
                start_us: 0,
                us: 99,
            },
        );
        let a = t.attribution();
        assert_eq!(
            (a.seek_us, a.rotation_us, a.transfer_us, a.switch_us, a.overhead_us),
            (10, 20, 30, 5, 7)
        );
        assert_eq!(a.busy_us(), 72);
    }

    #[test]
    fn histograms_fill_from_events() {
        let t = Tracer::new(64);
        t.record(0, Event::SeekStart { from_cyl: 10, to_cyl: 200 });
        t.record(0, Event::RotWait { us: 5_500 });
        t.record(
            0,
            Event::SegmentSeal {
                seg: 1,
                write_seq: 1,
                fill_bytes: 75,
                cap_bytes: 100,
            },
        );
        t.record(
            0,
            Event::FsOp {
                op: FsOpKind::Sync,
                start_us: 0,
                us: 1234,
            },
        );
        let hists = t.histograms();
        assert_eq!(hists[0].2.count(), 1);
        assert_eq!(hists[0].2.max(), 190);
        assert_eq!(hists[1].2.sum(), 5_500);
        assert_eq!(hists[2].2.max(), 75);
        assert_eq!(hists[3].2.mean(), 1234);
    }

    #[test]
    fn export_verifies_clean_and_detects_mismatch() {
        let t = Tracer::new(64);
        t.record(5, Event::SeekDone { us: 100 });
        t.record(10, Event::CmdOverhead { us: 50 });
        let good = t.to_jsonl(Some(150));
        assert_eq!(verify_jsonl(&good), Ok(()));
        let bad = t.to_jsonl(Some(151));
        assert_eq!(
            verify_jsonl(&bad),
            Err(TraceError::DiskBusyMismatch {
                attributed: 150,
                disk: 151
            })
        );
        assert_eq!(verify_jsonl(""), Err(TraceError::MissingAttribution));
    }

    #[test]
    fn dump_tail_is_readable() {
        let t = Tracer::new(64);
        t.record(7, Event::PartialWrite { seg: 3, bytes: 4096 });
        let s = t.dump_tail(100);
        assert!(s.contains("PartialWrite"));
        assert!(s.contains("seg 3"));
    }
}
