//! The log-structured core: segments, i-node map, checkpoints,
//! roll-forward recovery, and the cleaner.

use std::collections::{BTreeMap, BTreeSet};

use fsutil::dirent::{self, DIRENT_SIZE};
use fsutil::wire;
use simdisk::{BlockDev, SECTOR_SIZE};

use crate::fsops::{LfsError, Result};

/// File-system block size (4 KB, as in the paper's comparison).
pub const BLOCK: usize = 4096;
const SECTORS_PER_BLOCK: u64 = (BLOCK / SECTOR_SIZE) as u64;
/// Encoded i-node size; 32 i-nodes share an i-node block.
const INODE_BYTES: usize = 128;
const INODES_PER_BLOCK: usize = BLOCK / INODE_BYTES;
/// I-map entries per i-map block.
const IMAP_PER_BLOCK: usize = BLOCK / 4;
/// Direct pointers per i-node.
const NDIRECT: usize = 10;
/// Pointers per indirect block.
const PPB: usize = BLOCK / 4;

/// Root directory i-node.
pub const ROOT_INO: u32 = 0;

const SUMMARY_MAGIC: u32 = 0x4C46_5353;
const CKPT_MAGIC: u32 = 0x4C46_4350;

/// Table identifiers for indirect blocks (see summary entries).
const TABLE_IND: u32 = u32::MAX;
const TABLE_DIND_TOP: u32 = u32::MAX - 1;

/// Configuration.
#[derive(Debug, Clone)]
pub struct LfsConfig {
    /// Blocks per segment (including the summary block).
    pub segment_blocks: u32,
    /// Maximum i-nodes.
    pub ninodes: u32,
}

impl Default for LfsConfig {
    fn default() -> Self {
        Self {
            segment_blocks: 128, // 512 KB segments, like the evaluation.
            ninodes: 16384,
        }
    }
}

impl LfsConfig {
    /// Small configuration for unit tests.
    pub fn small_for_tests() -> Self {
        Self {
            segment_blocks: 16,
            ninodes: 512,
        }
    }
}

/// Blocks written, split by category — the measurement behind Table 6.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WriteCounters {
    /// File/directory data blocks.
    pub data_blocks: u64,
    /// Packed i-node blocks (each holds up to 32 dirty i-nodes).
    pub inode_blocks: u64,
    /// Indirect and double-indirect blocks (the cascading updates LD
    /// avoids).
    pub indirect_blocks: u64,
    /// I-node-map blocks (written at checkpoints).
    pub imap_blocks: u64,
    /// Segment summary blocks.
    pub summary_blocks: u64,
    /// Whole segments written.
    pub segments_written: u64,
    /// Live blocks the cleaner copied forward.
    pub cleaner_copied: u64,
    /// Dirty i-nodes flushed (the numerator of ε).
    pub dirty_inodes_flushed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ftype {
    Regular,
    Dir,
}

#[derive(Debug, Clone, Copy)]
struct Inode {
    ftype: Ftype,
    size: u64,
    /// 10 direct, then indirect, then double-indirect (physical addrs!).
    ptrs: [u32; NDIRECT + 2],
}

impl Inode {
    fn new(ftype: Ftype) -> Self {
        Self {
            ftype,
            size: 0,
            ptrs: [0; NDIRECT + 2],
        }
    }

    fn encode(&self, ino: u32, slot: &mut [u8]) {
        slot.fill(0);
        let t: u16 = match self.ftype {
            Ftype::Regular => 1,
            Ftype::Dir => 2,
        };
        slot[0..2].copy_from_slice(&t.to_le_bytes());
        slot[4..8].copy_from_slice(&ino.to_le_bytes());
        slot[8..16].copy_from_slice(&self.size.to_le_bytes());
        for (i, p) in self.ptrs.iter().enumerate() {
            slot[16 + 4 * i..20 + 4 * i].copy_from_slice(&p.to_le_bytes());
        }
    }

    fn decode(slot: &[u8]) -> Option<Self> {
        let t = wire::le_u16(slot, 0);
        let ftype = match t {
            1 => Ftype::Regular,
            2 => Ftype::Dir,
            _ => return None,
        };
        let mut ptrs = [0u32; NDIRECT + 2];
        for (i, p) in ptrs.iter_mut().enumerate() {
            *p = wire::le_u32(slot, 16 + 4 * i);
        }
        Some(Self {
            ftype,
            size: wire::le_u64(slot, 8),
            ptrs,
        })
    }
}

/// What a block in the open segment is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Data { ino: u32, idx: u32 },
    InodeBlock,
    Imap { blk: u32 },
    Indirect { ino: u32, table: u32 },
}

/// Logged directory-operation records (make deletes recoverable between
/// checkpoints; Sprite used a directory operation log for the same
/// reason).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpLog {
    Delete { ino: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegState {
    Free,
    Live,
}

/// The Sprite-LFS-style storage manager.
pub struct SpriteLfs<D: BlockDev> {
    disk: D,
    config: LfsConfig,
    nsegs: u32,
    /// Per-segment state and live-block estimate.
    seg_state: Vec<SegState>,
    seg_live: Vec<i64>,
    /// Open segment: assigned id and pending blocks.
    open_seg: u32,
    open: Vec<(Kind, Vec<u8>)>,
    open_ops: Vec<OpLog>,
    /// I-node map: `ino -> inode slot address` (`block_addr * 32 + slot + 1`,
    /// 0 = free).
    imap: Vec<u32>,
    /// Current disk address of each i-map block (0 = never written).
    imap_addr: Vec<u32>,
    imap_dirty: BTreeSet<u32>,
    /// I-nodes modified since the last segment flush.
    dirty_inodes: BTreeMap<u32, Inode>,
    /// Indirect blocks modified since the last flush: `(ino, table) ->
    /// entries`.
    dirty_tables: BTreeMap<(u32, u32), Vec<u32>>,
    seq: u64,
    /// Which checkpoint region (block 0 or 1) the next checkpoint uses.
    ckpt_flip: bool,
    counters: WriteCounters,
}

impl<D: BlockDev> SpriteLfs<D> {
    // ----- construction -----

    /// Formats the device and creates the root directory.
    pub fn format(mut disk: D, config: LfsConfig) -> Result<Self> {
        let nsegs = Self::segment_count(&disk, &config)?;
        // Invalidate both checkpoint regions and every summary block.
        let zero = vec![0u8; BLOCK];
        disk.write_sectors(0, &zero).map_err(io_err)?;
        disk.write_sectors(SECTORS_PER_BLOCK, &zero)
            .map_err(io_err)?;
        for s in 0..nsegs {
            let addr = 2 + u64::from(s) * u64::from(config.segment_blocks);
            disk.write_sectors(addr * SECTORS_PER_BLOCK, &zero[..SECTOR_SIZE])
                .map_err(io_err)?;
        }
        let nimap = (config.ninodes as usize).div_ceil(IMAP_PER_BLOCK);
        let mut lfs = Self {
            disk,
            nsegs,
            seg_state: vec![SegState::Free; nsegs as usize],
            seg_live: vec![0; nsegs as usize],
            open_seg: 0,
            open: Vec::new(),
            open_ops: Vec::new(),
            imap: vec![0; config.ninodes as usize],
            imap_addr: vec![0; nimap],
            imap_dirty: BTreeSet::new(),
            dirty_inodes: BTreeMap::new(),
            dirty_tables: BTreeMap::new(),
            seq: 1,
            ckpt_flip: false,
            counters: WriteCounters::default(),
            config,
        };
        lfs.seg_state[0] = SegState::Live;
        // Root directory (empty).
        lfs.dirty_inodes.insert(ROOT_INO, Inode::new(Ftype::Dir));
        lfs.imap[ROOT_INO as usize] = u32::MAX; // Allocated, address pending.
        lfs.checkpoint()?;
        Ok(lfs)
    }

    fn segment_count(disk: &D, config: &LfsConfig) -> Result<u32> {
        let blocks = disk.capacity_bytes() / BLOCK as u64;
        let nsegs = (blocks.saturating_sub(2)) / u64::from(config.segment_blocks);
        if nsegs < 3 {
            return Err(LfsError::NoSpace);
        }
        Ok(nsegs as u32)
    }

    // ----- accessors -----

    /// The write counters.
    pub fn counters(&self) -> &WriteCounters {
        &self.counters
    }

    /// Resets the counters.
    pub fn reset_counters(&mut self) {
        self.counters = WriteCounters::default();
    }

    /// The underlying device.
    pub fn disk(&self) -> &D {
        &self.disk
    }

    /// Mutable device access.
    pub fn disk_mut(&mut self) -> &mut D {
        &mut self.disk
    }

    /// Consumes self, returning the device (crash simulation).
    pub fn into_disk(self) -> D {
        self.disk
    }

    /// Number of free segments.
    pub fn free_segments(&self) -> u32 {
        self.seg_state
            .iter()
            .filter(|s| **s == SegState::Free)
            .count() as u32
    }

    // ----- address math -----

    fn seg_base(&self, seg: u32) -> u32 {
        2 + seg * self.config.segment_blocks
    }

    fn seg_of(&self, addr: u32) -> u32 {
        (addr - 2) / self.config.segment_blocks
    }

    fn open_base(&self) -> u32 {
        self.seg_base(self.open_seg)
    }

    /// Address the next appended block will get.
    fn next_addr(&self) -> u32 {
        self.open_base() + 1 + self.open.len() as u32
    }

    // ----- raw I/O -----

    fn read_phys(&mut self, addr: u32, buf: &mut [u8]) -> Result<()> {
        // Blocks still in the open segment are served from memory.
        let base = self.open_base();
        if addr > base && addr <= base + self.open.len() as u32 {
            buf.copy_from_slice(&self.open[(addr - base - 1) as usize].1);
            return Ok(());
        }
        self.disk
            .read_sectors(u64::from(addr) * SECTORS_PER_BLOCK, buf)
            .map_err(io_err)
    }

    // ----- live accounting -----

    fn retire(&mut self, addr: u32) {
        if addr != 0 && addr != u32::MAX {
            let seg = self.seg_of(addr);
            self.seg_live[seg as usize] -= 1;
        }
    }

    // ----- the open segment -----

    fn append(&mut self, kind: Kind, data: Vec<u8>) -> Result<u32> {
        debug_assert_eq!(data.len(), BLOCK);
        if self.open.len() as u32 + 1 >= self.config.segment_blocks {
            self.write_segment()?;
        }
        let addr = self.next_addr();
        self.open.push((kind, data));
        self.seg_live[self.open_seg as usize] += 1;
        Ok(addr)
    }

    /// Flushes dirty metadata into the log and writes the open segment —
    /// the durability point (Sprite's segment write / LD's `Flush`).
    pub fn flush(&mut self) -> Result<()> {
        self.flush_tables()?;
        self.flush_inodes()?;
        self.write_segment()
    }

    /// Writes the open segment image (summary first) and opens a fresh
    /// one. Does not touch dirty metadata; [`flush`](Self::flush) does.
    fn write_segment(&mut self) -> Result<()> {
        if self.open.is_empty() && self.open_ops.is_empty() {
            return Ok(());
        }
        // Build the segment image: summary block + blocks.
        let seq = self.seq;
        self.seq += 1;
        let mut body = Vec::with_capacity((1 + self.open.len()) * BLOCK);
        body.extend_from_slice(&vec![0u8; BLOCK]); // Summary placeholder.
        for (_, data) in &self.open {
            body.extend_from_slice(data);
        }
        let mut summary = Vec::with_capacity(BLOCK);
        summary.extend_from_slice(&SUMMARY_MAGIC.to_le_bytes());
        summary.extend_from_slice(&(self.open.len() as u32).to_le_bytes());
        summary.extend_from_slice(&seq.to_le_bytes());
        summary.extend_from_slice(&(self.open_ops.len() as u32).to_le_bytes());
        for (kind, _) in &self.open {
            match kind {
                Kind::Data { ino, idx } => {
                    summary.push(0);
                    summary.extend_from_slice(&ino.to_le_bytes());
                    summary.extend_from_slice(&idx.to_le_bytes());
                }
                Kind::InodeBlock => {
                    summary.push(1);
                    summary.extend_from_slice(&[0u8; 8]);
                }
                Kind::Imap { blk } => {
                    summary.push(2);
                    summary.extend_from_slice(&blk.to_le_bytes());
                    summary.extend_from_slice(&[0u8; 4]);
                }
                Kind::Indirect { ino, table } => {
                    summary.push(3);
                    summary.extend_from_slice(&ino.to_le_bytes());
                    summary.extend_from_slice(&table.to_le_bytes());
                }
            }
        }
        for op in &self.open_ops {
            match op {
                OpLog::Delete { ino } => {
                    summary.push(1);
                    summary.extend_from_slice(&ino.to_le_bytes());
                }
            }
        }
        // Checksum over the summary body and all block payloads, so a torn
        // segment write is detected.
        let mut hashed = summary.clone();
        hashed.extend_from_slice(&body[BLOCK..]);
        summary.extend_from_slice(&fnv(&hashed).to_le_bytes());
        assert!(summary.len() <= BLOCK, "summary overflow");
        summary.resize(BLOCK, 0);
        body[..BLOCK].copy_from_slice(&summary);

        let base = self.open_base();
        self.disk
            .write_sectors(u64::from(base) * SECTORS_PER_BLOCK, &body)
            .map_err(io_err)?;

        // Count by category.
        self.counters.summary_blocks += 1;
        self.counters.segments_written += 1;
        for (kind, _) in &self.open {
            match kind {
                Kind::Data { .. } => self.counters.data_blocks += 1,
                Kind::InodeBlock => self.counters.inode_blocks += 1,
                Kind::Imap { .. } => self.counters.imap_blocks += 1,
                Kind::Indirect { .. } => self.counters.indirect_blocks += 1,
            }
        }

        self.open.clear();
        self.open_ops.clear();
        // Pick the next free segment.
        let next = self
            .seg_state
            .iter()
            .position(|s| *s == SegState::Free)
            .ok_or(LfsError::NoSpace)? as u32;
        self.seg_state[next as usize] = SegState::Live;
        self.open_seg = next;
        Ok(())
    }

    /// Writes dirty indirect tables into the open segment, cascading the
    /// new addresses upward — the cost LD-based systems avoid.
    fn flush_tables(&mut self) -> Result<()> {
        // Pass 1: double-indirect leaves (their new addresses go into the
        // top table). Pass 2: top tables and single indirect blocks (their
        // addresses go into i-nodes).
        for pass in 0..2 {
            let keys: Vec<(u32, u32)> = self
                .dirty_tables
                .keys()
                .copied()
                .filter(|(_, t)| {
                    if pass == 0 {
                        *t < TABLE_DIND_TOP
                    } else {
                        *t >= TABLE_DIND_TOP
                    }
                })
                .collect();
            for (ino, table) in keys {
                let content = self.dirty_tables.remove(&(ino, table)).expect("listed"); // PANIC-OK: the key comes from the snapshot being iterated
                let mut block = vec![0u8; BLOCK];
                for (i, e) in content.iter().enumerate() {
                    block[4 * i..4 * i + 4].copy_from_slice(&e.to_le_bytes());
                }
                let addr = self.append(Kind::Indirect { ino, table }, block)?;
                match table {
                    TABLE_IND => {
                        let inode = self.inode_mut(ino)?;
                        let old = inode.ptrs[NDIRECT];
                        inode.ptrs[NDIRECT] = addr;
                        self.retire(old);
                    }
                    TABLE_DIND_TOP => {
                        let inode = self.inode_mut(ino)?;
                        let old = inode.ptrs[NDIRECT + 1];
                        inode.ptrs[NDIRECT + 1] = addr;
                        self.retire(old);
                    }
                    sub => {
                        // Update (and dirty) the top table.
                        let mut top = self.load_table(ino, TABLE_DIND_TOP)?;
                        let old = top[sub as usize];
                        top[sub as usize] = addr;
                        self.dirty_tables.insert((ino, TABLE_DIND_TOP), top);
                        self.retire(old);
                    }
                }
            }
        }
        Ok(())
    }

    /// Packs dirty i-nodes into shared i-node blocks (the reason a dirty
    /// i-node costs only ε).
    fn flush_inodes(&mut self) -> Result<()> {
        let dirty: Vec<(u32, Inode)> = std::mem::take(&mut self.dirty_inodes).into_iter().collect();
        for chunk in dirty.chunks(INODES_PER_BLOCK) {
            let mut block = vec![0u8; BLOCK];
            for (slot, (ino, inode)) in chunk.iter().enumerate() {
                inode.encode(
                    *ino,
                    &mut block[slot * INODE_BYTES..(slot + 1) * INODE_BYTES],
                );
            }
            let addr = self.append(Kind::InodeBlock, block)?;
            // The segment-live ledger counts i-node residency per slot.
            self.seg_live[self.open_seg as usize] += chunk.len() as i64 - 1;
            for (slot, (ino, _)) in chunk.iter().enumerate() {
                let old = self.imap[*ino as usize];
                if old != 0 && old != u32::MAX {
                    self.retire((old - 1) / INODES_PER_BLOCK as u32);
                }
                self.imap[*ino as usize] = addr * INODES_PER_BLOCK as u32 + slot as u32 + 1;
                self.imap_dirty.insert(*ino / IMAP_PER_BLOCK as u32);
                self.counters.dirty_inodes_flushed += 1;
            }
        }
        Ok(())
    }

    // ----- i-node access -----

    fn inode_mut(&mut self, ino: u32) -> Result<&mut Inode> {
        if !self.dirty_inodes.contains_key(&ino) {
            let inode = self.load_inode(ino)?;
            self.dirty_inodes.insert(ino, inode);
        }
        Ok(self.dirty_inodes.get_mut(&ino).expect("just inserted")) // PANIC-OK: inserted by the branch above
    }

    fn load_inode(&mut self, ino: u32) -> Result<Inode> {
        if let Some(i) = self.dirty_inodes.get(&ino) {
            return Ok(*i);
        }
        let entry = *self.imap.get(ino as usize).ok_or(LfsError::NotFound)?;
        if entry == 0 {
            return Err(LfsError::NotFound);
        }
        if entry == u32::MAX {
            // Allocated but never flushed and not dirty: impossible.
            return Err(LfsError::NotFound);
        }
        let addr = (entry - 1) / INODES_PER_BLOCK as u32;
        let slot = ((entry - 1) % INODES_PER_BLOCK as u32) as usize;
        let mut block = vec![0u8; BLOCK];
        self.read_phys(addr, &mut block)?;
        Inode::decode(&block[slot * INODE_BYTES..(slot + 1) * INODE_BYTES])
            .ok_or(LfsError::NotFound)
    }

    // ----- block mapping -----

    fn load_table(&mut self, ino: u32, table: u32) -> Result<Vec<u32>> {
        if let Some(t) = self.dirty_tables.get(&(ino, table)) {
            return Ok(t.clone());
        }
        let inode = self.load_inode(ino)?;
        let addr = match table {
            TABLE_IND => inode.ptrs[NDIRECT],
            TABLE_DIND_TOP => inode.ptrs[NDIRECT + 1],
            sub => {
                let top = self.load_table(ino, TABLE_DIND_TOP)?;
                top[sub as usize]
            }
        };
        if addr == 0 {
            return Ok(vec![0u32; PPB]);
        }
        let mut block = vec![0u8; BLOCK];
        self.read_phys(addr, &mut block)?;
        Ok((0..PPB)
            .map(|i| wire::le_u32(&block, 4 * i))
            .collect())
    }

    fn block_addr(&mut self, ino: u32, idx: u64) -> Result<u32> {
        let inode = self.load_inode(ino)?;
        if idx < NDIRECT as u64 {
            return Ok(inode.ptrs[idx as usize]);
        }
        let idx = idx - NDIRECT as u64;
        if idx < PPB as u64 {
            let t = self.load_table(ino, TABLE_IND)?;
            return Ok(t[idx as usize]);
        }
        let idx = idx - PPB as u64;
        if idx >= (PPB * PPB) as u64 {
            return Err(LfsError::TooBig);
        }
        let t = self.load_table(ino, (idx / PPB as u64) as u32)?;
        Ok(t[(idx % PPB as u64) as usize])
    }

    fn set_block_addr(&mut self, ino: u32, idx: u64, addr: u32) -> Result<()> {
        if idx < NDIRECT as u64 {
            let inode = self.inode_mut(ino)?;
            let old = inode.ptrs[idx as usize];
            inode.ptrs[idx as usize] = addr;
            self.retire(old);
            return Ok(());
        }
        let rel = idx - NDIRECT as u64;
        let (table, entry) = if rel < PPB as u64 {
            (TABLE_IND, rel as usize)
        } else {
            let rel = rel - PPB as u64;
            if rel >= (PPB * PPB) as u64 {
                return Err(LfsError::TooBig);
            }
            ((rel / PPB as u64) as u32, (rel % PPB as u64) as usize)
        };
        let mut t = self.load_table(ino, table)?;
        let old = t[entry];
        t[entry] = addr;
        self.dirty_tables.insert((ino, table), t);
        // The i-node is considered dirty too (mtime in real Sprite).
        self.inode_mut(ino)?;
        self.retire(old);
        Ok(())
    }

    // ----- public file operations -----

    /// Writes one 4 KB file block. A rewrite of a block already in the
    /// open segment is absorbed in place (Sprite's cache absorbed repeated
    /// writes between segment flushes the same way).
    pub fn write_block(&mut self, ino: u32, idx: u64, data: &[u8]) -> Result<()> {
        assert!(data.len() <= BLOCK, "block writes are at most 4 KB");
        let mut block = vec![0u8; BLOCK];
        block[..data.len()].copy_from_slice(data);
        let kind = Kind::Data {
            ino,
            idx: idx as u32,
        };
        if let Some(pos) = self.open.iter().position(|(k, _)| *k == kind) {
            self.open[pos].1 = block;
        } else {
            let addr = self.append(kind, block)?;
            self.set_block_addr(ino, idx, addr)?;
        }
        let inode = self.inode_mut(ino)?;
        inode.size = inode.size.max((idx + 1) * BLOCK as u64);
        Ok(())
    }

    /// Reads one file block.
    pub fn read_block(&mut self, ino: u32, idx: u64, buf: &mut [u8]) -> Result<()> {
        let addr = self.block_addr(ino, idx)?;
        if addr == 0 {
            buf.fill(0);
            return Ok(());
        }
        let mut block = vec![0u8; BLOCK];
        self.read_phys(addr, &mut block)?;
        let n = buf.len().min(BLOCK);
        buf[..n].copy_from_slice(&block[..n]);
        Ok(())
    }

    /// File size in bytes.
    pub fn file_size(&mut self, ino: u32) -> Result<u64> {
        Ok(self.load_inode(ino)?.size)
    }

    fn alloc_ino(&mut self) -> Result<u32> {
        self.imap
            .iter()
            .position(|&e| e == 0)
            .map(|i| i as u32)
            .ok_or(LfsError::NoInodes)
    }

    /// Creates a file in the root directory. Sprite cost: the directory
    /// data block now, plus two dirty i-nodes (ε each) at the next flush,
    /// plus two i-map blocks (δ each) at the next checkpoint.
    pub fn create(&mut self, name: &str) -> Result<u32> {
        if self.dir_lookup(name)?.is_some() {
            return Err(LfsError::Exists);
        }
        let ino = self.alloc_ino()?;
        self.imap[ino as usize] = u32::MAX; // Allocated, address pending.
        self.imap_dirty.insert(ino / IMAP_PER_BLOCK as u32);
        self.dirty_inodes.insert(ino, Inode::new(Ftype::Regular));
        self.dir_add(name, ino)?;
        Ok(ino)
    }

    /// Deletes a file from the root directory.
    pub fn delete(&mut self, name: &str) -> Result<()> {
        let (blk_idx, slot, ino) = self.dir_find(name)?.ok_or(LfsError::NotFound)?;
        // Rewrite the directory block without the entry.
        let mut block = vec![0u8; BLOCK];
        self.read_block(ROOT_INO, blk_idx, &mut block)?;
        dirent::clear(&mut block[slot * DIRENT_SIZE..(slot + 1) * DIRENT_SIZE]);
        self.write_block(ROOT_INO, blk_idx, &block)?;
        // Retire the file's blocks.
        let inode = self.load_inode(ino)?;
        let nblocks = inode.size.div_ceil(BLOCK as u64);
        for i in 0..nblocks {
            let a = self.block_addr(ino, i)?;
            self.retire(a);
        }
        self.retire(inode.ptrs[NDIRECT]);
        if inode.ptrs[NDIRECT + 1] != 0 {
            let top = self.load_table(ino, TABLE_DIND_TOP)?;
            for a in top {
                self.retire(a);
            }
            self.retire(inode.ptrs[NDIRECT + 1]);
        }
        let old = self.imap[ino as usize];
        if old != 0 && old != u32::MAX {
            self.retire((old - 1) / INODES_PER_BLOCK as u32);
        }
        self.imap[ino as usize] = 0;
        self.imap_dirty.insert(ino / IMAP_PER_BLOCK as u32);
        self.dirty_inodes.remove(&ino);
        self.dirty_tables.retain(|(i, _), _| *i != ino);
        self.open_ops.push(OpLog::Delete { ino });
        Ok(())
    }

    /// Looks up a name in the root directory.
    pub fn lookup(&mut self, name: &str) -> Result<Option<u32>> {
        self.dir_lookup(name)
    }

    fn dir_lookup(&mut self, name: &str) -> Result<Option<u32>> {
        Ok(self.dir_find(name)?.map(|(_, _, ino)| ino))
    }

    fn dir_find(&mut self, name: &str) -> Result<Option<(u64, usize, u32)>> {
        let size = self.load_inode(ROOT_INO)?.size;
        for idx in 0..size.div_ceil(BLOCK as u64) {
            let mut block = vec![0u8; BLOCK];
            self.read_block(ROOT_INO, idx, &mut block)?;
            if let Some((slot, ino)) = dirent::find_in_block(&block, name) {
                return Ok(Some((idx, slot, ino - 1)));
            }
        }
        Ok(None)
    }

    fn dir_add(&mut self, name: &str, ino: u32) -> Result<()> {
        let size = self.load_inode(ROOT_INO)?.size;
        let nblocks = size.div_ceil(BLOCK as u64);
        for idx in 0..nblocks {
            let mut block = vec![0u8; BLOCK];
            self.read_block(ROOT_INO, idx, &mut block)?;
            if let Some(slot) = dirent::free_slot(&block) {
                dirent::encode(
                    ino + 1, // Dirent ino 0 means free; shift by one.
                    name,
                    &mut block[slot * DIRENT_SIZE..(slot + 1) * DIRENT_SIZE],
                );
                return self.write_block(ROOT_INO, idx, &block);
            }
        }
        let mut block = vec![0u8; BLOCK];
        dirent::encode(ino + 1, name, &mut block[0..DIRENT_SIZE]);
        self.write_block(ROOT_INO, nblocks, &block)
    }

    // ----- checkpoints and recovery -----

    /// Flushes, writes dirty i-map blocks into the log, and commits a
    /// checkpoint region — Sprite's periodic checkpoint (the paper
    /// contrasts this with LLD, which needs none).
    pub fn checkpoint(&mut self) -> Result<()> {
        self.flush()?;
        let dirty: Vec<u32> = std::mem::take(&mut self.imap_dirty).into_iter().collect();
        for blk in dirty {
            let mut block = vec![0u8; BLOCK];
            let lo = blk as usize * IMAP_PER_BLOCK;
            for i in 0..IMAP_PER_BLOCK {
                let v = self.imap.get(lo + i).copied().unwrap_or(0);
                block[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
            }
            let old = self.imap_addr[blk as usize];
            let addr = self.append(Kind::Imap { blk }, block)?;
            self.imap_addr[blk as usize] = addr;
            if old != 0 {
                self.retire(old);
            }
        }
        self.flush()?;

        let mut ckpt = Vec::with_capacity(BLOCK);
        ckpt.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
        ckpt.extend_from_slice(&self.seq.to_le_bytes());
        ckpt.extend_from_slice(&(self.imap_addr.len() as u32).to_le_bytes());
        for a in &self.imap_addr {
            ckpt.extend_from_slice(&a.to_le_bytes());
        }
        let sum = fnv(&ckpt);
        ckpt.extend_from_slice(&sum.to_le_bytes());
        assert!(ckpt.len() <= BLOCK);
        ckpt.resize(BLOCK, 0);
        let region = if self.ckpt_flip { 1u64 } else { 0u64 };
        self.ckpt_flip = !self.ckpt_flip;
        self.disk
            .write_sectors(region * SECTORS_PER_BLOCK, &ckpt)
            .map_err(io_err)?;
        Ok(())
    }

    /// Recovers from the newest valid checkpoint plus roll-forward through
    /// the segment summaries written after it.
    pub fn recover(mut disk: D, config: LfsConfig) -> Result<Self> {
        let nsegs = Self::segment_count(&disk, &config)?;
        // Newest valid checkpoint.
        let mut best: Option<(u64, Vec<u32>)> = None;
        for region in 0..2u64 {
            let mut block = vec![0u8; BLOCK];
            disk.read_sectors(region * SECTORS_PER_BLOCK, &mut block)
                .map_err(io_err)?;
            if wire::le_u32(&block, 0) != CKPT_MAGIC {
                continue;
            }
            let seq = wire::le_u64(&block, 4);
            let n = wire::le_u32(&block, 12) as usize;
            let end = 16 + 4 * n;
            if end + 8 > BLOCK {
                continue;
            }
            let sum = wire::le_u64(&block, end);
            if fnv(&block[..end]) != sum {
                continue;
            }
            let addrs: Vec<u32> = (0..n)
                .map(|i| {
                    wire::le_u32(&block, 16 + 4 * i)
                })
                .collect();
            if best.as_ref().is_none_or(|(s, _)| seq > *s) {
                best = Some((seq, addrs));
            }
        }
        let (ckpt_seq, imap_addr) = best.ok_or(LfsError::BadCheckpoint)?;

        let nimap = (config.ninodes as usize).div_ceil(IMAP_PER_BLOCK);
        let mut lfs = Self {
            disk,
            nsegs,
            seg_state: vec![SegState::Free; nsegs as usize],
            seg_live: vec![0; nsegs as usize],
            open_seg: 0,
            open: Vec::new(),
            open_ops: Vec::new(),
            imap: vec![0; config.ninodes as usize],
            imap_addr: {
                let mut v = imap_addr;
                v.resize(nimap, 0);
                v
            },
            imap_dirty: BTreeSet::new(),
            dirty_inodes: BTreeMap::new(),
            dirty_tables: BTreeMap::new(),
            seq: ckpt_seq,
            ckpt_flip: false,
            counters: WriteCounters::default(),
            config,
        };
        // Load the i-map.
        for blk in 0..lfs.imap_addr.len() {
            let addr = lfs.imap_addr[blk];
            if addr == 0 {
                continue;
            }
            let mut block = vec![0u8; BLOCK];
            lfs.read_phys(addr, &mut block)?;
            for i in 0..IMAP_PER_BLOCK {
                let e = wire::le_u32(&block, 4 * i);
                if let Some(slot) = lfs.imap.get_mut(blk * IMAP_PER_BLOCK + i) {
                    *slot = e;
                }
            }
        }

        // Roll forward: scan all summaries, apply those newer than the
        // checkpoint in sequence order.
        let mut found: Vec<(u64, u32)> = Vec::new();
        for seg in 0..nsegs {
            let base = lfs.seg_base(seg);
            let nblocks = lfs.config.segment_blocks as usize;
            let mut body = vec![0u8; nblocks * BLOCK];
            lfs.disk
                .read_sectors(u64::from(base) * SECTORS_PER_BLOCK, &mut body)
                .map_err(io_err)?;
            if let Some(seq) = summary_seq_if_valid(&body) {
                // The checkpoint stores the *next* sequence number, so
                // segments written after it carry seq >= ckpt_seq.
                if seq >= ckpt_seq {
                    found.push((seq, seg));
                }
            }
        }
        found.sort_unstable();
        for (seq, seg) in &found {
            lfs.roll_forward_segment(*seg)?;
            lfs.seq = lfs.seq.max(seq + 1);
        }

        // Rebuild live counts and states by walking everything reachable.
        lfs.rebuild_usage()?;
        // Open a fresh segment.
        let next = lfs
            .seg_state
            .iter()
            .position(|s| *s == SegState::Free)
            .ok_or(LfsError::NoSpace)? as u32;
        lfs.seg_state[next as usize] = SegState::Live;
        lfs.open_seg = next;
        Ok(lfs)
    }

    fn roll_forward_segment(&mut self, seg: u32) -> Result<()> {
        let base = self.seg_base(seg);
        let nblocks = self.config.segment_blocks as usize;
        let mut body = vec![0u8; nblocks * BLOCK];
        self.disk
            .read_sectors(u64::from(base) * SECTORS_PER_BLOCK, &mut body)
            .map_err(io_err)?;
        let count = wire::le_u32(&body, 4) as usize;
        let nops = wire::le_u32(&body, 16) as usize;
        let mut pos = 20;
        let entries: Vec<(u8, u32, u32)> = (0..count)
            .map(|_| {
                let kind = body[pos];
                let a = wire::le_u32(&body, pos + 1);
                let b = wire::le_u32(&body, pos + 5);
                pos += 9;
                (kind, a, b)
            })
            .collect();
        let ops: Vec<(u8, u32)> = (0..nops)
            .map(|_| {
                let op = body[pos];
                let ino = wire::le_u32(&body, pos + 1);
                pos += 5;
                (op, ino)
            })
            .collect();

        for (i, (kind, a, b)) in entries.iter().enumerate() {
            let addr = base + 1 + i as u32;
            match kind {
                0 => {
                    // Data block: re-attach to the i-node (allocating the
                    // i-node lazily if its create never flushed — cannot
                    // happen, creates dirty the i-node first).
                    let ino = *a;
                    if self.imap.get(ino as usize).copied().unwrap_or(0) != 0
                        || self.dirty_inodes.contains_key(&ino)
                    {
                        self.set_block_addr(ino, u64::from(*b), addr)?;
                        let inode = self.inode_mut(ino)?;
                        inode.size = inode.size.max((u64::from(*b) + 1) * BLOCK as u64);
                    }
                }
                1 => {
                    // I-node block: newest locations win.
                    let block = &body[(1 + i) * BLOCK..(2 + i) * BLOCK];
                    for slot in 0..INODES_PER_BLOCK {
                        let img = &block[slot * INODE_BYTES..(slot + 1) * INODE_BYTES];
                        if Inode::decode(img).is_some() {
                            // Which i-node is this? The i-map may already
                            // know; otherwise scan is ambiguous — encode the
                            // ino inside the image instead.
                            let ino = wire::le_u32(img, 4);
                            if (ino as usize) < self.imap.len() {
                                self.imap[ino as usize] =
                                    addr * INODES_PER_BLOCK as u32 + slot as u32 + 1;
                                self.dirty_inodes.remove(&ino);
                            }
                        }
                    }
                }
                2 => {
                    let blk = *a as usize;
                    if blk < self.imap_addr.len() {
                        self.imap_addr[blk] = addr;
                        let mut block = vec![0u8; BLOCK];
                        block.copy_from_slice(&body[(1 + i) * BLOCK..(2 + i) * BLOCK]);
                        for k in 0..IMAP_PER_BLOCK {
                            let e = wire::le_u32(&block, 4 * k);
                            if let Some(slot) = self.imap.get_mut(blk * IMAP_PER_BLOCK + k) {
                                *slot = e;
                            }
                        }
                    }
                }
                3 => {
                    // Indirect block: reload as a dirty table so the newest
                    // pointers win.
                    let ino = *a;
                    let table = *b;
                    let block = &body[(1 + i) * BLOCK..(2 + i) * BLOCK];
                    let content: Vec<u32> = (0..PPB)
                        .map(|k| {
                            wire::le_u32(block, 4 * k)
                        })
                        .collect();
                    if self.imap.get(ino as usize).copied().unwrap_or(0) != 0
                        || self.dirty_inodes.contains_key(&ino)
                    {
                        self.dirty_tables.insert((ino, table), content);
                    }
                }
                _ => {}
            }
        }
        for (op, ino) in ops {
            if op == 1 {
                if let Some(e) = self.imap.get_mut(ino as usize) {
                    *e = 0;
                }
                self.dirty_inodes.remove(&ino);
                self.dirty_tables.retain(|(i, _), _| *i != ino);
            }
        }
        Ok(())
    }

    /// Rebuilds per-segment live counts from the reachable state.
    fn rebuild_usage(&mut self) -> Result<()> {
        self.seg_live = vec![0; self.nsegs as usize];
        let inos: Vec<u32> = (0..self.imap.len() as u32)
            .filter(|&i| self.imap[i as usize] != 0 || self.dirty_inodes.contains_key(&i))
            .collect();
        let credit = |this: &mut Self, addr: u32| {
            if addr != 0 && addr != u32::MAX {
                let seg = this.seg_of(addr);
                this.seg_live[seg as usize] += 1;
            }
        };
        for ino in inos {
            let entry = self.imap[ino as usize];
            if entry != 0 && entry != u32::MAX {
                credit(self, (entry - 1) / INODES_PER_BLOCK as u32);
            }
            let inode = match self.load_inode(ino) {
                Ok(i) => i,
                Err(_) => continue,
            };
            let nblocks = inode.size.div_ceil(BLOCK as u64);
            for idx in 0..nblocks {
                if let Ok(a) = self.block_addr(ino, idx) {
                    credit(self, a);
                }
            }
            credit(self, inode.ptrs[NDIRECT]);
            if inode.ptrs[NDIRECT + 1] != 0 {
                credit(self, inode.ptrs[NDIRECT + 1]);
                let top = self.load_table(ino, TABLE_DIND_TOP)?;
                for a in top {
                    credit(self, a);
                }
            }
        }
        for blk in 0..self.imap_addr.len() {
            credit(self, self.imap_addr[blk]);
        }
        for seg in 0..self.nsegs as usize {
            self.seg_state[seg] = if self.seg_live[seg] > 0 {
                SegState::Live
            } else {
                SegState::Free
            };
        }
        Ok(())
    }

    // ----- cleaning -----

    /// Greedily cleans up to `max` segments; returns how many were freed.
    /// Every copied block cascades exactly like a user write — the Sprite
    /// cleaning cost the paper contrasts with LLD's (§5.1).
    pub fn clean(&mut self, max: u32) -> Result<u32> {
        let mut cleaned = 0;
        for _ in 0..max {
            let victim = (0..self.nsegs)
                .filter(|&s| s != self.open_seg && self.seg_state[s as usize] == SegState::Live)
                .min_by_key(|&s| self.seg_live[s as usize].max(0));
            let Some(victim) = victim else { break };
            if self.seg_live[victim as usize] >= i64::from(self.config.segment_blocks - 1) {
                break; // Nothing reclaimable.
            }
            self.clean_segment(victim)?;
            cleaned += 1;
        }
        Ok(cleaned)
    }

    fn clean_segment(&mut self, victim: u32) -> Result<()> {
        let base = self.seg_base(victim);
        let nblocks = self.config.segment_blocks as usize;
        let mut body = vec![0u8; nblocks * BLOCK];
        self.disk
            .read_sectors(u64::from(base) * SECTORS_PER_BLOCK, &mut body)
            .map_err(io_err)?;
        if summary_seq_if_valid(&body).is_some() {
            let count = wire::le_u32(&body, 4) as usize;
            let mut pos = 20;
            for i in 0..count {
                let kind = body[pos];
                let a = wire::le_u32(&body, pos + 1);
                let b = wire::le_u32(&body, pos + 5);
                pos += 9;
                let addr = base + 1 + i as u32;
                let payload = body[(1 + i) * BLOCK..(2 + i) * BLOCK].to_vec();
                match kind {
                    0 => {
                        // Live data: current pointer still references it.
                        let (ino, idx) = (a, u64::from(b));
                        let live = self.imap.get(ino as usize).is_some_and(|&e| e != 0)
                            && self.block_addr(ino, idx).is_ok_and(|cur| cur == addr);
                        if live {
                            let new = self.append(Kind::Data { ino, idx: b }, payload)?;
                            self.set_block_addr(ino, idx, new)?;
                            self.counters.cleaner_copied += 1;
                        }
                    }
                    1 => {
                        for slot in 0..INODES_PER_BLOCK {
                            let entry = addr * INODES_PER_BLOCK as u32 + slot as u32 + 1;
                            if let Some(ino) = self.imap.iter().position(|&e| e == entry) {
                                // Re-dirty so it is rewritten at next flush.
                                let img = &payload[slot * INODE_BYTES..(slot + 1) * INODE_BYTES];
                                if let Some(inode) = Inode::decode(img) {
                                    self.dirty_inodes.insert(ino as u32, inode);
                                    self.retire(addr);
                                    self.imap[ino as u32 as usize] = u32::MAX;
                                    self.imap_dirty.insert(ino as u32 / IMAP_PER_BLOCK as u32);
                                    self.counters.cleaner_copied += 1;
                                }
                            }
                        }
                    }
                    2 => {
                        let blk = a as usize;
                        if blk < self.imap_addr.len() && self.imap_addr[blk] == addr {
                            self.imap_dirty.insert(a);
                            self.imap_addr[blk] = 0;
                            self.retire(addr);
                            self.counters.cleaner_copied += 1;
                        }
                    }
                    3 => {
                        let (ino, table) = (a, b);
                        let cur = self.table_addr(ino, table)?;
                        if cur == Some(addr) {
                            let content: Vec<u32> = (0..PPB)
                                .map(|k| {
                                    wire::le_u32(&payload, 4 * k)
                                })
                                .collect();
                            self.dirty_tables.insert((ino, table), content);
                            self.retire(addr);
                            self.counters.cleaner_copied += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        // Make the forwarded copies durable, then reclaim the victim.
        self.flush()?;
        self.seg_state[victim as usize] = SegState::Free;
        self.seg_live[victim as usize] = 0;
        Ok(())
    }

    fn table_addr(&mut self, ino: u32, table: u32) -> Result<Option<u32>> {
        if self.imap.get(ino as usize).copied().unwrap_or(0) == 0
            && !self.dirty_inodes.contains_key(&ino)
        {
            return Ok(None);
        }
        if self.dirty_tables.contains_key(&(ino, table)) {
            return Ok(None); // Already dirty in memory; disk copy is dead.
        }
        let inode = self.load_inode(ino)?;
        Ok(match table {
            TABLE_IND => nonzero(inode.ptrs[NDIRECT]),
            TABLE_DIND_TOP => nonzero(inode.ptrs[NDIRECT + 1]),
            sub => {
                if inode.ptrs[NDIRECT + 1] == 0 {
                    None
                } else {
                    let top = self.load_table(ino, TABLE_DIND_TOP)?;
                    nonzero(top[sub as usize])
                }
            }
        })
    }
}

fn nonzero(a: u32) -> Option<u32> {
    (a != 0).then_some(a)
}

fn io_err(e: simdisk::DiskError) -> LfsError {
    LfsError::Io(e.to_string())
}

fn fnv(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Validates a segment image; returns its sequence number if intact.
fn summary_seq_if_valid(body: &[u8]) -> Option<u64> {
    if body.len() < BLOCK {
        return None;
    }
    if wire::le_u32(body, 0) != SUMMARY_MAGIC {
        return None;
    }
    let count = wire::le_u32(body, 4) as usize;
    let seq = wire::le_u64(body, 8);
    let nops = wire::le_u32(body, 16) as usize;
    let summary_used = 20 + 9 * count + 5 * nops;
    if summary_used + 8 > BLOCK || (1 + count) * BLOCK > body.len() {
        return None;
    }
    let stored = wire::le_u64(body, summary_used);
    let mut hashed = body[..summary_used].to_vec();
    hashed.extend_from_slice(&body[BLOCK..(1 + count) * BLOCK]);
    (fnv(&hashed) == stored).then_some(seq)
}

#[cfg(test)]
mod tests;
