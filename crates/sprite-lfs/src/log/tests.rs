//! Tests for the Sprite-LFS comparator.

use simdisk::MemDisk;

use crate::fsops::LfsError;
use crate::log::{LfsConfig, SpriteLfs, BLOCK, ROOT_INO};

fn lfs() -> SpriteLfs<MemDisk> {
    SpriteLfs::format(
        MemDisk::with_capacity(16 << 20),
        LfsConfig::small_for_tests(),
    )
    .unwrap()
}

fn pattern(seed: u8) -> Vec<u8> {
    (0..BLOCK)
        .map(|i| (i as u8).wrapping_mul(7) ^ seed)
        .collect()
}

#[test]
fn create_lookup_delete() {
    let mut fs = lfs();
    let a = fs.create("alpha").unwrap();
    let b = fs.create("beta").unwrap();
    assert_ne!(a, b);
    assert_eq!(fs.lookup("alpha").unwrap(), Some(a));
    assert_eq!(fs.create("alpha"), Err(LfsError::Exists));
    fs.delete("alpha").unwrap();
    assert_eq!(fs.lookup("alpha").unwrap(), None);
    assert_eq!(fs.delete("alpha"), Err(LfsError::NotFound));
    // The i-node number is reusable.
    let c = fs.create("gamma").unwrap();
    assert_eq!(c, a);
}

#[test]
fn write_read_roundtrip_direct_and_indirect() {
    let mut fs = lfs();
    let f = fs.create("f").unwrap();
    // Direct range (10 blocks) and into the indirect range.
    for i in 0..30u64 {
        fs.write_block(f, i, &pattern(i as u8)).unwrap();
    }
    fs.flush().unwrap();
    for i in 0..30u64 {
        let mut buf = vec![0u8; BLOCK];
        fs.read_block(f, i, &mut buf).unwrap();
        assert_eq!(buf, pattern(i as u8), "block {i}");
    }
    assert_eq!(fs.file_size(f).unwrap(), 30 * BLOCK as u64);
}

#[test]
fn double_indirect_range_works() {
    let mut fs = SpriteLfs::format(
        MemDisk::with_capacity(64 << 20),
        LfsConfig {
            segment_blocks: 64,
            ninodes: 128,
        },
    )
    .unwrap();
    let f = fs.create("huge").unwrap();
    let idx = 10 + 1024 + 7; // Into the double-indirect range.
    fs.write_block(f, idx, &pattern(0x55)).unwrap();
    fs.flush().unwrap();
    let mut buf = vec![0u8; BLOCK];
    fs.read_block(f, idx, &mut buf).unwrap();
    assert_eq!(buf, pattern(0x55));
    // Hole before it reads zero.
    fs.read_block(f, 10, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0));
}

#[test]
fn overwrite_cascades_into_metadata_counters() {
    // The crux of Table 6: overwriting blocks in the indirect range costs
    // indirect-block writes in Sprite.
    let mut fs = lfs();
    let f = fs.create("f").unwrap();
    for i in 0..20u64 {
        fs.write_block(f, i, &pattern(1)).unwrap();
    }
    fs.flush().unwrap();
    fs.reset_counters();
    // Overwrite a block in the indirect range, then flush.
    fs.write_block(f, 15, &pattern(2)).unwrap();
    fs.flush().unwrap();
    let c = fs.counters();
    assert_eq!(c.data_blocks, 1);
    assert!(
        c.indirect_blocks >= 1,
        "overwrite in the indirect range must rewrite the indirect block"
    );
    assert!(c.inode_blocks >= 1, "and the i-node is dirty too");
}

#[test]
fn direct_overwrite_has_no_indirect_cost() {
    let mut fs = lfs();
    let f = fs.create("f").unwrap();
    fs.write_block(f, 0, &pattern(1)).unwrap();
    fs.flush().unwrap();
    fs.reset_counters();
    fs.write_block(f, 0, &pattern(2)).unwrap();
    fs.flush().unwrap();
    let c = fs.counters();
    assert_eq!(c.data_blocks, 1);
    assert_eq!(c.indirect_blocks, 0);
}

#[test]
fn dirty_inodes_share_inode_blocks() {
    // ε is small because many dirty i-nodes pack into one block.
    let mut fs = lfs();
    for i in 0..20 {
        fs.create(&format!("f{i}")).unwrap();
    }
    fs.flush().unwrap();
    let c = fs.counters();
    assert!(c.dirty_inodes_flushed >= 20);
    assert!(
        c.inode_blocks <= 2,
        "20 dirty i-nodes should pack into at most 2 blocks, got {}",
        c.inode_blocks
    );
}

#[test]
fn checkpoint_and_recover_restores_state() {
    let mut fs = lfs();
    let f = fs.create("keep").unwrap();
    for i in 0..5u64 {
        fs.write_block(f, i, &pattern(i as u8)).unwrap();
    }
    fs.checkpoint().unwrap();

    let disk = fs.into_disk();
    let mut fs = SpriteLfs::recover(disk, LfsConfig::small_for_tests()).unwrap();
    assert_eq!(fs.lookup("keep").unwrap(), Some(f));
    for i in 0..5u64 {
        let mut buf = vec![0u8; BLOCK];
        fs.read_block(f, i, &mut buf).unwrap();
        assert_eq!(buf, pattern(i as u8));
    }
}

#[test]
fn roll_forward_recovers_past_checkpoint() {
    let mut fs = lfs();
    let f = fs.create("early").unwrap();
    fs.write_block(f, 0, &pattern(1)).unwrap();
    fs.checkpoint().unwrap();
    // Work after the checkpoint, flushed (durable) but not checkpointed.
    let g = fs.create("late").unwrap();
    fs.write_block(g, 0, &pattern(2)).unwrap();
    fs.write_block(f, 0, &pattern(3)).unwrap();
    fs.delete("early").unwrap();
    fs.flush().unwrap();

    let disk = fs.into_disk();
    let mut fs = SpriteLfs::recover(disk, LfsConfig::small_for_tests()).unwrap();
    // 'late' was created after the checkpoint and must be recovered by
    // roll-forward; 'early' was deleted after the checkpoint.
    assert_eq!(fs.lookup("late").unwrap(), Some(g));
    assert_eq!(fs.lookup("early").unwrap(), None);
    let mut buf = vec![0u8; BLOCK];
    fs.read_block(g, 0, &mut buf).unwrap();
    assert_eq!(buf, pattern(2));
}

#[test]
fn unflushed_tail_lost_after_crash() {
    let mut fs = lfs();
    let f = fs.create("durable").unwrap();
    fs.write_block(f, 0, &pattern(1)).unwrap();
    fs.flush().unwrap();
    // Not flushed:
    let _g = fs.create("volatile").unwrap();
    fs.write_block(f, 0, &pattern(9)).unwrap();

    let disk = fs.into_disk();
    let mut fs = SpriteLfs::recover(disk, LfsConfig::small_for_tests()).unwrap();
    assert_eq!(fs.lookup("volatile").unwrap(), None);
    let mut buf = vec![0u8; BLOCK];
    let ino = fs.lookup("durable").unwrap().unwrap();
    fs.read_block(ino, 0, &mut buf).unwrap();
    assert_eq!(buf, pattern(1));
}

#[test]
fn cleaner_reclaims_dead_segments() {
    let mut fs = SpriteLfs::format(
        MemDisk::with_capacity(8 << 20),
        LfsConfig {
            segment_blocks: 16,
            ninodes: 64,
        },
    )
    .unwrap();
    let f = fs.create("churn").unwrap();
    // Overwrite the same blocks repeatedly to produce dead segments.
    for round in 0..12u8 {
        for i in 0..8u64 {
            fs.write_block(f, i, &pattern(round ^ i as u8)).unwrap();
        }
        fs.flush().unwrap();
    }
    let free_before = fs.free_segments();
    let cleaned = fs.clean(8).unwrap();
    assert!(cleaned > 0, "cleaner found victims");
    assert!(fs.free_segments() > free_before);
    // Data survives cleaning.
    for i in 0..8u64 {
        let mut buf = vec![0u8; BLOCK];
        fs.read_block(f, i, &mut buf).unwrap();
        assert_eq!(buf, pattern(11 ^ i as u8), "block {i}");
    }
}

#[test]
fn cleaner_copies_live_blocks_and_cascades() {
    let mut fs = SpriteLfs::format(
        MemDisk::with_capacity(8 << 20),
        LfsConfig {
            segment_blocks: 16,
            ninodes: 64,
        },
    )
    .unwrap();
    // Two interleaved files fill segments together; overwriting only one
    // leaves half-live segments that the cleaner must copy from.
    let a = fs.create("hot").unwrap();
    let b = fs.create("cold").unwrap();
    for i in 0..12u64 {
        fs.write_block(a, i, &pattern(i as u8)).unwrap();
        fs.write_block(b, i, &pattern(0x80 | i as u8)).unwrap();
    }
    fs.flush().unwrap();
    for round in 1..4u8 {
        for i in 0..12u64 {
            fs.write_block(a, i, &pattern(round.wrapping_mul(31) ^ i as u8))
                .unwrap();
        }
        fs.flush().unwrap();
    }
    let cleaned = fs.clean(6).unwrap();
    assert!(cleaned > 0);
    assert!(
        fs.counters().cleaner_copied > 0,
        "half-live segments force the cleaner to copy"
    );
    // Cold file intact after its blocks were moved.
    for i in 0..12u64 {
        let mut buf = vec![0u8; BLOCK];
        fs.read_block(b, i, &mut buf).unwrap();
        assert_eq!(buf, pattern(0x80 | i as u8), "cold block {i}");
    }
}

#[test]
fn root_directory_grows() {
    let mut fs = lfs();
    // 4096/32 = 128 entries per block; create enough to grow the dir.
    for i in 0..150 {
        fs.create(&format!("file-{i:04}")).unwrap();
    }
    fs.flush().unwrap();
    assert!(fs.file_size(ROOT_INO).unwrap() >= 2 * BLOCK as u64);
    assert!(fs.lookup("file-0149").unwrap().is_some());
}
