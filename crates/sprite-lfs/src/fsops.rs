//! Error type for the Sprite-LFS comparator.

/// Errors returned by [`crate::SpriteLfs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LfsError {
    /// Unknown file name or i-node.
    NotFound,
    /// File name already exists.
    Exists,
    /// Out of segments.
    NoSpace,
    /// Out of i-nodes.
    NoInodes,
    /// File block index beyond the double-indirect range.
    TooBig,
    /// Device failure.
    Io(String),
    /// No valid checkpoint found at recovery.
    BadCheckpoint,
}

impl std::fmt::Display for LfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LfsError::NotFound => write!(f, "not found"),
            LfsError::Exists => write!(f, "file exists"),
            LfsError::NoSpace => write!(f, "no free segments"),
            LfsError::NoInodes => write!(f, "no free i-nodes"),
            LfsError::TooBig => write!(f, "file too big"),
            LfsError::Io(m) => write!(f, "I/O error: {m}"),
            LfsError::BadCheckpoint => write!(f, "no valid checkpoint"),
        }
    }
}

impl std::error::Error for LfsError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, LfsError>;
