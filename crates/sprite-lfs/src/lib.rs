//! A Sprite-LFS-style storage manager, built for the paper's §5.1
//! comparison (Table 6).
//!
//! Sprite LFS (Rosenblum & Ousterhout 1992) stores *physical* disk
//! addresses in its metadata, so moving or rewriting a block cascades:
//! a data-block write dirties the i-node (and possibly indirect blocks),
//! and a dirty i-node dirties its i-node-map block. LD-based file systems
//! store location-independent logical block numbers, so none of that
//! happens — that asymmetry is exactly what Table 6 quantifies:
//!
//! | operation | Sprite LFS | MINIX LLD |
//! |---|---|---|
//! | create/delete | `1 + 2δ + 2ε` blocks | `1 + 2ε` |
//! | overwrite | `1+δ+ε`, `2+δ+ε`, or `3+δ+ε` | `1+ε` |
//! | append | same as overwrite | `1+ε` or `2+ε` |
//!
//! where ε is the cost of a dirty i-node (many share an i-node block
//! written per segment) and δ the cost of an i-node-map block (shared by
//! many operations, written at checkpoints).
//!
//! This implementation is a real, recoverable mini-LFS: log-structured
//! segments with summaries, dirty i-nodes packed into i-node blocks at
//! segment flush, an i-node map written at checkpoints (two alternating
//! checkpoint regions), roll-forward recovery from the newest checkpoint,
//! and a greedy cleaner. [`WriteCounters`] splits every block written by
//! category so the Table 6 quantities are *measured*, not assumed.

mod fsops;
mod log;

pub use fsops::{LfsError, Result};
pub use log::{LfsConfig, SpriteLfs, WriteCounters};
