//! Property test: Sprite-LFS roll-forward recovery reproduces every
//! flushed state, wherever the crash lands relative to checkpoints.

use proptest::prelude::*;
use simdisk::MemDisk;
use sprite_lfs::{LfsConfig, SpriteLfs};
use std::collections::HashMap;

fn payload(seed: u8) -> Vec<u8> {
    (0..4096)
        .map(|i| (i as u8).wrapping_mul(29) ^ seed)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovery_reproduces_flushed_state(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), 0u8..4), 1..60),
    ) {
        let mut fs = SpriteLfs::format(
            MemDisk::with_capacity(16 << 20),
            LfsConfig::small_for_tests(),
        )
        .expect("format");
        // Model of the state as of the last flush/checkpoint.
        let mut flushed: HashMap<(u32, u64), u8> = HashMap::new();
        let mut live: HashMap<(u32, u64), u8> = HashMap::new();
        let mut files: Vec<u32> = Vec::new();

        for (sel, seed, kind) in ops {
            match kind {
                0 => {
                    // Create a file.
                    let name = format!("f{}", files.len());
                    if let Ok(ino) = fs.create(&name) {
                        files.push(ino);
                    }
                }
                1 if !files.is_empty() => {
                    // Write a block of some file.
                    let ino = files[sel as usize % files.len()];
                    let idx = u64::from(seed % 16);
                    fs.write_block(ino, idx, &payload(seed)).expect("write");
                    live.insert((ino, idx), seed);
                }
                2 => {
                    fs.flush().expect("flush");
                    flushed.extend(live.iter());
                }
                _ => {
                    fs.checkpoint().expect("checkpoint");
                    flushed.extend(live.iter());
                }
            }
        }

        // Crash and roll forward from the newest checkpoint.
        let disk = fs.into_disk();
        let mut rec = SpriteLfs::recover(disk, LfsConfig::small_for_tests()).expect("recover");
        let mut buf = vec![0u8; 4096];
        for ((ino, idx), seed) in &flushed {
            rec.read_block(*ino, *idx, &mut buf).expect("recovered read");
            // At minimum the last-flushed value must be recovered; a write
            // issued after the last flush may also have become durable if
            // its segment auto-sealed, in which case the newest value is
            // equally legitimate.
            let newest = live.get(&(*ino, *idx)).copied().unwrap_or(*seed);
            prop_assert!(
                buf == payload(*seed) || buf == payload(newest),
                "ino {} block {}: neither the flushed nor the newest value",
                ino,
                idx
            );
        }
    }
}
