//! File-system error type.

use fsutil::PathError;

/// Errors returned by [`crate::MinixFs`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path component or final target does not exist.
    NotFound,
    /// Target already exists (create/mkdir).
    Exists,
    /// A non-final path component is not a directory.
    NotDir,
    /// A file operation was applied to a directory (or vice versa).
    IsDir,
    /// Directory still has entries (rmdir).
    NotEmpty,
    /// Out of data blocks.
    NoSpace,
    /// Out of i-nodes.
    NoInodes,
    /// Malformed path.
    Path(PathError),
    /// The store rejected an operation or the medium failed.
    Store(String),
    /// The on-disk image is not a valid file system.
    BadSuperblock,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::Exists => write!(f, "file exists"),
            FsError::NotDir => write!(f, "not a directory"),
            FsError::IsDir => write!(f, "is a directory"),
            FsError::NotEmpty => write!(f, "directory not empty"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NoInodes => write!(f, "no free i-nodes"),
            FsError::Path(e) => write!(f, "{e}"),
            FsError::Store(msg) => write!(f, "store error: {msg}"),
            FsError::BadSuperblock => write!(f, "not a valid file system image"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<PathError> for FsError {
    fn from(e: PathError) -> Self {
        FsError::Path(e)
    }
}

/// Result alias for file-system operations.
pub type Result<T> = std::result::Result<T, FsError>;
