//! Update-in-place storage with a free-block bitmap — the disk management
//! of *plain* MINIX (paper §4.1: "It uses two bitmaps to keep track of free
//! disk space ... When it allocates a block for a file, it allocates it
//! close to the previous allocated block for that file").
//!
//! Layout: block 0 is the file system's superblock; the next blocks hold
//! the store's free-block bitmap; everything after is allocatable. Blocks
//! are written in place, so a 4 KB write that misses its rotational window
//! costs most of a revolution — exactly the effect that limits plain MINIX
//! to ~13 % of the disk bandwidth in Table 5.

use fsutil::Bitmap;
use simdisk::{BlockDev, SECTOR_SIZE};

use crate::error::{FsError, Result};
use crate::store::{Addr, AllocHint, BlockStore};

const BLOCK_SIZE: usize = 4096;
const SECTORS_PER_BLOCK: u64 = (BLOCK_SIZE / SECTOR_SIZE) as u64;

/// The update-in-place store.
#[derive(Debug)]
pub struct RawStore<D: BlockDev> {
    disk: D,
    /// Total blocks on the device.
    blocks: u32,
    /// Free-block bitmap (bit set = allocated). Kept in memory, persisted
    /// to its reserved blocks on `sync`.
    bitmap: Bitmap,
    bitmap_dirty: bool,
    /// First block after the reserved region (superblock + bitmap).
    first_data: u32,
    /// Most recent allocation, the default locality hint.
    last_alloc: u32,
}

impl<D: BlockDev> RawStore<D> {
    fn geometry(disk: &D) -> (u32, u32) {
        let blocks = (disk.total_sectors() / SECTORS_PER_BLOCK) as u32;
        let bitmap_blocks = (blocks as usize).div_ceil(8).div_ceil(BLOCK_SIZE) as u32;
        (blocks, 1 + bitmap_blocks)
    }

    /// Formats the device: reserves the superblock and bitmap region.
    pub fn format(disk: D) -> Result<Self> {
        let (blocks, first_data) = Self::geometry(&disk);
        if first_data >= blocks {
            return Err(FsError::NoSpace);
        }
        let mut bitmap = Bitmap::new(blocks as usize);
        for b in 0..first_data {
            bitmap.set(b as usize);
        }
        let mut store = Self {
            disk,
            blocks,
            bitmap,
            bitmap_dirty: true,
            first_data,
            last_alloc: first_data,
        };
        store.sync()?;
        Ok(store)
    }

    /// Mounts an existing device, reloading the bitmap.
    pub fn mount(mut disk: D) -> Result<Self> {
        let (blocks, first_data) = Self::geometry(&disk);
        let bitmap_blocks = first_data - 1;
        let mut bytes = vec![0u8; (bitmap_blocks as usize) * BLOCK_SIZE];
        disk.read_sectors(SECTORS_PER_BLOCK, &mut bytes)
            .map_err(|e| FsError::Store(e.to_string()))?;
        let bitmap = Bitmap::from_bytes(&bytes, blocks as usize);
        if !(0..first_data).all(|b| bitmap.get(b as usize)) {
            return Err(FsError::BadSuperblock);
        }
        Ok(Self {
            disk,
            blocks,
            bitmap,
            bitmap_dirty: false,
            first_data,
            last_alloc: first_data,
        })
    }

    /// Access to the underlying device.
    pub fn disk(&self) -> &D {
        &self.disk
    }

    /// Mutable access to the underlying device.
    pub fn disk_mut(&mut self) -> &mut D {
        &mut self.disk
    }

    /// Consumes the store, returning the device.
    pub fn into_disk(self) -> D {
        self.disk
    }

    fn check(&self, addr: Addr) -> Result<()> {
        if addr >= self.blocks {
            return Err(FsError::Store(format!("block {addr} out of range")));
        }
        Ok(())
    }
}

impl<D: BlockDev> BlockStore for RawStore<D> {
    fn block_size(&self) -> usize {
        BLOCK_SIZE
    }

    fn superblock_addr(&self) -> Addr {
        0
    }

    fn read_block(&mut self, addr: Addr, buf: &mut [u8]) -> Result<usize> {
        self.check(addr)?;
        let buf = &mut buf[..BLOCK_SIZE];
        self.disk
            .read_sectors(u64::from(addr) * SECTORS_PER_BLOCK, buf)
            .map_err(|e| FsError::Store(e.to_string()))?;
        Ok(BLOCK_SIZE)
    }

    fn write_block(&mut self, addr: Addr, data: &[u8]) -> Result<()> {
        self.check(addr)?;
        // Update in place; short data is padded to the full block.
        if data.len() == BLOCK_SIZE {
            self.disk
                .write_sectors(u64::from(addr) * SECTORS_PER_BLOCK, data)
                .map_err(|e| FsError::Store(e.to_string()))
        } else {
            let mut block = vec![0u8; BLOCK_SIZE];
            block[..data.len()].copy_from_slice(data);
            self.disk
                .write_sectors(u64::from(addr) * SECTORS_PER_BLOCK, &block)
                .map_err(|e| FsError::Store(e.to_string()))
        }
    }

    fn read_blocks(&mut self, addrs: &[Addr]) -> Result<Vec<Vec<u8>>> {
        // MINIX's read-ahead issues one request for a run of physically
        // contiguous blocks; coalesce adjacent addresses.
        let mut out = Vec::with_capacity(addrs.len());
        let mut i = 0;
        while i < addrs.len() {
            self.check(addrs[i])?;
            let mut n = 1;
            while i + n < addrs.len() && addrs[i + n] == addrs[i] + n as u32 {
                n += 1;
            }
            let mut buf = vec![0u8; n * BLOCK_SIZE];
            self.disk
                .read_sectors(u64::from(addrs[i]) * SECTORS_PER_BLOCK, &mut buf)
                .map_err(|e| FsError::Store(e.to_string()))?;
            for chunk in buf.chunks(BLOCK_SIZE) {
                out.push(chunk.to_vec());
            }
            i += n;
        }
        Ok(out)
    }

    fn alloc_block(&mut self, hint: &AllocHint) -> Result<Addr> {
        // "Close to the previous allocated block for that file", falling
        // back to close to the last allocation anywhere.
        let near = hint
            .prev
            .map(|p| p.saturating_add(1))
            .unwrap_or(self.last_alloc) as usize;
        let slot = self.bitmap.alloc_near(near).ok_or(FsError::NoSpace)?;
        self.bitmap_dirty = true;
        self.last_alloc = slot as u32;
        Ok(slot as u32)
    }

    fn alloc_sized(&mut self, hint: &AllocHint, size: usize) -> Result<Addr> {
        if size > BLOCK_SIZE {
            return Err(FsError::Store(format!("block size {size} unsupported")));
        }
        // The raw store has a single size class; small requests get a
        // whole block.
        self.alloc_block(hint)
    }

    fn free_block(&mut self, addr: Addr, _hint: &AllocHint) -> Result<()> {
        self.check(addr)?;
        if addr < self.first_data {
            return Err(FsError::Store(format!("block {addr} is reserved")));
        }
        self.bitmap.clear(addr as usize);
        self.bitmap_dirty = true;
        Ok(())
    }

    fn new_group(&mut self, _near: Option<u64>) -> Result<u64> {
        Ok(0)
    }

    fn delete_group(&mut self, group: u64) -> Result<()> {
        debug_assert_eq!(group, 0, "raw store has no groups");
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        if self.bitmap_dirty {
            let mut bytes = self.bitmap.as_bytes().to_vec();
            bytes.resize(((self.first_data - 1) as usize) * BLOCK_SIZE, 0);
            self.disk
                .write_sectors(SECTORS_PER_BLOCK, &bytes)
                .map_err(|e| FsError::Store(e.to_string()))?;
            self.bitmap_dirty = false;
        }
        Ok(())
    }

    fn supports_readahead(&self) -> bool {
        true
    }

    fn supports_small_blocks(&self) -> bool {
        false
    }

    fn free_blocks(&self) -> u64 {
        self.bitmap.free() as u64
    }

    fn now_us(&self) -> u64 {
        self.disk.now_us()
    }

    fn advance_us(&mut self, us: u64) {
        self.disk.advance_us(us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdisk::MemDisk;

    #[test]
    fn format_reserves_metadata_region() {
        let store = RawStore::format(MemDisk::with_capacity(4 << 20)).unwrap();
        assert_eq!(store.superblock_addr(), 0);
        assert!(store.first_data >= 2);
        assert_eq!(
            store.free_blocks(),
            u64::from(store.blocks - store.first_data)
        );
    }

    #[test]
    fn alloc_near_previous_block() {
        let mut store = RawStore::format(MemDisk::with_capacity(4 << 20)).unwrap();
        let a = store.alloc_block(&AllocHint::after(None)).unwrap();
        let b = store.alloc_block(&AllocHint::after(Some(a))).unwrap();
        assert_eq!(b, a + 1, "allocation follows the previous block");
    }

    #[test]
    fn write_read_roundtrip_and_free() {
        let mut store = RawStore::format(MemDisk::with_capacity(4 << 20)).unwrap();
        let a = store.alloc_block(&AllocHint::default()).unwrap();
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        store.write_block(a, &data).unwrap();
        let mut buf = vec![0u8; 4096];
        assert_eq!(store.read_block(a, &mut buf).unwrap(), 4096);
        assert_eq!(buf, data);
        store.free_block(a, &AllocHint::default()).unwrap();
        // The slot is reusable.
        let b = store.alloc_block(&AllocHint::after(Some(a - 1))).unwrap();
        assert_eq!(b, a);
    }

    #[test]
    fn bitmap_survives_mount() {
        let mut store = RawStore::format(MemDisk::with_capacity(4 << 20)).unwrap();
        let a = store.alloc_block(&AllocHint::default()).unwrap();
        store.sync().unwrap();
        let disk = store.into_disk();
        let store2 = RawStore::mount(disk).unwrap();
        assert!(store2.bitmap.get(a as usize), "allocation persisted");
    }

    #[test]
    fn small_blocks_unsupported() {
        let mut store = RawStore::format(MemDisk::with_capacity(4 << 20)).unwrap();
        assert!(!store.supports_small_blocks());
        // Small requests still succeed but consume a full block.
        let before = store.free_blocks();
        store.alloc_sized(&AllocHint::default(), 64).unwrap();
        assert_eq!(store.free_blocks(), before - 1);
        assert!(store.alloc_sized(&AllocHint::default(), 8192).is_err());
    }

    #[test]
    fn freeing_reserved_blocks_is_rejected() {
        let mut store = RawStore::format(MemDisk::with_capacity(4 << 20)).unwrap();
        assert!(store.free_block(0, &AllocHint::default()).is_err());
    }
}
