//! The Logical Disk storage backend — what turns MINIX into MINIX LLD
//! (paper §4.1).
//!
//! The §4.1 modifications map onto this store:
//!
//! 1. "MINIX calls NewBlock to allocate a new block for a file; it also
//!    tells LLD to add the block to the list" → [`BlockStore::alloc_block`]
//!    with a `prev` hint.
//! 2. "When MINIX frees a block it notifies LLD" → [`BlockStore::free_block`].
//! 3. "Upon a sync MINIX tells LLD to flush the segment" →
//!    [`BlockStore::sync`].
//! 4. "Read-ahead in MINIX is disabled" → [`BlockStore::supports_readahead`]
//!    returns false.
//! 5. "MINIX stores each file's blocks in a separate list" →
//!    [`BlockStore::new_group`] (a group is an LD list; the group id is
//!    what MINIX "stores in the i-node").
//! 6. "MINIX no longer stores the block bitmap" → there is none here; LD
//!    owns free-space management.
//!
//! Store addresses are `bid + 1` so that `0` can mean "no block" in zone
//! pointers.

use ld_core::{Bid, FailureSet, LdError, Lid, ListHints, LogicalDisk, Pred, PredList};
use simdisk::BlockDev;

use crate::error::{FsError, Result};
use crate::store::{Addr, AllocHint, BlockStore};

/// The LD-backed store.
#[derive(Debug)]
pub struct LdStore<D: BlockDev> {
    lld: lld::Lld<D>,
    /// The shared list holding the superblock, i-node containers, and (in
    /// single-list mode) every file block.
    meta_list: Lid,
    /// Last block allocated on the meta list — new allocations go after it
    /// ("inserts its first block immediately after the last block of some
    /// other file").
    last_meta: Option<Bid>,
    /// Whether file lists ask LLD for transparent compression.
    compress: bool,
}

fn store_err(e: LdError) -> FsError {
    match e {
        LdError::NoSpace => FsError::NoSpace,
        other => FsError::Store(other.to_string()),
    }
}

impl<D: BlockDev> LdStore<D> {
    /// Formats: creates the meta list and pre-allocates the superblock
    /// block as the very first block (so [`BlockStore::superblock_addr`]
    /// is a constant).
    pub fn format(disk: D, config: lld::LldConfig) -> Result<Self> {
        Self::format_with(disk, config, false)
    }

    /// Formats with transparent compression requested for every list
    /// (paper §3.3 / the compression experiment).
    pub fn format_compressed(disk: D, config: lld::LldConfig) -> Result<Self> {
        Self::format_with(disk, config, true)
    }

    fn format_with(disk: D, config: lld::LldConfig, compress: bool) -> Result<Self> {
        let mut lld = lld::Lld::format(disk, config).map_err(store_err)?;
        let hints = if compress {
            ListHints::compressed()
        } else {
            ListHints::default()
        };
        let meta_list = lld.new_list(PredList::Start, hints).map_err(store_err)?;
        let sb = lld.new_block(meta_list, Pred::Start).map_err(store_err)?;
        debug_assert_eq!(sb, Bid(0), "superblock must be the first block");
        Ok(Self {
            lld,
            meta_list,
            last_meta: Some(sb),
            compress,
        })
    }

    /// Mounts an existing LD store (after recovery or checkpoint load).
    pub fn mount(disk: D, config: lld::LldConfig) -> Result<Self> {
        let mut lld = lld::Lld::open(disk, config).map_err(store_err)?;
        // The meta list is the first list ever created; after recovery it
        // is the list containing bid 0.
        let meta_list = lld
            .list_of_lists()
            .into_iter()
            .find(|l| lld.list_blocks(*l).is_ok_and(|bs| bs.contains(&Bid(0))))
            .ok_or(FsError::BadSuperblock)?;
        let last_meta = lld
            .list_blocks(meta_list)
            .map_err(store_err)?
            .last()
            .copied();
        let compress = false; // Informational only; lists carry their own hints.
        Ok(Self {
            lld,
            meta_list,
            last_meta,
            compress,
        })
    }

    /// Access to the underlying LLD (stats, maintenance).
    pub fn lld(&self) -> &lld::Lld<D> {
        &self.lld
    }

    /// Mutable access to the underlying LLD.
    pub fn lld_mut(&mut self) -> &mut lld::Lld<D> {
        &mut self.lld
    }

    /// Consumes the store, returning the device (crash simulation).
    pub fn into_disk(self) -> D {
        self.lld.into_disk()
    }

    /// The underlying device.
    pub fn disk(&self) -> &D {
        self.lld.disk()
    }

    /// Mutable access to the underlying device.
    pub fn disk_mut(&mut self) -> &mut D {
        self.lld.disk_mut()
    }

    fn lid_of(&self, group: u64) -> Lid {
        if group == 0 {
            self.meta_list
        } else {
            Lid(group - 1)
        }
    }

    fn alloc_common(&mut self, hint: &AllocHint, size: usize) -> Result<Addr> {
        let lid = self.lid_of(hint.group);
        let pred = match hint.prev {
            Some(p) => Pred::After(Bid(u64::from(p) - 1)),
            None if hint.group == 0 => match self.last_meta {
                Some(b) => Pred::After(b),
                None => Pred::Start,
            },
            None => Pred::Start,
        };
        let bid = self
            .lld
            .new_block_with_size(lid, pred, size)
            .map_err(store_err)?;
        if hint.group == 0 {
            self.last_meta = Some(bid);
        }
        Ok((bid.0 + 1) as Addr)
    }
}

impl<D: BlockDev> BlockStore for LdStore<D> {
    fn block_size(&self) -> usize {
        self.lld.default_block_size()
    }

    fn superblock_addr(&self) -> Addr {
        1 // bid 0.
    }

    fn read_block(&mut self, addr: Addr, buf: &mut [u8]) -> Result<usize> {
        self.lld
            .read(Bid(u64::from(addr) - 1), buf)
            .map_err(store_err)
    }

    fn write_block(&mut self, addr: Addr, data: &[u8]) -> Result<()> {
        self.lld
            .write(Bid(u64::from(addr) - 1), data)
            .map_err(store_err)
    }

    fn alloc_block(&mut self, hint: &AllocHint) -> Result<Addr> {
        let size = self.block_size();
        self.alloc_common(hint, size)
    }

    fn alloc_sized(&mut self, hint: &AllocHint, size: usize) -> Result<Addr> {
        self.alloc_common(hint, size)
    }

    fn free_block(&mut self, addr: Addr, hint: &AllocHint) -> Result<()> {
        let bid = Bid(u64::from(addr) - 1);
        let lid = self.lid_of(hint.group);
        let pred_hint = hint.prev.map(|p| Bid(u64::from(p) - 1));
        if self.last_meta == Some(bid) {
            self.last_meta = None;
        }
        self.lld
            .delete_block(bid, lid, pred_hint)
            .map_err(store_err)
    }

    fn new_group(&mut self, near: Option<u64>) -> Result<u64> {
        // Interlist clustering: place the new file's list near its
        // neighbour's (e.g. the previous file in the directory).
        let pred = match near.filter(|&g| g != 0) {
            Some(g) => PredList::After(Lid(g - 1)),
            None => PredList::After(self.meta_list),
        };
        let hints = if self.compress {
            ListHints::compressed()
        } else {
            ListHints::default()
        };
        let lid = match self.lld.new_list(pred, hints) {
            Ok(lid) => lid,
            // The neighbour hint may name a list deleted since (the hinted
            // file was unlinked); clustering hints must never fail an
            // allocation.
            Err(LdError::UnknownList(_)) => self
                .lld
                .new_list(PredList::After(self.meta_list), hints)
                .map_err(store_err)?,
            Err(e) => return Err(store_err(e)),
        };
        Ok(lid.0 + 1)
    }

    fn delete_group(&mut self, group: u64) -> Result<()> {
        if group == 0 {
            return Ok(());
        }
        self.lld
            .delete_list(Lid(group - 1), None)
            .map_err(store_err)
    }

    fn sync(&mut self) -> Result<()> {
        self.lld.flush(FailureSet::PowerFailure).map_err(store_err)
    }

    fn supports_readahead(&self) -> bool {
        // "Read-ahead in MINIX is disabled, since blocks that MINIX thinks
        // are contiguous may not actually be so."
        false
    }

    fn supports_small_blocks(&self) -> bool {
        true
    }

    fn free_blocks(&self) -> u64 {
        self.lld.free_bytes() / self.block_size() as u64
    }

    fn now_us(&self) -> u64 {
        self.lld.disk().now_us()
    }

    fn advance_us(&mut self, us: u64) {
        self.lld.disk_mut().advance_us(us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdisk::MemDisk;

    fn store() -> LdStore<MemDisk> {
        LdStore::format(
            MemDisk::with_capacity(8 << 20),
            lld::LldConfig::small_for_tests(),
        )
        .unwrap()
    }

    #[test]
    fn superblock_is_block_zero() {
        let mut s = store();
        assert_eq!(s.superblock_addr(), 1);
        s.write_block(1, b"SUPER").unwrap();
        let mut buf = vec![0u8; 4096];
        assert_eq!(s.read_block(1, &mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"SUPER");
    }

    #[test]
    fn groups_map_to_lists() {
        let mut s = store();
        let g = s.new_group(None).unwrap();
        assert_ne!(g, 0);
        let a = s.alloc_block(&AllocHint::in_group(g, None)).unwrap();
        let b = s.alloc_block(&AllocHint::in_group(g, Some(a))).unwrap();
        s.write_block(a, &[1u8; 100]).unwrap();
        s.write_block(b, &[2u8; 100]).unwrap();
        // Deleting the group frees both blocks.
        s.delete_group(g).unwrap();
        assert!(s.read_block(a, &mut [0u8; 4096]).is_err());
        assert!(s.read_block(b, &mut [0u8; 4096]).is_err());
    }

    #[test]
    fn meta_allocations_chain_after_last() {
        let mut s = store();
        let a = s.alloc_block(&AllocHint::after(None)).unwrap();
        let b = s.alloc_block(&AllocHint::after(None)).unwrap();
        // Both went on the meta list, in order after the superblock.
        let blocks = s.lld_mut().list_blocks(Lid(0)).unwrap();
        assert_eq!(
            blocks,
            vec![Bid(0), Bid(u64::from(a) - 1), Bid(u64::from(b) - 1)]
        );
    }

    #[test]
    fn small_blocks_supported() {
        let mut s = store();
        assert!(s.supports_small_blocks());
        let i = s.alloc_sized(&AllocHint::after(None), 64).unwrap();
        s.write_block(i, &[9u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        assert_eq!(s.read_block(i, &mut buf).unwrap(), 64);
        assert!(s.write_block(i, &[0u8; 65]).is_err());
    }

    #[test]
    fn mount_finds_meta_list_after_recovery() {
        let mut s = store();
        let a = s.alloc_block(&AllocHint::after(None)).unwrap();
        s.write_block(a, &[7u8; 4096]).unwrap();
        s.sync().unwrap();
        let disk = s.into_disk();
        let mut s2 = LdStore::mount(disk, lld::LldConfig::small_for_tests()).unwrap();
        let mut buf = vec![0u8; 4096];
        assert_eq!(s2.read_block(a, &mut buf).unwrap(), 4096);
        assert_eq!(buf, vec![7u8; 4096]);
        // New allocations still work after the remount.
        let b = s2.alloc_block(&AllocHint::after(Some(a))).unwrap();
        assert_ne!(b, 0);
    }
}
