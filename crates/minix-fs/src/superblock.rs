//! The file-system superblock, stored in the store's well-known block.

use fsutil::wire;

use crate::config::{InodeMode, ListMode};
use crate::error::{FsError, Result};
use crate::store::Addr;

const MAGIC: u32 = 0x4D58_4C44; // "MXLD"
const VERSION: u16 = 1;

/// Decoded superblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperBlock {
    /// Total i-nodes.
    pub ninodes: u32,
    /// List allocation mode (recorded so mounts agree with format).
    pub list_mode: ListMode,
    /// I-node storage mode.
    pub inode_mode: InodeMode,
    /// Addresses of the i-node containers: packed i-node blocks
    /// ([`InodeMode::Packed`]) or i-node index blocks
    /// ([`InodeMode::SmallBlocks`]).
    pub inode_containers: Vec<Addr>,
    /// Addresses of the i-node bitmap blocks.
    pub bitmap_blocks: Vec<Addr>,
}

impl SuperBlock {
    /// Encodes into one file-system block.
    ///
    /// # Panics
    ///
    /// Panics if the superblock does not fit `block_size` — the format
    /// parameters are validated up front.
    pub fn encode(&self, block_size: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(block_size);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        let flags: u16 = (matches!(self.list_mode, ListMode::PerFile) as u16)
            | ((matches!(self.inode_mode, InodeMode::SmallBlocks) as u16) << 1);
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&self.ninodes.to_le_bytes());
        out.extend_from_slice(&(self.inode_containers.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.bitmap_blocks.len() as u32).to_le_bytes());
        for a in &self.inode_containers {
            out.extend_from_slice(&a.to_le_bytes());
        }
        for a in &self.bitmap_blocks {
            out.extend_from_slice(&a.to_le_bytes());
        }
        assert!(out.len() <= block_size, "superblock overflow");
        out.resize(block_size, 0);
        out
    }

    /// Decodes a superblock image.
    pub fn decode(data: &[u8]) -> Result<Self> {
        if data.len() < 20 {
            return Err(FsError::BadSuperblock);
        }
        let magic = wire::le_u32(data, 0);
        let version = wire::le_u16(data, 4);
        if magic != MAGIC || version != VERSION {
            return Err(FsError::BadSuperblock);
        }
        let flags = wire::le_u16(data, 6);
        let ninodes = wire::le_u32(data, 8);
        let nc = wire::le_u32(data, 12) as usize;
        let nb = wire::le_u32(data, 16) as usize;
        let need = 20 + 4 * (nc + nb);
        if data.len() < need {
            return Err(FsError::BadSuperblock);
        }
        let mut read =
            |i: usize| wire::le_u32(data, 20 + 4 * i);
        let inode_containers = (0..nc).map(&mut read).collect();
        let bitmap_blocks = (nc..nc + nb).map(&mut read).collect();
        Ok(Self {
            ninodes,
            list_mode: if flags & 1 != 0 {
                ListMode::PerFile
            } else {
                ListMode::SingleList
            },
            inode_mode: if flags & 2 != 0 {
                InodeMode::SmallBlocks
            } else {
                InodeMode::Packed
            },
            inode_containers,
            bitmap_blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let sb = SuperBlock {
            ninodes: 16384,
            list_mode: ListMode::PerFile,
            inode_mode: InodeMode::SmallBlocks,
            inode_containers: (100..120).collect(),
            bitmap_blocks: vec![50],
        };
        let bytes = sb.encode(4096);
        assert_eq!(bytes.len(), 4096);
        assert_eq!(SuperBlock::decode(&bytes).unwrap(), sb);
    }

    #[test]
    fn garbage_is_rejected() {
        assert_eq!(
            SuperBlock::decode(&[0u8; 4096]),
            Err(FsError::BadSuperblock)
        );
        assert_eq!(SuperBlock::decode(&[1, 2]), Err(FsError::BadSuperblock));
    }
}
