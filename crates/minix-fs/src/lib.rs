//! A MINIX-style file system over pluggable disk management (paper §4).
//!
//! The same file-system code — i-nodes, directories, a static write-back
//! buffer cache — runs over two [`BlockStore`] backends:
//!
//! - [`RawStore`]: classic update-in-place storage with a free-block
//!   bitmap and allocate-near-previous policy ⇒ **plain MINIX**;
//! - [`LdStore`]: the Logical Disk ⇒ **MINIX LLD**, a log-structured file
//!   system obtained without touching the file-system logic.
//!
//! That the backend swap is confined to the store trait *is* the paper's
//! headline claim ("In total less than 100 of the 7000 lines of general
//! file system code were modified", §4.1). The §4 variants are all
//! configuration here: single list vs list-per-file ([`ListMode`]), packed
//! vs 64-byte i-node blocks ([`InodeMode`]), read-ahead on/off.

mod config;
mod error;
mod inode;
mod ld_store;
mod raw_store;
mod store;
mod superblock;

pub use config::{FsConfig, FsCpuModel, InodeMode, ListMode};
pub use error::{FsError, Result};
pub use inode::{FileType, Inode, INODE_SIZE};
pub use ld_store::LdStore;
pub use raw_store::RawStore;
pub use store::{Addr, AllocHint, BlockStore};
pub use superblock::SuperBlock;

use fsutil::dirent::{self, Dirent, DIRENT_SIZE};
use fsutil::{path, wire, Bitmap, BufferCache, Evicted};
use inode::{zone_path, ZonePath, DIND, IND};

/// An i-node number (1-based; 1 is the root directory).
pub type Ino = u32;

/// The root directory's i-node number.
pub const ROOT_INO: Ino = 1;

/// Metadata returned by [`MinixFs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// File type.
    pub ftype: FileType,
    /// Size in bytes.
    pub size: u32,
    /// Modification time (simulated seconds).
    pub mtime: u32,
}

/// Operation counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsStats {
    /// Files created.
    pub creates: u64,
    /// Files removed.
    pub unlinks: u64,
    /// Bytes read through [`MinixFs::read`].
    pub bytes_read: u64,
    /// Bytes written through [`MinixFs::write`].
    pub bytes_written: u64,
    /// Blocks pulled in by read-ahead.
    pub readahead_blocks: u64,
}

/// The file system.
pub struct MinixFs<S: BlockStore> {
    store: S,
    sb: SuperBlock,
    cache: BufferCache,
    ibitmap: Bitmap,
    ibitmap_dirty: bool,
    config: FsConfig,
    /// `(ino, last file-block index)` of the last read, for read-ahead.
    last_read: Option<(Ino, u64)>,
    /// Group of the most recently created file, the interfile-clustering
    /// hint for the next one.
    last_group: u64,
    stats: FsStats,
    /// Optional event tracer; operations emit [`ld_trace::Event::FsOp`]
    /// spans when attached.
    tracer: Option<ld_trace::Tracer>,
}

impl<S: BlockStore> MinixFs<S> {
    // ----- formatting and mounting -----

    /// Creates a fresh file system on `store`.
    pub fn format(mut store: S, config: FsConfig) -> Result<Self> {
        let bs = store.block_size();
        if config.inode_mode == InodeMode::SmallBlocks && !store.supports_small_blocks() {
            return Err(FsError::Store(
                "store does not support small i-node blocks".into(),
            ));
        }
        let ninodes = config.ninodes;
        // I-node bitmap blocks.
        let bitmap_bytes = (ninodes as usize).div_ceil(8);
        let nbitmap = bitmap_bytes.div_ceil(bs).max(1);
        let mut bitmap_blocks = Vec::with_capacity(nbitmap);
        let mut prev = Some(store.superblock_addr());
        for _ in 0..nbitmap {
            let a = store.alloc_block(&AllocHint::after(prev))?;
            store.write_block(a, &vec![0u8; bs])?;
            prev = Some(a);
            bitmap_blocks.push(a);
        }
        // I-node containers.
        let ncontainers = match config.inode_mode {
            InodeMode::Packed => (ninodes as usize).div_ceil(bs / INODE_SIZE),
            InodeMode::SmallBlocks => (ninodes as usize).div_ceil(bs / 4),
        };
        let mut inode_containers = Vec::with_capacity(ncontainers);
        for _ in 0..ncontainers {
            let a = store.alloc_block(&AllocHint::after(prev))?;
            store.write_block(a, &vec![0u8; bs])?;
            prev = Some(a);
            inode_containers.push(a);
        }
        let sb = SuperBlock {
            ninodes,
            list_mode: config.list_mode,
            inode_mode: config.inode_mode,
            inode_containers,
            bitmap_blocks,
        };
        let sb_bytes = sb.encode(bs);
        store.write_block(store.superblock_addr(), &sb_bytes)?;

        let mut fs = Self {
            cache: BufferCache::new(config.cache_bytes),
            ibitmap: Bitmap::new(ninodes as usize),
            ibitmap_dirty: true,
            store,
            sb,
            config,
            last_read: None,
            last_group: 0,
            stats: FsStats::default(),
            tracer: None,
        };
        // Root directory.
        let root = fs.alloc_inode(FileType::Dir, 0)?;
        debug_assert_eq!(root, ROOT_INO);
        let mut root_inode = fs.read_inode(root)?;
        fs.dir_init(root, &mut root_inode, root)?;
        fs.write_inode(root, &root_inode)?;
        fs.sync()?;
        Ok(fs)
    }

    /// Mounts an existing file system. `config` supplies runtime knobs
    /// (cache size, CPU model, read-ahead); the structural modes come from
    /// the superblock.
    pub fn mount(mut store: S, mut config: FsConfig) -> Result<Self> {
        let bs = store.block_size();
        let mut buf = vec![0u8; bs];
        store.read_block(store.superblock_addr(), &mut buf)?;
        let sb = SuperBlock::decode(&buf)?;
        config.ninodes = sb.ninodes;
        config.list_mode = sb.list_mode;
        config.inode_mode = sb.inode_mode;
        // Reload the i-node bitmap.
        let mut bytes = Vec::with_capacity(sb.bitmap_blocks.len() * bs);
        for a in &sb.bitmap_blocks {
            let mut block = vec![0u8; bs];
            store.read_block(*a, &mut block)?;
            bytes.extend_from_slice(&block);
        }
        let ibitmap = Bitmap::from_bytes(&bytes, sb.ninodes as usize);
        Ok(Self {
            cache: BufferCache::new(config.cache_bytes),
            ibitmap,
            ibitmap_dirty: false,
            store,
            sb,
            config,
            last_read: None,
            last_group: 0,
            stats: FsStats::default(),
            tracer: None,
        })
    }

    // ----- accessors -----

    /// The underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the underlying store.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Consumes the file system, returning the store (crash simulation:
    /// all cached state is discarded).
    pub fn into_store(self) -> S {
        self.store
    }

    /// Operation counters.
    pub fn stats(&self) -> &FsStats {
        &self.stats
    }

    /// Buffer-cache (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Current simulated time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.store.now_us()
    }

    /// Attaches an event tracer: every public operation then records an
    /// [`ld_trace::Event::FsOp`] latency span. Attach the same tracer to
    /// the layers below (store / disk) to interleave their events into one
    /// timeline. Tracing never advances the simulated clock.
    pub fn set_tracer(&mut self, tracer: ld_trace::Tracer) {
        self.tracer = Some(tracer);
    }

    /// Detaches the tracer, if any.
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    /// Span start: the current simulated time, only if tracing.
    #[inline]
    fn trace_start(&self) -> Option<u64> {
        self.tracer.as_ref().map(|_| self.store.now_us())
    }

    /// Span end: records the completed operation, no-op untraced.
    #[inline]
    fn trace_op(&self, op: ld_trace::FsOpKind, start: Option<u64>) {
        if let (Some(t), Some(start_us)) = (&self.tracer, start) {
            let end = self.store.now_us();
            t.record(
                end,
                ld_trace::Event::FsOp {
                    op,
                    start_us,
                    us: end - start_us,
                },
            );
        }
    }

    fn charge_call(&mut self) {
        self.store.advance_us(self.config.cpu.per_call_us);
    }

    fn charge_blocks(&mut self, n: u64) {
        self.store.advance_us(n * self.config.cpu.per_block_us);
    }

    fn mtime_now(&self) -> u32 {
        (self.store.now_us() / 1_000_000) as u32
    }

    // ----- cache plumbing -----

    fn write_evicted(&mut self, evicted: Vec<Evicted>) -> Result<()> {
        for e in evicted {
            self.store.write_block(e.addr, &e.data)?;
        }
        Ok(())
    }

    /// Loads a block of allocated size `len` through the cache.
    fn load(&mut self, addr: Addr, len: usize) -> Result<Vec<u8>> {
        if let Some(d) = self.cache.get(addr) {
            return Ok(d.to_vec());
        }
        let mut buf = vec![0u8; len];
        // Never-written blocks legitimately read back short (LD) — the
        // zero padding stands in for them.
        let _ = self.store.read_block(addr, &mut buf)?;
        let evicted = self.cache.insert_clean(addr, buf.clone());
        self.write_evicted(evicted)?;
        Ok(buf)
    }

    /// Stores a block image through the cache (write-back).
    fn save(&mut self, addr: Addr, data: Vec<u8>) -> Result<()> {
        let evicted = self.cache.insert_dirty(addr, data);
        self.write_evicted(evicted)
    }

    // ----- i-node table -----

    fn check_ino(&self, ino: Ino) -> Result<()> {
        if ino == 0 || ino > self.sb.ninodes {
            return Err(FsError::NotFound);
        }
        Ok(())
    }

    /// Resolves where `ino` is stored: `(block addr, byte offset, load len)`.
    fn inode_slot(&mut self, ino: Ino) -> Result<(Addr, usize, usize)> {
        self.check_ino(ino)?;
        let bs = self.store.block_size();
        let idx = (ino - 1) as usize;
        match self.sb.inode_mode {
            InodeMode::Packed => {
                let ipb = bs / INODE_SIZE;
                let container = self.sb.inode_containers[idx / ipb];
                Ok((container, (idx % ipb) * INODE_SIZE, bs))
            }
            InodeMode::SmallBlocks => {
                let ppc = bs / 4;
                let container = self.sb.inode_containers[idx / ppc];
                let index_block = self.load(container, bs)?;
                let off = (idx % ppc) * 4;
                let addr = wire::le_u32(&index_block, off);
                if addr == 0 {
                    return Err(FsError::NotFound);
                }
                Ok((addr, 0, INODE_SIZE))
            }
        }
    }

    /// Reads an i-node.
    pub fn read_inode(&mut self, ino: Ino) -> Result<Inode> {
        let (addr, off, len) = self.inode_slot(ino)?;
        let block = self.load(addr, len)?;
        Inode::decode(&block[off..off + INODE_SIZE]).ok_or(FsError::NotFound)
    }

    fn write_inode(&mut self, ino: Ino, inode: &Inode) -> Result<()> {
        let (addr, off, len) = self.inode_slot(ino)?;
        let mut block = self.load(addr, len)?;
        inode.encode(&mut block[off..off + INODE_SIZE]);
        self.save(addr, block)
    }

    fn alloc_inode(&mut self, ftype: FileType, group: u32) -> Result<Ino> {
        let slot = self.ibitmap.alloc_first().ok_or(FsError::NoInodes)?;
        self.ibitmap_dirty = true;
        let ino = (slot + 1) as Ino;
        if self.sb.inode_mode == InodeMode::SmallBlocks {
            // Give the i-node its own 64-byte block, allocated in the
            // file's own group so it clusters with (and is reclaimed with)
            // the file's data, and record it in the index.
            let bs = self.store.block_size();
            let addr = self
                .store
                .alloc_sized(&AllocHint::in_group(u64::from(group), None), INODE_SIZE)?;
            let ppc = bs / 4;
            let idx = slot;
            let container = self.sb.inode_containers[idx / ppc];
            let mut index_block = self.load(container, bs)?;
            let off = (idx % ppc) * 4;
            index_block[off..off + 4].copy_from_slice(&addr.to_le_bytes());
            self.save(container, index_block)?;
        }
        let inode = Inode::new(ftype, group, self.mtime_now());
        self.write_inode(ino, &inode)?;
        Ok(ino)
    }

    /// Frees an i-node. `block_owned_by_group` marks that the i-node's
    /// small block lives in a group the caller is about to delete
    /// wholesale, so it must not be freed twice.
    fn free_inode(&mut self, ino: Ino, block_owned_by_group: bool) -> Result<()> {
        if self.sb.inode_mode == InodeMode::SmallBlocks {
            let (addr, _, _) = self.inode_slot(ino)?;
            let group = self.read_inode(ino)?.group;
            self.cache.discard(addr);
            if !block_owned_by_group {
                self.store
                    .free_block(addr, &AllocHint::in_group(u64::from(group), None))?;
            }
            // Clear the index entry.
            let bs = self.store.block_size();
            let ppc = bs / 4;
            let idx = (ino - 1) as usize;
            let container = self.sb.inode_containers[idx / ppc];
            let mut index_block = self.load(container, bs)?;
            let off = (idx % ppc) * 4;
            index_block[off..off + 4].fill(0);
            self.save(container, index_block)?;
        } else {
            // Zero the slot: an all-zero type marks a free i-node.
            let (addr, off, len) = self.inode_slot(ino)?;
            let mut block = self.load(addr, len)?;
            block[off..off + INODE_SIZE].fill(0);
            self.save(addr, block)?;
        }
        self.ibitmap.clear((ino - 1) as usize);
        self.ibitmap_dirty = true;
        Ok(())
    }

    // ----- zone mapping -----

    /// Returns the store address of file block `idx`, or `None` for a hole.
    fn zone_at(&mut self, inode: &Inode, idx: u64) -> Result<Option<Addr>> {
        let bs = self.store.block_size();
        let ppb = bs / 4;
        match zone_path(idx, ppb)? {
            ZonePath::Direct(i) => Ok(nonzero(inode.zones[i])),
            ZonePath::Indirect(i) => {
                let Some(ind) = nonzero(inode.zones[IND]) else {
                    return Ok(None);
                };
                let block = self.load(ind, bs)?;
                Ok(nonzero(read_u32(&block, i)))
            }
            ZonePath::Double(i, j) => {
                let Some(dind) = nonzero(inode.zones[DIND]) else {
                    return Ok(None);
                };
                let block = self.load(dind, bs)?;
                let Some(ind) = nonzero(read_u32(&block, i)) else {
                    return Ok(None);
                };
                let block = self.load(ind, bs)?;
                Ok(nonzero(read_u32(&block, j)))
            }
        }
    }

    /// Returns the store address of file block `idx`, allocating the block
    /// (and any needed indirect blocks) in the file's group.
    fn zone_alloc(&mut self, inode: &mut Inode, idx: u64) -> Result<Addr> {
        let bs = self.store.block_size();
        let ppb = bs / 4;
        let group = u64::from(inode.group);
        let prev = if idx > 0 {
            self.zone_at(inode, idx - 1)?
        } else {
            None
        };
        let hint = AllocHint::in_group(group, prev);
        match zone_path(idx, ppb)? {
            ZonePath::Direct(i) => {
                if let Some(a) = nonzero(inode.zones[i]) {
                    return Ok(a);
                }
                let a = self.store.alloc_block(&hint)?;
                inode.zones[i] = a;
                Ok(a)
            }
            ZonePath::Indirect(i) => {
                let ind = match nonzero(inode.zones[IND]) {
                    Some(a) => a,
                    None => {
                        let a = self.store.alloc_block(&hint)?;
                        self.save(a, vec![0u8; bs])?;
                        inode.zones[IND] = a;
                        a
                    }
                };
                self.alloc_in_table(ind, i, &hint)
            }
            ZonePath::Double(i, j) => {
                let dind = match nonzero(inode.zones[DIND]) {
                    Some(a) => a,
                    None => {
                        let a = self.store.alloc_block(&hint)?;
                        self.save(a, vec![0u8; bs])?;
                        inode.zones[DIND] = a;
                        a
                    }
                };
                let block = self.load(dind, bs)?;
                let ind = match nonzero(read_u32(&block, i)) {
                    Some(a) => a,
                    None => {
                        let a = self.store.alloc_block(&hint)?;
                        self.save(a, vec![0u8; bs])?;
                        let mut block = self.load(dind, bs)?;
                        write_u32(&mut block, i, a);
                        self.save(dind, block)?;
                        a
                    }
                };
                self.alloc_in_table(ind, j, &hint)
            }
        }
    }

    /// Allocates (if needed) entry `i` of indirect block `table`.
    fn alloc_in_table(&mut self, table: Addr, i: usize, hint: &AllocHint) -> Result<Addr> {
        let bs = self.store.block_size();
        let block = self.load(table, bs)?;
        if let Some(a) = nonzero(read_u32(&block, i)) {
            return Ok(a);
        }
        let a = self.store.alloc_block(hint)?;
        let mut block = self.load(table, bs)?;
        write_u32(&mut block, i, a);
        self.save(table, block)?;
        Ok(a)
    }

    /// Collects every allocated block of a file, in allocation order
    /// (data blocks interleaved with the indirect blocks that precede
    /// their first use).
    fn collect_blocks(&mut self, inode: &Inode) -> Result<Vec<Addr>> {
        let bs = self.store.block_size();
        let ppb = bs / 4;
        let mut out = Vec::new();
        let nblocks = (u64::from(inode.size)).div_ceil(bs as u64);
        let mut seen_ind = false;
        let mut seen_dind = false;
        let mut seen_sub: Option<usize> = None;
        for idx in 0..nblocks {
            match zone_path(idx, ppb)? {
                ZonePath::Direct(_) => {}
                ZonePath::Indirect(_) => {
                    if !seen_ind {
                        seen_ind = true;
                        if let Some(a) = nonzero(inode.zones[IND]) {
                            out.push(a);
                        }
                    }
                }
                ZonePath::Double(i, _) => {
                    if !seen_dind {
                        seen_dind = true;
                        if let Some(a) = nonzero(inode.zones[DIND]) {
                            out.push(a);
                        }
                    }
                    if seen_sub != Some(i) {
                        seen_sub = Some(i);
                        if let Some(dind) = nonzero(inode.zones[DIND]) {
                            let block = self.load(dind, bs)?;
                            if let Some(a) = nonzero(read_u32(&block, i)) {
                                out.push(a);
                            }
                        }
                    }
                }
            }
            if let Some(a) = self.zone_at(inode, idx)? {
                out.push(a);
            }
        }
        Ok(out)
    }

    /// Frees every block of a file. When the file has its own group the
    /// whole group is deleted in one call (LD `DeleteList`); otherwise
    /// blocks are freed individually, newest first, with predecessor
    /// hints.
    fn free_content(&mut self, inode: &Inode) -> Result<()> {
        let addrs = self.collect_blocks(inode)?;
        for a in &addrs {
            self.cache.discard(*a);
        }
        if inode.group != 0 {
            self.store.delete_group(u64::from(inode.group))?;
            return Ok(());
        }
        for (i, a) in addrs.iter().enumerate().rev() {
            let prev = if i > 0 { Some(addrs[i - 1]) } else { None };
            self.store.free_block(*a, &AllocHint::in_group(0, prev))?;
        }
        Ok(())
    }

    // ----- directories -----

    /// Writes the initial "." and ".." entries of a new directory.
    fn dir_init(&mut self, ino: Ino, inode: &mut Inode, parent: Ino) -> Result<()> {
        let bs = self.store.block_size();
        let a = self.zone_alloc(inode, 0)?;
        let mut block = vec![0u8; bs];
        dirent::encode(ino, ".", &mut block[0..DIRENT_SIZE]);
        dirent::encode(parent, "..", &mut block[DIRENT_SIZE..2 * DIRENT_SIZE]);
        self.save(a, block)?;
        inode.size = bs as u32;
        inode.mtime = self.mtime_now();
        Ok(())
    }

    /// Finds `name` in directory `dir`.
    fn dir_find(&mut self, dir: &Inode, name: &str) -> Result<Option<Ino>> {
        let bs = self.store.block_size();
        let nblocks = u64::from(dir.size).div_ceil(bs as u64);
        for idx in 0..nblocks {
            let Some(a) = self.zone_at(dir, idx)? else {
                continue;
            };
            let block = self.load(a, bs)?;
            if let Some((_, ino)) = dirent::find_in_block(&block, name) {
                return Ok(Some(ino));
            }
        }
        Ok(None)
    }

    /// Adds an entry, reusing a free slot or extending the directory.
    fn dir_add(&mut self, dir_ino: Ino, dir: &mut Inode, name: &str, ino: Ino) -> Result<()> {
        let bs = self.store.block_size();
        let nblocks = u64::from(dir.size).div_ceil(bs as u64);
        for idx in 0..nblocks {
            let Some(a) = self.zone_at(dir, idx)? else {
                continue;
            };
            let block = self.load(a, bs)?;
            if let Some(slot) = dirent::free_slot(&block) {
                let mut block = block;
                dirent::encode(
                    ino,
                    name,
                    &mut block[slot * DIRENT_SIZE..(slot + 1) * DIRENT_SIZE],
                );
                self.save(a, block)?;
                dir.mtime = self.mtime_now();
                self.write_inode(dir_ino, dir)?;
                return Ok(());
            }
        }
        // Extend by one block.
        let a = self.zone_alloc(dir, nblocks)?;
        let mut block = vec![0u8; bs];
        dirent::encode(ino, name, &mut block[0..DIRENT_SIZE]);
        self.save(a, block)?;
        dir.size += bs as u32;
        dir.mtime = self.mtime_now();
        self.write_inode(dir_ino, dir)?;
        Ok(())
    }

    /// Removes an entry; errors with [`FsError::NotFound`] if absent.
    fn dir_remove(&mut self, dir_ino: Ino, dir: &mut Inode, name: &str) -> Result<Ino> {
        let bs = self.store.block_size();
        let nblocks = u64::from(dir.size).div_ceil(bs as u64);
        for idx in 0..nblocks {
            let Some(a) = self.zone_at(dir, idx)? else {
                continue;
            };
            let block = self.load(a, bs)?;
            if let Some((slot, ino)) = dirent::find_in_block(&block, name) {
                let mut block = block;
                dirent::clear(&mut block[slot * DIRENT_SIZE..(slot + 1) * DIRENT_SIZE]);
                self.save(a, block)?;
                dir.mtime = self.mtime_now();
                self.write_inode(dir_ino, dir)?;
                return Ok(ino);
            }
        }
        Err(FsError::NotFound)
    }

    /// Resolves a path to its i-node.
    pub fn lookup(&mut self, path_str: &str) -> Result<Ino> {
        let t0 = self.trace_start();
        let r = self.lookup_inner(path_str);
        self.trace_op(ld_trace::FsOpKind::Lookup, t0);
        r
    }

    fn lookup_inner(&mut self, path_str: &str) -> Result<Ino> {
        let comps = path::split(path_str)?;
        let mut cur = ROOT_INO;
        for comp in comps {
            let inode = self.read_inode(cur)?;
            if inode.ftype != FileType::Dir {
                return Err(FsError::NotDir);
            }
            cur = self.dir_find(&inode, comp)?.ok_or(FsError::NotFound)?;
        }
        Ok(cur)
    }

    fn lookup_parent(&mut self, path_str: &str) -> Result<(Ino, String)> {
        let (parent_comps, name) = path::split_parent(path_str)?;
        let mut cur = ROOT_INO;
        for comp in parent_comps {
            let inode = self.read_inode(cur)?;
            if inode.ftype != FileType::Dir {
                return Err(FsError::NotDir);
            }
            cur = self.dir_find(&inode, comp)?.ok_or(FsError::NotFound)?;
        }
        Ok((cur, name.to_string()))
    }

    // ----- public operations -----

    /// Creates an empty regular file.
    pub fn create(&mut self, path_str: &str) -> Result<Ino> {
        let t0 = self.trace_start();
        let r = self.create_inner(path_str);
        self.trace_op(ld_trace::FsOpKind::Create, t0);
        r
    }

    fn create_inner(&mut self, path_str: &str) -> Result<Ino> {
        self.charge_call();
        let (parent, name) = self.lookup_parent(path_str)?;
        let mut dir = self.read_inode(parent)?;
        if dir.ftype != FileType::Dir {
            return Err(FsError::NotDir);
        }
        if self.dir_find(&dir, &name)?.is_some() {
            return Err(FsError::Exists);
        }
        let group = if self.sb.list_mode == ListMode::PerFile {
            // Cluster the new file's list near the previous file's.
            let near = (self.last_group != 0).then_some(self.last_group);
            let g = self.store.new_group(near)?;
            self.last_group = g;
            g as u32
        } else {
            0
        };
        let ino = self.alloc_inode(FileType::Regular, group)?;
        self.dir_add(parent, &mut dir, &name, ino)?;
        self.stats.creates += 1;
        Ok(ino)
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path_str: &str) -> Result<Ino> {
        let t0 = self.trace_start();
        let r = self.mkdir_inner(path_str);
        self.trace_op(ld_trace::FsOpKind::Mkdir, t0);
        r
    }

    fn mkdir_inner(&mut self, path_str: &str) -> Result<Ino> {
        self.charge_call();
        let (parent, name) = self.lookup_parent(path_str)?;
        let mut dir = self.read_inode(parent)?;
        if dir.ftype != FileType::Dir {
            return Err(FsError::NotDir);
        }
        if self.dir_find(&dir, &name)?.is_some() {
            return Err(FsError::Exists);
        }
        let ino = self.alloc_inode(FileType::Dir, 0)?;
        let mut inode = self.read_inode(ino)?;
        self.dir_init(ino, &mut inode, parent)?;
        self.write_inode(ino, &inode)?;
        self.dir_add(parent, &mut dir, &name, ino)?;
        Ok(ino)
    }

    /// Writes `data` at byte `offset` of the file, extending it as needed.
    pub fn write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> Result<()> {
        let t0 = self.trace_start();
        let r = self.write_inner(ino, offset, data);
        self.trace_op(ld_trace::FsOpKind::Write, t0);
        r
    }

    fn write_inner(&mut self, ino: Ino, offset: u64, data: &[u8]) -> Result<()> {
        self.charge_call();
        let mut inode = self.read_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FsError::IsDir);
        }
        let bs = self.store.block_size() as u64;
        let mut pos = offset;
        let mut rest = data;
        while !rest.is_empty() {
            let idx = pos / bs;
            let inner = (pos % bs) as usize;
            let n = rest.len().min(bs as usize - inner);
            let a = self.zone_alloc(&mut inode, idx)?;
            if inner == 0 && n == bs as usize {
                self.save(a, rest[..n].to_vec())?;
            } else {
                let mut block = self.load(a, bs as usize)?;
                block[inner..inner + n].copy_from_slice(&rest[..n]);
                self.save(a, block)?;
            }
            pos += n as u64;
            rest = &rest[n..];
        }
        inode.size = inode
            .size
            .max(u32::try_from(offset + data.len() as u64).map_err(|_| FsError::NoSpace)?);
        inode.mtime = self.mtime_now();
        self.write_inode(ino, &inode)?;
        self.stats.bytes_written += data.len() as u64;
        self.charge_blocks(data.len().div_ceil(bs as usize) as u64);
        Ok(())
    }

    /// Reads up to `buf.len()` bytes at `offset`; returns the byte count.
    pub fn read(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let t0 = self.trace_start();
        let r = self.read_inner(ino, offset, buf);
        self.trace_op(ld_trace::FsOpKind::Read, t0);
        r
    }

    fn read_inner(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> Result<usize> {
        self.charge_call();
        let inode = self.read_inode(ino)?;
        let bs = self.store.block_size() as u64;
        let size = u64::from(inode.size);
        if offset >= size {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(size - offset) as usize;
        let mut done = 0usize;
        let mut pos = offset;
        let mut last_idx = offset / bs;
        while done < want {
            let idx = pos / bs;
            let inner = (pos % bs) as usize;
            let n = (want - done).min(bs as usize - inner);
            match self.zone_at(&inode, idx)? {
                Some(a) => {
                    let block = self.load(a, bs as usize)?;
                    buf[done..done + n].copy_from_slice(&block[inner..inner + n]);
                }
                None => buf[done..done + n].fill(0),
            }
            last_idx = idx;
            pos += n as u64;
            done += n;
        }
        // Read-ahead (enabled only when the store benefits from it, §4.1).
        // The prefetch zones are fetched in one batched store request so
        // contiguous blocks coalesce, as MINIX's read-ahead does.
        let ra = self.config.readahead_blocks;
        if ra > 0 && self.store.supports_readahead() {
            let nblocks = size.div_ceil(bs);
            let mut prefetch = Vec::new();
            for k in last_idx + 1..=(last_idx + u64::from(ra)).min(nblocks.saturating_sub(1)) {
                if let Some(a) = self.zone_at(&inode, k)? {
                    if !self.cache.contains(a) {
                        prefetch.push(a);
                    }
                }
            }
            if !prefetch.is_empty() {
                let blocks = self.store.read_blocks(&prefetch)?;
                for (a, data) in prefetch.iter().zip(blocks) {
                    let evicted = self.cache.insert_clean(*a, data);
                    self.write_evicted(evicted)?;
                    self.stats.readahead_blocks += 1;
                }
            }
        }
        self.last_read = Some((ino, last_idx));
        self.stats.bytes_read += done as u64;
        self.charge_blocks(done.div_ceil(bs as usize) as u64);
        Ok(done)
    }

    /// Truncates a file to zero length, freeing its blocks individually.
    pub fn truncate(&mut self, ino: Ino) -> Result<()> {
        let t0 = self.trace_start();
        let r = self.truncate_inner(ino);
        self.trace_op(ld_trace::FsOpKind::Truncate, t0);
        r
    }

    fn truncate_inner(&mut self, ino: Ino) -> Result<()> {
        self.charge_call();
        let mut inode = self.read_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FsError::IsDir);
        }
        // Individual frees even for grouped files: the group must survive
        // for future writes.
        let addrs = self.collect_blocks(&inode)?;
        for a in &addrs {
            self.cache.discard(*a);
        }
        for (i, a) in addrs.iter().enumerate().rev() {
            let prev = if i > 0 { Some(addrs[i - 1]) } else { None };
            self.store
                .free_block(*a, &AllocHint::in_group(u64::from(inode.group), prev))?;
        }
        inode.zones = [0; inode::ZONES];
        inode.size = 0;
        inode.mtime = self.mtime_now();
        self.write_inode(ino, &inode)
    }

    /// Removes a regular file.
    pub fn unlink(&mut self, path_str: &str) -> Result<()> {
        let t0 = self.trace_start();
        let r = self.unlink_inner(path_str);
        self.trace_op(ld_trace::FsOpKind::Unlink, t0);
        r
    }

    fn unlink_inner(&mut self, path_str: &str) -> Result<()> {
        self.charge_call();
        let (parent, name) = self.lookup_parent(path_str)?;
        let mut dir = self.read_inode(parent)?;
        let ino = self.dir_find(&dir, &name)?.ok_or(FsError::NotFound)?;
        let inode = self.read_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FsError::IsDir);
        }
        self.dir_remove(parent, &mut dir, &name)?;
        let grouped = self.sb.inode_mode == InodeMode::SmallBlocks && inode.group != 0;
        self.free_inode(ino, grouped)?;
        self.free_content(&inode)?;
        self.stats.unlinks += 1;
        Ok(())
    }

    /// Renames a file or directory. The destination must not exist.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        self.charge_call();
        let (to_parent, to_name) = self.lookup_parent(to)?;
        let to_dir = self.read_inode(to_parent)?;
        if to_dir.ftype != FileType::Dir {
            return Err(FsError::NotDir);
        }
        if self.dir_find(&to_dir, &to_name)?.is_some() {
            return Err(FsError::Exists);
        }
        let (from_parent, from_name) = self.lookup_parent(from)?;
        let mut from_dir = self.read_inode(from_parent)?;
        let ino = self
            .dir_find(&from_dir, &from_name)?
            .ok_or(FsError::NotFound)?;
        // A directory must not be moved under itself.
        if self.read_inode(ino)?.ftype == FileType::Dir {
            let mut cur = to_parent;
            loop {
                if cur == ino {
                    return Err(FsError::Path(fsutil::PathError::BadComponent(
                        from_name.clone(),
                    )));
                }
                if cur == ROOT_INO {
                    break;
                }
                let parent_inode = self.read_inode(cur)?;
                cur = self
                    .dir_find(&parent_inode, "..")?
                    .ok_or(FsError::NotFound)?;
            }
        }
        self.dir_remove(from_parent, &mut from_dir, &from_name)?;
        let mut to_dir = self.read_inode(to_parent)?;
        self.dir_add(to_parent, &mut to_dir, &to_name, ino)?;
        // Fix ".." when a directory changed parents.
        if from_parent != to_parent && self.read_inode(ino)?.ftype == FileType::Dir {
            let mut child = self.read_inode(ino)?;
            self.dir_remove(ino, &mut child, "..")?;
            let mut child = self.read_inode(ino)?;
            self.dir_add(ino, &mut child, "..", to_parent)?;
        }
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path_str: &str) -> Result<()> {
        self.charge_call();
        let (parent, name) = self.lookup_parent(path_str)?;
        let mut dir = self.read_inode(parent)?;
        let ino = self.dir_find(&dir, &name)?.ok_or(FsError::NotFound)?;
        let inode = self.read_inode(ino)?;
        if inode.ftype != FileType::Dir {
            return Err(FsError::NotDir);
        }
        if self
            .readdir_ino(ino)?
            .iter()
            .any(|d| d.name != "." && d.name != "..")
        {
            return Err(FsError::NotEmpty);
        }
        self.dir_remove(parent, &mut dir, &name)?;
        self.free_content(&inode)?;
        self.free_inode(ino, false)?;
        Ok(())
    }

    /// Lists a directory by path.
    pub fn readdir(&mut self, path_str: &str) -> Result<Vec<Dirent>> {
        self.charge_call();
        let ino = self.lookup(path_str)?;
        self.readdir_ino(ino)
    }

    fn readdir_ino(&mut self, ino: Ino) -> Result<Vec<Dirent>> {
        let inode = self.read_inode(ino)?;
        if inode.ftype != FileType::Dir {
            return Err(FsError::NotDir);
        }
        let bs = self.store.block_size();
        let nblocks = u64::from(inode.size).div_ceil(bs as u64);
        let mut out = Vec::new();
        for idx in 0..nblocks {
            let Some(a) = self.zone_at(&inode, idx)? else {
                continue;
            };
            let block = self.load(a, bs)?;
            out.extend(dirent::iter_block(&block).map(|(_, d)| d));
        }
        Ok(out)
    }

    /// Stats a file or directory.
    pub fn stat(&mut self, ino: Ino) -> Result<Stat> {
        let inode = self.read_inode(ino)?;
        Ok(Stat {
            ftype: inode.ftype,
            size: inode.size,
            mtime: inode.mtime,
        })
    }

    /// Writes back all dirty state (cache, i-node bitmap) and syncs the
    /// store — MINIX's `sync`, which over LD "tells LLD to flush the
    /// segment that is currently being filled" (§4.1).
    pub fn sync(&mut self) -> Result<()> {
        let t0 = self.trace_start();
        let r = self.sync_inner();
        self.trace_op(ld_trace::FsOpKind::Sync, t0);
        r
    }

    fn sync_inner(&mut self) -> Result<()> {
        self.charge_call();
        if self.ibitmap_dirty {
            let bs = self.store.block_size();
            let bytes = self.ibitmap.as_bytes().to_vec();
            for (i, addr) in self.sb.bitmap_blocks.clone().into_iter().enumerate() {
                let start = i * bs;
                if start >= bytes.len() {
                    break;
                }
                let end = (start + bs).min(bytes.len());
                let mut block = bytes[start..end].to_vec();
                block.resize(bs, 0);
                self.save(addr, block)?;
            }
            self.ibitmap_dirty = false;
        }
        let dirty = self.cache.take_dirty();
        for e in dirty {
            self.store.write_block(e.addr, &e.data)?;
        }
        self.store.sync()
    }

    /// Syncs, then empties the buffer cache — used between benchmark
    /// phases ("we flushed the file cache before each phase", §4.2).
    pub fn drop_caches(&mut self) -> Result<()> {
        self.sync()?;
        let leftover = self.cache.drop_all();
        debug_assert!(leftover.is_empty(), "sync left dirty blocks behind");
        self.last_read = None;
        Ok(())
    }
}

fn nonzero(a: Addr) -> Option<Addr> {
    (a != 0).then_some(a)
}

fn read_u32(block: &[u8], i: usize) -> u32 {
    wire::le_u32(block, i * 4)
}

fn write_u32(block: &mut [u8], i: usize, v: u32) {
    block[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests;
