//! MINIX-style i-nodes: 64 bytes, 7 direct zones, one indirect, one
//! double-indirect (paper §4.1/§5.1).
//!
//! Zone pointers hold store addresses with `0` meaning "no block". The
//! `group` field is the §4.1 extension: "MINIX stores the list identifier
//! in the i-node, so that it can remember the list identifier for each
//! file" (0 = the shared group).

use fsutil::wire;

use crate::error::{FsError, Result};
use crate::store::Addr;

/// Bytes per encoded i-node (also the small-block size class, §4.1:
/// "MINIX allocates a 64-byte block for each i-node").
pub const INODE_SIZE: usize = 64;
/// Direct zones per i-node.
pub const DIRECT_ZONES: usize = 7;
/// Index of the indirect zone pointer.
pub const IND: usize = 7;
/// Index of the double-indirect zone pointer.
pub const DIND: usize = 8;
/// Total zone pointers.
pub const ZONES: usize = 9;

/// File type stored in an i-node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Dir,
}

/// An in-memory i-node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inode {
    /// File type.
    pub ftype: FileType,
    /// Link count (1 in this prototype; no hard links).
    pub nlinks: u16,
    /// File size in bytes.
    pub size: u32,
    /// Modification time (seconds of simulated time).
    pub mtime: u32,
    /// Allocation group (LD list id + 1; 0 = shared group).
    pub group: u32,
    /// Zone pointers; 0 = hole/unallocated.
    pub zones: [Addr; ZONES],
}

impl Inode {
    /// A fresh i-node of the given type.
    pub fn new(ftype: FileType, group: u32, mtime: u32) -> Self {
        Self {
            ftype,
            nlinks: 1,
            size: 0,
            mtime,
            group,
            zones: [0; ZONES],
        }
    }

    /// Encodes into a 64-byte slot. A zeroed slot decodes as "free".
    pub fn encode(&self, slot: &mut [u8]) {
        assert_eq!(slot.len(), INODE_SIZE);
        slot.fill(0);
        let t: u16 = match self.ftype {
            FileType::Regular => 1,
            FileType::Dir => 2,
        };
        slot[0..2].copy_from_slice(&t.to_le_bytes());
        slot[2..4].copy_from_slice(&self.nlinks.to_le_bytes());
        slot[4..8].copy_from_slice(&self.size.to_le_bytes());
        slot[8..12].copy_from_slice(&self.mtime.to_le_bytes());
        slot[12..16].copy_from_slice(&self.group.to_le_bytes());
        for (i, z) in self.zones.iter().enumerate() {
            slot[16 + i * 4..20 + i * 4].copy_from_slice(&z.to_le_bytes());
        }
    }

    /// Decodes a 64-byte slot; `None` when the slot is free.
    pub fn decode(slot: &[u8]) -> Option<Self> {
        assert_eq!(slot.len(), INODE_SIZE);
        let t = wire::le_u16(slot, 0);
        let ftype = match t {
            0 => return None,
            1 => FileType::Regular,
            2 => FileType::Dir,
            _ => return None,
        };
        let mut zones = [0; ZONES];
        for (i, z) in zones.iter_mut().enumerate() {
            *z = wire::le_u32(slot, 16 + i * 4);
        }
        Some(Self {
            ftype,
            nlinks: wire::le_u16(slot, 2),
            size: wire::le_u32(slot, 4),
            mtime: wire::le_u32(slot, 8),
            group: wire::le_u32(slot, 12),
            zones,
        })
    }
}

/// Where a file block's zone pointer lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZonePath {
    /// `zones[i]` directly.
    Direct(usize),
    /// Entry `i` of the indirect block.
    Indirect(usize),
    /// Entry `j` of indirect block `i` under the double-indirect block.
    Double(usize, usize),
}

/// Maps a file block index to its zone location, for a block size with
/// `ppb` pointers per indirect block.
pub fn zone_path(block_idx: u64, ppb: usize) -> Result<ZonePath> {
    let d = DIRECT_ZONES as u64;
    let ppb64 = ppb as u64;
    if block_idx < d {
        return Ok(ZonePath::Direct(block_idx as usize));
    }
    let idx = block_idx - d;
    if idx < ppb64 {
        return Ok(ZonePath::Indirect(idx as usize));
    }
    let idx = idx - ppb64;
    if idx < ppb64 * ppb64 {
        return Ok(ZonePath::Double(
            (idx / ppb64) as usize,
            (idx % ppb64) as usize,
        ));
    }
    Err(FsError::NoSpace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut ino = Inode::new(FileType::Dir, 5, 1234);
        ino.size = 8192;
        ino.zones[0] = 17;
        ino.zones[IND] = 99;
        let mut slot = [0u8; INODE_SIZE];
        ino.encode(&mut slot);
        assert_eq!(Inode::decode(&slot), Some(ino));
    }

    #[test]
    fn zeroed_slot_is_free() {
        assert_eq!(Inode::decode(&[0u8; INODE_SIZE]), None);
    }

    #[test]
    fn zone_path_partitions_the_index_space() {
        let ppb = 1024;
        assert_eq!(zone_path(0, ppb).unwrap(), ZonePath::Direct(0));
        assert_eq!(zone_path(6, ppb).unwrap(), ZonePath::Direct(6));
        assert_eq!(zone_path(7, ppb).unwrap(), ZonePath::Indirect(0));
        assert_eq!(zone_path(7 + 1023, ppb).unwrap(), ZonePath::Indirect(1023));
        assert_eq!(zone_path(7 + 1024, ppb).unwrap(), ZonePath::Double(0, 0));
        assert_eq!(
            zone_path(7 + 1024 + 1024 * 5 + 3, ppb).unwrap(),
            ZonePath::Double(5, 3)
        );
        let max = 7 + 1024 + 1024 * 1024;
        assert!(zone_path(max as u64, ppb).is_err());
    }

    #[test]
    fn max_file_size_covers_the_benchmarks() {
        // 80 MB (Table 5) needs 20480 4-KB blocks — comfortably inside the
        // direct + indirect range.
        assert!(matches!(
            zone_path(20_480, 1024),
            Ok(ZonePath::Double(_, _))
        ));
    }
}
