//! File-system tests, run over both stores wherever the behaviour should
//! be identical — the backend swap is the paper's whole point.

use simdisk::{MemDisk, SimDisk};

use crate::{
    AllocHint, BlockStore, FileType, FsConfig, FsError, InodeMode, LdStore, ListMode, MinixFs,
    RawStore, ROOT_INO,
};

fn raw_fs() -> MinixFs<RawStore<MemDisk>> {
    let store = RawStore::format(MemDisk::with_capacity(16 << 20)).unwrap();
    MinixFs::format(store, FsConfig::small_for_tests()).unwrap()
}

fn ld_fs() -> MinixFs<LdStore<MemDisk>> {
    let store = LdStore::format(
        MemDisk::with_capacity(16 << 20),
        lld::LldConfig::small_for_tests(),
    )
    .unwrap();
    MinixFs::format(store, FsConfig::small_for_tests()).unwrap()
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(13) ^ seed)
        .collect()
}

/// Runs a scenario against both backends.
fn on_both(f: impl Fn(&mut dyn FsOps)) {
    let mut raw = raw_fs();
    f(&mut raw);
    let mut ld = ld_fs();
    f(&mut ld);
}

/// Object-safe subset for running the same scenario over both stores.
trait FsOps {
    fn create(&mut self, path: &str) -> crate::Result<u32>;
    fn rename(&mut self, from: &str, to: &str) -> crate::Result<()>;
    fn mkdir(&mut self, path: &str) -> crate::Result<u32>;
    fn write(&mut self, ino: u32, offset: u64, data: &[u8]) -> crate::Result<()>;
    fn read(&mut self, ino: u32, offset: u64, buf: &mut [u8]) -> crate::Result<usize>;
    fn unlink(&mut self, path: &str) -> crate::Result<()>;
    fn rmdir(&mut self, path: &str) -> crate::Result<()>;
    fn lookup(&mut self, path: &str) -> crate::Result<u32>;
    fn readdir(&mut self, path: &str) -> crate::Result<Vec<fsutil::dirent::Dirent>>;
    fn stat(&mut self, ino: u32) -> crate::Result<crate::Stat>;
    fn truncate(&mut self, ino: u32) -> crate::Result<()>;
    fn sync(&mut self) -> crate::Result<()>;
    fn drop_caches(&mut self) -> crate::Result<()>;
}

impl<S: BlockStore> FsOps for MinixFs<S> {
    fn create(&mut self, path: &str) -> crate::Result<u32> {
        MinixFs::create(self, path)
    }
    fn rename(&mut self, from: &str, to: &str) -> crate::Result<()> {
        MinixFs::rename(self, from, to)
    }
    fn mkdir(&mut self, path: &str) -> crate::Result<u32> {
        MinixFs::mkdir(self, path)
    }
    fn write(&mut self, ino: u32, offset: u64, data: &[u8]) -> crate::Result<()> {
        MinixFs::write(self, ino, offset, data)
    }
    fn read(&mut self, ino: u32, offset: u64, buf: &mut [u8]) -> crate::Result<usize> {
        MinixFs::read(self, ino, offset, buf)
    }
    fn unlink(&mut self, path: &str) -> crate::Result<()> {
        MinixFs::unlink(self, path)
    }
    fn rmdir(&mut self, path: &str) -> crate::Result<()> {
        MinixFs::rmdir(self, path)
    }
    fn lookup(&mut self, path: &str) -> crate::Result<u32> {
        MinixFs::lookup(self, path)
    }
    fn readdir(&mut self, path: &str) -> crate::Result<Vec<fsutil::dirent::Dirent>> {
        MinixFs::readdir(self, path)
    }
    fn stat(&mut self, ino: u32) -> crate::Result<crate::Stat> {
        MinixFs::stat(self, ino)
    }
    fn truncate(&mut self, ino: u32) -> crate::Result<()> {
        MinixFs::truncate(self, ino)
    }
    fn sync(&mut self) -> crate::Result<()> {
        MinixFs::sync(self)
    }
    fn drop_caches(&mut self) -> crate::Result<()> {
        MinixFs::drop_caches(self)
    }
}

#[test]
fn create_write_read_roundtrip() {
    on_both(|fs| {
        let ino = fs.create("/hello.txt").unwrap();
        let data = pattern(10_000, 3);
        fs.write(ino, 0, &data).unwrap();
        let mut buf = vec![0u8; 10_000];
        assert_eq!(fs.read(ino, 0, &mut buf).unwrap(), 10_000);
        assert_eq!(buf, data);
        // Partial read at an unaligned offset.
        let mut buf = vec![0u8; 100];
        assert_eq!(fs.read(ino, 4090, &mut buf).unwrap(), 100);
        assert_eq!(buf, data[4090..4190]);
        // Read past EOF.
        assert_eq!(fs.read(ino, 10_000, &mut buf).unwrap(), 0);
        assert_eq!(fs.read(ino, 9_990, &mut buf).unwrap(), 10);
    });
}

#[test]
fn directories_nest_and_list() {
    on_both(|fs| {
        fs.mkdir("/a").unwrap();
        fs.mkdir("/a/b").unwrap();
        let f = fs.create("/a/b/file").unwrap();
        assert_eq!(fs.lookup("/a/b/file").unwrap(), f);
        let names: Vec<String> = fs
            .readdir("/a/b")
            .unwrap()
            .into_iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(names, vec![".", "..", "file"]);
        assert_eq!(fs.lookup("/a/missing"), Err(FsError::NotFound));
        assert_eq!(fs.create("/a/b/file"), Err(FsError::Exists));
        assert_eq!(fs.lookup("/a/b/file/x"), Err(FsError::NotDir));
    });
}

#[test]
fn unlink_frees_and_name_disappears() {
    on_both(|fs| {
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 0, &pattern(50_000, 1)).unwrap();
        fs.unlink("/f").unwrap();
        assert_eq!(fs.lookup("/f"), Err(FsError::NotFound));
        // The i-node number is recycled.
        let ino2 = fs.create("/g").unwrap();
        assert_eq!(ino2, ino);
        let mut buf = vec![0u8; 16];
        assert_eq!(fs.read(ino2, 0, &mut buf).unwrap(), 0, "new file is empty");
    });
}

#[test]
fn rmdir_requires_empty() {
    on_both(|fs| {
        fs.mkdir("/d").unwrap();
        fs.create("/d/x").unwrap();
        assert_eq!(fs.rmdir("/d"), Err(FsError::NotEmpty));
        fs.unlink("/d/x").unwrap();
        fs.rmdir("/d").unwrap();
        assert_eq!(fs.lookup("/d"), Err(FsError::NotFound));
        assert_eq!(fs.unlink("/nope"), Err(FsError::NotFound));
    });
}

#[test]
fn overwrite_in_place_preserves_rest() {
    on_both(|fs| {
        let ino = fs.create("/f").unwrap();
        let data = pattern(20_000, 7);
        fs.write(ino, 0, &data).unwrap();
        fs.write(ino, 5_000, &[0xAAu8; 100]).unwrap();
        let mut buf = vec![0u8; 20_000];
        fs.read(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..5_000], &data[..5_000]);
        assert!(buf[5_000..5_100].iter().all(|&b| b == 0xAA));
        assert_eq!(&buf[5_100..], &data[5_100..]);
        assert_eq!(fs.stat(ino).unwrap().size, 20_000);
    });
}

#[test]
fn large_file_through_indirect_blocks() {
    on_both(|fs| {
        let ino = fs.create("/big").unwrap();
        // 7 direct blocks = 28 KB; write 300 KB to exercise the indirect
        // block (and stay clear of double-indirect for speed).
        let chunk = pattern(8192, 9);
        for i in 0..38u64 {
            fs.write(ino, i * 8192, &chunk).unwrap();
        }
        fs.drop_caches().unwrap();
        let mut buf = vec![0u8; 8192];
        for i in [0u64, 3, 17, 37] {
            assert_eq!(fs.read(ino, i * 8192, &mut buf).unwrap(), 8192);
            assert_eq!(buf, chunk, "chunk {i}");
        }
        fs.truncate(ino).unwrap();
        assert_eq!(fs.stat(ino).unwrap().size, 0);
        // Space actually came back: write again.
        fs.write(ino, 0, &chunk).unwrap();
    });
}

#[test]
fn double_indirect_blocks_work() {
    // 7 + 1024 blocks = ~4.1 MB before the double-indirect range.
    let store = RawStore::format(MemDisk::with_capacity(64 << 20)).unwrap();
    let mut fs = MinixFs::format(store, FsConfig::small_for_tests()).unwrap();
    let ino = fs.create("/huge").unwrap();
    let bs = 4096u64;
    let boundary = (7 + 1024) * bs;
    let data = pattern(4096, 4);
    fs.write(ino, boundary + 5 * bs, &data).unwrap();
    fs.drop_caches().unwrap();
    let mut buf = vec![0u8; 4096];
    assert_eq!(fs.read(ino, boundary + 5 * bs, &mut buf).unwrap(), 4096);
    assert_eq!(buf, data);
    // The hole before reads as zeroes.
    fs.read(ino, boundary, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0));
}

#[test]
fn sync_persists_across_remount_raw() {
    let store = RawStore::format(MemDisk::with_capacity(16 << 20)).unwrap();
    let mut fs = MinixFs::format(store, FsConfig::small_for_tests()).unwrap();
    let ino = fs.create("/persist").unwrap();
    let data = pattern(12_345, 5);
    fs.write(ino, 0, &data).unwrap();
    fs.mkdir("/dir").unwrap();
    fs.sync().unwrap();

    let disk = fs.into_store().into_disk();
    let store = RawStore::mount(disk).unwrap();
    let mut fs = MinixFs::mount(store, FsConfig::small_for_tests()).unwrap();
    let ino2 = fs.lookup("/persist").unwrap();
    assert_eq!(ino2, ino);
    let mut buf = vec![0u8; 12_345];
    assert_eq!(fs.read(ino2, 0, &mut buf).unwrap(), 12_345);
    assert_eq!(buf, data);
    assert!(fs.lookup("/dir").is_ok());
    // The i-node bitmap survived: allocating gives a fresh i-node.
    let f2 = fs.create("/another").unwrap();
    assert_ne!(f2, ino);
}

#[test]
fn sync_persists_across_crash_ld() {
    // The headline property: MINIX over LLD is crash-consistent up to the
    // last sync, with zero fsck-style repair.
    let store = LdStore::format(
        MemDisk::with_capacity(16 << 20),
        lld::LldConfig::small_for_tests(),
    )
    .unwrap();
    let mut fs = MinixFs::format(store, FsConfig::small_for_tests()).unwrap();
    let ino = fs.create("/persist").unwrap();
    let data = pattern(30_000, 6);
    fs.write(ino, 0, &data).unwrap();
    fs.sync().unwrap();
    // Post-sync activity that must vanish.
    let doomed = fs.create("/doomed").unwrap();
    fs.write(doomed, 0, &pattern(5_000, 7)).unwrap();

    let disk = fs.into_store().into_disk(); // Crash: drop all memory state.
    let store = LdStore::mount(disk, lld::LldConfig::small_for_tests()).unwrap();
    let mut fs = MinixFs::mount(store, FsConfig::small_for_tests()).unwrap();
    let ino2 = fs.lookup("/persist").unwrap();
    assert_eq!(ino2, ino);
    let mut buf = vec![0u8; 30_000];
    assert_eq!(fs.read(ino2, 0, &mut buf).unwrap(), 30_000);
    assert_eq!(buf, data);
    assert_eq!(fs.lookup("/doomed"), Err(FsError::NotFound));
}

#[test]
fn many_files_in_one_directory() {
    // A miniature of the paper's small-file benchmark shape.
    on_both(|fs| {
        let data = pattern(1024, 2);
        for i in 0..200 {
            let ino = fs.create(&format!("/f{i:04}")).unwrap();
            fs.write(ino, 0, &data).unwrap();
        }
        fs.sync().unwrap();
        fs.drop_caches().unwrap();
        for i in 0..200 {
            let ino = fs.lookup(&format!("/f{i:04}")).unwrap();
            let mut buf = vec![0u8; 1024];
            assert_eq!(fs.read(ino, 0, &mut buf).unwrap(), 1024);
            assert_eq!(buf, data, "file {i}");
        }
        for i in 0..200 {
            fs.unlink(&format!("/f{i:04}")).unwrap();
        }
        assert_eq!(fs.readdir("/").unwrap().len(), 2, "only . and .. remain");
    });
}

#[test]
fn per_file_lists_cluster_on_ld() {
    let store = LdStore::format(
        MemDisk::with_capacity(16 << 20),
        lld::LldConfig::small_for_tests(),
    )
    .unwrap();
    let config = FsConfig {
        list_mode: ListMode::PerFile,
        ..FsConfig::small_for_tests()
    };
    let mut fs = MinixFs::format(store, config).unwrap();
    let a = fs.create("/a").unwrap();
    let b = fs.create("/b").unwrap();
    fs.write(a, 0, &pattern(8192, 1)).unwrap();
    fs.write(b, 0, &pattern(8192, 2)).unwrap();
    // Each file's group is a distinct LD list.
    let ga = fs.read_inode(a).unwrap().group;
    let gb = fs.read_inode(b).unwrap().group;
    assert_ne!(ga, 0);
    assert_ne!(gb, 0);
    assert_ne!(ga, gb);
    // Unlink deletes the whole list in one call.
    fs.unlink("/a").unwrap();
    let mut buf = vec![0u8; 8192];
    let ino_b = fs.lookup("/b").unwrap();
    assert_eq!(fs.read(ino_b, 0, &mut buf).unwrap(), 8192);
}

#[test]
fn single_list_mode_uses_shared_group() {
    let store = LdStore::format(
        MemDisk::with_capacity(16 << 20),
        lld::LldConfig::small_for_tests(),
    )
    .unwrap();
    let config = FsConfig {
        list_mode: ListMode::SingleList,
        ..FsConfig::small_for_tests()
    };
    let mut fs = MinixFs::format(store, config).unwrap();
    let a = fs.create("/a").unwrap();
    fs.write(a, 0, &pattern(4096, 1)).unwrap();
    assert_eq!(fs.read_inode(a).unwrap().group, 0);
    fs.unlink("/a").unwrap();
}

#[test]
fn small_inode_blocks_on_ld() {
    let store = LdStore::format(
        MemDisk::with_capacity(16 << 20),
        lld::LldConfig::small_for_tests(),
    )
    .unwrap();
    let config = FsConfig {
        inode_mode: InodeMode::SmallBlocks,
        ..FsConfig::small_for_tests()
    };
    let mut fs = MinixFs::format(store, config).unwrap();
    let ino = fs.create("/x").unwrap();
    fs.write(ino, 0, &pattern(5000, 8)).unwrap();
    fs.sync().unwrap();
    // Remount and verify i-nodes survive in their small blocks.
    let disk = fs.into_store().into_disk();
    let store = LdStore::mount(disk, lld::LldConfig::small_for_tests()).unwrap();
    let mut fs = MinixFs::mount(store, FsConfig::small_for_tests()).unwrap();
    let ino = fs.lookup("/x").unwrap();
    assert_eq!(fs.stat(ino).unwrap().size, 5000);
    fs.unlink("/x").unwrap();
    assert_eq!(fs.lookup("/x"), Err(FsError::NotFound));

    // The raw store rejects this mode.
    let raw = RawStore::format(MemDisk::with_capacity(8 << 20)).unwrap();
    let config = FsConfig {
        inode_mode: InodeMode::SmallBlocks,
        ..FsConfig::small_for_tests()
    };
    assert!(MinixFs::format(raw, config).is_err());
}

#[test]
fn readahead_only_on_raw_store() {
    let store = RawStore::format(MemDisk::with_capacity(16 << 20)).unwrap();
    let mut fs = MinixFs::format(store, FsConfig::small_for_tests()).unwrap();
    let ino = fs.create("/seq").unwrap();
    fs.write(ino, 0, &pattern(64 << 10, 1)).unwrap();
    fs.drop_caches().unwrap();
    let mut buf = vec![0u8; 4096];
    fs.read(ino, 0, &mut buf).unwrap();
    assert!(fs.stats().readahead_blocks > 0, "raw store prefetches");

    let store = LdStore::format(
        MemDisk::with_capacity(16 << 20),
        lld::LldConfig::small_for_tests(),
    )
    .unwrap();
    let mut fs = MinixFs::format(store, FsConfig::small_for_tests()).unwrap();
    let ino = fs.create("/seq").unwrap();
    fs.write(ino, 0, &pattern(64 << 10, 1)).unwrap();
    fs.drop_caches().unwrap();
    fs.read(ino, 0, &mut buf).unwrap();
    assert_eq!(
        fs.stats().readahead_blocks,
        0,
        "read-ahead is disabled over LD (§4.1)"
    );
}

#[test]
fn out_of_inodes_is_reported() {
    let store = RawStore::format(MemDisk::with_capacity(16 << 20)).unwrap();
    let config = FsConfig {
        ninodes: 4,
        ..FsConfig::small_for_tests()
    };
    let mut fs = MinixFs::format(store, config).unwrap();
    // Root consumed one; three left.
    fs.create("/a").unwrap();
    fs.create("/b").unwrap();
    fs.create("/c").unwrap();
    assert_eq!(fs.create("/d"), Err(FsError::NoInodes));
    fs.unlink("/b").unwrap();
    assert!(fs.create("/d").is_ok());
}

#[test]
fn cache_eviction_pressure_is_correct() {
    // A cache far smaller than the working set still yields correct data.
    let store = RawStore::format(MemDisk::with_capacity(16 << 20)).unwrap();
    let config = FsConfig {
        cache_bytes: 16 << 10, // Four blocks.
        ..FsConfig::small_for_tests()
    };
    let mut fs = MinixFs::format(store, config).unwrap();
    let ino = fs.create("/f").unwrap();
    let data = pattern(128 << 10, 3);
    fs.write(ino, 0, &data).unwrap();
    let mut buf = vec![0u8; 128 << 10];
    fs.read(ino, 0, &mut buf).unwrap();
    assert_eq!(buf, data);
}

#[test]
fn simdisk_backend_smoke() {
    // Everything also runs over the timed simulator (the benchmarks do).
    let store = RawStore::format(SimDisk::hp_c3010_with_capacity(16 << 20)).unwrap();
    let mut fs = MinixFs::format(store, FsConfig::small_for_tests()).unwrap();
    let t0 = fs.now_us();
    let ino = fs.create("/timed").unwrap();
    fs.write(ino, 0, &pattern(32 << 10, 1)).unwrap();
    fs.sync().unwrap();
    assert!(fs.now_us() > t0, "simulated time advanced");
}

#[test]
fn root_is_a_directory() {
    on_both(|fs| {
        let st = fs.stat(ROOT_INO).unwrap();
        assert_eq!(st.ftype, FileType::Dir);
        assert_eq!(fs.lookup("/").unwrap(), ROOT_INO);
    });
}

#[test]
fn store_hint_plumbing_allocates_contiguously_on_raw() {
    // White-box: sequential writes through the FS allocate consecutive
    // blocks on the raw store (MINIX's locality policy), which is what
    // makes its sequential reads competitive in Table 5.
    let store = RawStore::format(MemDisk::with_capacity(16 << 20)).unwrap();
    let mut fs = MinixFs::format(store, FsConfig::small_for_tests()).unwrap();
    let ino = fs.create("/f").unwrap();
    fs.write(ino, 0, &pattern(28 << 10, 1)).unwrap(); // 7 direct blocks.
    let inode = fs.read_inode(ino).unwrap();
    let zones: Vec<_> = inode.zones[..7].to_vec();
    for w in zones.windows(2) {
        assert_eq!(w[1], w[0] + 1, "zones not contiguous: {zones:?}");
    }
    let _ = AllocHint::default(); // Silence unused-import lint in some cfgs.
}

#[test]
fn rename_moves_files_and_directories() {
    on_both(|fs| {
        fs.mkdir("/a").unwrap();
        fs.mkdir("/b").unwrap();
        let ino = fs.create("/a/file").unwrap();
        fs.write(ino, 0, &pattern(5000, 1)).unwrap();

        fs.rename("/a/file", "/b/renamed").unwrap();
        assert_eq!(fs.lookup("/a/file"), Err(FsError::NotFound));
        let moved = fs.lookup("/b/renamed").unwrap();
        assert_eq!(moved, ino, "rename keeps the i-node");
        let mut buf = vec![0u8; 5000];
        assert_eq!(fs.read(moved, 0, &mut buf).unwrap(), 5000);
        assert_eq!(buf, pattern(5000, 1));

        // Destination collision is refused.
        fs.create("/b/taken").unwrap();
        assert_eq!(fs.rename("/b/renamed", "/b/taken"), Err(FsError::Exists));

        // Moving a directory updates "..".
        fs.mkdir("/a/sub").unwrap();
        fs.create("/a/sub/x").unwrap();
        fs.rename("/a/sub", "/b/sub").unwrap();
        assert!(fs.lookup("/b/sub/x").is_ok());
        let dotdot: Vec<_> = fs
            .readdir("/b/sub")
            .unwrap()
            .into_iter()
            .filter(|d| d.name == "..")
            .collect();
        assert_eq!(dotdot.len(), 1);

        // A directory cannot be moved into itself.
        assert!(fs.rename("/b", "/b/sub/loop").is_err());
    });
}
