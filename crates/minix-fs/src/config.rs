//! File-system configuration knobs, matching the variants evaluated in
//! paper §4.

/// How file blocks map to LD lists (ignored over the raw store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ListMode {
    /// One shared list for all files — the initial MINIX LLD configuration
    /// (§4.1: "initially MINIX LLD used a single list for all files").
    SingleList,
    /// One list per file, its id stored in the i-node — the later, better
    /// clustering configuration.
    #[default]
    PerFile,
}

/// How i-nodes are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InodeMode {
    /// I-nodes packed 64-per-block into shared i-node blocks.
    #[default]
    Packed,
    /// Each i-node in its own 64-byte block (§4.1: "one in which MINIX
    /// allocates a 64-byte block for each i-node"); requires a store with
    /// small-block support.
    SmallBlocks,
}

/// Modeled file-system CPU cost, charged to the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsCpuModel {
    /// Per public operation (path handling, table lookups).
    pub per_call_us: u64,
    /// Per block moved between the cache and the caller.
    pub per_block_us: u64,
}

impl Default for FsCpuModel {
    fn default() -> Self {
        Self {
            per_call_us: 100,
            per_block_us: 60,
        }
    }
}

impl FsCpuModel {
    /// A model with no CPU cost at all.
    pub fn free() -> Self {
        Self {
            per_call_us: 0,
            per_block_us: 0,
        }
    }
}

/// Configuration for [`crate::MinixFs`].
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// Total i-nodes created at format time.
    pub ninodes: u32,
    /// Buffer-cache capacity in bytes (paper: a static 6,144 KB cache).
    pub cache_bytes: usize,
    /// List allocation mode.
    pub list_mode: ListMode,
    /// I-node storage mode.
    pub inode_mode: InodeMode,
    /// Blocks to read ahead on sequential access. Effective only when the
    /// store supports read-ahead (it is disabled over LD, §4.1).
    pub readahead_blocks: u32,
    /// Modeled CPU costs.
    pub cpu: FsCpuModel,
}

impl Default for FsConfig {
    fn default() -> Self {
        Self {
            ninodes: 16384,
            cache_bytes: 6144 << 10,
            list_mode: ListMode::default(),
            inode_mode: InodeMode::default(),
            readahead_blocks: 2,
            cpu: FsCpuModel::default(),
        }
    }
}

impl FsConfig {
    /// A small, CPU-free configuration for unit tests.
    pub fn small_for_tests() -> Self {
        Self {
            ninodes: 512,
            cache_bytes: 256 << 10,
            cpu: FsCpuModel::free(),
            ..Self::default()
        }
    }
}
