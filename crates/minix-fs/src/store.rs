//! The storage backend abstraction the MINIX file system runs on.
//!
//! The paper's point is that the *same* file-system code runs over two very
//! different disk managers: classic update-in-place storage with a free-
//! block bitmap (plain MINIX) and the Logical Disk (MINIX LLD). This trait
//! captures exactly the operations §4.1 says MINIX needed from its storage
//! layer after the LD port:
//!
//! - allocate/free a block, with a locality hint ("allocates it close to
//!   the previous allocated block for that file" / `NewBlock(Lid,
//!   PredBid)`),
//! - optional allocation *groups* for per-file clustering (LD lists; the
//!   list id is what MINIX LLD "stores in the i-node"),
//! - optional small block sizes (the 64-byte i-node variant),
//! - `sync` (MINIX's sync maps to LD's `Flush`),
//! - a read-ahead capability flag (read-ahead is disabled over LD, §4.1).

use crate::error::Result;

/// A store address. `0` is never a valid data address (it is either the
/// raw store's superblock or unused), so zone pointers use `0` as "none".
pub type Addr = u32;

/// Locality hint for allocation and the symmetric hint for freeing.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllocHint {
    /// Allocation group (`0` = the shared/meta group). For the LD store a
    /// group is a block list; `group - 1` is the list id.
    pub group: u64,
    /// The file's previous block, for physical clustering (`NewBlock`'s
    /// `PredBid`, or MINIX's allocate-near-previous policy).
    pub prev: Option<Addr>,
}

impl AllocHint {
    /// Hint within the shared group, after `prev`.
    pub fn after(prev: Option<Addr>) -> Self {
        Self { group: 0, prev }
    }

    /// Hint within a specific group.
    pub fn in_group(group: u64, prev: Option<Addr>) -> Self {
        Self { group, prev }
    }
}

/// Storage backend for [`crate::MinixFs`].
pub trait BlockStore {
    /// Full-size data block in bytes (4096 throughout the evaluation).
    fn block_size(&self) -> usize;

    /// Address of the well-known superblock block (always allocated).
    fn superblock_addr(&self) -> Addr;

    /// Reads a block; returns the number of valid bytes (full blocks
    /// return `block_size`, small blocks their stored length).
    fn read_block(&mut self, addr: Addr, buf: &mut [u8]) -> Result<usize>;

    /// Writes a block (data may be shorter than the block's size class).
    fn write_block(&mut self, addr: Addr, data: &[u8]) -> Result<()>;

    /// Reads several full blocks, coalescing physically adjacent ones into
    /// single device requests where the store can (read-ahead batches).
    /// The default reads one block at a time.
    fn read_blocks(&mut self, addrs: &[Addr]) -> Result<Vec<Vec<u8>>> {
        let bs = self.block_size();
        let mut out = Vec::with_capacity(addrs.len());
        for &a in addrs {
            let mut buf = vec![0u8; bs];
            self.read_block(a, &mut buf)?;
            out.push(buf);
        }
        Ok(out)
    }

    /// Allocates a full-size block.
    fn alloc_block(&mut self, hint: &AllocHint) -> Result<Addr>;

    /// Allocates a block of `size` bytes (the multiple-block-size
    /// abstraction; the raw store only supports full blocks).
    fn alloc_sized(&mut self, hint: &AllocHint, size: usize) -> Result<Addr>;

    /// Frees a block. `hint.group` must be the group it was allocated in;
    /// `hint.prev` helps the LD store unlink in O(1).
    fn free_block(&mut self, addr: Addr, hint: &AllocHint) -> Result<()>;

    /// Creates an allocation group near `near` (LD: `NewList` after that
    /// list). Stores without groups return `0`.
    fn new_group(&mut self, near: Option<u64>) -> Result<u64>;

    /// Deletes a group **and every block still allocated in it** (LD:
    /// `DeleteList`). No-op for group `0`.
    fn delete_group(&mut self, group: u64) -> Result<()>;

    /// Makes all completed writes durable (LD: `Flush`).
    fn sync(&mut self) -> Result<()>;

    /// Whether read-ahead pays off on this store (true for update-in-place
    /// stores; false over LD, where logical adjacency says nothing about
    /// physical adjacency — §4.1 disables it).
    fn supports_readahead(&self) -> bool;

    /// Whether `alloc_sized` supports sizes below `block_size`.
    fn supports_small_blocks(&self) -> bool;

    /// Approximate free capacity in full blocks.
    fn free_blocks(&self) -> u64;

    /// Simulated clock (microseconds).
    fn now_us(&self) -> u64;

    /// Advances the simulated clock (modeled file-system CPU time).
    fn advance_us(&mut self, us: u64);
}
