//! `cargo xtask` — workspace automation, dependency-free by design.
//!
//! ```text
//! cargo run -p xtask -- lint    # invariant lints over the workspace source
//! cargo run -p xtask -- ci      # build + test + clippy + lint + ldck smoke
//! ```
//!
//! The `lint` subcommand enforces three workspace invariants that rustc and
//! clippy do not express:
//!
//! 1. **No panicking error handling in library code.** `.unwrap()`,
//!    `.expect(...)`, `panic!`, `todo!` and `unimplemented!` are forbidden in
//!    the non-test code of the core crates. Fallible paths must use typed
//!    errors; a genuine can't-happen invariant may be waived line-by-line
//!    with a `// PANIC-OK: <why it cannot fire>` comment, which keeps every
//!    remaining panic site documented and greppable. (`assert!` is allowed:
//!    precondition checks on documented panicking APIs are contracts, not
//!    error handling.)
//! 2. **No wall-clock time or OS randomness in simulation-facing crates.**
//!    The whole point of `simdisk` is a deterministic simulated clock;
//!    `std::time::Instant`, `SystemTime` or entropy-seeded RNGs anywhere in
//!    the simulation stack would silently break reproducibility. (The
//!    vendored `criterion` stand-in is the one sanctioned `Instant` user —
//!    it measures host time for benchmarks, outside the simulation.)
//! 3. **Layering.** File-system crates sit on the `BlockDev` abstraction;
//!    they must not reach into `simdisk` internals (stores, geometry,
//!    timing), otherwise the FS-on-LD-on-simdisk stack stops being
//!    swappable.
//! 4. **No console output from storage library code.** `println!` /
//!    `eprintln!` in the storage crates corrupts experiment output and is
//!    invisible in tests; diagnostics belong in typed errors, stats
//!    counters, or `ld-trace` events. CLI entry points (`main.rs`,
//!    `bin/`) are exempt; a deliberate library print may be waived with
//!    `// PRINT-OK: <why>`.
//! 5. **Deterministic dispatch order in the I/O scheduler.** The command
//!    queue promises bit-reproducible schedules (ties break by submission
//!    order); iterating a `HashMap`/`HashSet` there would let hasher state
//!    pick the dispatch order. The scheduler module must use only ordered
//!    containers (`Vec`, `VecDeque`, `BTreeMap`).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Crates whose library code must be panic-free.
const PANIC_FREE_CRATES: &[&str] = &[
    "simdisk",
    "core",
    "ldcomp",
    "lld",
    "fsutil",
    "minix-fs",
    "ffs",
    "sprite-lfs",
    "loge",
    "ldck",
    "trace",
];

/// Crates that must be deterministic (everything simulation-facing —
/// the panic-free set plus the bench driver, which feeds workloads *into*
/// the simulation and must replay identically across runs).
const DETERMINISTIC_CRATES: &[&str] = &[
    "simdisk",
    "core",
    "ldcomp",
    "lld",
    "fsutil",
    "minix-fs",
    "ffs",
    "sprite-lfs",
    "loge",
    "ldck",
    "trace",
    "bench",
];

/// Storage library crates whose non-CLI code must not print to the
/// console (experiment output and trace streams must stay clean).
const PRINT_FREE_CRATES: &[&str] = &[
    "simdisk",
    "core",
    "ldcomp",
    "lld",
    "fsutil",
    "minix-fs",
    "ffs",
    "sprite-lfs",
    "loge",
    "trace",
];

/// File-system crates bound to the `BlockDev` abstraction.
const FS_CRATES: &[&str] = &["minix-fs", "ffs", "sprite-lfs"];

/// `simdisk` symbols file systems may reference. Everything else —
/// `SparseStore`, `SimDisk` geometry/timing/stats, NVRAM internals — is
/// disk-management detail the LD interface exists to hide.
const SIMDISK_ALLOWED: &[&str] = &["BlockDev", "DiskError", "SECTOR_SIZE"];

/// Files implementing request scheduling, where iteration order decides
/// the dispatch order and must therefore never come from a hasher.
const DISPATCH_ORDER_FILES: &[&str] = &["crates/simdisk/src/queue.rs"];

/// Per-line waiver marker for documented invariants.
const WAIVER: &str = "PANIC-OK:";

/// Per-line waiver marker for deliberate library prints.
const PRINT_WAIVER: &str = "PRINT-OK:";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some("ci") => ci(),
        cmd => {
            eprintln!("usage: cargo run -p xtask -- <lint|ci>");
            if let Some(c) = cmd {
                eprintln!("xtask: unknown subcommand {c:?}");
            }
            ExitCode::from(2)
        }
    }
}

/// Repository root, derived from this crate's manifest directory.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

// ---------------------------------------------------------------------------
// lint
// ---------------------------------------------------------------------------

struct Lint {
    findings: Vec<String>,
    files_scanned: usize,
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut lint = Lint {
        findings: Vec::new(),
        files_scanned: 0,
    };

    let mut crates: Vec<&str> = PANIC_FREE_CRATES.to_vec();
    for krate in DETERMINISTIC_CRATES.iter().chain(PRINT_FREE_CRATES) {
        if !crates.contains(krate) {
            crates.push(krate);
        }
    }
    for krate in crates {
        for file in library_sources(&root.join("crates").join(krate).join("src")) {
            check_file(&root, &file, &mut lint, krate);
        }
    }

    if lint.findings.is_empty() {
        println!(
            "xtask lint: {} files clean (no stray panics, wall clocks, prints, or layering leaks)",
            lint.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        for f in &lint.findings {
            println!("{f}");
        }
        println!("xtask lint: {} finding(s)", lint.findings.len());
        ExitCode::FAILURE
    }
}

/// All non-test `.rs` files under `dir`: skips `tests.rs`, any `tests/` or
/// `benches/` directory component.
fn library_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "tests" && name != "benches" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") && name != "tests.rs" {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn check_file(root: &Path, path: &Path, lint: &mut Lint, krate: &str) {
    let Ok(source) = std::fs::read_to_string(path) else {
        return;
    };
    lint.files_scanned += 1;
    let rel = path.strip_prefix(root).unwrap_or(path).display().to_string();

    let panic_tokens = [".unwrap()", ".expect(", "panic!(", "todo!(", "unimplemented!("];
    let time_tokens = ["std::time::Instant", "Instant::now", "SystemTime", "UNIX_EPOCH"];
    let entropy_tokens = ["thread_rng", "from_entropy", "getrandom", "OsRng", "RandomState"];
    let print_tokens = ["println!", "eprintln!", "print!(", "eprint!("];
    let panic_free = PANIC_FREE_CRATES.contains(&krate);
    let deterministic = DETERMINISTIC_CRATES.contains(&krate);
    let fs_crate = FS_CRATES.contains(&krate);
    let dispatch_order = DISPATCH_ORDER_FILES.contains(&rel.as_str());
    // CLI entry points may print — that is their job.
    let cli_entry = path.file_name().is_some_and(|n| n == "main.rs")
        || path.components().any(|c| c.as_os_str() == "bin");
    let print_free = PRINT_FREE_CRATES.contains(&krate) && !cli_entry;

    let mut in_test_region = false;
    let mut pending_test_attr = false;
    let mut depth_at_region_start = 0i32;
    let mut depth = 0i32;

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        // Strip line comments so tokens in docs and comments don't count —
        // except the waiver marker, which lives *in* the comment.
        let waived = raw.contains(WAIVER);
        let code = raw.split("//").next().unwrap_or("");

        // Track `#[cfg(test)]`-gated regions by brace depth: everything
        // inside an item annotated as test-only is exempt.
        if !in_test_region && (raw.contains("#[cfg(test)]") || raw.contains("#[cfg(any(test")) {
            pending_test_attr = true;
        }
        let opens = code.matches('{').count() as i32;
        let closes = code.matches('}').count() as i32;
        if pending_test_attr {
            if opens > 0 {
                in_test_region = true;
                pending_test_attr = false;
                depth_at_region_start = depth;
            } else if code.contains(';') {
                // `#[cfg(test)] mod tests;` — out-of-line, nothing to skip.
                pending_test_attr = false;
            }
        }
        depth += opens - closes;
        if in_test_region {
            if depth <= depth_at_region_start {
                in_test_region = false;
            }
            continue;
        }

        let report = |lint: &mut Lint, what: &str, hint: &str| {
            let mut msg = String::new();
            let _ = write!(msg, "{rel}:{lineno}: {what}");
            if !hint.is_empty() {
                let _ = write!(msg, " ({hint})");
            }
            lint.findings.push(msg);
        };

        if panic_free && !waived {
            for tok in panic_tokens {
                if code.contains(tok) {
                    report(
                        lint,
                        &format!("`{tok}` in library code"),
                        "return a typed error, or document the invariant with `// PANIC-OK: ...`",
                    );
                }
            }
        }

        if deterministic && !waived {
            for tok in time_tokens {
                if code.contains(tok) {
                    report(
                        lint,
                        &format!("wall-clock `{tok}` in simulation-facing code"),
                        "use the simulated clock (BlockDev::now_us)",
                    );
                }
            }
            for tok in entropy_tokens {
                if code.contains(tok) {
                    report(
                        lint,
                        &format!("OS entropy `{tok}` in simulation-facing code"),
                        "seed deterministically (SeedableRng::seed_from_u64)",
                    );
                }
            }
        }

        if print_free && !raw.contains(PRINT_WAIVER) {
            for tok in print_tokens {
                if code.contains(tok) {
                    report(
                        lint,
                        &format!("`{tok}` in storage library code"),
                        "use typed errors, stats counters, or ld-trace events; \
                         waive a deliberate print with `// PRINT-OK: ...`",
                    );
                }
            }
        }

        if dispatch_order && !waived {
            for tok in ["HashMap", "HashSet", "hash_map", "hash_set"] {
                if code.contains(tok) {
                    report(
                        lint,
                        &format!("unordered container `{tok}` in the I/O scheduler"),
                        "hasher state would decide dispatch order; \
                         use Vec/VecDeque/BTreeMap so schedules replay bit-identically",
                    );
                }
            }
        }

        if fs_crate {
            for hit in find_simdisk_refs(code) {
                if !SIMDISK_ALLOWED.contains(&hit.as_str()) {
                    report(
                        lint,
                        &format!("file system reaches simdisk internal `simdisk::{hit}`"),
                        "file systems see the disk only through BlockDev",
                    );
                }
            }
        }
    }
}

/// Extracts the first path component after each `simdisk::` in a line.
fn find_simdisk_refs(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, _) in code.match_indices("simdisk::") {
        let rest = &code[i + "simdisk::".len()..];
        let ident: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        // `use simdisk::{A, B}` — expand the brace group instead.
        if ident.is_empty() && rest.starts_with('{') {
            for part in rest[1..rest.find('}').unwrap_or(rest.len())].split(',') {
                let sym: String = part
                    .trim()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !sym.is_empty() {
                    out.push(sym);
                }
            }
        } else if !ident.is_empty() {
            out.push(ident);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// ci
// ---------------------------------------------------------------------------

/// The full local CI pipeline, mirroring `.github/workflows/ci.yml`.
fn ci() -> ExitCode {
    let steps: &[(&str, &[&str])] = &[
        ("build", &["build", "--release"]),
        ("test", &["test", "-q", "--workspace"]),
        // The media-fault suites re-run in release: the proptest matrices
        // explore far more cases per second there, and release is what
        // `repro` ships.
        (
            "fault suite (lld)",
            &[
                "test", "-q", "--release", "-p", "lld", "--test", "faults", "--test",
                "recovery_idempotent",
            ],
        ),
        (
            "fault suite (fs)",
            &[
                "test", "-q", "--release", "--test", "fault_matrix", "--test",
                "differential_fs",
            ],
        ),
        // Queueing: the depth-1 differential + ordering proptests, then
        // the E17 smoke sweep (schedulers x depths over the cleaner).
        (
            "queue differential",
            &["test", "-q", "--release", "--test", "queue_differential"],
        ),
        (
            "E17 smoke",
            &[
                "run", "-q", "--release", "-p", "ld-bench", "--bin", "repro", "--", "--quick",
                "queueing",
            ],
        ),
        ("clippy", &["clippy", "--workspace", "--", "-D", "warnings"]),
        ("lint", &["run", "-q", "-p", "xtask", "--", "lint"]),
        ("ldck smoke", &["run", "-q", "-p", "ldck", "--", "--selftest"]),
        (
            "ldtrace smoke",
            &["run", "-q", "-p", "ld-trace", "--bin", "ldtrace", "--", "--selftest"],
        ),
    ];
    for (name, args) in steps {
        println!("xtask ci: {name} (cargo {})", args.join(" "));
        let status = Command::new("cargo")
            .args(*args)
            .current_dir(repo_root())
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("xtask ci: step `{name}` failed ({s})");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask ci: cannot run cargo: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("xtask ci: all steps passed");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simdisk_refs_are_extracted_from_paths_and_use_groups() {
        assert_eq!(find_simdisk_refs("let x: simdisk::SimDisk = y;"), ["SimDisk"]);
        assert_eq!(
            find_simdisk_refs("use simdisk::{BlockDev, SECTOR_SIZE};"),
            ["BlockDev", "SECTOR_SIZE"]
        );
        assert!(find_simdisk_refs("nothing here").is_empty());
    }
}
