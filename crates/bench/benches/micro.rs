//! Micro-benchmarks of the core components (Criterion).
//!
//! These measure the *host-side* cost of the hot paths (codec, map, cache,
//! simulator), complementing the `repro` binary, which measures *simulated
//! disk time*.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use ld_core::{ListHints, LogicalDisk, Pred, PredList};
use simdisk::{BlockDev, MemDisk, SimDisk};

fn compressible(len: usize) -> Vec<u8> {
    ld_bench::workload::compressible_data(len, 0xBE)
}

fn bench_compression(c: &mut Criterion) {
    let mut g = c.benchmark_group("ldcomp");
    let data = compressible(4096);
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("compress_4k", |b| b.iter(|| ldcomp::compress(&data)));
    let packed = ldcomp::compress(&data);
    g.bench_function("decompress_4k", |b| {
        b.iter(|| ldcomp::decompress(&packed).expect("valid"))
    });
    g.finish();
}

fn bench_simdisk(c: &mut Criterion) {
    let mut g = c.benchmark_group("simdisk");
    g.bench_function("write_4k_random", |b| {
        let mut disk = SimDisk::hp_c3010_with_capacity(64 << 20);
        let block = vec![7u8; 4096];
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 2654435761 + 17) % (disk.total_sectors() / 8 - 1);
            disk.write_sectors(i * 8, &block).expect("write");
        })
    });
    g.bench_function("write_512k_segment", |b| {
        let mut disk = SimDisk::hp_c3010_with_capacity(256 << 20);
        let seg = vec![7u8; 512 << 10];
        let mut s = 0u64;
        b.iter(|| {
            disk.write_sectors(s, &seg).expect("write");
            s = (s + 1024) % (disk.total_sectors() - 1024);
        })
    });
    g.finish();
}

fn bench_lld(c: &mut Criterion) {
    let mut g = c.benchmark_group("lld");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("write_block_4k", |b| {
        let disk = MemDisk::with_capacity(512 << 20);
        let mut ld = lld::Lld::format(disk, lld::LldConfig::small_for_tests()).expect("format");
        let lid = ld
            .new_list(PredList::Start, ListHints::default())
            .expect("list");
        // A pool of blocks overwritten round-robin so the disk never fills.
        let mut bids = Vec::new();
        let mut pred = Pred::Start;
        for _ in 0..256 {
            let bid = ld.new_block(lid, pred).expect("alloc");
            bids.push(bid);
            pred = Pred::After(bid);
        }
        let data = compressible(4096);
        let mut i = 0usize;
        b.iter(|| {
            ld.write(bids[i % bids.len()], &data).expect("write");
            i += 1;
        })
    });
    g.bench_function("alloc_free_block", |b| {
        let disk = MemDisk::with_capacity(64 << 20);
        let mut ld = lld::Lld::format(disk, lld::LldConfig::small_for_tests()).expect("format");
        let lid = ld
            .new_list(PredList::Start, ListHints::default())
            .expect("list");
        b.iter(|| {
            let bid = ld.new_block(lid, Pred::Start).expect("alloc");
            ld.delete_block(bid, lid, None).expect("free");
        })
    });
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    g.sample_size(20);
    // Build a populated image once; recovery re-opens it per iteration.
    let disk = MemDisk::with_capacity(32 << 20);
    let mut ld = lld::Lld::format(disk, lld::LldConfig::small_for_tests()).expect("format");
    let lid = ld
        .new_list(PredList::Start, ListHints::default())
        .expect("list");
    let data = compressible(4096);
    let mut pred = Pred::Start;
    for _ in 0..1024 {
        let bid = ld.new_block(lid, pred).expect("alloc");
        ld.write(bid, &data).expect("write");
        pred = Pred::After(bid);
    }
    ld.flush(ld_core::FailureSet::PowerFailure).expect("flush");

    // No clean shutdown happened, so every open performs the one-sweep
    // recovery. The sweep does not mutate the medium, so the same device
    // can be threaded through the iterations.
    let mut slot = Some(ld.into_disk());
    g.bench_function("sweep_32mb", |b| {
        b.iter(|| {
            let disk = slot.take().expect("device threaded through");
            let l = lld::Lld::open(disk, lld::LldConfig::small_for_tests()).expect("open");
            assert!(!l.stats().recovered_from_checkpoint);
            slot = Some(l.into_disk());
        })
    });
    g.finish();
}

fn bench_fsutil(c: &mut Criterion) {
    let mut g = c.benchmark_group("fsutil");
    g.bench_function("dirent_search_full_block", |b| {
        let mut block = vec![0u8; 4096];
        for i in 0..(4096 / fsutil::dirent::DIRENT_SIZE) {
            let name = format!("file{i:04}");
            fsutil::dirent::encode(
                (i + 1) as u32,
                &name,
                &mut block[i * fsutil::dirent::DIRENT_SIZE..(i + 1) * fsutil::dirent::DIRENT_SIZE],
            );
        }
        b.iter(|| fsutil::dirent::find_in_block(&block, "file0127"))
    });
    g.bench_function("bitmap_alloc_near", |b| {
        let mut bm = fsutil::Bitmap::new(100_000);
        let mut i = 0usize;
        b.iter(|| {
            if bm.free() == 0 {
                bm = fsutil::Bitmap::new(100_000);
            }
            i = (i + 12_345) % 100_000;
            bm.alloc_near(i)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_compression,
    bench_simdisk,
    bench_lld,
    bench_fsutil,
    bench_recovery
);
criterion_main!(benches);
