//! Criterion wrappers around scaled-down versions of the paper's two
//! microbenchmarks (Tables 4 and 5), one benchmark per file system column.
//!
//! These track *host* performance of the whole stack over time; the
//! authoritative table regeneration (simulated time, paper scale) is the
//! `repro` binary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ld_bench::driver::{MinixLld, MinixRaw, Sunos};
use ld_bench::exp::phases::{large_file, small_file};
use ld_bench::rig;

const DISK: u64 = 64 << 20;

fn bench_small_file(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_small_file");
    g.sample_size(10);
    g.bench_function("minix_lld_100x1k", |b| {
        b.iter_batched(
            || MinixLld(rig::minix_lld(DISK)),
            |mut fs| small_file(&mut fs, 100, 1 << 10),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("minix_100x1k", |b| {
        b.iter_batched(
            || MinixRaw(rig::minix(DISK)),
            |mut fs| small_file(&mut fs, 100, 1 << 10),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("sunos_100x1k", |b| {
        b.iter_batched(
            || Sunos(rig::sunos(DISK)),
            |mut fs| small_file(&mut fs, 100, 1 << 10),
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn bench_large_file(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_large_file");
    g.sample_size(10);
    g.bench_function("minix_lld_4mb", |b| {
        b.iter_batched(
            || MinixLld(rig::minix_lld(DISK)),
            |mut fs| large_file(&mut fs, 4 << 20, 8192),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("minix_4mb", |b| {
        b.iter_batched(
            || MinixRaw(rig::minix(DISK)),
            |mut fs| large_file(&mut fs, 4 << 20, 8192),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("sunos_4mb", |b| {
        b.iter_batched(
            || Sunos(rig::sunos(DISK)),
            |mut fs| large_file(&mut fs, 4 << 20, 8192),
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_small_file, bench_large_file);
criterion_main!(benches);
