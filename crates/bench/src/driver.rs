//! A uniform driver over the three file systems so one benchmark loop can
//! run all columns of Tables 4 and 5.
//!
//! The harness panics on file-system errors: an error mid-benchmark means
//! the rig is misconfigured, and there is nothing useful to continue with.

use ffs::Ffs;
use minix_fs::MinixFs;
use simdisk::{DiskStats, SimDisk};

/// What a benchmark needs from a file system.
pub trait Bencher {
    /// Human-readable column label.
    fn label(&self) -> &'static str;

    /// Creates an empty file; returns a handle.
    fn create(&mut self, path: &str) -> u32;

    /// Opens an existing file.
    fn open(&mut self, path: &str) -> u32;

    /// Writes at an offset.
    fn write(&mut self, handle: u32, offset: u64, data: &[u8]);

    /// Reads at an offset; returns bytes read.
    fn read(&mut self, handle: u32, offset: u64, buf: &mut [u8]) -> usize;

    /// Removes a file.
    fn unlink(&mut self, path: &str);

    /// Flushes everything dirty.
    fn sync(&mut self);

    /// Flushes and empties the buffer cache (between phases, §4.2).
    fn drop_caches(&mut self);

    /// Simulated time in microseconds.
    fn now_us(&self) -> u64;

    /// Disk statistics snapshot.
    fn disk_stats(&self) -> DiskStats;

    /// Attaches one event tracer to every layer of this stack (file
    /// system, disk manager if any, simulated disk) so their events
    /// interleave into a single timeline.
    fn attach_tracer(&mut self, tracer: ld_trace::Tracer);
}

/// MINIX over the raw store, with disk-stat access.
pub struct MinixRaw(pub MinixFs<minix_fs::RawStore<SimDisk>>);
/// MINIX over the LD store, with disk-stat access.
pub struct MinixLld(pub MinixFs<minix_fs::LdStore<SimDisk>>);
/// The FFS baseline.
pub struct Sunos(pub Ffs<SimDisk>);

macro_rules! delegate_minix {
    ($t:ty, $label:expr, $attach:expr) => {
        impl Bencher for $t {
            fn label(&self) -> &'static str {
                $label
            }
            fn create(&mut self, path: &str) -> u32 {
                self.0.create(path).expect("create")
            }
            fn open(&mut self, path: &str) -> u32 {
                self.0.lookup(path).expect("lookup")
            }
            fn write(&mut self, handle: u32, offset: u64, data: &[u8]) {
                self.0.write(handle, offset, data).expect("write");
            }
            fn read(&mut self, handle: u32, offset: u64, buf: &mut [u8]) -> usize {
                self.0.read(handle, offset, buf).expect("read")
            }
            fn unlink(&mut self, path: &str) {
                self.0.unlink(path).expect("unlink");
            }
            fn sync(&mut self) {
                self.0.sync().expect("sync");
            }
            fn drop_caches(&mut self) {
                self.0.drop_caches().expect("drop_caches");
            }
            fn now_us(&self) -> u64 {
                self.0.now_us()
            }
            fn disk_stats(&self) -> DiskStats {
                *self.0.store().disk().stats()
            }
            fn attach_tracer(&mut self, tracer: ld_trace::Tracer) {
                ($attach)(&mut self.0, tracer);
            }
        }
    };
}

fn attach_raw(fs: &mut MinixFs<minix_fs::RawStore<SimDisk>>, t: ld_trace::Tracer) {
    fs.store_mut().disk_mut().set_tracer(t.clone());
    fs.set_tracer(t);
}

fn attach_lld(fs: &mut MinixFs<minix_fs::LdStore<SimDisk>>, t: ld_trace::Tracer) {
    fs.store_mut().lld_mut().disk_mut().set_tracer(t.clone());
    fs.store_mut().lld_mut().set_tracer(t.clone());
    fs.set_tracer(t);
}

delegate_minix!(MinixRaw, "MINIX", attach_raw);
delegate_minix!(MinixLld, "MINIX LLD", attach_lld);

impl MinixRaw {
    /// Direct store access.
    pub fn store(&self) -> &minix_fs::RawStore<SimDisk> {
        self.0.store()
    }
}

impl MinixLld {
    /// Direct store access (for LLD stats).
    pub fn store(&self) -> &minix_fs::LdStore<SimDisk> {
        self.0.store()
    }
}

impl Bencher for Sunos {
    fn label(&self) -> &'static str {
        "SunOS"
    }

    fn create(&mut self, path: &str) -> u32 {
        self.0.create(path).expect("create")
    }

    fn open(&mut self, path: &str) -> u32 {
        self.0.lookup(path).expect("lookup")
    }

    fn write(&mut self, handle: u32, offset: u64, data: &[u8]) {
        self.0.write(handle, offset, data).expect("write");
    }

    fn read(&mut self, handle: u32, offset: u64, buf: &mut [u8]) -> usize {
        self.0.read(handle, offset, buf).expect("read")
    }

    fn unlink(&mut self, path: &str) {
        self.0.unlink(path).expect("unlink");
    }

    fn sync(&mut self) {
        self.0.sync().expect("sync");
    }

    fn drop_caches(&mut self) {
        self.0.drop_caches().expect("drop_caches");
    }

    fn now_us(&self) -> u64 {
        self.0.now_us()
    }

    fn disk_stats(&self) -> DiskStats {
        *self.0.disk().stats()
    }

    fn attach_tracer(&mut self, tracer: ld_trace::Tracer) {
        self.0.disk_mut().set_tracer(tracer.clone());
        self.0.set_tracer(tracer);
    }
}
