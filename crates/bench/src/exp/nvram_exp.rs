//! E14 — NVRAM extension (§5.3, after Baker et al. 1992): "with 0.5 Mbyte
//! of NVRAM the number of partially written segments can be reduced
//! considerably; the number of disk accesses can be reduced by about
//! 20% ... We expect that similar results can be obtained for LLD."
//!
//! A sync-heavy small-file workload (every file fsync'd, the worst case
//! §3.2 worries about) runs against MINIX LLD with varying NVRAM sizes.

use minix_fs::{FsConfig, LdStore, MinixFs};

use crate::report::{ops_per_s, Table};
use crate::rig;
use crate::workload::compressible_data;

struct Row {
    nvram_kb: usize,
    partials: u64,
    nvram_saves: u64,
    disk_ops: u64,
    files_per_s: f64,
}

fn run_one(disk_bytes: u64, nfiles: usize, nvram_bytes: usize) -> Row {
    let disk = rig::disk_sized(disk_bytes).with_nvram(nvram_bytes);
    let store = LdStore::format(disk, rig::lld_config()).expect("format");
    let mut fs = MinixFs::format(
        store,
        FsConfig {
            ..rig::minix_config()
        },
    )
    .expect("mkfs");
    let data = compressible_data(2 << 10, 0x4E);

    let ops_before = {
        let s = fs.store().disk().stats();
        s.read_ops + s.write_ops
    };
    let t0 = fs.now_us();
    for i in 0..nfiles {
        let ino = fs.create(&format!("/f{i:05}")).expect("create");
        fs.write(ino, 0, &data).expect("write");
        // fsync after every file: the flush-heavy pattern NVRAM absorbs.
        fs.sync().expect("sync");
    }
    let elapsed = fs.now_us() - t0;
    let s = fs.store().disk().stats();
    let lld = fs.store().lld().stats();
    Row {
        nvram_kb: nvram_bytes >> 10,
        partials: lld.partial_segment_writes,
        nvram_saves: lld.nvram_saves,
        disk_ops: s.read_ops + s.write_ops - ops_before,
        files_per_s: ops_per_s(nfiles as u64, elapsed),
    }
}

/// Sweeps the NVRAM size over the fsync-per-file workload.
pub fn run(opts: super::Opts) -> String {
    let (disk_bytes, nfiles) = if opts.quick {
        (64u64 << 20, 300)
    } else {
        (rig::PARTITION_BYTES, 2_000)
    };
    let rows: Vec<Row> = [0usize, 128 << 10, 512 << 10]
        .into_iter()
        .map(|nv| run_one(disk_bytes, nfiles, nv))
        .collect();
    let base_ops = rows[0].disk_ops;

    let mut t = Table::new(vec![
        "NVRAM",
        "partial seg writes",
        "NVRAM saves",
        "disk ops",
        "vs none",
        "files/s",
    ]);
    for r in &rows {
        t.row(vec![
            if r.nvram_kb == 0 {
                "none".to_string()
            } else {
                format!("{} KB", r.nvram_kb)
            },
            r.partials.to_string(),
            r.nvram_saves.to_string(),
            r.disk_ops.to_string(),
            format!(
                "{:+.0}%",
                100.0 * (r.disk_ops as f64 - base_ops as f64) / base_ops as f64
            ),
            crate::report::rate(r.files_per_s),
        ]).expect("row width");
    }
    format!(
        "E14: NVRAM extension — {} files, fsync after every file\n\
         (Baker et al. via §5.3: 0.5 MB NVRAM removes most partial segment\n\
         writes and cuts disk accesses ~20%)\n\n{}",
        nfiles,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvram_removes_partials_and_cuts_disk_ops() {
        let none = run_one(48 << 20, 150, 0);
        let full = run_one(48 << 20, 150, 512 << 10);
        assert!(none.partials > 0, "baseline must write partial segments");
        assert_eq!(
            full.partials, 0,
            "0.5 MB NVRAM should absorb every below-threshold flush"
        );
        assert!(full.nvram_saves > 0);
        let cut = 1.0 - full.disk_ops as f64 / none.disk_ops as f64;
        assert!(
            cut > 0.10,
            "disk ops should drop noticeably (got {:.0}%)",
            cut * 100.0
        );
        assert!(full.files_per_s > none.files_per_s);
    }
}
