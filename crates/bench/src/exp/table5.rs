//! E4 — Table 5: large-file I/O. "Performance results in Kbyte/sec for
//! writing and reading a 80-Mbyte file (in 8-Kbyte chunks)."
//!
//! Relations the paper reports:
//! - MINIX LLD "shows excellent performance on all writes ... 85% of the
//!   available bandwidth"; MINIX "uses only 13%" (the extra-rotation
//!   effect);
//! - MINIX beats MINIX LLD on sequential reads (prefetching; LLD's is
//!   disabled);
//! - MINIX LLD beats MINIX on random reads ("MINIX's read-ahead strategy
//!   fails");
//! - after random writes, the sequential re-read favours MINIX (update in
//!   place preserves layout);
//! - SunOS beats both on sequential writes and all reads, but loses to
//!   MINIX LLD on random writes.

use crate::driver::{Bencher, MinixLld, MinixRaw, Sunos};
use crate::exp::phases::{large_file, LargeFileResult};
use crate::report::Table;
use crate::rig;

fn row(label: &str, r: &LargeFileResult) -> Vec<String> {
    vec![
        label.to_string(),
        crate::report::rate(r.write_seq),
        crate::report::rate(r.read_seq),
        crate::report::rate(r.write_rand),
        crate::report::rate(r.read_rand),
        crate::report::rate(r.reread_seq),
    ]
}

fn json_row(label: &str, r: &LargeFileResult) -> String {
    format!(
        "    {{\"fs\": \"{label}\", \"write_seq\": {:.1}, \"read_seq\": {:.1}, \
         \"write_rand\": {:.1}, \"read_rand\": {:.1}, \"reread_seq\": {:.1}}}",
        r.write_seq, r.read_seq, r.write_rand, r.read_rand, r.reread_seq
    )
}

/// Runs the five-phase benchmark over all three file systems; also
/// returns the machine-readable rows for `--json-out`.
pub fn run_json(opts: super::Opts) -> (String, String) {
    let file_bytes: u64 = if opts.quick { 16 << 20 } else { 80 << 20 };
    let disk_bytes = rig::PARTITION_BYTES;
    let chunk = 8192;

    let mut t = Table::new(vec![
        "File system",
        "Write Seq.",
        "Read Seq.",
        "Write Rand.",
        "Read Rand.",
        "Read Seq. (2)",
    ]);
    let mut footnotes = String::new();
    let mut json_rows: Vec<String> = Vec::new();
    let mut fs = MinixLld(rig::minix_lld(disk_bytes));
    crate::faultctl::inject(&mut fs, &opts);
    let tr = crate::tracectl::maybe_attach(&mut fs, &opts);
    let r = large_file(&mut fs, file_bytes, chunk);
    json_rows.push(json_row(fs.label(), &r));
    t.row(row(fs.label(), &r)).expect("row width");
    footnotes.push_str(&crate::tracectl::finish(tr, &fs, &opts, "table5"));
    footnotes.push_str(&crate::faultctl::finish(fs, &opts));
    let mut fs = MinixRaw(rig::minix(disk_bytes));
    let tr = crate::tracectl::maybe_attach(&mut fs, &opts);
    let r = large_file(&mut fs, file_bytes, chunk);
    json_rows.push(json_row(fs.label(), &r));
    t.row(row(fs.label(), &r)).expect("row width");
    footnotes.push_str(&crate::tracectl::finish(tr, &fs, &opts, "table5"));
    let mut fs = Sunos(rig::sunos(disk_bytes));
    let tr = crate::tracectl::maybe_attach(&mut fs, &opts);
    let r = large_file(&mut fs, file_bytes, chunk);
    json_rows.push(json_row(fs.label(), &r));
    t.row(row(fs.label(), &r)).expect("row width");
    footnotes.push_str(&crate::tracectl::finish(tr, &fs, &opts, "table5"));

    let mut out = format!(
        "E4: Table 5 — large-file I/O ({} MB file, 8 KB chunks; KB/s)\n\
         (paper anchors: MINIX LLD sequential writes ≈85% of the 2400 KB/s\n\
         bandwidth; MINIX ≈13%)\n\n{}",
        file_bytes >> 20,
        t.render()
    );
    if !footnotes.is_empty() {
        out.push_str(&format!("where the disk time went:\n{footnotes}"));
    }
    let json = format!(
        "{{\n  \"experiment\": \"table5\",\n  \"quick\": {},\n  \"unit\": \"KB/s\",\n  \
         \"file_mb\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        opts.quick,
        file_bytes >> 20,
        json_rows.join(",\n")
    );
    (out, json)
}

/// Runs the five-phase benchmark (text report only).
pub fn run(opts: super::Opts) -> String {
    run_json(opts).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relations_hold_quick() {
        // The file must be much larger than the 6 MB buffer cache or the
        // random-read phase degenerates into a cache benchmark.
        let file = 16 << 20;
        let disk = 96 << 20;
        let mut lld_fs = MinixLld(rig::minix_lld(disk));
        let lld = large_file(&mut lld_fs, file, 8192);
        let mut raw_fs = MinixRaw(rig::minix(disk));
        let raw = large_file(&mut raw_fs, file, 8192);
        let mut sun_fs = Sunos(rig::sunos(disk));
        let sun = large_file(&mut sun_fs, file, 8192);

        // LLD writes are log-structured: several times MINIX's.
        assert!(
            lld.write_seq > 3.0 * raw.write_seq,
            "LLD seq write {:.0} vs MINIX {:.0}",
            lld.write_seq,
            raw.write_seq
        );
        assert!(
            lld.write_rand > 3.0 * raw.write_rand,
            "LLD rand write {:.0} vs MINIX {:.0}",
            lld.write_rand,
            raw.write_rand
        );
        // LLD uses a large fraction of the 2400 KB/s bandwidth.
        assert!(
            lld.write_seq > 1_500.0,
            "LLD seq write only {:.0} KB/s",
            lld.write_seq
        );
        // MINIX is rotation-bound around 300 KB/s.
        assert!(
            (150.0..600.0).contains(&raw.write_seq),
            "MINIX seq write {:.0} KB/s should be rotation-bound",
            raw.write_seq
        );
        // Prefetching helps MINIX sequential reads beat LLD's.
        assert!(
            raw.read_seq > lld.read_seq,
            "MINIX seq read {:.0} vs LLD {:.0}",
            raw.read_seq,
            lld.read_seq
        );
        // Random reads: MINIX's read-ahead fails, LLD does not pay for it.
        assert!(
            lld.read_rand > raw.read_rand,
            "LLD rand read {:.0} vs MINIX {:.0}",
            lld.read_rand,
            raw.read_rand
        );
        // SunOS wins sequential writes and reads, loses random writes.
        assert!(sun.write_seq > raw.write_seq);
        assert!(sun.read_seq > lld.read_seq);
        assert!(
            lld.write_rand > sun.write_rand,
            "LLD rand write {:.0} vs SunOS {:.0}",
            lld.write_rand,
            sun.write_rand
        );
    }
}
