//! E11 — the §5.2 comparison with Loge:
//!
//! - both Loge and LLD service a stream of individual random block writes
//!   far faster than update-in-place;
//! - "recovery in our LLD implementation is at least one order of
//!   magnitude faster than in Loge, since LLD only reads the segment
//!   summaries" while Loge reads the whole disk.

use ld_core::{FailureSet, ListHints, LogicalDisk, Pred, PredList};
use loge::{Loge, LogeConfig};
use simdisk::BlockDev;

use crate::report::{kb_per_s, secs, Table};
use crate::rig;
use crate::workload::{compressible_data, shuffled};

/// Runs the random-write-stream and recovery comparisons.
pub fn run(opts: super::Opts) -> String {
    let (disk_bytes, nblocks) = if opts.quick {
        (64u64 << 20, 1_000usize)
    } else {
        (rig::PARTITION_BYTES, 4_000)
    };
    let block = 4096usize;
    let data = compressible_data(block, 0x10E6);
    let span = 20_000usize.min(nblocks * 4); // Logical address span.

    // --- random single-block write stream ---

    // Update-in-place baseline.
    let mut disk = rig::disk_sized(disk_bytes);
    let order = shuffled(span, 1);
    let t0 = disk.now_us();
    for &i in order.iter().take(nblocks) {
        disk.write_sectors((i * 8) as u64, &data).expect("write");
    }
    let inplace_kbs = kb_per_s((nblocks * block) as u64, disk.now_us() - t0);

    // Loge.
    let mut lg =
        Loge::format(rig::disk_sized(disk_bytes), LogeConfig::default()).expect("format loge");
    let t0 = lg.disk().now_us();
    for &i in order.iter().take(nblocks) {
        lg.write((i % span) as u32, &data).expect("write");
    }
    let loge_kbs = kb_per_s((nblocks * block) as u64, lg.disk().now_us() - t0);

    // LLD (block interface directly).
    let mut ld =
        lld::Lld::format(rig::disk_sized(disk_bytes), rig::lld_config()).expect("format lld");
    let lid = ld
        .new_list(PredList::Start, ListHints::default())
        .expect("list");
    let mut bids = Vec::with_capacity(span);
    let mut pred = Pred::Start;
    for _ in 0..span {
        let b = ld.new_block(lid, pred).expect("alloc");
        bids.push(b);
        pred = Pred::After(b);
    }
    let t0 = ld.disk().now_us();
    for &i in order.iter().take(nblocks) {
        ld.write(bids[i % span], &data).expect("write");
    }
    ld.flush(FailureSet::PowerFailure).expect("flush");
    let lld_kbs = kb_per_s((nblocks * block) as u64, ld.disk().now_us() - t0);

    // --- recovery ---

    // Loge: whole-disk scan.
    let mut d = lg.into_disk();
    d.crash_now();
    d.revive();
    let lg = Loge::recover(d, LogeConfig::default()).expect("loge recovery");
    let loge_rec_us = lg.stats().recovery_us;

    // LLD: summary sweep.
    let config = ld.config().clone();
    let mut d = ld.into_disk();
    d.crash_now();
    d.revive();
    let ld = lld::Lld::open(d, config).expect("lld recovery");
    let lld_rec_us = ld.stats().recovery_us;

    let mut t = Table::new(vec!["system", "random 4KB writes (KB/s)", "recovery (s)"]);
    t.row(vec![
        "update-in-place".to_string(),
        format!("{inplace_kbs:.0}"),
        "-".to_string(),
    ]).expect("row width");
    t.row(vec![
        "Loge".to_string(),
        format!("{loge_kbs:.0}"),
        secs(loge_rec_us),
    ]).expect("row width");
    t.row(vec![
        "LLD".to_string(),
        format!("{lld_kbs:.0}"),
        secs(lld_rec_us),
    ]).expect("row width");
    format!(
        "E11: Loge comparison ({} MB disk, {} random block writes)\n\
         (paper §5.2: both beat update-in-place on write streams; LLD recovery\n\
         is ≥10x faster because Loge must scan the whole disk)\n\
         Recovery ratio: {:.0}x\n\n{}",
        disk_bytes >> 20,
        nblocks,
        loge_rec_us as f64 / lld_rec_us.max(1) as f64,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn loge_relations_hold_quick() {
        let out = super::run(super::super::Opts { quick: true, trace: None, faults: None });
        // Extract the recovery ratio line.
        let line = out
            .lines()
            .find(|l| l.contains("Recovery ratio"))
            .expect("ratio line");
        let ratio: f64 = line
            .split_whitespace()
            .last()
            .expect("value")
            .trim_end_matches('x')
            .parse()
            .expect("numeric");
        assert!(
            ratio >= 10.0,
            "LLD recovery must be at least 10x faster than Loge's whole-disk \
             scan (got {ratio:.0}x)"
        );
    }
}
