//! E13 — design-choice ablations:
//!
//! 1. **Cleaner policy** (§3.5): greedy vs Sprite cost-benefit under a
//!    hot/cold overwrite workload — cost-benefit should move fewer live
//!    bytes (lower write amplification) because it leaves hot segments
//!    alone until their remaining live data is worth moving.
//! 2. **Partial-segment threshold** (§3.2): with frequent `Flush` calls,
//!    sweep the threshold at which a flush seals instead of writing a
//!    partial segment, and report the partial/seal mix and total disk
//!    traffic.

use ld_core::{FailureSet, ListHints, LogicalDisk, Pred, PredList};
use lld::{CleaningPolicy, Lld, LldConfig};

use crate::report::Table;
use crate::rig;
use crate::workload::{compressible_data, rng};

use rand::Rng;

/// Hot/cold overwrite workload: 90 % of writes hit 10 % of blocks.
fn hot_cold(policy: CleaningPolicy, disk_bytes: u64, writes: usize) -> (f64, u64) {
    let config = LldConfig {
        cleaning_policy: policy,
        segment_bytes: 128 << 10,
        ..rig::lld_config()
    };
    let mut ld = Lld::format(rig::disk_sized(disk_bytes), config).expect("format");
    let lid = ld
        .new_list(PredList::Start, ListHints::default())
        .expect("list");
    // Fill ~70 % of the disk.
    let nblocks = (ld.capacity_bytes() * 7 / 10 / 4096) as usize;
    let data = compressible_data(4096, 0xAB);
    let mut bids = Vec::with_capacity(nblocks);
    let mut pred = Pred::Start;
    for _ in 0..nblocks {
        let b = ld.new_block(lid, pred).expect("alloc");
        ld.write(b, &data).expect("fill");
        bids.push(b);
        pred = Pred::After(b);
    }
    ld.reset_stats();
    let hot = nblocks / 10;
    let mut r = rng(0xC01D);
    for _ in 0..writes {
        let idx = if r.gen_bool(0.9) {
            r.gen_range(0..hot)
        } else {
            r.gen_range(hot..nblocks)
        };
        ld.write(bids[idx], &data).expect("overwrite");
    }
    ld.flush(FailureSet::PowerFailure).expect("flush");
    let s = ld.stats();
    let amplification =
        (s.user_bytes_written + s.cleaner_bytes_copied) as f64 / s.user_bytes_written.max(1) as f64;
    (amplification, s.segments_cleaned)
}

/// Frequent-flush workload at a given partial-segment threshold.
fn flush_heavy(threshold_pct: u32, disk_bytes: u64, ops: usize) -> (u64, u64, u64) {
    let config = LldConfig {
        flush_threshold_pct: threshold_pct,
        ..rig::lld_config()
    };
    let mut ld = Lld::format(rig::disk_sized(disk_bytes), config).expect("format");
    let lid = ld
        .new_list(PredList::Start, ListHints::default())
        .expect("list");
    let data = compressible_data(4096, 0xF1);
    let mut pred = Pred::Start;
    let writes_before_flush = 24; // ~96 KB per flush on 512 KB segments.
    let disk_written_before = ld.disk().stats().sectors_written;
    for _ in 0..ops {
        for _ in 0..writes_before_flush {
            let b = ld.new_block(lid, pred).expect("alloc");
            ld.write(b, &data).expect("write");
            pred = Pred::After(b);
        }
        ld.flush(FailureSet::PowerFailure).expect("flush");
    }
    let s = ld.stats();
    let disk_sectors = ld.disk().stats().sectors_written - disk_written_before;
    (s.partial_segment_writes, s.segments_sealed, disk_sectors)
}

/// Runs both ablations.
pub fn run(opts: super::Opts) -> String {
    let (disk_bytes, writes, flush_ops) = if opts.quick {
        (24u64 << 20, 4_000usize, 40usize)
    } else {
        (48 << 20, 20_000, 150)
    };

    let (amp_greedy, cleaned_greedy) = hot_cold(CleaningPolicy::Greedy, disk_bytes, writes);
    let (amp_cb, cleaned_cb) = hot_cold(CleaningPolicy::CostBenefit, disk_bytes, writes);
    let mut t1 = Table::new(vec![
        "cleaner policy",
        "write amplification",
        "segments cleaned",
    ]);
    t1.row(vec![
        "greedy".to_string(),
        format!("{amp_greedy:.2}x"),
        cleaned_greedy.to_string(),
    ]).expect("row width");
    t1.row(vec![
        "cost-benefit".to_string(),
        format!("{amp_cb:.2}x"),
        cleaned_cb.to_string(),
    ]).expect("row width");

    let mut t2 = Table::new(vec![
        "flush threshold",
        "partial writes",
        "seals",
        "disk MB written",
    ]);
    for pct in [50u32, 75, 90] {
        let (partials, seals, sectors) = flush_heavy(pct, 96 << 20, flush_ops);
        t2.row(vec![
            format!("{pct}%"),
            partials.to_string(),
            seals.to_string(),
            format!("{:.1}", sectors as f64 * 512.0 / (1 << 20) as f64),
        ]).expect("row width");
    }

    format!(
        "E13: ablations\n\n\
         (a) cleaner policy under a 90/10 hot/cold overwrite workload\n{}\n\
         (b) partial-segment threshold under frequent Flush (~96 KB between\n\
         flushes, 512 KB segments; higher thresholds mean more partial\n\
         writes — whose data is written again at the eventual seal — while\n\
         lower thresholds seal early and pad the segment)\n{}",
        t1.render(),
        t2.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_benefit_beats_greedy_on_hot_cold() {
        let (amp_greedy, _) = hot_cold(CleaningPolicy::Greedy, 16 << 20, 3_000);
        let (amp_cb, _) = hot_cold(CleaningPolicy::CostBenefit, 16 << 20, 3_000);
        // Cost-benefit should not be noticeably worse; usually better.
        assert!(
            amp_cb <= amp_greedy * 1.10,
            "cost-benefit amplification {amp_cb:.2} vs greedy {amp_greedy:.2}"
        );
    }

    #[test]
    fn higher_threshold_means_more_partials_fewer_seals() {
        // A lower threshold seals earlier, so it produces more (padded)
        // seals and fewer partial writes per flush cycle.
        let (p50, s50, _) = flush_heavy(50, 48 << 20, 30);
        let (p90, s90, _) = flush_heavy(90, 48 << 20, 30);
        assert!(
            p90 >= p50,
            "90% threshold partials {p90} should be >= 50% threshold {p50}"
        );
        assert!(s50 >= s90, "lower threshold seals more ({s50} vs {s90})");
    }
}
