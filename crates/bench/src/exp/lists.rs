//! E7 — the cost of supporting lists (§4.2): "we also ran the benchmarks
//! for a version of MINIX LLD that does not support lists. ... There is
//! only significant overhead during block allocation and deallocation;
//! during the create and delete phases of the small file benchmarks the
//! overhead for maintaining lists was approximately 15%."

use minix_fs::FsConfig;

use crate::driver::MinixLld;
use crate::exp::phases::small_file;
use crate::report::Table;
use crate::rig;

fn run_variant(disk_bytes: u64, n: usize, maintain_lists: bool) -> (f64, f64, f64) {
    let lld_config = lld::LldConfig {
        maintain_lists,
        ..rig::lld_config()
    };
    let fs_config = FsConfig {
        ..rig::minix_config()
    };
    let mut fs = MinixLld(rig::minix_lld_with(disk_bytes, lld_config, fs_config));
    let r = small_file(&mut fs, n, 1 << 10);
    (r.create_per_s, r.read_per_s, r.delete_per_s)
}

/// Measures the list-maintenance overhead on the small-file benchmark.
pub fn run(opts: super::Opts) -> String {
    let (disk_bytes, n) = if opts.quick {
        (64 << 20, 500)
    } else {
        (rig::PARTITION_BYTES, 5_000)
    };
    let with = run_variant(disk_bytes, n, true);
    let without = run_variant(disk_bytes, n, false);

    let overhead = |w: f64, wo: f64| 100.0 * (wo - w) / wo;
    let mut t = Table::new(vec![
        "phase",
        "with lists (f/s)",
        "no lists (f/s)",
        "overhead",
    ]);
    t.row(vec![
        "create".to_string(),
        crate::report::rate(with.0),
        crate::report::rate(without.0),
        format!("{:.1}%", overhead(with.0, without.0)),
    ]).expect("row width");
    t.row(vec![
        "read".to_string(),
        crate::report::rate(with.1),
        crate::report::rate(without.1),
        format!("{:.1}%", overhead(with.1, without.1)),
    ]).expect("row width");
    t.row(vec![
        "delete".to_string(),
        crate::report::rate(with.2),
        crate::report::rate(without.2),
        format!("{:.1}%", overhead(with.2, without.2)),
    ]).expect("row width");
    format!(
        "E7: list-maintenance overhead ({} x 1 KB files)\n\
         (paper: ~15% during create/delete, little overhead during reads/writes)\n\n{}",
        n,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn list_overhead_shows_in_create_delete_only() {
        let with = super::run_variant(64 << 20, 500, true);
        let without = super::run_variant(64 << 20, 500, false);
        // Create/delete get slower with lists...
        assert!(
            without.0 > with.0,
            "create without lists ({:.0}/s) should beat with lists ({:.0}/s)",
            without.0,
            with.0
        );
        let create_overhead = (without.0 - with.0) / without.0;
        assert!(
            (0.02..0.45).contains(&create_overhead),
            "create overhead {:.1}% should be noticeable but bounded",
            create_overhead * 100.0
        );
        // ...while reads barely change.
        let read_delta = ((without.1 - with.1) / without.1).abs();
        assert!(
            read_delta < 0.10,
            "read overhead {:.1}% should be negligible",
            read_delta * 100.0
        );
    }
}
