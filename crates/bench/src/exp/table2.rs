//! E1 — Table 2: "Main memory used by LLD per Gbyte of physical disk space
//! for different configurations, assuming an average block-size of 4 Kbyte
//! and a compression ratio of 60%."

use ld_core::{ListHints, LogicalDisk, Pred, PredList};
use lld::{ListGranularity, MemoryModel};
use simdisk::MemDisk;

use crate::report::Table;

const GB: u64 = 1 << 30;

fn mb(bytes: u64) -> String {
    if bytes < 1024 {
        format!("{bytes} byte")
    } else if bytes < 1 << 20 {
        format!("{} Kbyte", bytes >> 10)
    } else {
        format!("{:.1} Mbyte", bytes as f64 / (1 << 20) as f64)
    }
}

/// Renders Table 2 from the paper's memory model, plus a live-instance
/// cross-check.
pub fn run(_opts: super::Opts) -> String {
    let single = MemoryModel::paper(GB, 4096, 512 << 10, false, ListGranularity::SingleList);
    let comp = MemoryModel::paper(
        GB,
        4096,
        512 << 10,
        true,
        ListGranularity::PerFile {
            avg_file_bytes: 8192,
        },
    );

    let mut t = Table::new(vec![
        "Data structure",
        "LLD, single list",
        "LLD, compression + list per 8KB file",
    ]);
    t.row(vec![
        "Block-number map".to_string(),
        mb(single.block_map_bytes),
        mb(comp.block_map_bytes),
    ]).expect("row width");
    t.row(vec![
        "List table".to_string(),
        mb(single.list_table_bytes),
        mb(comp.list_table_bytes),
    ]).expect("row width");
    t.row(vec![
        "Segment usage table".to_string(),
        mb(single.usage_table_bytes),
        mb(comp.usage_table_bytes),
    ]).expect("row width");
    t.row(vec![
        "Total".to_string(),
        mb(single.total_bytes()),
        mb(comp.total_bytes()),
    ]).expect("row width");

    // Live cross-check: bill an actual populated instance with the same
    // per-entry costs and verify the per-block rate matches the model.
    let disk = MemDisk::with_capacity(16 << 20);
    let mut l = lld::Lld::format(disk, lld::LldConfig::small_for_tests()).expect("format");
    let lid = l
        .new_list(PredList::Start, ListHints::default())
        .expect("list");
    let mut pred = Pred::Start;
    for _ in 0..512 {
        let b = l.new_block(lid, pred).expect("block");
        pred = Pred::After(b);
    }
    let live = l.memory_report();
    let per_block = live.block_map_bytes as f64 / 512.0;

    format!(
        "E1: Table 2 — LLD main memory per GB of physical disk\n\
         (paper: 1.5 Mbyte / 4 byte / 6 Kbyte and 3.8 / 0.8 Mbyte / 6 Kbyte)\n\n{}\n\
         Live cross-check: a populated instance bills {:.1} bytes per block\n\
         (paper model: 6 bytes/block without compression).\n",
        t.render(),
        per_block
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn table2_reproduces_paper_cells() {
        let out = super::run(super::super::Opts { quick: true, trace: None, faults: None });
        assert!(out.contains("1.5 Mbyte"), "block map col 1:\n{out}");
        assert!(
            out.contains("3.8 Mbyte") || out.contains("3.7 Mbyte"),
            "block map col 2 should be ~3.8 MB:\n{out}"
        );
        assert!(out.contains("4 byte"), "list table col 1:\n{out}");
        assert!(out.contains("4.6 Mbyte"), "total col 2:\n{out}");
    }
}
