//! E15 — adaptive block rearrangement (§5.3, after Akyürek & Salem 1993):
//! "The driver periodically reorganizes the layout of blocks on the disk
//! based on estimated reference frequencies ... Measurements show that the
//! adaptive driver reduces seek times by more than half ... As LD can
//! rearrange blocks dynamically, the proposed scheme can be applied to LD
//! too."
//!
//! A skewed random-read workload (90 % of reads hit 10 % of blocks) runs
//! before and after `Lld::reorganize_hot` collects the hot set into a
//! contiguous region.

use ld_core::{FailureSet, ListHints, LogicalDisk, Pred, PredList};
use lld::Lld;
use rand::Rng;
use simdisk::{BlockDev, SimDisk};

use crate::report::Table;
use crate::rig;
use crate::workload::{compressible_data, rng};

struct Phase {
    avg_read_us: f64,
    avg_seek_us: f64,
    hot_segments: usize,
}

fn measure_reads(
    ld: &mut Lld<SimDisk>,
    bids: &[ld_core::Bid],
    hot: usize,
    reads: usize,
    seed: u64,
) -> Phase {
    let mut r = rng(seed);
    let mut buf = vec![0u8; 4096];
    let stats0 = *ld.disk().stats();
    let t0 = ld.disk().now_us();
    for _ in 0..reads {
        let idx = if r.gen_bool(0.9) {
            r.gen_range(0..hot)
        } else {
            r.gen_range(hot..bids.len())
        };
        // Hot blocks are every Nth of the id space, so the hot set is
        // physically scattered before the rearrangement.
        let spread_idx = (idx * (bids.len() / hot).max(1)) % bids.len();
        ld.read(bids[spread_idx], &mut buf).expect("read");
    }
    let elapsed = ld.disk().now_us() - t0;
    let stats = ld
        .disk()
        .stats()
        .delta_since(&stats0)
        .expect("same-phase snapshot");
    let hot_set: std::collections::HashSet<_> = (0..hot)
        .map(|i| (i * (bids.len() / hot).max(1)) % bids.len())
        .filter_map(|i| ld.block_segment(bids[i]))
        .collect();
    Phase {
        avg_read_us: elapsed as f64 / reads as f64,
        avg_seek_us: stats.seek_us as f64 / stats.read_ops.max(1) as f64,
        hot_segments: hot_set.len(),
    }
}

/// Runs the before/after comparison.
pub fn run(opts: super::Opts) -> String {
    let (disk_bytes, nblocks, reads) = if opts.quick {
        (64u64 << 20, 2_000usize, 2_000usize)
    } else {
        (rig::PARTITION_BYTES, 16_000, 8_000)
    };
    let mut ld = Lld::format(rig::disk_sized(disk_bytes), rig::lld_config()).expect("format");
    let lid = ld
        .new_list(PredList::Start, ListHints::default())
        .expect("list");
    let data = compressible_data(4096, 0x807);
    let mut bids = Vec::with_capacity(nblocks);
    let mut pred = Pred::Start;
    for _ in 0..nblocks {
        let b = ld.new_block(lid, pred).expect("alloc");
        ld.write(b, &data).expect("write");
        bids.push(b);
        pred = Pred::After(b);
    }
    ld.flush(FailureSet::PowerFailure).expect("flush");

    let hot = nblocks / 10;
    let before = measure_reads(&mut ld, &bids, hot, reads, 1);
    let moved = ld.reorganize_hot(hot + hot / 4).expect("reorganize_hot");
    let after = measure_reads(&mut ld, &bids, hot, reads, 2);

    let mut t = Table::new(vec![
        "phase",
        "avg read (ms)",
        "avg seek (ms)",
        "hot-set segments",
    ]);
    t.row(vec![
        "before rearrangement".to_string(),
        format!("{:.2}", before.avg_read_us / 1000.0),
        format!("{:.2}", before.avg_seek_us / 1000.0),
        before.hot_segments.to_string(),
    ]).expect("row width");
    t.row(vec![
        "after rearrangement".to_string(),
        format!("{:.2}", after.avg_read_us / 1000.0),
        format!("{:.2}", after.avg_seek_us / 1000.0),
        after.hot_segments.to_string(),
    ]).expect("row width");
    format!(
        "E15: adaptive block rearrangement — {} blocks, 90/10 skewed reads,\n\
         {} hot blocks collected by reorganize_hot ({moved} moved)\n\
         (Akyürek & Salem: reorganizing by reference frequency cuts seek\n\
         times by more than half)\n\n{}",
        nblocks,
        hot,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rearrangement_cuts_seek_time() {
        let mut ld = Lld::format(rig::disk_sized(64 << 20), rig::lld_config()).expect("format");
        let lid = ld
            .new_list(PredList::Start, ListHints::default())
            .expect("list");
        let data = compressible_data(4096, 1);
        let mut bids = Vec::new();
        let mut pred = Pred::Start;
        for _ in 0..2_000 {
            let b = ld.new_block(lid, pred).expect("alloc");
            ld.write(b, &data).expect("write");
            bids.push(b);
            pred = Pred::After(b);
        }
        ld.flush(FailureSet::PowerFailure).expect("flush");
        let hot = bids.len() / 10;
        let before = measure_reads(&mut ld, &bids, hot, 1_500, 1);
        ld.reorganize_hot(hot + hot / 4).expect("reorganize_hot");
        let after = measure_reads(&mut ld, &bids, hot, 1_500, 2);
        assert!(
            after.avg_seek_us < 0.6 * before.avg_seek_us,
            "seek time should drop by ~half ({:.0} -> {:.0} us)",
            before.avg_seek_us,
            after.avg_seek_us
        );
        assert!(after.avg_read_us < before.avg_read_us);
        assert!(after.hot_segments < before.hot_segments);
    }
}
