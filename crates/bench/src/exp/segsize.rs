//! E8 — segment-size sweep (§4.2): "The differences in performance for
//! 128-Kbyte, 256-Kbyte, and 512-Kbyte segments are within a few percent.
//! Smaller segment sizes result in a loss of write performance. For
//! 64-Kbyte segments we measured a reduction in write performance of 23%."

use crate::driver::{Bencher, MinixLld};
use crate::report::Table;
use crate::rig;
use crate::workload::compressible_data;

fn seq_write_kbs(disk_bytes: u64, file_bytes: u64, segment_bytes: usize) -> f64 {
    let lld_config = lld::LldConfig {
        segment_bytes,
        ..rig::lld_config()
    };
    let mut fs = MinixLld(rig::minix_lld_with(
        disk_bytes,
        lld_config,
        rig::minix_config(),
    ));
    let chunk = 8192;
    let data = compressible_data(chunk, 0x5E6);
    let h = fs.create("/big");
    let t0 = fs.now_us();
    for i in 0..(file_bytes / chunk as u64) {
        fs.write(h, i * chunk as u64, &data);
    }
    fs.sync();
    crate::report::kb_per_s(file_bytes, fs.now_us() - t0)
}

/// Sweeps the segment size over the sequential-write benchmark.
pub fn run(opts: super::Opts) -> String {
    let (disk_bytes, file_bytes) = if opts.quick {
        (96u64 << 20, 8 << 20)
    } else {
        (rig::PARTITION_BYTES, 64 << 20)
    };
    let sizes = [64usize, 128, 256, 512];
    let results: Vec<(usize, f64)> = sizes
        .iter()
        .map(|&kb| (kb, seq_write_kbs(disk_bytes, file_bytes, kb << 10)))
        .collect();
    let base = results.last().expect("non-empty").1;

    let mut t = Table::new(vec!["segment size", "write KB/s", "vs 512 KB"]);
    for (kb, kbs) in &results {
        t.row(vec![
            format!("{kb} KB"),
            format!("{kbs:.0}"),
            format!("{:+.0}%", 100.0 * (kbs - base) / base),
        ]).expect("row width");
    }
    format!(
        "E8: segment-size sweep, sequential write of {} MB\n\
         (paper: 128/256/512 KB within a few percent; 64 KB loses 23%)\n\n{}",
        file_bytes >> 20,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixty_four_kb_segments_lose_write_performance() {
        let disk = 128 << 20;
        let file = 8 << 20;
        let kbs512 = seq_write_kbs(disk, 16 << 20, 512 << 10);
        let kbs128 = seq_write_kbs(disk, 16 << 20, 128 << 10);
        let kbs64 = seq_write_kbs(disk, 16 << 20, 64 << 10);
        let _ = file;
        // 128 KB within ~12% of 512 KB.
        assert!(
            (kbs512 - kbs128).abs() / kbs512 < 0.12,
            "128KB {kbs128:.0} vs 512KB {kbs512:.0}"
        );
        // 64 KB clearly worse (paper: -23%).
        let loss = (kbs512 - kbs64) / kbs512;
        assert!(
            (0.05..0.45).contains(&loss),
            "64KB loses {:.0}% (expected near 23%)",
            loss * 100.0
        );
    }
}
