//! E12 — disk-model calibration against the two raw-disk measurements of
//! §4.2: "A user-level process writing 0.5 Mbyte segments ... achieves a
//! throughput of 2400 Kbyte/s", and "a program that writes back-to-back
//! 4-Kbyte blocks to the disk achieves a throughput of only 300 Kbyte per
//! second". Also reports the calibrated average seek time (spec: 11.5 ms).

use simdisk::{BlockDev, SimDisk, SECTOR_SIZE};

use crate::report::{kb_per_s, Table};
use crate::rig;

/// Runs the calibration and returns the rendered report.
pub fn run(_opts: super::Opts) -> String {
    // 0.5 MB sequential segment writes.
    let mut disk = rig::disk_sized(64 << 20);
    let seg = vec![0u8; 512 << 10];
    let total = 32u64;
    let t0 = disk.now_us();
    let mut sector = 0;
    for _ in 0..total {
        disk.write_sectors(sector, &seg).expect("write");
        sector += (seg.len() / SECTOR_SIZE) as u64;
    }
    let seg_kbs = kb_per_s(total * seg.len() as u64, disk.now_us() - t0);

    // Back-to-back 4 KB writes.
    let mut disk = rig::disk_sized(64 << 20);
    let block = vec![0u8; 4096];
    let n = 512u64;
    let t0 = disk.now_us();
    for i in 0..n {
        disk.write_sectors(i * 8, &block).expect("write");
    }
    let small_kbs = kb_per_s(n * 4096, disk.now_us() - t0);

    // Average random seek.
    let disk = SimDisk::hp_c3010();
    let g = *disk.geometry();
    let t = *disk.timing();
    let mut total_us = 0u64;
    let mut x = 0x12345u64;
    let samples = 200_000u64;
    for _ in 0..samples {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let a = (x % u64::from(g.cylinders)) as u32;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let b = (x % u64::from(g.cylinders)) as u32;
        total_us += t.seek_us(&g, a, b);
    }
    let avg_seek_ms = total_us as f64 / samples as f64 / 1000.0;

    let mut table = Table::new(vec!["measurement", "paper", "simulated"]);
    table.row(vec![
        "0.5 MB sequential writes (KB/s)".to_string(),
        "2400".to_string(),
        format!("{seg_kbs:.0}"),
    ]).expect("row width");
    table.row(vec![
        "back-to-back 4 KB writes (KB/s)".to_string(),
        "~300".to_string(),
        format!("{small_kbs:.0}"),
    ]).expect("row width");
    table.row(vec![
        "average seek (ms)".to_string(),
        "11.5".to_string(),
        format!("{avg_seek_ms:.1}"),
    ]).expect("row width");
    format!(
        "E12: raw-disk calibration (HP C3010 model)\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn calibration_matches_paper_anchors() {
        let out = super::run(super::super::Opts { quick: true, trace: None, faults: None });
        assert!(out.contains("2400"));
        // Extract the simulated segment throughput and check the band.
        let line = out
            .lines()
            .find(|l| l.contains("sequential writes"))
            .expect("row present");
        let sim: f64 = line
            .split_whitespace()
            .last()
            .expect("value")
            .parse()
            .expect("numeric");
        assert!((2100.0..2700.0).contains(&sim), "simulated {sim}");
    }
}
