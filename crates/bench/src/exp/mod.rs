//! The experiments (E1–E17). Each module regenerates one paper artifact;
//! `phases` holds the two Sprite-LFS microbenchmark drivers shared by
//! several of them.

pub mod ablate;
pub mod calibrate;
pub mod compression;
pub mod faults;
pub mod hotcold;
pub mod inodes;
pub mod lists;
pub mod loge_cmp;
pub mod nvram_exp;
pub mod phases;
pub mod queueing;
pub mod recovery;
pub mod segsize;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

/// Global experiment options.
#[derive(Debug, Clone, Default)]
pub struct Opts {
    /// Scale down the workloads (~10×) for a fast smoke run.
    pub quick: bool,
    /// Append structured trace output (JSONL) for traced experiments to
    /// this file; `None` disables tracing entirely (the default).
    pub trace: Option<std::path::PathBuf>,
    /// Inject this media-fault model into the MINIX LLD stack of the
    /// traced experiments (`repro --faults`); `None` (the default) runs
    /// on perfect media and costs nothing.
    pub faults: Option<simdisk::FaultConfig>,
}
