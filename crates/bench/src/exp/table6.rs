//! E5 — Table 6: blocks written per operation, Sprite LFS vs MINIX LLD.
//!
//! The paper's formulas (δ = amortized i-node-map block cost, ε =
//! amortized dirty-i-node cost):
//!
//! | operation            | Sprite LFS        | MINIX LLD    |
//! |----------------------|-------------------|--------------|
//! | create or delete     | 1 + 2δ + 2ε       | 1 + 2ε       |
//! | overwrite (direct)   | 1 + δ + ε         | 1 + ε        |
//! | overwrite (indirect) | 2 + δ + ε         | 1 + ε        |
//! | overwrite (dbl-ind)  | 3 + δ + ε         | 1 + ε        |
//! | append (indirect)    | 2..3 + δ + ε      | 2 + ε        |
//!
//! Here both systems are *measured*: every block each implementation
//! writes is counted by category and divided by the operation count. Ops
//! are batched (flush every 16, checkpoint every 128) so the amortized
//! quantities δ and ε take their steady-state values.

use minix_fs::{FsConfig, InodeMode, LdStore, ListMode, MinixFs};
use simdisk::SimDisk;
use sprite_lfs::{LfsConfig, SpriteLfs};

use crate::report::Table;
use crate::rig;
use crate::workload::compressible_data;

const BATCH: usize = 16;
const CKPT_EVERY: usize = 128;
/// Overwrite probes use a smaller flush window whose ops touch distinct
/// blocks, so write-absorption in either system's cache cannot hide the
/// per-operation cost.
const OW_BATCH: usize = 4;

/// Per-operation cost in 4 KB block equivalents, by category.
#[derive(Debug, Clone, Copy, Default)]
struct Cost {
    data: f64,
    inode: f64,
    indirect: f64,
    imap: f64,
}

impl Cost {
    fn total(&self) -> f64 {
        self.data + self.inode + self.indirect + self.imap
    }

    fn fmt(&self) -> String {
        format!(
            "{:.2} (d {:.2} + i {:.3} + ind {:.2} + map {:.3})",
            self.total(),
            self.data,
            self.inode,
            self.indirect,
            self.imap
        )
    }
}

// ----- Sprite side -----

struct SpriteProbe {
    fs: SpriteLfs<SimDisk>,
}

impl SpriteProbe {
    fn new() -> Self {
        let fs = SpriteLfs::format(rig::disk_sized(256 << 20), LfsConfig::default())
            .expect("format sprite");
        Self { fs }
    }

    fn measure(&mut self, n: usize, mut op: impl FnMut(&mut SpriteLfs<SimDisk>, usize)) -> Cost {
        self.measure_batched(n, BATCH, &mut op)
    }

    fn measure_batched(
        &mut self,
        n: usize,
        batch: usize,
        op: &mut impl FnMut(&mut SpriteLfs<SimDisk>, usize),
    ) -> Cost {
        self.fs.checkpoint().expect("checkpoint");
        self.fs.reset_counters();
        for i in 0..n {
            op(&mut self.fs, i);
            if (i + 1) % batch == 0 {
                self.fs.flush().expect("flush");
            }
            if (i + 1) % CKPT_EVERY == 0 {
                self.fs.checkpoint().expect("checkpoint");
            }
        }
        self.fs.checkpoint().expect("checkpoint");
        let c = *self.fs.counters();
        Cost {
            data: c.data_blocks as f64 / n as f64,
            inode: c.inode_blocks as f64 / n as f64,
            indirect: c.indirect_blocks as f64 / n as f64,
            imap: c.imap_blocks as f64 / n as f64,
        }
    }
}

// ----- MINIX LLD side -----

struct LldProbe {
    fs: MinixFs<LdStore<SimDisk>>,
}

impl LldProbe {
    fn new() -> Self {
        let config = FsConfig {
            inode_mode: InodeMode::SmallBlocks,
            list_mode: ListMode::PerFile,
            ..rig::minix_config()
        };
        let store =
            LdStore::format(rig::disk_sized(256 << 20), rig::lld_config()).expect("format LD");
        Self {
            fs: MinixFs::format(store, config).expect("format MINIX LLD"),
        }
    }

    /// Measures user block-equivalents per op: data blocks count 1, small
    /// i-node blocks count 64/4096, exactly as the paper bills ε.
    fn measure(
        &mut self,
        n: usize,
        mut op: impl FnMut(&mut MinixFs<LdStore<SimDisk>>, usize),
    ) -> Cost {
        self.measure_batched(n, BATCH, &mut op)
    }

    fn measure_batched(
        &mut self,
        n: usize,
        batch: usize,
        op: &mut impl FnMut(&mut MinixFs<LdStore<SimDisk>>, usize),
    ) -> Cost {
        self.fs.sync().expect("sync");
        self.fs.store_mut().lld_mut().reset_stats();
        for i in 0..n {
            op(&mut self.fs, i);
            if (i + 1) % batch == 0 {
                self.fs.sync().expect("sync");
            }
        }
        self.fs.sync().expect("sync");
        let s = *self.fs.store().lld().stats();
        // Split user writes into full 4096-byte blocks (data/dir/indirect)
        // and 64-byte i-node blocks: with W total writes and U total bytes,
        // 4096·d + 64·i = U and d + i = W.
        let inode_writes =
            (4096 * s.block_writes).saturating_sub(s.user_bytes_written) / (4096 - 64);
        let data_blocks = s.block_writes - inode_writes;
        Cost {
            data: data_blocks as f64 / n as f64,
            inode: (inode_writes as f64 * 64.0 / 4096.0) / n as f64,
            indirect: 0.0, // Included in data_blocks when they occur.
            imap: 0.0,     // LD has no i-node map.
        }
    }
}

/// Runs the comparison.
pub fn run(opts: super::Opts) -> String {
    let n = if opts.quick { 128 } else { 512 };
    let block = 4096usize;
    let data = compressible_data(block, 0x7AB1E6);

    // --- Sprite LFS ---
    let mut sp = SpriteProbe::new();
    let create = sp.measure(n, |fs, i| {
        fs.create(&format!("c{i:05}")).expect("create");
    });
    let delete = sp.measure(n, |fs, i| {
        fs.delete(&format!("c{i:05}")).expect("delete");
    });
    // A file spanning direct + indirect + double-indirect ranges.
    let big = sp.fs.create("big").expect("create big");
    for idx in [0u64, 5, 9, 10, 500, 1030, 1040, 1100] {
        sp.fs.write_block(big, idx, &data).expect("prefill");
    }
    sp.fs.checkpoint().expect("ckpt");
    let ow_direct = sp.measure_batched(n, OW_BATCH, &mut |fs, i| {
        // Distinct direct blocks within each flush window.
        fs.write_block(big, (i % 8) as u64, &data).expect("ow");
    });
    let ow_ind = sp.measure(n, |fs, i| {
        fs.write_block(big, 10 + (i % 100) as u64, &data)
            .expect("ow");
    });
    let ow_dind = sp.measure(n, |fs, i| {
        fs.write_block(big, 1034 + (i % 60) as u64, &data)
            .expect("ow");
    });
    let mut next = 2000u64;
    let append = sp.measure(n, |fs, _| {
        // True appends: each op extends the file by one fresh block.
        fs.write_block(big, next, &data).expect("append");
        next += 1;
    });

    // --- MINIX LLD ---
    let mut ml = LldProbe::new();
    let m_create = ml.measure(n, |fs, i| {
        fs.create(&format!("/c{i:05}")).expect("create");
    });
    let m_delete = ml.measure(n, |fs, i| {
        fs.unlink(&format!("/c{i:05}")).expect("unlink");
    });
    let big_ino = ml.fs.create("/big").expect("create big");
    // Prefill so direct, indirect, and double-indirect ranges exist.
    for idx in [0u64, 5, 6, 7, 500, 1030, 1034, 1100] {
        ml.fs
            .write(big_ino, idx * block as u64, &data)
            .expect("prefill");
    }
    ml.fs.sync().expect("sync");
    let m_ow_direct = ml.measure_batched(n, OW_BATCH, &mut |fs, i| {
        // Distinct direct blocks within each flush window.
        fs.write(big_ino, ((i % 7) * block) as u64, &data)
            .expect("ow");
    });
    let m_ow_ind = ml.measure(n, |fs, i| {
        fs.write(big_ino, ((7 + i % 100) * block) as u64, &data)
            .expect("ow");
    });
    let m_ow_dind = ml.measure(n, |fs, i| {
        fs.write(big_ino, ((1034 + i % 60) * block) as u64, &data)
            .expect("ow");
    });
    let mut app_idx = 2000u64;
    let m_append = ml.measure(n, |fs, _| {
        // True appends: each op extends the file by one fresh block.
        fs.write(big_ino, app_idx * block as u64, &data)
            .expect("append");
        app_idx += 1;
    });

    let mut t = Table::new(vec![
        "operation",
        "Sprite LFS (blocks/op)",
        "MINIX LLD (blocks/op)",
    ]);
    t.row(vec!["create".to_string(), create.fmt(), m_create.fmt()]).expect("row width");
    t.row(vec!["delete".to_string(), delete.fmt(), m_delete.fmt()]).expect("row width");
    t.row(vec![
        "overwrite, direct".to_string(),
        ow_direct.fmt(),
        m_ow_direct.fmt(),
    ]).expect("row width");
    t.row(vec![
        "overwrite, indirect".to_string(),
        ow_ind.fmt(),
        m_ow_ind.fmt(),
    ]).expect("row width");
    t.row(vec![
        "overwrite, dbl-indirect".to_string(),
        ow_dind.fmt(),
        m_ow_dind.fmt(),
    ]).expect("row width");
    t.row(vec![
        "append, indirect range".to_string(),
        append.fmt(),
        m_append.fmt(),
    ]).expect("row width");

    format!(
        "E5: Table 6 — measured blocks written per operation\n\
         (d = data, i = dirty i-nodes (ε), ind = indirect cascades, map = i-node map (δ))\n\
         Paper: Sprite pays δ + ε + indirect cascades everywhere; MINIX LLD never\n\
         pays δ or cascades because block numbers are location-independent.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lld_avoids_cascading_updates() {
        let n = 64;
        let data = compressible_data(4096, 1);
        // Sprite: overwrite in the indirect range costs an indirect block.
        let mut sp = SpriteProbe::new();
        let big = sp.fs.create("big").expect("create");
        for idx in [0u64, 10, 50, 100] {
            sp.fs.write_block(big, idx, &data).expect("prefill");
        }
        let sprite = sp.measure_batched(n, 4, &mut |fs, i| {
            fs.write_block(big, 10 + (i % 90) as u64, &data)
                .expect("ow");
        });
        assert!(
            sprite.indirect > 0.15,
            "Sprite overwrites in the indirect range must rewrite indirect \
             blocks ({:.2}/op)",
            sprite.indirect
        );

        // MINIX LLD: same workload, no indirect rewrites — total stays
        // close to 1 block/op.
        let mut ml = LldProbe::new();
        let big = ml.fs.create("/big").expect("create");
        for idx in [0u64, 10, 50, 100] {
            ml.fs.write(big, idx * 4096, &data).expect("prefill");
        }
        ml.fs.sync().expect("sync");
        let lld = ml.measure_batched(n, 4, &mut |fs, i| {
            fs.write(big, ((10 + i % 90) * 4096) as u64, &data)
                .expect("ow");
        });
        assert!(
            lld.total() < 1.3,
            "MINIX LLD overwrite should cost ~1+ε blocks, got {:.2}",
            lld.total()
        );
        assert!(
            sprite.total() > lld.total(),
            "Sprite {:.2} must exceed LLD {:.2}",
            sprite.total(),
            lld.total()
        );
    }
}
