//! E10 — compression (§4.2): "we measured the throughput of MINIX LLD
//! with compression; the write throughput was 1600 Kbyte per second, and
//! the read throughput was 800 Kbyte per second. The write throughput is
//! within 21% of the throughput without compression; this is because one
//! segment can be compressed while the previous segment is being written
//! to disk. The read throughput is low because we cannot overlap reading
//! and decompression."

use minix_fs::{FsConfig, LdStore, MinixFs};

use crate::report::{kb_per_s, Table};
use crate::rig;
use crate::workload::compressible_data;

fn throughputs(disk_bytes: u64, file_bytes: u64, compress: bool) -> (f64, f64, f64) {
    let store = if compress {
        LdStore::format_compressed(rig::disk_sized(disk_bytes), rig::lld_config())
    } else {
        LdStore::format(rig::disk_sized(disk_bytes), rig::lld_config())
    }
    .expect("format");
    let mut fs = MinixFs::format(
        store,
        FsConfig {
            ..rig::minix_config()
        },
    )
    .expect("format fs");

    let chunk = 8192usize;
    let data = compressible_data(chunk, 0xC0);
    let ino = fs.create("/big").expect("create");
    let t0 = fs.now_us();
    for i in 0..(file_bytes / chunk as u64) {
        fs.write(ino, i * chunk as u64, &data).expect("write");
    }
    fs.sync().expect("sync");
    let write_kbs = kb_per_s(file_bytes, fs.now_us() - t0);

    fs.drop_caches().expect("drop");
    let mut buf = vec![0u8; chunk];
    let t0 = fs.now_us();
    for i in 0..(file_bytes / chunk as u64) {
        fs.read(ino, i * chunk as u64, &mut buf).expect("read");
    }
    let read_kbs = kb_per_s(file_bytes, fs.now_us() - t0);

    // Actual on-medium compression ratio.
    let s = fs.store().lld().stats();
    let ratio = if s.user_bytes_written == 0 {
        1.0
    } else {
        s.stored_bytes_written as f64 / s.user_bytes_written as f64
    };
    (write_kbs, read_kbs, ratio)
}

/// Measures sequential throughput with and without transparent
/// compression.
pub fn run(opts: super::Opts) -> String {
    let (disk_bytes, file_bytes) = if opts.quick {
        (96u64 << 20, 8u64 << 20)
    } else {
        (rig::PARTITION_BYTES, 48 << 20)
    };
    let (w_plain, r_plain, _) = throughputs(disk_bytes, file_bytes, false);
    let (w_comp, r_comp, ratio) = throughputs(disk_bytes, file_bytes, true);

    let mut t = Table::new(vec!["configuration", "write KB/s", "read KB/s"]);
    t.row(vec![
        "no compression".to_string(),
        format!("{w_plain:.0}"),
        format!("{r_plain:.0}"),
    ]).expect("row width");
    t.row(vec![
        "compression".to_string(),
        format!("{w_comp:.0}"),
        format!("{r_comp:.0}"),
    ]).expect("row width");
    t.row(vec![
        "paper (compression)".to_string(),
        "1600".to_string(),
        "800".to_string(),
    ]).expect("row width");
    format!(
        "E10: transparent compression, {} MB sequential file\n\
         (measured compression ratio: {:.0}% of original;\n\
         writes pipeline compression with the previous segment's write,\n\
         reads serialize read + decompression)\n\n{}",
        file_bytes >> 20,
        ratio * 100.0,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_shapes_match_paper() {
        let (w_plain, r_plain, _) = throughputs(96 << 20, 6 << 20, false);
        let (w_comp, r_comp, ratio) = throughputs(96 << 20, 6 << 20, true);
        // Ratio near 60%.
        assert!((0.40..0.70).contains(&ratio), "ratio {ratio:.2}");
        // Write loses some throughput but stays within ~40% (paper: 21%).
        assert!(w_comp < w_plain);
        assert!(
            w_comp > 0.55 * w_plain,
            "write with compression {w_comp:.0} vs without {w_plain:.0}"
        );
        // Read pays the serialized decompression: clearly slower.
        assert!(
            r_comp < 0.8 * r_plain,
            "read with compression {r_comp:.0} vs without {r_plain:.0}"
        );
        // Absolute bands around the paper's 1600/800 (KB/s).
        assert!(
            (1100.0..2100.0).contains(&w_comp),
            "write {w_comp:.0} KB/s (paper 1600)"
        );
        assert!(
            (500.0..1100.0).contains(&r_comp),
            "read {r_comp:.0} KB/s (paper 800)"
        );
    }
}
