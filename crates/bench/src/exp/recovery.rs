//! E6 — recovery time (§4.2): "we measured the time for MINIX LLD to start
//! after a failure. The combined time for LD and MINIX to recover was 12
//! seconds. This number measures the cost of reading 788 segment summary
//! blocks (including the list information), building up the block-number
//! map, and reading the superblock, root i-node, and initializing the
//! MINIX file system data structures."

use minix_fs::{FsConfig, LdStore, MinixFs};
use simdisk::BlockDev;

use crate::report::{secs, Table};
use crate::rig;
use crate::workload::compressible_data;

/// Loads the file system, crashes it, and measures the recovery sweep.
pub fn run(opts: super::Opts) -> String {
    let (disk_bytes, nfiles) = if opts.quick {
        (64 << 20, 300)
    } else {
        (rig::PARTITION_BYTES, 2_000)
    };

    // Build a populated MINIX LLD.
    let mut fs = rig::minix_lld(disk_bytes);
    let data = compressible_data(4 << 10, 0xEC);
    for i in 0..nfiles {
        let ino = fs.create(&format!("/f{i:05}")).expect("create");
        fs.write(ino, 0, &data).expect("write");
    }
    fs.sync().expect("sync");

    // Crash: drop every in-memory structure. No checkpoint exists because
    // there was no clean shutdown.
    let mut disk = fs.into_store().into_disk();
    disk.crash_now();
    disk.revive();
    disk.reset_stats();

    // Recover LD (the sweep) and remount MINIX.
    let t0 = disk.now_us();
    let store = LdStore::mount(disk, rig::lld_config()).expect("LD recovery");
    let lld_stats = *store.lld().stats();
    let mut fs = MinixFs::mount(
        store,
        FsConfig {
            ..rig::minix_config()
        },
    )
    .expect("mount");
    let total_us = fs.now_us() - t0;

    // Verify the recovered state actually works.
    let ino = fs.lookup("/f00000").expect("recovered file");
    let mut buf = vec![0u8; 4 << 10];
    assert_eq!(fs.read(ino, 0, &mut buf).expect("read"), 4 << 10);
    assert_eq!(buf, data, "recovered contents must match");

    assert!(
        !lld_stats.recovered_from_checkpoint,
        "a crash recovery must use the sweep, not a checkpoint"
    );

    let mut t = Table::new(vec!["quantity", "paper", "measured"]);
    t.row(vec![
        "segment summaries read".to_string(),
        "788".to_string(),
        lld_stats.recovery_summaries_read.to_string(),
    ]).expect("row width");
    t.row(vec![
        "LD sweep time (s)".to_string(),
        "-".to_string(),
        secs(lld_stats.recovery_us),
    ]).expect("row width");
    t.row(vec![
        "LD + MINIX total (s)".to_string(),
        "12".to_string(),
        secs(total_us),
    ]).expect("row width");
    format!(
        "E6: recovery after failure ({} MB partition, {} files loaded)\n\n{}",
        disk_bytes >> 20,
        nfiles,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn recovery_runs_and_reads_only_summaries() {
        let out = super::run(super::super::Opts { quick: true, trace: None, faults: None });
        assert!(out.contains("segment summaries read"));
    }
}
