//! The two Sprite-LFS microbenchmarks (§4.2), reimplemented from their
//! description: small-file create/read/delete and the five-phase 80 MB
//! large-file benchmark.

use crate::driver::Bencher;
use crate::workload::{compressible_data, file_names, shuffled};

/// Small-file results, files per second (Table 4's unit).
#[derive(Debug, Clone, Copy)]
pub struct SmallFileResult {
    /// Files created (and written) per second.
    pub create_per_s: f64,
    /// Files read per second.
    pub read_per_s: f64,
    /// Files deleted per second.
    pub delete_per_s: f64,
}

/// "The first benchmark measures small file I/O: the cost of creating,
/// reading, and deleting N files in one directory." Each phase is fenced
/// with a sync, and the cache is flushed between phases.
pub fn small_file<B: Bencher>(fs: &mut B, n: usize, file_bytes: usize) -> SmallFileResult {
    let names = file_names(n);
    let data = compressible_data(file_bytes, 0x5F11E);

    // Create.
    let t0 = fs.now_us();
    for name in &names {
        let h = fs.create(name);
        fs.write(h, 0, &data);
    }
    fs.sync();
    let create_us = fs.now_us() - t0;

    fs.drop_caches();

    // Read.
    let mut buf = vec![0u8; file_bytes];
    let t0 = fs.now_us();
    for name in &names {
        let h = fs.open(name);
        let got = fs.read(h, 0, &mut buf);
        assert_eq!(got, file_bytes, "short read of {name}");
    }
    let read_us = fs.now_us() - t0;

    fs.drop_caches();

    // Delete.
    let t0 = fs.now_us();
    for name in &names {
        fs.unlink(name);
    }
    fs.sync();
    let delete_us = fs.now_us() - t0;

    SmallFileResult {
        create_per_s: crate::report::ops_per_s(n as u64, create_us),
        read_per_s: crate::report::ops_per_s(n as u64, read_us),
        delete_per_s: crate::report::ops_per_s(n as u64, delete_us),
    }
}

/// Large-file results, KB per second (Table 5's unit).
#[derive(Debug, Clone, Copy)]
pub struct LargeFileResult {
    /// Sequential write of the whole file.
    pub write_seq: f64,
    /// Sequential read.
    pub read_seq: f64,
    /// Random (shuffled chunk order) rewrite of the whole file.
    pub write_rand: f64,
    /// Random read of the whole file.
    pub read_rand: f64,
    /// Sequential re-read after the random writes.
    pub reread_seq: f64,
}

/// "The second benchmark ... writing and reading an 80-Mbyte file from a
/// newly created file system in five stages" (8 KB chunks).
pub fn large_file<B: Bencher>(fs: &mut B, file_bytes: u64, chunk: usize) -> LargeFileResult {
    let nchunks = (file_bytes / chunk as u64) as usize;
    let data = compressible_data(chunk, 0xB16F11E);
    let handle = fs.create("/bigfile");

    // 1. Sequential write.
    let t0 = fs.now_us();
    for i in 0..nchunks {
        fs.write(handle, (i * chunk) as u64, &data);
    }
    fs.sync();
    let write_seq = crate::report::kb_per_s(file_bytes, fs.now_us() - t0);
    fs.drop_caches();

    // 2. Sequential read.
    let mut buf = vec![0u8; chunk];
    let t0 = fs.now_us();
    for i in 0..nchunks {
        fs.read(handle, (i * chunk) as u64, &mut buf);
    }
    let read_seq = crate::report::kb_per_s(file_bytes, fs.now_us() - t0);
    fs.drop_caches();

    // 3. Random write (every chunk once, shuffled).
    let order = shuffled(nchunks, 0xAA);
    let t0 = fs.now_us();
    for &i in &order {
        fs.write(handle, (i * chunk) as u64, &data);
    }
    fs.sync();
    let write_rand = crate::report::kb_per_s(file_bytes, fs.now_us() - t0);
    fs.drop_caches();

    // 4. Random read (a different shuffle).
    let order = shuffled(nchunks, 0xBB);
    let t0 = fs.now_us();
    for &i in &order {
        fs.read(handle, (i * chunk) as u64, &mut buf);
    }
    let read_rand = crate::report::kb_per_s(file_bytes, fs.now_us() - t0);
    fs.drop_caches();

    // 5. Sequential re-read.
    let t0 = fs.now_us();
    for i in 0..nchunks {
        fs.read(handle, (i * chunk) as u64, &mut buf);
    }
    let reread_seq = crate::report::kb_per_s(file_bytes, fs.now_us() - t0);

    LargeFileResult {
        write_seq,
        read_seq,
        write_rand,
        read_rand,
        reread_seq,
    }
}
