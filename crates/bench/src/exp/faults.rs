//! E16 — media faults: throughput and recovery time vs injected error
//! rate, MINIX LLD vs plain MINIX.
//!
//! The paper's drives fail per sector, not wholesale; this experiment
//! runs a create-then-read workload against the deterministic media-fault
//! model (`simdisk::FaultConfig`) at increasing transient-error rates.
//! MINIX LLD completes every rate: the disk-manager layer retries reads
//! (bounded, costed in simulated time) below the file system, which never
//! sees a fault. Plain MINIX has no retry machinery — its first
//! unrecovered read error aborts the run. The recovery column crashes the
//! loaded image and replays the one-sweep recovery on a freshly
//! power-cycled (fault re-armed) drive, so the sweep itself runs on
//! faulty media too.
//!
//! A second stage demonstrates the scrub/relocate/remap pipeline against
//! *latent* sector errors: a media scan discovers the failing sectors
//! before any client read trips over them, live blocks are relocated off
//! the failing segments, the sectors retire into the persistent remap
//! table, and `ldck` verifies the cleanly-shut-down image — remap table
//! included.

use ld_core::LogicalDisk;
use minix_fs::{LdStore, MinixFs};
use simdisk::FaultConfig;

use crate::report::Table;
use crate::rig;
use crate::workload::compressible_data;

/// Fault-schedule seed for the transient-rate sweep.
const SWEEP_SEED: u64 = 0xFA01;

/// Fault-schedule seed for the latent-fault scrub stage. The schedule is
/// a pure hash, so this choice is load-bearing: it is picked so that no
/// latent sector lands under the demo's live file data (the data on a
/// latent sector is genuinely unreadable — no amount of machinery can
/// resurrect it, only report it). The run asserts zero unreadable blocks;
/// if an allocation change ever moves live data onto a scheduled sector,
/// that assert fires and this seed needs re-tuning.
const SCRUB_SEED: u64 = 26;

/// LLD config for this experiment: the rig's, with a retry budget deep
/// enough that a multi-sector span with several transient faults still
/// reads (each transient sector fails at most `maxfail` times, but one
/// span retry only gets past one of them per attempt).
fn lld_config() -> lld::LldConfig {
    lld::LldConfig {
        read_retries: 12,
        ..rig::lld_config()
    }
}

fn transient(ppm: u32) -> FaultConfig {
    FaultConfig {
        seed: SWEEP_SEED,
        transient_ppm: ppm,
        ..FaultConfig::default()
    }
}

/// Create `n` 4 KB files, sync, then read each back; returns files/s over
/// the whole run.
fn lld_workload(
    fs: &mut MinixFs<LdStore<simdisk::SimDisk>>,
    n: usize,
    data: &[u8],
) -> f64 {
    let t0 = fs.now_us();
    for i in 0..n {
        let h = fs.create(&format!("/f{i:04}")).expect("create");
        fs.write(h, 0, data).expect("write");
    }
    fs.sync().expect("sync");
    fs.drop_caches().expect("drop caches");
    let mut buf = vec![0u8; data.len()];
    for i in 0..n {
        let h = fs.lookup(&format!("/f{i:04}")).expect("lookup");
        let got = fs.read(h, 0, &mut buf).expect("read");
        assert_eq!(got, data.len(), "short read under faults");
        assert_eq!(buf, data, "retried read returned wrong bytes");
    }
    crate::report::ops_per_s(n as u64, fs.now_us() - t0)
}

/// The same workload on plain MINIX, with errors caught instead of
/// unwrapped: returns the files/s cell, or a `failed` marker naming how
/// far the run got before the first unrecovered read error.
fn minix_raw_cell(n: usize, data: &[u8], disk_bytes: u64, cfg: Option<FaultConfig>) -> String {
    let mut fs = rig::minix(disk_bytes);
    if let Some(cfg) = cfg {
        fs.store_mut().disk_mut().set_faults(cfg);
    }
    let t0 = fs.now_us();
    let mut reads_done = 0usize;
    let result = (|| -> minix_fs::Result<()> {
        for i in 0..n {
            let h = fs.create(&format!("/f{i:04}"))?;
            fs.write(h, 0, data)?;
        }
        fs.sync()?;
        fs.drop_caches()?;
        let mut buf = vec![0u8; data.len()];
        for i in 0..n {
            let h = fs.lookup(&format!("/f{i:04}"))?;
            fs.read(h, 0, &mut buf)?;
            reads_done += 1;
        }
        Ok(())
    })();
    match result {
        Ok(()) => crate::report::rate(crate::report::ops_per_s(n as u64, fs.now_us() - t0)),
        Err(_) => format!("failed ({reads_done}/{n} reads)"),
    }
}

/// Runs the rate sweep and the latent-fault scrub stage.
pub fn run(opts: super::Opts) -> String {
    // Sequential reads mostly ride the drive's read-ahead buffer, which
    // (correctly) cannot fault — only mechanical reads consult the fault
    // schedule. The top rate is chosen high enough that the run's
    // mechanical reads are certain to hit scheduled sectors.
    let (n, rates): (usize, &[u32]) = if opts.quick {
        (200, &[0, 20_000])
    } else {
        (600, &[0, 500, 4_000, 20_000])
    };
    let disk_bytes: u64 = 48 << 20;
    let data = compressible_data(4 << 10, 0xFA17);

    let mut t = Table::new(vec![
        "transient (ppm)",
        "MINIX LLD (files/s)",
        "retries",
        "recovery (ms)",
        "sweep retries",
        "MINIX (files/s)",
    ]);
    for &ppm in rates {
        let cfg = (ppm > 0).then(|| transient(ppm));

        // MINIX LLD leg: full workload, then crash + sweep recovery.
        let mut fs = rig::minix_lld_with(disk_bytes, lld_config(), rig::minix_config());
        if let Some(cfg) = cfg {
            fs.store_mut().disk_mut().set_faults(cfg);
        }
        let files_per_s = lld_workload(&mut fs, n, &data);
        let run_stats = *fs.store().lld().stats();
        assert_eq!(
            run_stats.unreadable_blocks, 0,
            "transient faults must always be recovered by retries"
        );

        let mut disk = fs.into_store().into_disk();
        disk.crash_now();
        disk.revive();
        if let Some(cfg) = cfg {
            // A power cycle re-arms the drive's transient faults: the
            // recovery sweep must retry its way through them too.
            disk.set_faults(cfg);
        }
        let store = LdStore::mount(disk, lld_config()).expect("LD recovery under faults");
        let rec_stats = *store.lld().stats();
        let mut fs = MinixFs::mount(store, rig::minix_config()).expect("mount");
        let h = fs.lookup("/f0000").expect("recovered file");
        let mut buf = vec![0u8; data.len()];
        assert_eq!(fs.read(h, 0, &mut buf).expect("read"), data.len());
        assert_eq!(buf, data, "recovered contents must match");

        t.row(vec![
            ppm.to_string(),
            crate::report::rate(files_per_s),
            run_stats.retries.to_string(),
            format!("{:.1}", rec_stats.recovery_us as f64 / 1e3),
            rec_stats.retries.to_string(),
            minix_raw_cell(n, &data, disk_bytes, cfg),
        ])
        .expect("row width");
    }
    let mut out = format!(
        "E16: media faults — {n} x 4 KB files, create+read, {} MB partition\n\
         (transient sector errors; LLD retries below the file system,\n\
         plain MINIX aborts on its first unrecovered read error)\n\n{}",
        disk_bytes >> 20,
        t.render()
    );
    assert!(
        out.contains("failed"),
        "plain MINIX should not survive the sweep's top error rate"
    );

    // Stage 2: latent sector errors — scrub, relocate, remap, verify.
    // Fixed scale (independent of --quick): the point is the pipeline,
    // not throughput.
    let scrub_cfg = FaultConfig {
        seed: SCRUB_SEED,
        transient_ppm: 1000,
        latent_ppm: 300,
        ..FaultConfig::default()
    };
    let demo_disk: u64 = 32 << 20;
    let demo_n = 360usize;
    let mut fs = rig::minix_lld_with(demo_disk, lld_config(), rig::minix_config());
    for i in 0..demo_n {
        let h = fs.create(&format!("/d{i:03}")).expect("create");
        fs.write(h, 0, &data).expect("write");
    }
    fs.sync().expect("sync");
    // Delete every other file so the live segments carry dead extents:
    // a latent sector under one is remappable, while the surviving
    // neighbours get relocated off the failing segment.
    for i in (1..demo_n).step_by(2) {
        fs.unlink(&format!("/d{i:03}")).expect("unlink");
    }
    fs.sync().expect("sync");
    // The defects were there all along; the workload above just never
    // read the affected sectors. Enable the model and go looking.
    fs.store_mut().disk_mut().set_faults(scrub_cfg);
    let (relocated, remapped, unreadable) =
        fs.store_mut().lld_mut().media_scan().expect("media scan");
    fs.drop_caches().expect("drop caches");
    let survivors = demo_n.div_ceil(2);
    let mut intact = 0usize;
    let mut buf = vec![0u8; data.len()];
    for i in (0..demo_n).step_by(2) {
        let h = fs.lookup(&format!("/d{i:03}")).expect("lookup");
        if fs.read(h, 0, &mut buf).is_ok() && buf == data {
            intact += 1;
        }
    }
    fs.sync().expect("sync");
    let mut store = fs.into_store();
    let stats = *store.lld().stats();
    store.lld_mut().shutdown().expect("clean shutdown");
    let image = store.into_disk().image_bytes();
    let report = ldck::check_image(&image, &lld_config());

    assert!(stats.retries > 0, "the media scan must have retried reads");
    assert!(remapped > 0, "the latent schedule must retire some sectors");
    assert_eq!(unreadable, 0, "no live block may sit on a latent sector (re-tune SCRUB_SEED)");
    assert_eq!(intact, survivors, "every surviving file must come through the scrub intact");
    assert!(report.is_clean(), "scrubbed image must pass ldck: {:?}", report.findings);
    assert_eq!(
        report.stats.bad_sectors, remapped,
        "the checkpointed remap table must carry every retired sector"
    );

    let mut s = Table::new(vec!["quantity", "value"]);
    s.row(vec!["latent schedule (ppm)".to_string(), scrub_cfg.latent_ppm.to_string()])
        .expect("row width");
    s.row(vec!["sectors retired to remap table".to_string(), remapped.to_string()])
        .expect("row width");
    s.row(vec!["live blocks relocated".to_string(), relocated.to_string()])
        .expect("row width");
    s.row(vec!["unreadable blocks".to_string(), unreadable.to_string()])
        .expect("row width");
    s.row(vec![format!("files intact (of {survivors})"), intact.to_string()])
        .expect("row width");
    s.row(vec!["read retries spent".to_string(), stats.retries.to_string()])
        .expect("row width");
    s.row(vec![
        "ldck on final image".to_string(),
        format!(
            "{}, {} remap entries",
            if report.is_clean() { "clean" } else { "errors" },
            report.stats.bad_sectors
        ),
    ])
    .expect("row width");
    out.push_str(&format!(
        "\nLatent-fault scrub ({} MB partition, media scan + relocate + remap):\n\n{}",
        demo_disk >> 20,
        s.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn faults_experiment_completes_quick() {
        let out = super::run(super::super::Opts {
            quick: true,
            ..Default::default()
        });
        assert!(out.contains("transient (ppm)"));
        assert!(out.contains("Latent-fault scrub"));
        assert!(out.contains("clean"));
    }
}
