//! E2 — Table 3: "The percentage cost that LLD adds to the cost of disks
//! for different prices of main memory and disk space", for the best case
//! (1.5 MB RAM per GB) and the worst case (4.6 MB RAM per GB).

use lld::{ListGranularity, MemoryModel};

use crate::report::Table;

const GB: u64 = 1 << 30;

/// Renders Table 3.
pub fn run(_opts: super::Opts) -> String {
    let best = MemoryModel::paper(GB, 4096, 512 << 10, false, ListGranularity::SingleList);
    let worst = MemoryModel::paper(
        GB,
        4096,
        512 << 10,
        true,
        ListGranularity::PerFile {
            avg_file_bytes: 8192,
        },
    );

    let cell = |ram: f64, disk_price: f64| {
        format!(
            "{:.0}% or {:.0}%",
            best.cost_percentage(GB, ram, disk_price),
            worst.cost_percentage(GB, ram, disk_price)
        )
    };

    let mut t = Table::new(vec![
        "Price of a Mbyte RAM",
        "$750 / Gbyte disk",
        "$1500 / Gbyte disk",
    ]);
    t.row(vec![
        "$30".to_string(),
        cell(30.0, 750.0),
        cell(30.0, 1500.0),
    ]).expect("row width");
    t.row(vec![
        "$50".to_string(),
        cell(50.0, 750.0),
        cell(50.0, 1500.0),
    ]).expect("row width");

    format!(
        "E2: Table 3 — % cost LLD adds to a disk (best case or worst case)\n\
         (paper: 6%/18%, 3%/9%, 10%/31%, 5%/15%)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn table3_reproduces_paper_cells() {
        let out = super::run(super::super::Opts { quick: true, trace: None, faults: None });
        // Paper cells: $30+$750 → 6%/18%; $50+$750 → 10%/31%;
        // $30+$1500 → 3%/9%; $50+$1500 → 5%/15%.
        assert!(out.contains("6% or 18%"), "{out}");
        assert!(out.contains("10% or 31%"), "{out}");
        assert!(out.contains("3% or 9%"), "{out}");
        assert!(out.contains("5% or 15%"), "{out}");
    }
}
