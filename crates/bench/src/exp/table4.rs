//! E3 — Table 4: small-file I/O. "The cost of creating, reading, and
//! deleting 10,000 1-Kbyte files and 1,000 10-Kbyte files in one
//! directory", in files per second, for MINIX LLD, MINIX, and SunOS.
//!
//! Relations the paper reports (the exact cell values are what this
//! experiment regenerates):
//! - create: MINIX LLD > MINIX ("MINIX LLD collects many changes in a
//!   single write") ≫ SunOS (synchronous creates);
//! - read: MINIX LLD ≈ MINIX; SunOS worse ("probably ... unsuccessful
//!   read-ahead");
//! - delete: MINIX LLD ≈ MINIX ≫ SunOS (synchronous deletes).

use crate::driver::{Bencher, MinixLld, MinixRaw, Sunos};
use crate::exp::phases::{small_file, SmallFileResult};
use crate::report::Table;
use crate::rig;

fn fmt(r: &SmallFileResult) -> [String; 3] {
    [
        crate::report::rate(r.create_per_s),
        crate::report::rate(r.read_per_s),
        crate::report::rate(r.delete_per_s),
    ]
}

fn json_row(n: usize, bytes: usize, label: &str, r: &SmallFileResult) -> String {
    format!(
        "    {{\"files\": {n}, \"file_bytes\": {bytes}, \"fs\": \"{label}\", \
         \"create_per_s\": {:.1}, \"read_per_s\": {:.1}, \"delete_per_s\": {:.1}}}",
        r.create_per_s, r.read_per_s, r.delete_per_s
    )
}

/// Runs both file-size variants over all three file systems; also
/// returns the machine-readable rows for `--json-out`.
pub fn run_json(opts: super::Opts) -> (String, String) {
    let (n_small, n_big) = if opts.quick {
        (1_000, 100)
    } else {
        (10_000, 1_000)
    };
    let disk_bytes = rig::PARTITION_BYTES;

    let mut json_rows: Vec<String> = Vec::new();
    let mut out =
        String::from("E3: Table 4 — small-file I/O (files/second; C=create R=read D=delete)\n\n");
    for (n, bytes, label) in [
        (n_small, 1 << 10, "1-Kbyte files"),
        (n_big, 10 << 10, "10-Kbyte files"),
    ] {
        let mut t = Table::new(vec!["File system", "C", "R", "D"]);
        let mut footnotes = String::new();
        let exp = format!("table4/{label}");

        let mut fs = MinixLld(rig::minix_lld(disk_bytes));
        crate::faultctl::inject(&mut fs, &opts);
        let tr = crate::tracectl::maybe_attach(&mut fs, &opts);
        let r = small_file(&mut fs, n, bytes);
        json_rows.push(json_row(n, bytes, fs.label(), &r));
        let c = fmt(&r);
        t.row(vec![
            fs.label().to_string(),
            c[0].clone(),
            c[1].clone(),
            c[2].clone(),
        ]).expect("row width");
        footnotes.push_str(&crate::tracectl::finish(tr, &fs, &opts, &exp));
        footnotes.push_str(&crate::faultctl::finish(fs, &opts));

        let mut fs = MinixRaw(rig::minix(disk_bytes));
        let tr = crate::tracectl::maybe_attach(&mut fs, &opts);
        let r = small_file(&mut fs, n, bytes);
        json_rows.push(json_row(n, bytes, fs.label(), &r));
        let c = fmt(&r);
        t.row(vec![
            fs.label().to_string(),
            c[0].clone(),
            c[1].clone(),
            c[2].clone(),
        ]).expect("row width");
        footnotes.push_str(&crate::tracectl::finish(tr, &fs, &opts, &exp));

        let mut fs = Sunos(rig::sunos(disk_bytes));
        let tr = crate::tracectl::maybe_attach(&mut fs, &opts);
        let r = small_file(&mut fs, n, bytes);
        json_rows.push(json_row(n, bytes, fs.label(), &r));
        let c = fmt(&r);
        t.row(vec![
            fs.label().to_string(),
            c[0].clone(),
            c[1].clone(),
            c[2].clone(),
        ]).expect("row width");
        footnotes.push_str(&crate::tracectl::finish(tr, &fs, &opts, &exp));

        out.push_str(&format!("{n} x {label}\n{}", t.render()));
        if !footnotes.is_empty() {
            out.push_str(&format!("where the disk time went:\n{footnotes}"));
        }
        out.push('\n');
    }
    let json = format!(
        "{{\n  \"experiment\": \"table4\",\n  \"quick\": {},\n  \"unit\": \"files/s\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        opts.quick,
        json_rows.join(",\n")
    );
    (out, json)
}

/// Runs both file-size variants (text report only).
pub fn run(opts: super::Opts) -> String {
    run_json(opts).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table 4 relations hold at reduced scale.
    #[test]
    fn relations_hold_quick() {
        let n = 300;
        let bytes = 1 << 10;
        let disk = 64 << 20;

        let mut lld_fs = MinixLld(rig::minix_lld(disk));
        let lld = small_file(&mut lld_fs, n, bytes);
        let mut raw_fs = MinixRaw(rig::minix(disk));
        let raw = small_file(&mut raw_fs, n, bytes);
        let mut sun_fs = Sunos(rig::sunos(disk));
        let sun = small_file(&mut sun_fs, n, bytes);

        assert!(
            lld.create_per_s > 1.5 * raw.create_per_s,
            "LLD create {:.0}/s must beat MINIX {:.0}/s clearly",
            lld.create_per_s,
            raw.create_per_s
        );
        assert!(
            raw.create_per_s > 2.0 * sun.create_per_s,
            "MINIX create {:.0}/s must beat synchronous SunOS {:.0}/s",
            raw.create_per_s,
            sun.create_per_s
        );
        assert!(
            lld.delete_per_s > 2.0 * sun.delete_per_s,
            "LLD delete {:.0}/s must beat synchronous SunOS {:.0}/s",
            lld.delete_per_s,
            sun.delete_per_s
        );
        // Reads are within 2x of each other for the MINIX variants.
        let ratio = lld.read_per_s / raw.read_per_s;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "MINIX LLD and MINIX read rates should be comparable (ratio {ratio:.2})"
        );
    }
}
