//! E17 — command queueing and I/O scheduling: scheduler × queue-depth
//! sweep over the Sprite-LFS microbenchmarks and a cleaner-under-load
//! workload.
//!
//! The paper's headline numbers (§4.2: 2400 KB/s segment writes vs
//! ~300 KB/s back-to-back 4 KB writes) are pure scheduling effects —
//! large transfers amortize seek and rotation. With the tagged command
//! queue the LLD can go further: write-behind seals segments without
//! blocking, adjacent seals coalesce into one transfer, and the cleaner
//! fetches several victims as one scheduler-ordered batch. The sweep
//! shows where each effect pays:
//!
//! - **cleaner under load** (90/10 hot/cold overwrites on a 70 %-full
//!   disk, 128 KB segments so positioning dominates): seals and victim
//!   reads interleave, so reordering and coalescing both bite — `Look`
//!   and `Satf` at depth ≥ 4 beat `Fcfs` at depth 1;
//! - **microbenchmarks**: mostly sequential log writes, where depth
//!   buys coalesced back-to-back seals but reordering has little to do.

use ld_core::{FailureSet, ListHints, LogicalDisk, Pred, PredList};
use lld::{Lld, LldConfig};
use simdisk::{BlockDev, QueueStats, Scheduler};

use crate::driver::MinixLld;
use crate::exp::phases::{large_file, small_file, LargeFileResult, SmallFileResult};
use crate::report::Table;
use crate::rig;
use crate::workload::{compressible_data, rng};

use rand::Rng;

/// One configuration of the sweep: `depth == 0` is queueing off (the
/// direct path), `depth == 1` is queued but synchronous.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    pub scheduler: Scheduler,
    pub depth: u32,
}

impl Point {
    fn label(&self) -> String {
        if self.depth == 0 {
            "off (direct)".to_string()
        } else {
            format!("{} @ {}", self.scheduler.name(), self.depth)
        }
    }
}

/// The cleaner-under-load sweep: every scheduler at depth 4, FCFS at
/// depths 0/1/4 as the baselines, SATF additionally at depth 8.
pub const SWEEP: &[Point] = &[
    Point { scheduler: Scheduler::Fcfs, depth: 0 },
    Point { scheduler: Scheduler::Fcfs, depth: 1 },
    Point { scheduler: Scheduler::Fcfs, depth: 4 },
    Point { scheduler: Scheduler::Sstf, depth: 4 },
    Point { scheduler: Scheduler::Look, depth: 4 },
    Point { scheduler: Scheduler::Satf, depth: 4 },
    Point { scheduler: Scheduler::Satf, depth: 8 },
];

/// The (cheaper) microbenchmark sweep.
const MICRO_SWEEP: &[Point] = &[
    Point { scheduler: Scheduler::Fcfs, depth: 0 },
    Point { scheduler: Scheduler::Fcfs, depth: 1 },
    Point { scheduler: Scheduler::Look, depth: 4 },
    Point { scheduler: Scheduler::Satf, depth: 8 },
];

fn with_queue(base: LldConfig, p: Point) -> LldConfig {
    LldConfig {
        queue_depth: p.depth,
        writeback_depth: p.depth.saturating_sub(1),
        scheduler: p.scheduler,
        ..base
    }
}

/// Cleaner-under-load result for one sweep point.
#[derive(Debug, Clone, Copy)]
pub struct CleanerResult {
    /// User-write throughput, KB/s (includes cleaning and the final
    /// flush — the cost the application actually observes).
    pub kb_per_s: f64,
    pub segments_cleaned: u64,
    pub queue: QueueStats,
}

/// 90/10 hot/cold overwrites on a 70 %-full LLD with 128 KB segments.
/// Small segments keep per-transfer positioning significant, which is
/// exactly what scheduling and coalescing recover.
pub fn cleaner_under_load(p: Point, disk_bytes: u64, writes: usize) -> CleanerResult {
    let config = with_queue(
        LldConfig {
            segment_bytes: 128 << 10,
            ..rig::lld_config()
        },
        p,
    );
    let mut ld = Lld::format(rig::disk_sized(disk_bytes), config).expect("format");
    let lid = ld
        .new_list(PredList::Start, ListHints::default())
        .expect("list");
    let nblocks = (ld.capacity_bytes() * 7 / 10 / 4096) as usize;
    let data = compressible_data(4096, 0xAB);
    let mut bids = Vec::with_capacity(nblocks);
    let mut pred = Pred::Start;
    for _ in 0..nblocks {
        let b = ld.new_block(lid, pred).expect("alloc");
        ld.write(b, &data).expect("fill");
        bids.push(b);
        pred = Pred::After(b);
    }
    ld.flush(FailureSet::PowerFailure).expect("flush fill");
    ld.reset_stats();

    let hot = nblocks / 10;
    let mut r = rng(0xC01D);
    let t0 = ld.disk().now_us();
    for _ in 0..writes {
        let idx = if r.gen_bool(0.9) {
            r.gen_range(0..hot)
        } else {
            r.gen_range(hot..nblocks)
        };
        ld.write(bids[idx], &data).expect("overwrite");
    }
    ld.flush(FailureSet::PowerFailure).expect("flush");
    let elapsed = ld.disk().now_us() - t0;

    CleanerResult {
        kb_per_s: crate::report::kb_per_s(writes as u64 * 4096, elapsed),
        segments_cleaned: ld.stats().segments_cleaned,
        queue: ld.queue_stats().unwrap_or_default(),
    }
}

/// Microbenchmark results for one sweep point.
pub struct MicroResult {
    pub small: SmallFileResult,
    pub large: LargeFileResult,
    pub queue: QueueStats,
}

/// Sprite-LFS small-file and large-file benchmarks over MINIX LLD with
/// the given queue configuration (fresh file system for each).
pub fn micro(p: Point, disk_bytes: u64, nfiles: usize, large_bytes: u64) -> MicroResult {
    let lld_config = with_queue(rig::lld_config(), p);
    let mut fs = MinixLld(rig::minix_lld_with(
        disk_bytes,
        lld_config.clone(),
        rig::minix_config(),
    ));
    let small = small_file(&mut fs, nfiles, 1 << 10);
    let mut q = fs.store().lld().queue_stats().unwrap_or_default();

    let mut fs = MinixLld(rig::minix_lld_with(
        disk_bytes,
        lld_config,
        rig::minix_config(),
    ));
    let large = large_file(&mut fs, large_bytes, 8192);
    let q2 = fs.store().lld().queue_stats().unwrap_or_default();
    q.coalesced += q2.coalesced;
    q.coalesced_sectors += q2.coalesced_sectors;
    q.submitted += q2.submitted;
    q.dispatched += q2.dispatched;
    q.depth_sum += q2.depth_sum;
    q.max_depth = q.max_depth.max(q2.max_depth);

    MicroResult { small, large, queue: q }
}

fn depth_cell(q: &QueueStats) -> String {
    if q.dispatched == 0 {
        "-".to_string()
    } else {
        format!("{:.1}/{}", q.mean_depth(), q.max_depth)
    }
}

/// Renders the experiment; also returns the machine-readable rows for
/// `--json-out`.
pub fn run_json(opts: super::Opts) -> (String, String) {
    let (disk_bytes, writes, nfiles, large_bytes, micro_disk) = if opts.quick {
        (24u64 << 20, 4_000usize, 400usize, 8u64 << 20, 64u64 << 20)
    } else {
        (48 << 20, 20_000, 2_000, 48 << 20, rig::PARTITION_BYTES)
    };

    let mut json = String::from("{\n  \"experiment\": \"e17\",\n");
    json.push_str(&format!("  \"quick\": {},\n", opts.quick));
    json.push_str("  \"cleaner_under_load\": [\n");

    let mut t1 = Table::new(vec![
        "queue",
        "KB/s",
        "cleaned",
        "coalesced (sectors)",
        "depth mean/max",
    ]);
    let mut baseline = 0.0f64;
    let mut rows = Vec::new();
    for (i, p) in SWEEP.iter().enumerate() {
        let r = cleaner_under_load(*p, disk_bytes, writes);
        if p.depth <= 1 {
            baseline = baseline.max(r.kb_per_s);
        }
        t1.row(vec![
            p.label(),
            crate::report::rate(r.kb_per_s),
            r.segments_cleaned.to_string(),
            format!("{} ({})", r.queue.coalesced, r.queue.coalesced_sectors),
            depth_cell(&r.queue),
        ])
        .expect("row width");
        json.push_str(&format!(
            "    {{\"scheduler\": \"{}\", \"depth\": {}, \"kb_per_s\": {:.1}, \
             \"segments_cleaned\": {}, \"coalesced\": {}, \"coalesced_sectors\": {}, \
             \"mean_depth\": {:.2}, \"max_depth\": {}}}{}\n",
            p.scheduler.name(),
            p.depth,
            r.kb_per_s,
            r.segments_cleaned,
            r.queue.coalesced,
            r.queue.coalesced_sectors,
            r.queue.mean_depth(),
            r.queue.max_depth,
            if i + 1 == SWEEP.len() { "" } else { "," },
        ));
        rows.push((*p, r));
    }
    json.push_str("  ],\n  \"microbench\": [\n");

    let mut t2 = Table::new(vec![
        "queue",
        "small C",
        "small R",
        "small D",
        "large Wseq",
        "large Wrand",
        "coalesced (sectors)",
    ]);
    for (i, p) in MICRO_SWEEP.iter().enumerate() {
        let m = micro(*p, micro_disk, nfiles, large_bytes);
        t2.row(vec![
            p.label(),
            crate::report::rate(m.small.create_per_s),
            crate::report::rate(m.small.read_per_s),
            crate::report::rate(m.small.delete_per_s),
            crate::report::rate(m.large.write_seq),
            crate::report::rate(m.large.write_rand),
            format!("{} ({})", m.queue.coalesced, m.queue.coalesced_sectors),
        ])
        .expect("row width");
        json.push_str(&format!(
            "    {{\"scheduler\": \"{}\", \"depth\": {}, \"small_create_per_s\": {:.1}, \
             \"small_read_per_s\": {:.1}, \"small_delete_per_s\": {:.1}, \
             \"large_write_seq_kb_s\": {:.1}, \"large_write_rand_kb_s\": {:.1}, \
             \"coalesced\": {}, \"coalesced_sectors\": {}}}{}\n",
            p.scheduler.name(),
            p.depth,
            m.small.create_per_s,
            m.small.read_per_s,
            m.small.delete_per_s,
            m.large.write_seq,
            m.large.write_rand,
            m.queue.coalesced,
            m.queue.coalesced_sectors,
            if i + 1 == MICRO_SWEEP.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    let best = rows
        .iter()
        .filter(|(p, _)| p.depth >= 4)
        .max_by(|a, b| a.1.kb_per_s.total_cmp(&b.1.kb_per_s))
        .expect("sweep has deep points");

    let out = format!(
        "E17: command queueing + I/O scheduling (scheduler x depth sweep)\n\
         (paper anchor: the 2400-vs-300 KB/s gap of §4.2 is a scheduling\n\
         effect; queueing recovers positioning time the depth-1 stack\n\
         leaves on the table)\n\n\
         (a) cleaner under load: 90/10 hot/cold overwrites, 70%-full disk,\n\
         128 KB segments; user-write KB/s including cleaning\n{}\n\
         best deep config: {} at {} vs {} for the depth<=1 baseline\n\
         ({:+.1}%); wins come from coalesced adjacent seals, single-request\n\
         victim prefetch, and scheduler-ordered batches.\n\n\
         (b) Sprite-LFS microbenchmarks over MINIX LLD (files/s; KB/s)\n{}\n\
         mostly-sequential log writes: depth buys coalesced back-to-back\n\
         seals; reordering itself has little left to do.\n",
        t1.render(),
        best.0.label(),
        crate::report::rate(best.1.kb_per_s),
        crate::report::rate(baseline),
        (best.1.kb_per_s / baseline - 1.0) * 100.0,
        t2.render(),
    );
    (out, json)
}

/// Runs the sweep (text report only).
pub fn run(opts: super::Opts) -> String {
    run_json(opts).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance relation: a rotational-aware scheduler at depth
    /// >= 4 beats FCFS at depth 1 on the cleaner-under-load workload.
    #[test]
    fn reordering_beats_depth1_on_cleaner_load() {
        let disk = 24 << 20;
        let writes = 4_000;
        let fcfs1 = cleaner_under_load(
            Point { scheduler: Scheduler::Fcfs, depth: 1 },
            disk,
            writes,
        );
        let look4 = cleaner_under_load(
            Point { scheduler: Scheduler::Look, depth: 4 },
            disk,
            writes,
        );
        let satf8 = cleaner_under_load(
            Point { scheduler: Scheduler::Satf, depth: 8 },
            disk,
            writes,
        );
        let best = look4.kb_per_s.max(satf8.kb_per_s);
        assert!(
            best > fcfs1.kb_per_s * 1.02,
            "deep queueing must beat FCFS@1 measurably: best {:.0} KB/s vs {:.0} KB/s",
            best,
            fcfs1.kb_per_s
        );
    }

    /// Queueing off and FCFS depth 1 agree bit-for-bit on throughput.
    #[test]
    fn depth1_matches_direct_path_throughput() {
        let off = cleaner_under_load(
            Point { scheduler: Scheduler::Fcfs, depth: 0 },
            16 << 20,
            2_000,
        );
        let one = cleaner_under_load(
            Point { scheduler: Scheduler::Fcfs, depth: 1 },
            16 << 20,
            2_000,
        );
        assert_eq!(off.kb_per_s.to_bits(), one.kb_per_s.to_bits());
        assert_eq!(off.segments_cleaned, one.segments_cleaned);
    }
}
