//! E9 — the small-i-node-block variant (§4.2): "We measured a version of
//! MINIX LLD that allocates each i-node as a small block. ... this version
//! performs the same for write operations and worse for read operations on
//! the small-file benchmarks. ... This version of MINIX LLD exhibits the
//! same performance on the large-file benchmark."

use minix_fs::{FsConfig, InodeMode};

use crate::driver::MinixLld;
use crate::exp::phases::{large_file, small_file};
use crate::report::Table;
use crate::rig;

fn build(disk_bytes: u64, mode: InodeMode) -> MinixLld {
    let fs_config = FsConfig {
        inode_mode: mode,
        ..rig::minix_config()
    };
    MinixLld(rig::minix_lld_with(
        disk_bytes,
        rig::lld_config(),
        fs_config,
    ))
}

/// Compares packed i-node blocks against 64-byte i-node blocks.
pub fn run(opts: super::Opts) -> String {
    let (disk_bytes, n, file_mb) = if opts.quick {
        (64u64 << 20, 500, 4u64)
    } else {
        (rig::PARTITION_BYTES, 5_000, 32)
    };

    let mut out = String::from(
        "E9: i-node storage — packed i-node blocks vs 64-byte i-node blocks\n\
         (paper: create/delete similar, small-file reads worse with small\n\
         blocks, large-file unchanged)\n\n",
    );

    let mut t = Table::new(vec!["variant", "C (f/s)", "R (f/s)", "D (f/s)"]);
    let mut packed = build(disk_bytes, InodeMode::Packed);
    let rp = small_file(&mut packed, n, 1 << 10);
    t.row(vec![
        "packed i-node blocks".to_string(),
        crate::report::rate(rp.create_per_s),
        crate::report::rate(rp.read_per_s),
        crate::report::rate(rp.delete_per_s),
    ]).expect("row width");
    let mut small = build(disk_bytes, InodeMode::SmallBlocks);
    let rs = small_file(&mut small, n, 1 << 10);
    t.row(vec![
        "64-byte i-node blocks".to_string(),
        crate::report::rate(rs.create_per_s),
        crate::report::rate(rs.read_per_s),
        crate::report::rate(rs.delete_per_s),
    ]).expect("row width");
    out.push_str(&format!("{n} x 1 KB files\n{}\n", t.render()));

    let mut t = Table::new(vec!["variant", "seq write KB/s", "seq read KB/s"]);
    let mut packed = build(disk_bytes, InodeMode::Packed);
    let lp = large_file(&mut packed, file_mb << 20, 8192);
    t.row(vec![
        "packed i-node blocks".to_string(),
        crate::report::rate(lp.write_seq),
        crate::report::rate(lp.read_seq),
    ]).expect("row width");
    let mut small = build(disk_bytes, InodeMode::SmallBlocks);
    let ls = large_file(&mut small, file_mb << 20, 8192);
    t.row(vec![
        "64-byte i-node blocks".to_string(),
        crate::report::rate(ls.write_seq),
        crate::report::rate(ls.read_seq),
    ]).expect("row width");
    out.push_str(&format!("{file_mb} MB large file\n{}", t.render()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_inodes_same_large_file_performance() {
        let mut packed = build(64 << 20, InodeMode::Packed);
        let lp = large_file(&mut packed, 4 << 20, 8192);
        let mut small = build(64 << 20, InodeMode::SmallBlocks);
        let ls = large_file(&mut small, 4 << 20, 8192);
        // "exhibits the same performance on the large-file benchmark,
        // since this benchmark operates on a single file".
        let delta = (lp.write_seq - ls.write_seq).abs() / lp.write_seq;
        assert!(
            delta < 0.05,
            "large-file writes differ by {:.1}%",
            delta * 100.0
        );
    }

    #[test]
    fn small_inodes_hurt_small_file_reads() {
        let mut packed = build(48 << 20, InodeMode::Packed);
        let rp = small_file(&mut packed, 400, 1 << 10);
        let mut small = build(48 << 20, InodeMode::SmallBlocks);
        let rs = small_file(&mut small, 400, 1 << 10);
        assert!(
            rp.read_per_s > rs.read_per_s,
            "packed reads {:.0}/s must beat per-i-node reads {:.0}/s \
             (each i-node read separately)",
            rp.read_per_s,
            rs.read_per_s
        );
    }
}
