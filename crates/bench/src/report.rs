//! Plain-text table rendering for experiment output.

/// A simple aligned table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // First column left-aligned, the rest right-aligned.
                if i == 0 {
                    line.push_str(&format!("{c:<w$}", w = width[i]));
                } else {
                    line.push_str(&format!("{c:>w$}", w = width[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a microsecond duration as seconds with two decimals.
pub fn secs(us: u64) -> String {
    format!("{:.2}", us as f64 / 1e6)
}

/// Computes KB/s from bytes moved in a simulated interval.
pub fn kb_per_s(bytes: u64, us: u64) -> f64 {
    if us == 0 {
        return 0.0;
    }
    (bytes as f64 / 1024.0) / (us as f64 / 1e6)
}

/// Computes operations/second.
pub fn ops_per_s(ops: u64, us: u64) -> f64 {
    if us == 0 {
        return 0.0;
    }
    ops as f64 / (us as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "v1", "v2"]);
        t.row(vec!["alpha", "1", "22"]);
        t.row(vec!["b", "333", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("alpha"));
        // Right alignment of numeric columns.
        assert!(lines[3].contains("333"));
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(secs(1_500_000), "1.50");
        assert!((kb_per_s(1 << 20, 1_000_000) - 1024.0).abs() < 1e-9);
        assert!((ops_per_s(500, 2_000_000) - 250.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
