//! Plain-text table rendering for experiment output.

/// Errors from building a [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// A row's cell count did not match the header width.
    RowWidthMismatch {
        /// Header width.
        expected: usize,
        /// Cells supplied.
        got: usize,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::RowWidthMismatch { expected, got } => {
                write!(f, "row width mismatch: expected {expected} cells, got {got}")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// A simple aligned table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row; errors if the cell count does not match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> Result<&mut Self, TableError> {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        if cells.len() != self.header.len() {
            return Err(TableError::RowWidthMismatch {
                expected: self.header.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells);
        Ok(self)
    }

    /// Renders with aligned columns. A zero-column table renders as an
    /// empty header and separator rather than failing.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // First column left-aligned, the rest right-aligned.
                if i == 0 {
                    line.push_str(&format!("{c:<w$}", w = width[i]));
                } else {
                    line.push_str(&format!("{c:>w$}", w = width[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * ncols.saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a microsecond duration as seconds with two decimals.
pub fn secs(us: u64) -> String {
    format!("{:.2}", us as f64 / 1e6)
}

/// Computes KB/s from bytes moved in a simulated interval. A zero-length
/// interval has no meaningful rate and yields NaN ([`rate`] renders it
/// as `-`), distinct from a measured rate of zero.
pub fn kb_per_s(bytes: u64, us: u64) -> f64 {
    if us == 0 {
        return f64::NAN;
    }
    (bytes as f64 / 1024.0) / (us as f64 / 1e6)
}

/// Computes operations/second; NaN when no time elapsed (see [`kb_per_s`]).
pub fn ops_per_s(ops: u64, us: u64) -> f64 {
    if us == 0 {
        return f64::NAN;
    }
    ops as f64 / (us as f64 / 1e6)
}

/// Formats a rate for a table cell: whole number, or `-` when the rate
/// is undefined (NaN from a zero-length measurement interval).
pub fn rate(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "v1", "v2"]);
        t.row(vec!["alpha", "1", "22"]).unwrap();
        t.row(vec!["b", "333", "4"]).unwrap();
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("alpha"));
        // Right alignment of numeric columns.
        assert!(lines[3].contains("333"));
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(secs(1_500_000), "1.50");
        assert!((kb_per_s(1 << 20, 1_000_000) - 1024.0).abs() < 1e-9);
        assert!((ops_per_s(500, 2_000_000) - 250.0).abs() < 1e-9);
    }

    // Regression: `row` used to assert on width mismatch, panicking deep
    // inside experiment code instead of surfacing a typed error.
    #[test]
    fn width_mismatch_is_an_error_not_a_panic() {
        let mut t = Table::new(vec!["a", "b"]);
        let err = t.row(vec!["only-one"]).unwrap_err();
        assert_eq!(
            err,
            TableError::RowWidthMismatch {
                expected: 2,
                got: 1
            }
        );
        assert!(err.to_string().contains("expected 2"));
        // The bad row must not have been recorded.
        assert_eq!(t.render().lines().count(), 2);
    }

    // Regression: `render` used to compute `2 * (ncols - 1)` with usize
    // arithmetic, underflowing (and panicking in debug) on a table with
    // no columns.
    #[test]
    fn zero_column_table_renders() {
        let t = Table::new(Vec::<String>::new());
        let s = t.render();
        assert_eq!(s, "\n\n");
    }

    // Regression: a zero-length interval used to report a rate of 0.0,
    // indistinguishable from a genuinely zero rate.
    #[test]
    fn zero_interval_rate_is_undefined_not_zero() {
        assert!(kb_per_s(4096, 0).is_nan());
        assert!(ops_per_s(17, 0).is_nan());
        assert_eq!(rate(kb_per_s(4096, 0)), "-");
        assert_eq!(rate(250.0), "250");
        // A measured zero rate still renders as a number.
        assert_eq!(rate(ops_per_s(0, 1_000_000)), "0");
    }
}
