//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§4) plus the §5.2 comparison and two ablations.
//!
//! The `repro` binary dispatches to one experiment per subcommand; see
//! `DESIGN.md` for the experiment index (E1–E13) and `EXPERIMENTS.md` for
//! recorded paper-vs-measured results.
//!
//! All throughput numbers come from the **simulated clock** of the
//! [`simdisk`] substrate (disk mechanics + modeled CPU costs), never from
//! wall-clock time, so runs are deterministic.

pub mod driver;
pub mod exp;
pub mod faultctl;
pub mod report;
pub mod rig;
pub mod tracectl;
pub mod workload;
