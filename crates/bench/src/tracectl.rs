//! Optional structured tracing for experiment runs (`repro --trace`).
//!
//! When [`Opts::trace`](crate::exp::Opts) names a file, traced experiments
//! attach one [`ld_trace::Tracer`] to every layer of each file-system
//! stack, cross-check the tracer's per-layer time attribution against the
//! disk's own counters (they must agree to the microsecond), append the
//! run's events to the trace file as JSONL, and return a footnote line
//! for the rendered table.

use crate::driver::Bencher;
use crate::exp::Opts;
use std::io::Write;

/// A tracer attached to one file-system run, plus the disk-stat snapshot
/// taken at attach time (the baseline the attribution must reconcile
/// against).
pub struct TraceRun {
    tracer: ld_trace::Tracer,
    stats0: simdisk::DiskStats,
}

/// Ring capacity for experiment traces: large enough to keep a useful
/// timeline tail, small enough to stay O(MB) for a full table run.
const RING_CAPACITY: usize = 65_536;

/// Attaches a fresh tracer to `fs` when tracing is enabled; `None`
/// otherwise (the entire mechanism then costs nothing).
pub fn maybe_attach(fs: &mut impl Bencher, opts: &Opts) -> Option<TraceRun> {
    opts.trace.as_ref()?;
    let tracer = ld_trace::Tracer::new(RING_CAPACITY);
    let stats0 = fs.disk_stats();
    fs.attach_tracer(tracer.clone());
    Some(TraceRun { tracer, stats0 })
}

/// Finishes a traced run: verifies the attribution identity, appends the
/// events to the trace file under a `{"meta":"run",...}` header, and
/// returns the footnote line for the table. Returns an empty string when
/// tracing is off.
pub fn finish(run: Option<TraceRun>, fs: &impl Bencher, opts: &Opts, exp: &str) -> String {
    let Some(run) = run else {
        return String::new();
    };
    let Some(path) = opts.trace.as_ref() else {
        return String::new();
    };
    let attr = run.tracer.attribution();
    let busy = fs
        .disk_stats()
        .delta_since(&run.stats0)
        .map(|d| d.busy_us());
    // The tracer saw every microsecond the disk charged since attach; a
    // mismatch means an instrumentation hole, which we surface loudly
    // rather than publish a wrong attribution table.
    assert_eq!(
        Some(attr.busy_us()),
        busy,
        "{exp}/{}: trace attribution {} us != disk busy delta {busy:?}",
        fs.label(),
        attr.busy_us(),
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open trace file");
    writeln!(
        f,
        "{{\"meta\":\"run\",\"exp\":\"{exp}\",\"fs\":\"{}\"}}",
        fs.label()
    )
    .expect("write trace header");
    run.tracer
        .export_jsonl(&mut f, Some(attr.busy_us()))
        .expect("write trace events");
    format!("  [{}: {}]\n", fs.label(), attr.footnote())
}
