//! The paper's test rig (§4.2), reconstructed: a 400 MB partition of an
//! HP C3010 behind each of the three file systems.
//!
//! - MINIX and MINIX LLD use 4 KB blocks and a static 6,144 KB buffer
//!   cache; LLD uses 0.5 MB segments.
//! - MINIX ran as a *user-level* process over SunOS raw-disk syscalls,
//!   SunOS in-kernel — modeled as a higher per-call CPU cost for the MINIX
//!   variants.

use ffs::{Ffs, FfsConfig};
use minix_fs::{FsConfig, FsCpuModel, InodeMode, LdStore, ListMode, MinixFs, RawStore};
use simdisk::SimDisk;

/// Partition size used throughout §4.2.
pub const PARTITION_BYTES: u64 = 400 << 20;

/// Fresh paper-rig disk.
pub fn disk() -> SimDisk {
    SimDisk::hp_c3010_with_capacity(PARTITION_BYTES)
}

/// Fresh disk of a custom size (for quick runs).
pub fn disk_sized(bytes: u64) -> SimDisk {
    SimDisk::hp_c3010_with_capacity(bytes)
}

/// LLD configured as in §4.2: 0.5 MB segments, 4 KB blocks.
pub fn lld_config() -> lld::LldConfig {
    lld::LldConfig::default()
}

/// MINIX file-system configuration (both variants): 6,144 KB cache.
/// The per-call CPU cost models the user-level process + pipe overhead.
pub fn minix_config() -> FsConfig {
    FsConfig {
        ninodes: 16384,
        cache_bytes: 6144 << 10,
        list_mode: ListMode::PerFile,
        inode_mode: InodeMode::Packed,
        readahead_blocks: 2,
        cpu: FsCpuModel {
            per_call_us: 150,
            per_block_us: 60,
        },
    }
}

/// SunOS/FFS configuration: 8 KB blocks, in-kernel (lower CPU cost).
pub fn ffs_config() -> FfsConfig {
    FfsConfig::default()
}

/// Builds plain MINIX (update-in-place store) on a fresh rig disk.
pub fn minix(bytes: u64) -> MinixFs<RawStore<SimDisk>> {
    let store = RawStore::format(disk_sized(bytes)).expect("format raw store");
    MinixFs::format(store, minix_config()).expect("format MINIX")
}

/// Builds MINIX LLD on a fresh rig disk.
pub fn minix_lld(bytes: u64) -> MinixFs<LdStore<SimDisk>> {
    minix_lld_with(bytes, lld_config(), minix_config())
}

/// Builds MINIX LLD with custom LLD/FS configurations.
pub fn minix_lld_with(
    bytes: u64,
    lld_config: lld::LldConfig,
    fs_config: FsConfig,
) -> MinixFs<LdStore<SimDisk>> {
    let store = LdStore::format(disk_sized(bytes), lld_config).expect("format LD store");
    MinixFs::format(store, fs_config).expect("format MINIX LLD")
}

/// Builds the SunOS/FFS baseline on a fresh rig disk.
pub fn sunos(bytes: u64) -> Ffs<SimDisk> {
    Ffs::format(disk_sized(bytes), ffs_config()).expect("format FFS")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rigs_build_on_small_disks() {
        let _ = minix(32 << 20);
        let _ = minix_lld(32 << 20);
        let _ = sunos(32 << 20);
    }

    #[test]
    fn partition_has_about_800_segments() {
        // §4.2 reports reading 788 segment summaries for this partition.
        let store = LdStore::format(disk(), lld_config()).expect("format");
        let segs = store.lld().layout().segments;
        assert!(
            (780..=805).contains(&segs),
            "{segs} segments; paper's rig has ~788-800"
        );
    }
}
