//! Media-fault injection for experiment runs (`repro --faults`).
//!
//! When [`Opts::faults`](crate::exp::Opts) carries a
//! [`simdisk::FaultConfig`], the MINIX LLD stack of the traced experiments
//! (`table4`, `table5`) runs on faulty media: the model is injected into
//! the simulated disk right after format, and at the end of the run the
//! stack is scrubbed, cleanly shut down, and its final image handed to
//! `ldck`, with a footnote under the table reporting the degraded-mode
//! counters. The other stacks (plain MINIX, SunOS) stay on perfect media:
//! they have no retry machinery, so the first read fault would abort the
//! whole run — the dedicated `faults` experiment covers that comparison.
//!
//! With `Opts::faults == None` nothing here runs at all, keeping
//! fault-free experiment output byte-identical to a build without the
//! fault model.

use ld_core::LogicalDisk;
use simdisk::FaultConfig;

use crate::driver::MinixLld;
use crate::exp::Opts;

/// Parses a `--faults` spec: comma-separated `key=value` pairs.
///
/// Keys: `seed` (schedule seed), `transient`, `latent`, `grown`,
/// `background` (rates in parts per million sectors), and `maxfail`
/// (times a transient sector fails before it recovers). Unmentioned keys
/// keep [`FaultConfig::default`]'s values, except the seed which defaults
/// to 1 so `--faults transient=2000` alone is a valid spec.
pub fn parse_spec(spec: &str) -> Result<FaultConfig, String> {
    let mut cfg = FaultConfig {
        seed: 1,
        ..FaultConfig::default()
    };
    for pair in spec.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("bad --faults item {pair:?}; want key=value"))?;
        let n: u64 = value
            .parse()
            .map_err(|_| format!("bad --faults value in {pair:?}"))?;
        let narrow =
            || u32::try_from(n).map_err(|_| format!("--faults value too large in {pair:?}"));
        match key {
            "seed" => cfg.seed = n,
            "transient" => cfg.transient_ppm = narrow()?,
            "maxfail" => cfg.transient_max_failures = narrow()?,
            "latent" => cfg.latent_ppm = narrow()?,
            "grown" => cfg.grown_ppm = narrow()?,
            "background" => cfg.background_ppm = narrow()?,
            other => return Err(format!("unknown --faults key {other:?}")),
        }
    }
    Ok(cfg)
}

/// Injects the configured fault model into an already-formatted MINIX LLD
/// stack (format itself always runs on clean media, like a factory-fresh
/// drive whose defects grow in service). No-op when faults are off.
pub fn inject(fs: &mut MinixLld, opts: &Opts) {
    if let Some(cfg) = &opts.faults {
        fs.0.store_mut().disk_mut().set_faults(*cfg);
    }
}

/// Finishes a faulted MINIX LLD run: scrubs the suspects the workload's
/// retries recorded, shuts the stack down cleanly (so the remap table
/// reaches the checkpoint), checks the final image with `ldck`, and
/// returns a footnote line with the degraded-mode counters. Consumes the
/// stack. Returns an empty string — and does none of the above — when
/// faults are off.
pub fn finish(fs: MinixLld, opts: &Opts) -> String {
    if opts.faults.is_none() {
        return String::new();
    }
    let mut fs = fs.0;
    fs.sync().expect("sync before scrub");
    let mut store = fs.into_store();
    let (relocated, _, _) = store.lld_mut().scrub().expect("scrub");
    store.lld_mut().shutdown().expect("clean shutdown");
    let stats = *store.lld().stats();
    let image = store.into_disk().image_bytes();
    let report = ldck::check_image(&image, &crate::rig::lld_config());
    let verdict = if report.is_clean() {
        "clean".to_string()
    } else {
        format!("{} error(s)", report.errors().count())
    };
    format!(
        "  [MINIX LLD faults: {} retries, {} sectors remapped, {} unreadable blocks, \
         {} blocks relocated, ldck {verdict}]\n",
        stats.retries, stats.remapped_sectors, stats.unreadable_blocks, relocated
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_keys_and_defaults() {
        let cfg = parse_spec("seed=7,transient=2000,latent=50").expect("parse");
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.transient_ppm, 2000);
        assert_eq!(cfg.latent_ppm, 50);
        assert_eq!(cfg.grown_ppm, 0);
        assert_eq!(cfg.transient_max_failures, 2);
        // Seed defaults to 1 when unmentioned.
        assert_eq!(parse_spec("transient=10").expect("parse").seed, 1);
        assert!(parse_spec("bogus=1").is_err());
        assert!(parse_spec("transient").is_err());
        assert!(parse_spec("transient=zap").is_err());
    }
}
