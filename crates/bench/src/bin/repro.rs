//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--trace <file>] [--faults <spec>] [--json-out <file>] <experiment>...
//! repro [--quick] [--trace <file>] [--faults <spec>] [--json-out <file>] all
//! repro --list
//! ```
//!
//! `--list` prints the full experiment index (E1–E17) with one-line
//! descriptions and paper-section anchors.
//!
//! `--json-out` writes a machine-readable result file alongside the
//! rendered table for the experiments that support it (`table4`,
//! `table5`, `queueing`) — the benchmark trajectory the committed
//! `BENCH_*.json` files record.
//!
//! `--trace` writes structured JSONL event traces (see the `ld-trace`
//! crate) for the traced experiments (`table4`, `table5`) and appends a
//! per-layer disk-time attribution footnote under their tables. Render
//! the file with `ldtrace <file>`. Tracing never changes the simulated
//! timings — table cells are identical with and without it.
//!
//! `--faults` injects the deterministic media-fault model into the MINIX
//! LLD stack of `table4`/`table5` (e.g.
//! `--faults seed=7,transient=2000,latent=0`; rates in ppm of sectors)
//! and appends a degraded-mode footnote: retries, remapped sectors,
//! unreadable blocks, and the `ldck` verdict on the post-run image. The
//! other stacks stay on perfect media — they have no retry machinery; the
//! `faults` experiment covers that comparison. Note latent/grown faults
//! destroy whatever data sits on the scheduled sectors; LLD reports such
//! loss, it cannot undo it.
//!
//! Experiments: `calibrate` (E12), `table2` (E1), `table3` (E2), `table4`
//! (E3), `table5` (E4), `table6` (E5), `recovery` (E6), `lists` (E7),
//! `segsize` (E8), `inodes` (E9), `compression` (E10), `loge` (E11),
//! `ablate` (E13), `nvram` (E14), `hotcold` (E15), `faults` (E16),
//! `queueing` (E17). See `DESIGN.md` for the index and `EXPERIMENTS.md`
//! for recorded results.

use ld_bench::exp::{self, Opts};

const ALL: &[&str] = &[
    "calibrate",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "recovery",
    "lists",
    "segsize",
    "inodes",
    "compression",
    "loge",
    "nvram",
    "hotcold",
    "ablate",
    "faults",
    "queueing",
];

/// The experiment index: CLI name, experiment id, one-line description
/// with its paper-section anchor. `repro --list` prints this.
const INDEX: &[(&str, &str, &str)] = &[
    ("table2", "E1", "Table 2 — LLD main memory per GB of disk (§2.3)"),
    ("table3", "E2", "Table 3 — % cost LLD adds to a disk (§2.3)"),
    ("table4", "E3", "Table 4 — small-file create/read/delete, files/s (§4.2)"),
    ("table5", "E4", "Table 5 — 80 MB large-file five-phase I/O, KB/s (§4.2)"),
    ("table6", "E5", "Table 6 — blocks written per op vs Sprite LFS (§5.1)"),
    ("recovery", "E6", "recovery time after failure: 12 s, 788 summaries (§4.2)"),
    ("lists", "E7", "the cost of supporting lists: ~15% on create/delete (§4.2)"),
    ("segsize", "E8", "segment-size sweep: 512/256/128 KB within a few % (§4.2)"),
    ("inodes", "E9", "small-i-node-block variant: reads worse, writes same (§4.2)"),
    ("compression", "E10", "compression: 1600 KB/s write, 800 KB/s read (§4.2)"),
    ("loge", "E11", "Loge comparison: write streams + ≥10x faster recovery (§5.2)"),
    ("calibrate", "E12", "disk-model calibration: 2400 vs ~300 KB/s raw streams (§4.2)"),
    ("ablate", "E13", "ablations: cleaner policy, partial-segment threshold (§3.5, §3.2)"),
    ("nvram", "E14", "extension: NVRAM flush absorption, Baker et al. (§5.3)"),
    ("hotcold", "E15", "extension: adaptive block rearrangement, Akyürek & Salem (§5.3)"),
    ("faults", "E16", "extension: media faults — throughput, scrub, remap (§4.2 rig)"),
    ("queueing", "E17", "command queueing: scheduler x depth sweep, write-behind (§4.2)"),
];

/// Runs one experiment; the second element is the machine-readable JSON
/// document for the experiments that emit one.
fn dispatch(name: &str, opts: Opts) -> Option<(String, Option<String>)> {
    Some(match name {
        "calibrate" => (exp::calibrate::run(opts), None),
        "table2" => (exp::table2::run(opts), None),
        "table3" => (exp::table3::run(opts), None),
        "table4" => {
            let (out, json) = exp::table4::run_json(opts);
            (out, Some(json))
        }
        "table5" => {
            let (out, json) = exp::table5::run_json(opts);
            (out, Some(json))
        }
        "table6" => (exp::table6::run(opts), None),
        "recovery" => (exp::recovery::run(opts), None),
        "lists" => (exp::lists::run(opts), None),
        "segsize" => (exp::segsize::run(opts), None),
        "inodes" => (exp::inodes::run(opts), None),
        "compression" => (exp::compression::run(opts), None),
        "loge" => (exp::loge_cmp::run(opts), None),
        "nvram" => (exp::nvram_exp::run(opts), None),
        "hotcold" => (exp::hotcold::run(opts), None),
        "ablate" => (exp::ablate::run(opts), None),
        "faults" => (exp::faults::run(opts), None),
        "queueing" => {
            let (out, json) = exp::queueing::run_json(opts);
            (out, Some(json))
        }
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        println!("experiments (run with `repro [--quick] <name>...`):");
        for (name, id, desc) in INDEX {
            println!("  {id:<4} {name:<12} {desc}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let trace = match args.iter().position(|a| a == "--trace") {
        Some(i) => match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => Some(std::path::PathBuf::from(p)),
            _ => {
                eprintln!("--trace requires a file argument");
                std::process::exit(2);
            }
        },
        None => None,
    };
    if let Some(path) = &trace {
        // Start each invocation with a fresh file; experiments append.
        if let Err(e) = std::fs::write(path, b"") {
            eprintln!("cannot write trace file {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    let faults = match args.iter().position(|a| a == "--faults") {
        Some(i) => match args.get(i + 1) {
            Some(spec) if !spec.starts_with("--") => {
                match ld_bench::faultctl::parse_spec(spec) {
                    Ok(cfg) => Some(cfg),
                    Err(msg) => {
                        eprintln!("{msg}");
                        std::process::exit(2);
                    }
                }
            }
            _ => {
                eprintln!("--faults requires a spec argument (e.g. seed=7,transient=2000)");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let json_out = match args.iter().position(|a| a == "--json-out") {
        Some(i) => match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => Some(std::path::PathBuf::from(p)),
            _ => {
                eprintln!("--json-out requires a file argument");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let opts = Opts {
        quick,
        trace,
        faults,
    };
    let mut skip_next = false;
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--trace" || *a == "--faults" || *a == "--json-out" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();

    if wanted.is_empty() || wanted.contains(&"help") {
        eprintln!(
            "usage: repro [--quick] [--trace <file>] [--faults <spec>] \
             [--json-out <file>] <experiment>... | all | --list"
        );
        eprintln!("experiments: {}", ALL.join(" "));
        std::process::exit(if wanted.is_empty() { 2 } else { 0 });
    }

    let list: Vec<&str> = if wanted.contains(&"all") {
        ALL.to_vec()
    } else {
        wanted
    };

    let mut json_docs: Vec<String> = Vec::new();
    for (i, name) in list.iter().enumerate() {
        match dispatch(name, opts.clone()) {
            Some((out, json)) => {
                if i > 0 {
                    println!("\n{}\n", "=".repeat(72));
                }
                println!("{out}");
                if json_out.is_some() {
                    if let Some(j) = json {
                        json_docs.push(j);
                    }
                }
            }
            None => {
                eprintln!("unknown experiment '{name}'; known: {}", ALL.join(" "));
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &json_out {
        let doc = match json_docs.len() {
            0 => {
                eprintln!(
                    "--json-out: none of the requested experiments emit JSON \
                     (supported: table4 table5 queueing)"
                );
                std::process::exit(2);
            }
            1 => json_docs.pop().expect("one doc"),
            _ => format!(
                "[\n{}\n]\n",
                json_docs
                    .iter()
                    .map(|d| d.trim_end())
                    .collect::<Vec<_>>()
                    .join(",\n")
            ),
        };
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("wrote {}", path.display());
    }
}
