//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] <experiment>...
//! repro [--quick] all
//! ```
//!
//! Experiments: `calibrate` (E12), `table2` (E1), `table3` (E2), `table4`
//! (E3), `table5` (E4), `table6` (E5), `recovery` (E6), `lists` (E7),
//! `segsize` (E8), `inodes` (E9), `compression` (E10), `loge` (E11),
//! `ablate` (E13). See `DESIGN.md` for the index and `EXPERIMENTS.md` for
//! recorded results.

use ld_bench::exp::{self, Opts};

const ALL: &[&str] = &[
    "calibrate",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "recovery",
    "lists",
    "segsize",
    "inodes",
    "compression",
    "loge",
    "nvram",
    "hotcold",
    "ablate",
];

fn dispatch(name: &str, opts: Opts) -> Option<String> {
    Some(match name {
        "calibrate" => exp::calibrate::run(opts),
        "table2" => exp::table2::run(opts),
        "table3" => exp::table3::run(opts),
        "table4" => exp::table4::run(opts),
        "table5" => exp::table5::run(opts),
        "table6" => exp::table6::run(opts),
        "recovery" => exp::recovery::run(opts),
        "lists" => exp::lists::run(opts),
        "segsize" => exp::segsize::run(opts),
        "inodes" => exp::inodes::run(opts),
        "compression" => exp::compression::run(opts),
        "loge" => exp::loge_cmp::run(opts),
        "nvram" => exp::nvram_exp::run(opts),
        "hotcold" => exp::hotcold::run(opts),
        "ablate" => exp::ablate::run(opts),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let opts = Opts { quick };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if wanted.is_empty() || wanted.contains(&"help") {
        eprintln!("usage: repro [--quick] <experiment>... | all");
        eprintln!("experiments: {}", ALL.join(" "));
        std::process::exit(if wanted.is_empty() { 2 } else { 0 });
    }

    let list: Vec<&str> = if wanted.contains(&"all") {
        ALL.to_vec()
    } else {
        wanted
    };

    for (i, name) in list.iter().enumerate() {
        match dispatch(name, opts) {
            Some(out) => {
                if i > 0 {
                    println!("\n{}\n", "=".repeat(72));
                }
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment '{name}'; known: {}", ALL.join(" "));
                std::process::exit(2);
            }
        }
    }
}
