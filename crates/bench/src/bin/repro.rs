//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--trace <file>] [--faults <spec>] <experiment>...
//! repro [--quick] [--trace <file>] [--faults <spec>] all
//! ```
//!
//! `--trace` writes structured JSONL event traces (see the `ld-trace`
//! crate) for the traced experiments (`table4`, `table5`) and appends a
//! per-layer disk-time attribution footnote under their tables. Render
//! the file with `ldtrace <file>`. Tracing never changes the simulated
//! timings — table cells are identical with and without it.
//!
//! `--faults` injects the deterministic media-fault model into the MINIX
//! LLD stack of `table4`/`table5` (e.g.
//! `--faults seed=7,transient=2000,latent=0`; rates in ppm of sectors)
//! and appends a degraded-mode footnote: retries, remapped sectors,
//! unreadable blocks, and the `ldck` verdict on the post-run image. The
//! other stacks stay on perfect media — they have no retry machinery; the
//! `faults` experiment covers that comparison. Note latent/grown faults
//! destroy whatever data sits on the scheduled sectors; LLD reports such
//! loss, it cannot undo it.
//!
//! Experiments: `calibrate` (E12), `table2` (E1), `table3` (E2), `table4`
//! (E3), `table5` (E4), `table6` (E5), `recovery` (E6), `lists` (E7),
//! `segsize` (E8), `inodes` (E9), `compression` (E10), `loge` (E11),
//! `ablate` (E13), `faults` (E16). See `DESIGN.md` for the index and
//! `EXPERIMENTS.md` for recorded results.

use ld_bench::exp::{self, Opts};

const ALL: &[&str] = &[
    "calibrate",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "recovery",
    "lists",
    "segsize",
    "inodes",
    "compression",
    "loge",
    "nvram",
    "hotcold",
    "ablate",
    "faults",
];

fn dispatch(name: &str, opts: Opts) -> Option<String> {
    Some(match name {
        "calibrate" => exp::calibrate::run(opts),
        "table2" => exp::table2::run(opts),
        "table3" => exp::table3::run(opts),
        "table4" => exp::table4::run(opts),
        "table5" => exp::table5::run(opts),
        "table6" => exp::table6::run(opts),
        "recovery" => exp::recovery::run(opts),
        "lists" => exp::lists::run(opts),
        "segsize" => exp::segsize::run(opts),
        "inodes" => exp::inodes::run(opts),
        "compression" => exp::compression::run(opts),
        "loge" => exp::loge_cmp::run(opts),
        "nvram" => exp::nvram_exp::run(opts),
        "hotcold" => exp::hotcold::run(opts),
        "ablate" => exp::ablate::run(opts),
        "faults" => exp::faults::run(opts),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace = match args.iter().position(|a| a == "--trace") {
        Some(i) => match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => Some(std::path::PathBuf::from(p)),
            _ => {
                eprintln!("--trace requires a file argument");
                std::process::exit(2);
            }
        },
        None => None,
    };
    if let Some(path) = &trace {
        // Start each invocation with a fresh file; experiments append.
        if let Err(e) = std::fs::write(path, b"") {
            eprintln!("cannot write trace file {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    let faults = match args.iter().position(|a| a == "--faults") {
        Some(i) => match args.get(i + 1) {
            Some(spec) if !spec.starts_with("--") => {
                match ld_bench::faultctl::parse_spec(spec) {
                    Ok(cfg) => Some(cfg),
                    Err(msg) => {
                        eprintln!("{msg}");
                        std::process::exit(2);
                    }
                }
            }
            _ => {
                eprintln!("--faults requires a spec argument (e.g. seed=7,transient=2000)");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let opts = Opts {
        quick,
        trace,
        faults,
    };
    let mut skip_next = false;
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--trace" || *a == "--faults" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();

    if wanted.is_empty() || wanted.contains(&"help") {
        eprintln!(
            "usage: repro [--quick] [--trace <file>] [--faults <spec>] <experiment>... | all"
        );
        eprintln!("experiments: {}", ALL.join(" "));
        std::process::exit(if wanted.is_empty() { 2 } else { 0 });
    }

    let list: Vec<&str> = if wanted.contains(&"all") {
        ALL.to_vec()
    } else {
        wanted
    };

    for (i, name) in list.iter().enumerate() {
        match dispatch(name, opts.clone()) {
            Some(out) => {
                if i > 0 {
                    println!("\n{}\n", "=".repeat(72));
                }
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment '{name}'; known: {}", ALL.join(" "));
                std::process::exit(2);
            }
        }
    }
}
