//! Workload generators: file data, names, and access orders.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a named workload.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// File content that compresses to roughly the paper's assumed 60 % ratio:
/// textual key=value lines over a shared vocabulary, as produced by real
/// file-system payloads (sources, configuration, logs).
pub fn compressible_data(len: usize, seed: u64) -> Vec<u8> {
    const WORDS: [&str; 16] = [
        "segment", "cleaner", "logical", "disk", "buffer", "kernel", "config", "value", "block",
        "inode", "recover", "journal", "policy", "extent", "offset", "cache",
    ];
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(len + 32);
    while out.len() < len {
        let w1 = WORDS[r.gen_range(0..WORDS.len())];
        let w2 = WORDS[r.gen_range(0..WORDS.len())];
        let n: u32 = r.gen_range(0..100_000);
        out.extend_from_slice(w1.as_bytes());
        out.push(b'.');
        out.extend_from_slice(w2.as_bytes());
        out.push(b'=');
        out.extend_from_slice(n.to_string().as_bytes());
        // A dash of incompressible payload (hashes, binary fields) keeps
        // the overall ratio near the paper's assumed 60 %.
        out.push(b' ');
        for _ in 0..10 {
            out.push(r.gen());
        }
        out.push(b'\n');
    }
    out.truncate(len);
    out
}

/// Incompressible (pseudo-random) file content.
pub fn random_data(len: usize, seed: u64) -> Vec<u8> {
    let mut r = rng(seed);
    (0..len).map(|_| r.gen()).collect()
}

/// The file names of the small-file benchmark (one directory).
pub fn file_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("/f{i:06}")).collect()
}

/// A shuffled visit order over `n` items.
pub fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng(seed));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressible_data_hits_the_paper_ratio() {
        let data = compressible_data(64 << 10, 7);
        let c = ldcomp::compress(&data);
        let ratio = c.len() as f64 / data.len() as f64;
        assert!(
            (0.40..=0.65).contains(&ratio),
            "ratio {ratio:.2} should be near the paper's 60%"
        );
    }

    #[test]
    fn random_data_does_not_compress() {
        let data = random_data(16 << 10, 7);
        let c = ldcomp::compress(&data);
        assert!(c.len() >= data.len());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(compressible_data(1000, 3), compressible_data(1000, 3));
        assert_eq!(shuffled(100, 9), shuffled(100, 9));
        assert_ne!(shuffled(100, 9), shuffled(100, 10));
    }
}
