//! An FFS/SunOS-style baseline file system (paper §4.2's third column).
//!
//! The paper compares MINIX and MINIX LLD against the SunOS 4.1.3 file
//! system. This crate implements the properties that explain the SunOS
//! rows of Tables 4 and 5:
//!
//! - **8 KB blocks** (vs MINIX's 4 KB),
//! - **cylinder groups** with FFS placement policy (directories spread
//!   across groups, files in their directory's group, data near its
//!   i-node),
//! - **synchronous metadata writes** on create and delete ("Creation and
//!   deletion are worse since SunOS performs these operations
//!   synchronously", §4.2),
//! - **write clustering** of delayed writes (consecutive dirty blocks are
//!   written in up to 7-block, 56 KB transfers) and **cluster read-ahead**,
//!   which give it good sequential bandwidth on both directions.
//!
//! The API mirrors `minix-fs` so the benchmark harness can drive all three
//! file systems identically.

mod inode;

pub use inode::{FileType, Inode, INODE_SIZE};

use fsutil::dirent::{self, Dirent, DIRENT_SIZE};
use fsutil::{path, wire, Bitmap, BufferCache};
use inode::{ptr_path, PtrPath, DIND, IND};
use simdisk::BlockDev;

/// Errors returned by the FFS baseline (deliberately the same shape as
/// `minix-fs`'s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FfsError {
    /// Path component missing.
    NotFound,
    /// Target exists.
    Exists,
    /// Component not a directory.
    NotDir,
    /// Operation needs a regular file.
    IsDir,
    /// Directory not empty.
    NotEmpty,
    /// Out of blocks.
    NoSpace,
    /// Out of i-nodes.
    NoInodes,
    /// Malformed path.
    Path(fsutil::PathError),
    /// Device failure.
    Io(String),
    /// Bad on-disk image.
    BadSuperblock,
}

impl std::fmt::Display for FfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FfsError::NotFound => write!(f, "no such file or directory"),
            FfsError::Exists => write!(f, "file exists"),
            FfsError::NotDir => write!(f, "not a directory"),
            FfsError::IsDir => write!(f, "is a directory"),
            FfsError::NotEmpty => write!(f, "directory not empty"),
            FfsError::NoSpace => write!(f, "no space left"),
            FfsError::NoInodes => write!(f, "no free i-nodes"),
            FfsError::Path(e) => write!(f, "{e}"),
            FfsError::Io(m) => write!(f, "I/O error: {m}"),
            FfsError::BadSuperblock => write!(f, "bad superblock"),
        }
    }
}

impl std::error::Error for FfsError {}

impl From<fsutil::PathError> for FfsError {
    fn from(e: fsutil::PathError) -> Self {
        FfsError::Path(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, FfsError>;

/// An i-node number (1-based).
pub type Ino = u32;

/// The root directory's i-node.
pub const ROOT_INO: Ino = 1;

/// Configuration.
#[derive(Debug, Clone)]
pub struct FfsConfig {
    /// Block size in bytes (SunOS used 8 KB).
    pub block_size: usize,
    /// Blocks per cylinder group.
    pub cg_blocks: u32,
    /// I-nodes per cylinder group.
    pub inodes_per_cg: u32,
    /// Buffer-cache bytes (SunOS's cache "grew and shrank dynamically";
    /// a fixed generous cache stands in).
    pub cache_bytes: usize,
    /// Blocks per clustered transfer (SunOS coalesces delayed writes into
    /// large transfers; 14 × 8 KB = 112 KB).
    pub cluster_blocks: u32,
    /// File blocks to read ahead on sequential reads.
    pub readahead_blocks: u32,
    /// Dirty-cache bytes that trigger a clustered write-back.
    pub flush_watermark: usize,
    /// Modeled CPU cost per operation, microseconds (SunOS ran in-kernel,
    /// so this is lower than the user-level MINIX figure).
    pub per_call_us: u64,
}

impl Default for FfsConfig {
    fn default() -> Self {
        Self {
            block_size: 8192,
            cg_blocks: 2048,
            inodes_per_cg: 2048,
            cache_bytes: 8 << 20,
            cluster_blocks: 14,
            readahead_blocks: 7,
            flush_watermark: 1 << 20,
            per_call_us: 40,
        }
    }
}

impl FfsConfig {
    /// Small configuration for unit tests.
    pub fn small_for_tests() -> Self {
        Self {
            cg_blocks: 64,
            inodes_per_cg: 128,
            cache_bytes: 256 << 10,
            flush_watermark: 64 << 10,
            per_call_us: 0,
            ..Self::default()
        }
    }

    fn inode_blocks_per_cg(&self) -> u32 {
        (self.inodes_per_cg as usize).div_ceil(self.block_size / INODE_SIZE) as u32
    }

    /// Data blocks available per group.
    pub fn data_blocks_per_cg(&self) -> u32 {
        self.cg_blocks - 1 - self.inode_blocks_per_cg()
    }
}

/// Per-group in-memory state.
#[derive(Debug)]
struct CylGroup {
    /// Block usage within the group (header and i-node blocks pre-marked).
    blocks: Bitmap,
    /// I-node usage within the group.
    inodes: Bitmap,
    dirty: bool,
}

/// Metadata returned by [`Ffs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// File type.
    pub ftype: FileType,
    /// Size in bytes.
    pub size: u64,
    /// Modification time.
    pub mtime: u32,
}

/// Operation counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct FfsStats {
    /// Synchronous metadata writes issued.
    pub sync_meta_writes: u64,
    /// Clustered data transfers issued.
    pub clustered_writes: u64,
    /// Blocks pulled in by read-ahead.
    pub readahead_blocks: u64,
}

/// The file system.
pub struct Ffs<D: BlockDev> {
    disk: D,
    config: FfsConfig,
    ncg: u32,
    cgs: Vec<CylGroup>,
    cache: BufferCache,
    /// Round-robin pointer for directory placement.
    next_dir_cg: u32,
    last_read: Option<(Ino, u64)>,
    stats: FfsStats,
    /// Optional event tracer; operations emit [`ld_trace::Event::FsOp`]
    /// spans when attached.
    tracer: Option<ld_trace::Tracer>,
}

impl<D: BlockDev> Ffs<D> {
    // ----- formatting -----

    /// Formats the device.
    pub fn format(disk: D, config: FfsConfig) -> Result<Self> {
        let bs = config.block_size as u64;
        let total_blocks = disk.capacity_bytes() / bs;
        let ncg = ((total_blocks.saturating_sub(1)) / u64::from(config.cg_blocks)) as u32;
        if ncg == 0 {
            return Err(FfsError::NoSpace);
        }
        let mut cgs = Vec::with_capacity(ncg as usize);
        for _ in 0..ncg {
            let mut blocks = Bitmap::new(config.cg_blocks as usize);
            // Header + i-node blocks are never data.
            for b in 0..(1 + config.inode_blocks_per_cg()) {
                blocks.set(b as usize);
            }
            cgs.push(CylGroup {
                blocks,
                inodes: Bitmap::new(config.inodes_per_cg as usize),
                dirty: true,
            });
        }
        let mut fs = Self {
            cache: BufferCache::new(config.cache_bytes),
            disk,
            config,
            ncg,
            cgs,
            next_dir_cg: 0,
            last_read: None,
            stats: FfsStats::default(),
            tracer: None,
        };
        // Root directory: i-node 1 lives in group 0.
        let root = fs.alloc_inode_in(0, FileType::Dir)?;
        debug_assert_eq!(root, ROOT_INO);
        let mut inode = Inode::new(FileType::Dir, 0, fs.mtime());
        fs.dir_init(root, &mut inode, root)?;
        fs.write_inode(root, &inode)?;
        fs.sync()?;
        Ok(fs)
    }

    // ----- accessors -----

    /// The underlying device.
    pub fn disk(&self) -> &D {
        &self.disk
    }

    /// Mutable access to the underlying device.
    pub fn disk_mut(&mut self) -> &mut D {
        &mut self.disk
    }

    /// Operation counters.
    pub fn stats(&self) -> &FfsStats {
        &self.stats
    }

    /// Simulated time.
    pub fn now_us(&self) -> u64 {
        self.disk.now_us()
    }

    /// Attaches an event tracer: every public operation then records an
    /// [`ld_trace::Event::FsOp`] latency span. Attach the same tracer to
    /// the underlying disk to interleave mechanical events into one
    /// timeline. Tracing never advances the simulated clock.
    pub fn set_tracer(&mut self, tracer: ld_trace::Tracer) {
        self.tracer = Some(tracer);
    }

    /// Detaches the tracer, if any.
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    /// Span start: the current simulated time, only if tracing.
    #[inline]
    fn trace_start(&self) -> Option<u64> {
        self.tracer.as_ref().map(|_| self.disk.now_us())
    }

    /// Span end: records the completed operation, no-op untraced.
    #[inline]
    fn trace_op(&self, op: ld_trace::FsOpKind, start: Option<u64>) {
        if let (Some(t), Some(start_us)) = (&self.tracer, start) {
            let end = self.disk.now_us();
            t.record(
                end,
                ld_trace::Event::FsOp {
                    op,
                    start_us,
                    us: end - start_us,
                },
            );
        }
    }

    fn mtime(&self) -> u32 {
        (self.disk.now_us() / 1_000_000) as u32
    }

    fn charge_call(&mut self) {
        let us = self.config.per_call_us;
        if us > 0 {
            self.disk.advance_us(us);
        }
    }

    // ----- layout math -----

    fn cg_base(&self, cg: u32) -> u32 {
        1 + cg * self.config.cg_blocks
    }

    fn cg_of_block(&self, addr: u32) -> u32 {
        (addr - 1) / self.config.cg_blocks
    }

    fn cg_header_addr(&self, cg: u32) -> u32 {
        self.cg_base(cg)
    }

    fn inode_addr(&self, ino: Ino) -> (u32, usize) {
        let idx = (ino - 1) as usize;
        let cg = idx / self.config.inodes_per_cg as usize;
        let local = idx % self.config.inodes_per_cg as usize;
        let per_block = self.config.block_size / INODE_SIZE;
        let block = self.cg_base(cg as u32) + 1 + (local / per_block) as u32;
        (block, (local % per_block) * INODE_SIZE)
    }

    // ----- raw block I/O with clustering -----

    fn sectors_of(&self, addr: u32) -> u64 {
        u64::from(addr) * (self.config.block_size / simdisk::SECTOR_SIZE) as u64
    }

    fn disk_read(&mut self, addr: u32, buf: &mut [u8]) -> Result<()> {
        let s = self.sectors_of(addr);
        self.disk
            .read_sectors(s, buf)
            .map_err(|e| FfsError::Io(e.to_string()))
    }

    fn disk_write(&mut self, addr: u32, data: &[u8]) -> Result<()> {
        let s = self.sectors_of(addr);
        self.disk
            .write_sectors(s, data)
            .map_err(|e| FfsError::Io(e.to_string()))
    }

    /// Writes a set of dirty blocks, coalescing consecutive addresses into
    /// clustered transfers of up to `cluster_blocks` (FFS/SunOS delayed
    /// write behaviour).
    fn flush_blocks(&mut self, mut blocks: Vec<fsutil::Evicted>) -> Result<()> {
        blocks.sort_by_key(|e| e.addr);
        let bs = self.config.block_size;
        let max = self.config.cluster_blocks as usize;
        let mut i = 0;
        while i < blocks.len() {
            let start = blocks[i].addr;
            let mut run = vec![0u8; 0];
            run.extend_from_slice(&blocks[i].data);
            run.resize(bs, 0);
            let mut n = 1;
            while i + n < blocks.len() && blocks[i + n].addr == start + n as u32 && n < max {
                let mut img = blocks[i + n].data.clone();
                img.resize(bs, 0);
                run.extend_from_slice(&img);
                n += 1;
            }
            self.disk_write(start, &run)?;
            self.stats.clustered_writes += 1;
            i += n;
        }
        Ok(())
    }

    // ----- cache plumbing -----

    fn load(&mut self, addr: u32) -> Result<Vec<u8>> {
        if let Some(d) = self.cache.get(addr) {
            return Ok(d.to_vec());
        }
        let bs = self.config.block_size;
        let mut buf = vec![0u8; bs];
        self.disk_read(addr, &mut buf)?;
        let evicted = self.cache.insert_clean(addr, buf.clone());
        self.flush_blocks(evicted)?;
        Ok(buf)
    }

    fn save(&mut self, addr: u32, data: Vec<u8>) -> Result<()> {
        let evicted = self.cache.insert_dirty(addr, data);
        self.flush_blocks(evicted)?;
        Ok(())
    }

    /// Writes a block through the cache *and* synchronously to disk — the
    /// metadata path ("SunOS performs these operations synchronously").
    /// The cache entry ends up clean: it matches the medium.
    fn save_sync(&mut self, addr: u32, data: Vec<u8>) -> Result<()> {
        self.disk_write(addr, &data)?;
        let evicted = self.cache.insert_clean(addr, data);
        self.flush_blocks(evicted)?;
        self.stats.sync_meta_writes += 1;
        Ok(())
    }

    /// Serializes and synchronously writes a cylinder-group header.
    fn sync_cg(&mut self, cg: u32) -> Result<()> {
        let bs = self.config.block_size;
        let mut block = vec![0u8; bs];
        let g = &self.cgs[cg as usize];
        let bb = g.blocks.as_bytes();
        let ib = g.inodes.as_bytes();
        block[..bb.len()].copy_from_slice(bb);
        block[bs / 2..bs / 2 + ib.len()].copy_from_slice(ib);
        let addr = self.cg_header_addr(cg);
        self.cgs[cg as usize].dirty = false;
        self.save_sync(addr, block)
    }

    // ----- allocation -----

    fn alloc_block(&mut self, cg_pref: u32, near: Option<u32>) -> Result<u32> {
        let reserved = 1 + self.config.inode_blocks_per_cg();
        for probe in 0..self.ncg {
            let cg = (cg_pref + probe) % self.ncg;
            let hint = match near {
                Some(a) if probe == 0 && self.cg_of_block(a) == cg => {
                    ((a - self.cg_base(cg)) + 1) as usize
                }
                _ => reserved as usize,
            };
            if let Some(slot) = self.cgs[cg as usize].blocks.alloc_near(hint) {
                self.cgs[cg as usize].dirty = true;
                return Ok(self.cg_base(cg) + slot as u32);
            }
        }
        Err(FfsError::NoSpace)
    }

    fn free_block(&mut self, addr: u32) {
        let cg = self.cg_of_block(addr);
        let slot = (addr - self.cg_base(cg)) as usize;
        self.cgs[cg as usize].blocks.clear(slot);
        self.cgs[cg as usize].dirty = true;
        self.cache.discard(addr);
    }

    fn alloc_inode_in(&mut self, cg_pref: u32, _ftype: FileType) -> Result<Ino> {
        for probe in 0..self.ncg {
            let cg = (cg_pref + probe) % self.ncg;
            if let Some(slot) = self.cgs[cg as usize].inodes.alloc_first() {
                self.cgs[cg as usize].dirty = true;
                return Ok(cg * self.config.inodes_per_cg + slot as u32 + 1);
            }
        }
        Err(FfsError::NoInodes)
    }

    fn free_inode(&mut self, ino: Ino) {
        let idx = (ino - 1) as usize;
        let cg = idx / self.config.inodes_per_cg as usize;
        let slot = idx % self.config.inodes_per_cg as usize;
        self.cgs[cg].inodes.clear(slot);
        self.cgs[cg].dirty = true;
    }

    fn cg_of_ino(&self, ino: Ino) -> u32 {
        (ino - 1) / self.config.inodes_per_cg
    }

    // ----- i-nodes -----

    fn read_inode(&mut self, ino: Ino) -> Result<Inode> {
        let (addr, off) = self.inode_addr(ino);
        let block = self.load(addr)?;
        Inode::decode(&block[off..off + INODE_SIZE]).ok_or(FfsError::NotFound)
    }

    fn write_inode(&mut self, ino: Ino, inode: &Inode) -> Result<()> {
        let (addr, off) = self.inode_addr(ino);
        let mut block = self.load(addr)?;
        inode.encode(&mut block[off..off + INODE_SIZE]);
        self.save(addr, block)
    }

    /// Like [`write_inode`](Self::write_inode) but synchronous (metadata
    /// update ordering).
    fn write_inode_sync(&mut self, ino: Ino, inode: &Inode) -> Result<()> {
        let (addr, off) = self.inode_addr(ino);
        let mut block = self.load(addr)?;
        inode.encode(&mut block[off..off + INODE_SIZE]);
        self.save_sync(addr, block)
    }

    // ----- block mapping -----

    fn ppb(&self) -> usize {
        self.config.block_size / 4
    }

    fn block_at(&mut self, inode: &Inode, idx: u64) -> Result<Option<u32>> {
        match ptr_path(idx, self.ppb()).ok_or(FfsError::NoSpace)? {
            PtrPath::Direct(i) => Ok(nz(inode.ptrs[i])),
            PtrPath::Indirect(i) => {
                let Some(ind) = nz(inode.ptrs[IND]) else {
                    return Ok(None);
                };
                let b = self.load(ind)?;
                Ok(nz(get_u32(&b, i)))
            }
            PtrPath::Double(i, j) => {
                let Some(dind) = nz(inode.ptrs[DIND]) else {
                    return Ok(None);
                };
                let b = self.load(dind)?;
                let Some(ind) = nz(get_u32(&b, i)) else {
                    return Ok(None);
                };
                let b = self.load(ind)?;
                Ok(nz(get_u32(&b, j)))
            }
        }
    }

    fn block_alloc(&mut self, inode: &mut Inode, idx: u64) -> Result<u32> {
        let bs = self.config.block_size;
        let cg = inode.cg;
        let near = if idx > 0 {
            self.block_at(inode, idx - 1)?
        } else {
            None
        };
        match ptr_path(idx, self.ppb()).ok_or(FfsError::NoSpace)? {
            PtrPath::Direct(i) => {
                if let Some(a) = nz(inode.ptrs[i]) {
                    return Ok(a);
                }
                let a = self.alloc_block(cg, near)?;
                inode.ptrs[i] = a;
                Ok(a)
            }
            PtrPath::Indirect(i) => {
                let ind = match nz(inode.ptrs[IND]) {
                    Some(a) => a,
                    None => {
                        let a = self.alloc_block(cg, near)?;
                        self.save(a, vec![0u8; bs])?;
                        inode.ptrs[IND] = a;
                        a
                    }
                };
                self.alloc_in_table(ind, i, cg, near)
            }
            PtrPath::Double(i, j) => {
                let dind = match nz(inode.ptrs[DIND]) {
                    Some(a) => a,
                    None => {
                        let a = self.alloc_block(cg, near)?;
                        self.save(a, vec![0u8; bs])?;
                        inode.ptrs[DIND] = a;
                        a
                    }
                };
                let b = self.load(dind)?;
                let ind = match nz(get_u32(&b, i)) {
                    Some(a) => a,
                    None => {
                        let a = self.alloc_block(cg, near)?;
                        self.save(a, vec![0u8; bs])?;
                        let mut b = self.load(dind)?;
                        set_u32(&mut b, i, a);
                        self.save(dind, b)?;
                        a
                    }
                };
                self.alloc_in_table(ind, j, cg, near)
            }
        }
    }

    fn alloc_in_table(&mut self, table: u32, i: usize, cg: u32, near: Option<u32>) -> Result<u32> {
        let b = self.load(table)?;
        if let Some(a) = nz(get_u32(&b, i)) {
            return Ok(a);
        }
        let a = self.alloc_block(cg, near)?;
        let mut b = self.load(table)?;
        set_u32(&mut b, i, a);
        self.save(table, b)?;
        Ok(a)
    }

    fn collect_blocks(&mut self, inode: &Inode) -> Result<Vec<u32>> {
        let bs = self.config.block_size as u64;
        let mut out = Vec::new();
        let nblocks = inode.size.div_ceil(bs);
        for idx in 0..nblocks {
            if let Some(a) = self.block_at(inode, idx)? {
                out.push(a);
            }
        }
        // Indirect metadata blocks.
        if let Some(ind) = nz(inode.ptrs[IND]) {
            out.push(ind);
        }
        if let Some(dind) = nz(inode.ptrs[DIND]) {
            let b = self.load(dind)?;
            for i in 0..self.ppb() {
                if let Some(a) = nz(get_u32(&b, i)) {
                    out.push(a);
                }
            }
            out.push(dind);
        }
        Ok(out)
    }

    // ----- directories -----

    fn dir_init(&mut self, ino: Ino, inode: &mut Inode, parent: Ino) -> Result<()> {
        let bs = self.config.block_size;
        let a = self.block_alloc(inode, 0)?;
        let mut block = vec![0u8; bs];
        dirent::encode(ino, ".", &mut block[0..DIRENT_SIZE]);
        dirent::encode(parent, "..", &mut block[DIRENT_SIZE..2 * DIRENT_SIZE]);
        self.save_sync(a, block)?;
        inode.size = bs as u64;
        Ok(())
    }

    fn dir_find(&mut self, dir: &Inode, name: &str) -> Result<Option<Ino>> {
        let bs = self.config.block_size as u64;
        for idx in 0..dir.size.div_ceil(bs) {
            let Some(a) = self.block_at(dir, idx)? else {
                continue;
            };
            let block = self.load(a)?;
            if let Some((_, ino)) = dirent::find_in_block(&block, name) {
                return Ok(Some(ino));
            }
        }
        Ok(None)
    }

    /// Adds an entry with a synchronous directory-block write.
    fn dir_add(&mut self, dir_ino: Ino, dir: &mut Inode, name: &str, ino: Ino) -> Result<()> {
        let bs = self.config.block_size;
        let nblocks = dir.size.div_ceil(bs as u64);
        for idx in 0..nblocks {
            let Some(a) = self.block_at(dir, idx)? else {
                continue;
            };
            let block = self.load(a)?;
            if let Some(slot) = dirent::free_slot(&block) {
                let mut block = block;
                dirent::encode(
                    ino,
                    name,
                    &mut block[slot * DIRENT_SIZE..(slot + 1) * DIRENT_SIZE],
                );
                self.save_sync(a, block)?;
                dir.mtime = self.mtime();
                return self.write_inode_sync(dir_ino, dir);
            }
        }
        let a = self.block_alloc(dir, nblocks)?;
        let mut block = vec![0u8; bs];
        dirent::encode(ino, name, &mut block[0..DIRENT_SIZE]);
        self.save_sync(a, block)?;
        dir.size += bs as u64;
        dir.mtime = self.mtime();
        self.write_inode_sync(dir_ino, dir)
    }

    fn dir_remove(&mut self, dir_ino: Ino, dir: &mut Inode, name: &str) -> Result<Ino> {
        let bs = self.config.block_size as u64;
        for idx in 0..dir.size.div_ceil(bs) {
            let Some(a) = self.block_at(dir, idx)? else {
                continue;
            };
            let block = self.load(a)?;
            if let Some((slot, ino)) = dirent::find_in_block(&block, name) {
                let mut block = block;
                dirent::clear(&mut block[slot * DIRENT_SIZE..(slot + 1) * DIRENT_SIZE]);
                self.save_sync(a, block)?;
                dir.mtime = self.mtime();
                self.write_inode_sync(dir_ino, dir)?;
                return Ok(ino);
            }
        }
        Err(FfsError::NotFound)
    }

    /// Resolves a path.
    pub fn lookup(&mut self, p: &str) -> Result<Ino> {
        let t0 = self.trace_start();
        let r = self.lookup_inner(p);
        self.trace_op(ld_trace::FsOpKind::Lookup, t0);
        r
    }

    fn lookup_inner(&mut self, p: &str) -> Result<Ino> {
        let comps = path::split(p)?;
        let mut cur = ROOT_INO;
        for c in comps {
            let inode = self.read_inode(cur)?;
            if inode.ftype != FileType::Dir {
                return Err(FfsError::NotDir);
            }
            cur = self.dir_find(&inode, c)?.ok_or(FfsError::NotFound)?;
        }
        Ok(cur)
    }

    fn lookup_parent(&mut self, p: &str) -> Result<(Ino, String)> {
        let (parent, name) = path::split_parent(p)?;
        let mut cur = ROOT_INO;
        for c in parent {
            let inode = self.read_inode(cur)?;
            if inode.ftype != FileType::Dir {
                return Err(FfsError::NotDir);
            }
            cur = self.dir_find(&inode, c)?.ok_or(FfsError::NotFound)?;
        }
        Ok((cur, name.to_string()))
    }

    // ----- public operations -----

    /// Creates an empty regular file (synchronous metadata).
    pub fn create(&mut self, p: &str) -> Result<Ino> {
        let t0 = self.trace_start();
        let r = self.create_inner(p);
        self.trace_op(ld_trace::FsOpKind::Create, t0);
        r
    }

    fn create_inner(&mut self, p: &str) -> Result<Ino> {
        self.charge_call();
        let (parent, name) = self.lookup_parent(p)?;
        let mut dir = self.read_inode(parent)?;
        if dir.ftype != FileType::Dir {
            return Err(FfsError::NotDir);
        }
        if self.dir_find(&dir, &name)?.is_some() {
            return Err(FfsError::Exists);
        }
        // FFS policy: a file's i-node goes in its directory's group.
        let cg = self.cg_of_ino(parent);
        let ino = self.alloc_inode_in(cg, FileType::Regular)?;
        let inode = Inode::new(FileType::Regular, self.cg_of_ino(ino), self.mtime());
        self.write_inode_sync(ino, &inode)?;
        self.dir_add(parent, &mut dir, &name, ino)?;
        self.sync_cg(self.cg_of_ino(ino))?;
        Ok(ino)
    }

    /// Creates a directory (synchronous metadata). Directories are spread
    /// round-robin across groups (the FFS dispersal policy).
    pub fn mkdir(&mut self, p: &str) -> Result<Ino> {
        let t0 = self.trace_start();
        let r = self.mkdir_inner(p);
        self.trace_op(ld_trace::FsOpKind::Mkdir, t0);
        r
    }

    fn mkdir_inner(&mut self, p: &str) -> Result<Ino> {
        self.charge_call();
        let (parent, name) = self.lookup_parent(p)?;
        let mut dir = self.read_inode(parent)?;
        if dir.ftype != FileType::Dir {
            return Err(FfsError::NotDir);
        }
        if self.dir_find(&dir, &name)?.is_some() {
            return Err(FfsError::Exists);
        }
        let cg = self.next_dir_cg;
        self.next_dir_cg = (self.next_dir_cg + 1) % self.ncg;
        let ino = self.alloc_inode_in(cg, FileType::Dir)?;
        let mut inode = Inode::new(FileType::Dir, self.cg_of_ino(ino), self.mtime());
        self.dir_init(ino, &mut inode, parent)?;
        self.write_inode_sync(ino, &inode)?;
        self.dir_add(parent, &mut dir, &name, ino)?;
        self.sync_cg(self.cg_of_ino(ino))?;
        Ok(ino)
    }

    /// Writes at `offset` (delayed writes with clustering).
    pub fn write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> Result<()> {
        let t0 = self.trace_start();
        let r = self.write_inner(ino, offset, data);
        self.trace_op(ld_trace::FsOpKind::Write, t0);
        r
    }

    fn write_inner(&mut self, ino: Ino, offset: u64, data: &[u8]) -> Result<()> {
        self.charge_call();
        let mut inode = self.read_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FfsError::IsDir);
        }
        let bs = self.config.block_size as u64;
        let mut pos = offset;
        let mut rest = data;
        while !rest.is_empty() {
            let idx = pos / bs;
            let inner = (pos % bs) as usize;
            let n = rest.len().min(bs as usize - inner);
            let a = self.block_alloc(&mut inode, idx)?;
            if inner == 0 && n == bs as usize {
                self.save(a, rest[..n].to_vec())?;
            } else {
                let mut block = self.load(a)?;
                block[inner..inner + n].copy_from_slice(&rest[..n]);
                self.save(a, block)?;
            }
            pos += n as u64;
            rest = &rest[n..];
        }
        inode.size = inode.size.max(offset + data.len() as u64);
        inode.mtime = self.mtime();
        self.write_inode(ino, &inode)?;
        // Delayed-write watermark: once enough dirty data accumulates,
        // write it back in clustered transfers (the BSD `update`-style
        // behaviour that gives FFS its sequential write bandwidth).
        if self.cache.dirty_bytes() >= self.config.flush_watermark {
            let dirty = self.cache.take_dirty();
            self.flush_blocks(dirty)?;
        }
        Ok(())
    }

    /// Reads at `offset`; returns bytes read. Sequential reads trigger
    /// cluster read-ahead.
    pub fn read(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let t0 = self.trace_start();
        let r = self.read_inner(ino, offset, buf);
        self.trace_op(ld_trace::FsOpKind::Read, t0);
        r
    }

    fn read_inner(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> Result<usize> {
        self.charge_call();
        let inode = self.read_inode(ino)?;
        let bs = self.config.block_size as u64;
        if offset >= inode.size {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(inode.size - offset) as usize;
        let mut done = 0;
        let mut pos = offset;
        let mut last_idx = offset / bs;
        while done < want {
            let idx = pos / bs;
            let inner = (pos % bs) as usize;
            let n = (want - done).min(bs as usize - inner);
            match self.block_at(&inode, idx)? {
                Some(a) => {
                    let block = self.load(a)?;
                    buf[done..done + n].copy_from_slice(&block[inner..inner + n]);
                }
                None => buf[done..done + n].fill(0),
            }
            last_idx = idx;
            pos += n as u64;
            done += n;
        }
        // Cluster read-ahead on sequential access.
        let sequential = self
            .last_read
            .is_some_and(|(i, b)| i == ino && offset / bs == b + 1)
            || offset == 0;
        if sequential {
            let nblocks = inode.size.div_ceil(bs);
            let ra = u64::from(self.config.readahead_blocks);
            for k in last_idx + 1..=(last_idx + ra).min(nblocks.saturating_sub(1)) {
                if let Some(a) = self.block_at(&inode, k)? {
                    if !self.cache.contains(a) {
                        self.load(a)?;
                        self.stats.readahead_blocks += 1;
                    }
                }
            }
        }
        self.last_read = Some((ino, last_idx));
        Ok(done)
    }

    /// Removes a file (synchronous metadata).
    pub fn unlink(&mut self, p: &str) -> Result<()> {
        let t0 = self.trace_start();
        let r = self.unlink_inner(p);
        self.trace_op(ld_trace::FsOpKind::Unlink, t0);
        r
    }

    fn unlink_inner(&mut self, p: &str) -> Result<()> {
        self.charge_call();
        let (parent, name) = self.lookup_parent(p)?;
        let mut dir = self.read_inode(parent)?;
        let ino = self.dir_find(&dir, &name)?.ok_or(FfsError::NotFound)?;
        let inode = self.read_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FfsError::IsDir);
        }
        self.dir_remove(parent, &mut dir, &name)?;
        for a in self.collect_blocks(&inode)? {
            self.free_block(a);
        }
        // Zero the i-node slot synchronously.
        let (addr, off) = self.inode_addr(ino);
        let mut block = self.load(addr)?;
        block[off..off + INODE_SIZE].fill(0);
        self.save_sync(addr, block)?;
        self.free_inode(ino);
        self.sync_cg(self.cg_of_ino(ino))?;
        Ok(())
    }

    /// Lists a directory.
    pub fn readdir(&mut self, p: &str) -> Result<Vec<Dirent>> {
        self.charge_call();
        let ino = self.lookup(p)?;
        let inode = self.read_inode(ino)?;
        if inode.ftype != FileType::Dir {
            return Err(FfsError::NotDir);
        }
        let bs = self.config.block_size as u64;
        let mut out = Vec::new();
        for idx in 0..inode.size.div_ceil(bs) {
            let Some(a) = self.block_at(&inode, idx)? else {
                continue;
            };
            let block = self.load(a)?;
            out.extend(dirent::iter_block(&block).map(|(_, d)| d));
        }
        Ok(out)
    }

    /// Stats an i-node.
    pub fn stat(&mut self, ino: Ino) -> Result<Stat> {
        let inode = self.read_inode(ino)?;
        Ok(Stat {
            ftype: inode.ftype,
            size: inode.size,
            mtime: inode.mtime,
        })
    }

    /// Flushes all dirty state.
    pub fn sync(&mut self) -> Result<()> {
        let t0 = self.trace_start();
        let r = self.sync_inner();
        self.trace_op(ld_trace::FsOpKind::Sync, t0);
        r
    }

    fn sync_inner(&mut self) -> Result<()> {
        self.charge_call();
        let dirty = self.cache.take_dirty();
        self.flush_blocks(dirty)?;
        for cg in 0..self.ncg {
            if self.cgs[cg as usize].dirty {
                self.sync_cg(cg)?;
            }
        }
        Ok(())
    }

    /// Syncs and empties the cache (between benchmark phases).
    pub fn drop_caches(&mut self) -> Result<()> {
        self.sync()?;
        let leftover = self.cache.drop_all();
        debug_assert!(leftover.is_empty());
        self.last_read = None;
        Ok(())
    }
}

fn nz(a: u32) -> Option<u32> {
    (a != 0).then_some(a)
}

fn get_u32(b: &[u8], i: usize) -> u32 {
    wire::le_u32(b, i * 4)
}

fn set_u32(b: &mut [u8], i: usize, v: u32) {
    b[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdisk::{MemDisk, SimDisk};

    fn fs() -> Ffs<MemDisk> {
        Ffs::format(
            MemDisk::with_capacity(32 << 20),
            FfsConfig::small_for_tests(),
        )
        .unwrap()
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(29) ^ seed)
            .collect()
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut fs = fs();
        let ino = fs.create("/f").unwrap();
        let data = pattern(40_000, 1);
        fs.write(ino, 0, &data).unwrap();
        fs.drop_caches().unwrap();
        let mut buf = vec![0u8; 40_000];
        assert_eq!(fs.read(ino, 0, &mut buf).unwrap(), 40_000);
        assert_eq!(buf, data);
        assert_eq!(fs.stat(ino).unwrap().size, 40_000);
    }

    #[test]
    fn directories_and_listing() {
        let mut fs = fs();
        fs.mkdir("/d").unwrap();
        fs.create("/d/x").unwrap();
        fs.create("/d/y").unwrap();
        let names: Vec<_> = fs
            .readdir("/d")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec![".", "..", "x", "y"]);
        assert_eq!(fs.create("/d/x"), Err(FfsError::Exists));
        assert_eq!(fs.lookup("/d/z"), Err(FfsError::NotFound));
    }

    #[test]
    fn unlink_frees_blocks() {
        let mut fs = fs();
        let ino = fs.create("/f").unwrap();
        fs.write(ino, 0, &pattern(100_000, 2)).unwrap();
        let free_before: usize = fs.cgs.iter().map(|g| g.blocks.free()).sum();
        fs.unlink("/f").unwrap();
        let free_after: usize = fs.cgs.iter().map(|g| g.blocks.free()).sum();
        assert!(free_after > free_before);
        assert_eq!(fs.lookup("/f"), Err(FfsError::NotFound));
    }

    #[test]
    fn metadata_operations_are_synchronous() {
        let mut fs = Ffs::format(
            SimDisk::hp_c3010_with_capacity(32 << 20),
            FfsConfig::small_for_tests(),
        )
        .unwrap();
        let before = fs.stats().sync_meta_writes;
        let writes_before = fs.disk().stats().write_ops;
        fs.create("/f").unwrap();
        assert!(fs.stats().sync_meta_writes > before);
        assert!(
            fs.disk().stats().write_ops > writes_before,
            "create must hit the disk before returning"
        );
    }

    #[test]
    fn large_file_spans_indirect_blocks() {
        let mut fs = fs();
        let ino = fs.create("/big").unwrap();
        // 7 direct 8 KB blocks = 56 KB; write 200 KB.
        let chunk = pattern(8192, 3);
        for i in 0..25u64 {
            fs.write(ino, i * 8192, &chunk).unwrap();
        }
        fs.drop_caches().unwrap();
        let mut buf = vec![0u8; 8192];
        for i in [0u64, 8, 24] {
            assert_eq!(fs.read(ino, i * 8192, &mut buf).unwrap(), 8192);
            assert_eq!(buf, chunk);
        }
    }

    #[test]
    fn sequential_write_is_clustered() {
        let mut fs = Ffs::format(
            SimDisk::hp_c3010_with_capacity(64 << 20),
            FfsConfig::small_for_tests(),
        )
        .unwrap();
        let ino = fs.create("/seq").unwrap();
        let chunk = pattern(8192, 4);
        for i in 0..64u64 {
            fs.write(ino, i * 8192, &chunk).unwrap();
        }
        fs.sync().unwrap();
        let s = fs.stats();
        assert!(
            s.clustered_writes < 64,
            "sequential blocks must coalesce: {} transfers",
            s.clustered_writes
        );
    }

    #[test]
    fn sequential_read_prefetches() {
        let mut fs = fs();
        let ino = fs.create("/seq").unwrap();
        fs.write(ino, 0, &pattern(96 << 10, 5)).unwrap();
        fs.drop_caches().unwrap();
        let mut buf = vec![0u8; 8192];
        fs.read(ino, 0, &mut buf).unwrap();
        assert!(fs.stats().readahead_blocks > 0);
        // The prefetched blocks are cache hits.
        let (h0, _) = fs.cache.stats();
        fs.read(ino, 8192, &mut buf).unwrap();
        let (h1, _) = fs.cache.stats();
        assert!(h1 > h0);
    }

    #[test]
    fn files_land_in_their_directory_group() {
        let mut fs = fs();
        fs.mkdir("/a").unwrap();
        fs.mkdir("/b").unwrap();
        let fa = fs.create("/a/f").unwrap();
        let fb = fs.create("/b/f").unwrap();
        let da = fs.lookup("/a").unwrap();
        let db = fs.lookup("/b").unwrap();
        assert_eq!(fs.cg_of_ino(fa), fs.cg_of_ino(da));
        assert_eq!(fs.cg_of_ino(fb), fs.cg_of_ino(db));
        assert_ne!(fs.cg_of_ino(da), fs.cg_of_ino(db), "directories dispersed");
    }

    #[test]
    fn inode_exhaustion_reports() {
        let mut fs = Ffs::format(
            MemDisk::with_capacity(4 << 20),
            FfsConfig {
                inodes_per_cg: 4,
                cg_blocks: 64,
                ..FfsConfig::small_for_tests()
            },
        )
        .unwrap();
        // One group (4 MB / 8 KB = 512 blocks / 64 = 8 groups actually);
        // just fill until error.
        let mut made = 0;
        loop {
            match fs.create(&format!("/f{made}")) {
                Ok(_) => made += 1,
                Err(FfsError::NoInodes) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(made > 0);
        fs.unlink("/f0").unwrap();
        assert!(fs.create("/again").is_ok());
    }
}
