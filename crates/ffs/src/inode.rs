//! FFS i-nodes: 64 bytes, 7 direct blocks, one indirect, one
//! double-indirect — structurally like MINIX's but over 8 KB blocks.

use fsutil::wire;

/// Bytes per encoded i-node.
pub const INODE_SIZE: usize = 64;
/// Direct block pointers.
pub const DIRECT: usize = 7;
/// Index of the indirect pointer.
pub const IND: usize = 7;
/// Index of the double-indirect pointer.
pub const DIND: usize = 8;
/// Total pointers.
pub const NPTRS: usize = 9;

/// File type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Dir,
}

/// An in-memory i-node. Block pointers are disk block numbers with 0 as
/// "none" (block 0 is the superblock, never file data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inode {
    /// File type.
    pub ftype: FileType,
    /// Size in bytes.
    pub size: u64,
    /// Modification time (simulated seconds).
    pub mtime: u32,
    /// Cylinder group this i-node prefers for data.
    pub cg: u32,
    /// Block pointers.
    pub ptrs: [u32; NPTRS],
}

impl Inode {
    /// A fresh i-node.
    pub fn new(ftype: FileType, cg: u32, mtime: u32) -> Self {
        Self {
            ftype,
            size: 0,
            mtime,
            cg,
            ptrs: [0; NPTRS],
        }
    }

    /// Encodes into a 64-byte slot (zeroed slot = free).
    pub fn encode(&self, slot: &mut [u8]) {
        assert_eq!(slot.len(), INODE_SIZE);
        slot.fill(0);
        let t: u16 = match self.ftype {
            FileType::Regular => 1,
            FileType::Dir => 2,
        };
        slot[0..2].copy_from_slice(&t.to_le_bytes());
        slot[2..4].copy_from_slice(&0u16.to_le_bytes());
        slot[4..12].copy_from_slice(&self.size.to_le_bytes());
        slot[12..16].copy_from_slice(&self.mtime.to_le_bytes());
        slot[16..20].copy_from_slice(&self.cg.to_le_bytes());
        for (i, p) in self.ptrs.iter().enumerate() {
            slot[20 + i * 4..24 + i * 4].copy_from_slice(&p.to_le_bytes());
        }
    }

    /// Decodes a slot; `None` when the slot is free.
    pub fn decode(slot: &[u8]) -> Option<Self> {
        assert_eq!(slot.len(), INODE_SIZE);
        let t = wire::le_u16(slot, 0);
        let ftype = match t {
            0 => return None,
            1 => FileType::Regular,
            2 => FileType::Dir,
            _ => return None,
        };
        let mut ptrs = [0u32; NPTRS];
        for (i, p) in ptrs.iter_mut().enumerate() {
            *p = wire::le_u32(slot, 20 + i * 4);
        }
        Some(Self {
            ftype,
            size: wire::le_u64(slot, 4),
            mtime: wire::le_u32(slot, 12),
            cg: wire::le_u32(slot, 16),
            ptrs,
        })
    }
}

/// Block-pointer location for a file block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrPath {
    /// `ptrs[i]`.
    Direct(usize),
    /// Entry `i` of the indirect block.
    Indirect(usize),
    /// Entry `j` of indirect block `i` under the double-indirect block.
    Double(usize, usize),
}

/// Maps a file block index for `ppb` pointers per indirect block. Returns
/// `None` beyond the double-indirect range.
pub fn ptr_path(idx: u64, ppb: usize) -> Option<PtrPath> {
    let d = DIRECT as u64;
    let p = ppb as u64;
    if idx < d {
        return Some(PtrPath::Direct(idx as usize));
    }
    let idx = idx - d;
    if idx < p {
        return Some(PtrPath::Indirect(idx as usize));
    }
    let idx = idx - p;
    if idx < p * p {
        return Some(PtrPath::Double((idx / p) as usize, (idx % p) as usize));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut i = Inode::new(FileType::Regular, 3, 42);
        i.size = 80 << 20;
        i.ptrs[0] = 1000;
        i.ptrs[IND] = 2000;
        let mut slot = [0u8; INODE_SIZE];
        i.encode(&mut slot);
        assert_eq!(Inode::decode(&slot), Some(i));
        assert_eq!(Inode::decode(&[0u8; INODE_SIZE]), None);
    }

    #[test]
    fn eighty_megabyte_file_fits_in_indirect_range() {
        // 80 MB at 8 KB blocks = 10240 blocks; ppb = 2048.
        assert_eq!(ptr_path(10_239, 2048), Some(PtrPath::Double(3, 2040)));
        assert!(matches!(ptr_path(7, 2048), Some(PtrPath::Indirect(0))));
        assert!(ptr_path(7 + 2048 + 2048 * 2048, 2048).is_none());
    }
}
