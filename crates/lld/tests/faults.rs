//! Unit-level media-fault behaviour of the disk manager: bounded read
//! retry, scrub/relocate/remap, quarantine, and persistence of the bad
//! sector table across checkpoint and recovery.

use ld_core::{LdError, ListHints, LogicalDisk, Pred, PredList};
use lld::{Lld, LldConfig};
use simdisk::{FaultConfig, SimDisk};

fn test_config() -> LldConfig {
    LldConfig {
        segment_bytes: 64 << 10,
        summary_bytes: 4 << 10,
        read_retries: 16,
        cpu: lld::CpuModel::free(),
        ..LldConfig::default()
    }
}

fn disk() -> SimDisk {
    SimDisk::hp_c3010_with_capacity(16 << 20)
}

fn data(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(13) ^ seed)
        .collect()
}

/// Writes `n` 4 KB blocks on one list and flushes; returns their ids and
/// contents.
fn populate(lld: &mut Lld<SimDisk>, n: usize) -> Vec<(ld_core::Bid, Vec<u8>)> {
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let mut blocks = Vec::new();
    for i in 0..n {
        let b = lld.new_block(lid, Pred::Start).unwrap();
        let d = data(4096, i as u8);
        lld.write(b, &d).unwrap();
        blocks.push((b, d));
    }
    lld.flush(ld_core::FailureSet::PowerFailure).unwrap();
    blocks
}

#[test]
fn transient_faults_are_retried_below_the_client() {
    let mut lld = Lld::format(disk(), test_config()).unwrap();
    let blocks = populate(&mut lld, 40);
    lld.disk_mut().set_faults(FaultConfig {
        seed: 11,
        transient_ppm: 50_000, // 5% of sectors, heavy but recoverable.
        transient_max_failures: 2,
        ..FaultConfig::default()
    });
    let mut buf = vec![0u8; 4096];
    // Read backwards: the drive's read-ahead buffer only caches forward,
    // so every read is a mechanical transfer that faces the fault model.
    for (b, d) in blocks.iter().rev() {
        let n = lld.read(*b, &mut buf).expect("read must retry through");
        assert_eq!(&buf[..n], &d[..], "retried read returned wrong bytes");
    }
    let stats = lld.stats();
    assert!(stats.retries > 0, "5% transient faults must cost retries");
    assert_eq!(stats.unreadable_blocks, 0);
    // Probing clears the recovered suspects; nothing is retired.
    let (relocated, remapped, unreadable) = lld.scrub().unwrap();
    assert_eq!((relocated, remapped, unreadable), (0, 0, 0));
    assert_eq!(lld.suspect_sector_count(), 0);
}

#[test]
fn latent_fault_under_live_block_reports_loss() {
    let mut lld = Lld::format(disk(), test_config()).unwrap();
    let blocks = populate(&mut lld, 40);
    lld.disk_mut().set_faults(FaultConfig {
        seed: 4,
        latent_ppm: 20_000, // 2%: some blocks certainly hit.
        ..FaultConfig::default()
    });
    let mut buf = vec![0u8; 4096];
    let mut lost = 0usize;
    for (b, d) in &blocks {
        match lld.read(*b, &mut buf) {
            Ok(n) => assert_eq!(&buf[..n], &d[..], "wrong bytes for {b}"),
            Err(LdError::Device(_)) => lost += 1,
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
    assert!(lost > 0, "2% latent faults over 40 blocks must lose some");
    assert_eq!(lld.stats().unreadable_blocks, lost as u64);
}

#[test]
fn scrub_relocates_remaps_and_quarantines() {
    let mut lld = Lld::format(disk(), test_config()).unwrap();
    let blocks = populate(&mut lld, 40);
    // Delete every other block so live segments carry dead extents —
    // latent sectors under those are remappable, and the surviving
    // neighbours must be relocated off the quarantined segments.
    let lid = lld.list_of_lists()[0];
    for (b, _) in blocks.iter().skip(1).step_by(2) {
        lld.delete_block(*b, lid, None).unwrap();
    }
    lld.flush(ld_core::FailureSet::PowerFailure).unwrap();
    lld.disk_mut().set_faults(FaultConfig {
        seed: 8,
        latent_ppm: 3_000,
        ..FaultConfig::default()
    });
    let (_, remapped, _) = lld.media_scan().expect("media scan");
    assert!(remapped > 0, "the schedule must retire some sectors");
    assert_eq!(lld.bad_sector_table().len() as u64, remapped);
    assert!(lld.quarantined_segments() > 0, "bad sectors imply quarantine");
    // Surviving blocks: either intact or reported, never silently wrong.
    let mut buf = vec![0u8; 4096];
    for (b, d) in blocks.iter().step_by(2) {
        if let Ok(n) = lld.read(*b, &mut buf) {
            assert_eq!(&buf[..n], &d[..], "wrong bytes for {b}");
        }
    }
    // Still writable: new blocks land outside quarantined segments.
    let b = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(b, &data(4096, 0xEE)).unwrap();
    lld.flush(ld_core::FailureSet::PowerFailure).unwrap();
}

#[test]
fn bad_sector_table_survives_checkpoint_and_recovery() {
    let mut lld = Lld::format(disk(), test_config()).unwrap();
    let blocks = populate(&mut lld, 40);
    let lid = lld.list_of_lists()[0];
    for (b, _) in blocks.iter().skip(1).step_by(2) {
        lld.delete_block(*b, lid, None).unwrap();
    }
    lld.flush(ld_core::FailureSet::PowerFailure).unwrap();
    lld.disk_mut().set_faults(FaultConfig {
        seed: 8,
        latent_ppm: 3_000,
        ..FaultConfig::default()
    });
    lld.media_scan().expect("media scan");
    let table = lld.bad_sector_table();
    let quarantined = lld.quarantined_segments();
    assert!(!table.is_empty());

    // Clean shutdown → checkpoint carries the table; ldck agrees.
    let config = lld.config().clone();
    lld.shutdown().expect("shutdown");
    let disk = lld.into_disk();
    let report = ldck::check_image(&disk.image_bytes(), &config);
    assert!(report.is_clean(), "image has errors: {:?}", report.findings);
    assert_eq!(report.stats.bad_sectors, table.len() as u64);

    // Checkpoint path restores it…
    let mut rec = Lld::open(disk, config.clone()).unwrap();
    assert_eq!(rec.bad_sector_table(), table);
    assert_eq!(rec.quarantined_segments(), quarantined);

    // …and so does the full recovery sweep after a crash (the checkpoint
    // is stale but its bad-sector section is still the source of truth).
    let mut b2 = rec.new_block(lid, Pred::Start).unwrap();
    rec.write(b2, &data(4096, 0x77)).unwrap();
    rec.flush(ld_core::FailureSet::PowerFailure).unwrap();
    b2 = rec.new_block(lid, Pred::Start).unwrap();
    rec.write(b2, &data(4096, 0x78)).unwrap(); // Unflushed tail.
    let mut disk = rec.into_disk();
    disk.crash_now();
    disk.revive();
    let swept = Lld::open(disk, config).unwrap();
    assert_eq!(swept.bad_sector_table(), table);
    assert_eq!(swept.quarantined_segments(), quarantined);
}
