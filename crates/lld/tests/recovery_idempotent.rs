//! Recovery is a pure function of the image: opening the same disk image
//! twice — whether it recovers via the checkpoint or the full summary
//! sweep, on a healthy or a deterministically faulty medium — must yield
//! identical block maps, contents, stats, remap tables, and post-recovery
//! images, and `ldck` must agree both times.

use ld_core::{ListHints, LogicalDisk, Pred, PredList};
use lld::{Lld, LldConfig, LldStats};
use proptest::prelude::*;
use simdisk::{FaultConfig, SimDisk};

const CAPACITY: u64 = 16 << 20;

fn test_config() -> LldConfig {
    LldConfig {
        segment_bytes: 64 << 10,
        summary_bytes: 4 << 10,
        read_retries: 16,
        cpu: lld::CpuModel::free(),
        ..LldConfig::default()
    }
}

fn content(seed: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| ((seed * 37 + j * 11) % 253) as u8)
        .collect()
}

/// Everything a client (or an auditor) can observe about a recovered
/// disk manager. Reads that fail are recorded as failures — a loss
/// reported on one recovery must be reported on the other too.
#[derive(Debug, PartialEq)]
struct Observed {
    stats: LldStats,
    lists: Vec<(ld_core::Lid, Vec<ld_core::Bid>)>,
    contents: Vec<(ld_core::Bid, Result<Vec<u8>, String>)>,
    bad_sectors: Vec<u64>,
    quarantined: u32,
    free_segments: u32,
}

/// Loads `image` into a fresh medium (with the given fault schedule — the
/// schedule belongs to the medium, not the image), recovers, and returns
/// the observable state plus the post-recovery image.
fn open_and_observe(
    image: &[u8],
    config: &LldConfig,
    faults: Option<FaultConfig>,
) -> (Observed, Vec<u8>) {
    let mut disk = SimDisk::hp_c3010_with_capacity(CAPACITY);
    disk.load_image(image);
    if let Some(f) = faults {
        disk.set_faults(f);
    }
    let mut lld = Lld::open(disk, config.clone()).expect("open");
    let stats = *lld.stats();
    let mut lists = Vec::new();
    let mut contents = Vec::new();
    for lid in lld.list_of_lists() {
        let bids = lld.list_blocks(lid).expect("list_blocks");
        for &b in &bids {
            let mut buf = vec![0u8; 64 << 10];
            let r = match lld.read(b, &mut buf) {
                Ok(n) => Ok(buf[..n].to_vec()),
                Err(e) => Err(e.to_string()),
            };
            contents.push((b, r));
        }
        lists.push((lid, bids));
    }
    let obs = Observed {
        stats,
        lists,
        contents,
        bad_sectors: lld.bad_sector_table(),
        quarantined: lld.quarantined_segments(),
        free_segments: lld.free_segments(),
    };
    (obs, lld.into_disk().image_bytes())
}

/// A deterministic little workload: lists, writes, deletes, overwrites,
/// periodic flushes, and (optionally) a scrubbed faulty medium with an
/// unflushed tail before a crash. Returns the crashed/shut-down image.
fn build_image(
    nblocks: usize,
    delete_stride: usize,
    fault_cfg: Option<FaultConfig>,
    clean_shutdown: bool,
) -> Vec<u8> {
    let mut lld = Lld::format(SimDisk::hp_c3010_with_capacity(CAPACITY), test_config()).unwrap();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let lid2 = lld.new_list(PredList::After(lid), ListHints::default()).unwrap();
    let mut blocks = Vec::new();
    for i in 0..nblocks {
        let l = if i % 3 == 0 { lid2 } else { lid };
        let b = lld.new_block(l, Pred::Start).unwrap();
        lld.write(b, &content(i, 1024 + (i % 5) * 600)).unwrap();
        blocks.push(b);
        if i % 7 == 0 {
            lld.flush(ld_core::FailureSet::PowerFailure).unwrap();
        }
    }
    for (i, &b) in blocks.iter().enumerate() {
        if i % delete_stride == 1 {
            let l = if i % 3 == 0 { lid2 } else { lid };
            lld.delete_block(b, l, None).unwrap();
        }
    }
    lld.flush(ld_core::FailureSet::PowerFailure).unwrap();
    if let Some(f) = fault_cfg {
        lld.disk_mut().set_faults(f);
        lld.media_scan().expect("media scan");
    }
    // Post-scrub activity plus an unflushed tail the recovery must discard.
    let b = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(b, &content(999, 3000)).unwrap();
    if clean_shutdown {
        lld.shutdown().expect("shutdown");
        return lld.into_disk().image_bytes();
    }
    lld.flush(ld_core::FailureSet::PowerFailure).unwrap();
    let b = lld.new_block(lid2, Pred::Start).unwrap();
    lld.write(b, &content(1000, 1500)).unwrap();
    let mut disk = lld.into_disk();
    disk.crash_now();
    disk.revive();
    disk.image_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sweep path: a crashed image (healthy or scrubbed-faulty medium)
    /// recovers to the same observable state and the same on-disk bytes
    /// no matter how many times it is opened.
    #[test]
    fn sweep_recovery_is_idempotent(
        nblocks in 8usize..48,
        delete_stride in 2usize..5,
        fault_seed in any::<u64>(),
        with_faults in any::<bool>(),
        latent_ppm in 500u32..3_000,
    ) {
        let config = test_config();
        let fault_cfg = with_faults.then(|| FaultConfig {
            seed: fault_seed,
            latent_ppm,
            ..FaultConfig::default()
        });
        let image = build_image(nblocks, delete_stride, fault_cfg, false);
        let (obs1, post1) = open_and_observe(&image, &config, fault_cfg);
        let (obs2, post2) = open_and_observe(&image, &config, fault_cfg);
        prop_assert_eq!(&obs1, &obs2, "two recoveries of one image diverged");
        prop_assert_eq!(post1, post2, "post-recovery images diverged");
        prop_assert!(!obs1.stats.recovered_from_checkpoint);

        let report = ldck::check_image(&image, &config);
        prop_assert!(report.is_clean(), "crashed image: {:?}", report.findings);
        prop_assert_eq!(
            report.stats.bad_sectors,
            obs1.bad_sectors.len() as u64,
            "ldck's sweep reconstructs a different remap table than recovery"
        );
    }

    /// Checkpoint path: a cleanly shut down scrubbed image restores the
    /// same state twice — and the consumed-checkpoint image it leaves
    /// behind *re-recovers* (now via the sweep) to that same state.
    #[test]
    fn checkpoint_recovery_is_idempotent(
        nblocks in 8usize..40,
        delete_stride in 2usize..5,
        fault_seed in any::<u64>(),
        latent_ppm in 500u32..3_000,
    ) {
        let config = test_config();
        let fault_cfg = Some(FaultConfig {
            seed: fault_seed,
            latent_ppm,
            ..FaultConfig::default()
        });
        let image = build_image(nblocks, delete_stride, fault_cfg, true);
        let (obs1, post1) = open_and_observe(&image, &config, fault_cfg);
        let (obs2, post2) = open_and_observe(&image, &config, fault_cfg);
        prop_assert_eq!(&obs1, &obs2, "two checkpoint restores diverged");
        prop_assert_eq!(&post1, &post2, "post-restore images diverged");
        // A latent fault on the header region makes `open` fall back to
        // the sweep — legitimate, and obs1 == obs2 already pins the flag.

        // Opening consumed the checkpoint (or fell back); the remap table
        // must survive the subsequent sweep with the same contents.
        let (obs3, _) = open_and_observe(&post1, &config, fault_cfg);
        prop_assert!(!obs3.stats.recovered_from_checkpoint);
        prop_assert_eq!(&obs1.bad_sectors, &obs3.bad_sectors);
        prop_assert_eq!(obs1.quarantined, obs3.quarantined);
        prop_assert_eq!(&obs1.lists, &obs3.lists);

        let report = ldck::check_image(&image, &config);
        prop_assert!(report.is_clean(), "scrubbed image: {:?}", report.findings);
        prop_assert_eq!(report.stats.bad_sectors, obs1.bad_sectors.len() as u64);
    }
}
