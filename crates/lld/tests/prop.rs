//! Property tests for LLD.
//!
//! 1. **Differential**: a random operation sequence applied to both LLD and
//!    the trivially-correct in-memory `ModelLd` must produce identical
//!    observable behaviour (same results, same list structures, same block
//!    contents).
//! 2. **Crash-anywhere**: after a random prefix of operations and a crash,
//!    recovery must reconstruct exactly the state as of the last `Flush`
//!    (plus anything in sealed segments), with ARU atomicity.

use ld_core::model::ModelLd;
use ld_core::{Bid, FailureSet, LdError, Lid, ListHints, LogicalDisk, Pred, PredList};
use lld::{Lld, LldConfig};
use proptest::prelude::*;
use simdisk::MemDisk;

/// A random LD operation, with indices into the live id vectors so that
/// most operations hit valid targets.
#[derive(Debug, Clone)]
enum Op {
    NewList {
        pred: usize,
        compress: bool,
    },
    DeleteList {
        lid: usize,
    },
    NewBlock {
        lid: usize,
        pred: usize,
        small: bool,
    },
    DeleteBlock {
        bid: usize,
        hint: bool,
    },
    Write {
        bid: usize,
        len: usize,
        seed: u8,
    },
    Read {
        bid: usize,
    },
    Flush,
    AruBlock {
        lid: usize,
        len: usize,
        seed: u8,
    },
    MoveList {
        lid: usize,
        pred: usize,
    },
    Swap {
        a: usize,
        b: usize,
    },
    BlockAt {
        lid: usize,
        index: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (any::<prop::sample::Index>(), any::<bool>())
            .prop_map(|(pred, compress)| Op::NewList { pred: pred.index(64), compress }),
        1 => any::<prop::sample::Index>().prop_map(|l| Op::DeleteList { lid: l.index(64) }),
        6 => (any::<prop::sample::Index>(), any::<prop::sample::Index>(), any::<bool>())
            .prop_map(|(l, p, small)| Op::NewBlock { lid: l.index(64), pred: p.index(64), small }),
        2 => (any::<prop::sample::Index>(), any::<bool>())
            .prop_map(|(b, hint)| Op::DeleteBlock { bid: b.index(64), hint }),
        8 => (any::<prop::sample::Index>(), 0usize..4096, any::<u8>())
            .prop_map(|(b, len, seed)| Op::Write { bid: b.index(64), len, seed }),
        4 => any::<prop::sample::Index>().prop_map(|b| Op::Read { bid: b.index(64) }),
        2 => Just(Op::Flush),
        2 => (any::<prop::sample::Index>(), 0usize..2048, any::<u8>())
            .prop_map(|(l, len, seed)| Op::AruBlock { lid: l.index(64), len, seed }),
        1 => (any::<prop::sample::Index>(), any::<prop::sample::Index>())
            .prop_map(|(l, p)| Op::MoveList { lid: l.index(64), pred: p.index(64) }),
        2 => (any::<prop::sample::Index>(), any::<prop::sample::Index>())
            .prop_map(|(a, b)| Op::Swap { a: a.index(64), b: b.index(64) }),
        2 => (any::<prop::sample::Index>(), 0u64..12)
            .prop_map(|(l, index)| Op::BlockAt { lid: l.index(64), index }),
    ]
}

fn data(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(17) ^ seed)
        .collect()
}

fn pick<T: Copy>(v: &[T], idx: usize) -> Option<T> {
    if v.is_empty() {
        None
    } else {
        Some(v[idx % v.len()])
    }
}

/// Applies one op to both implementations and checks agreement.
fn apply_both(
    lld: &mut Lld<MemDisk>,
    model: &mut ModelLd,
    lids: &mut Vec<Lid>,
    bids: &mut Vec<Bid>,
    op: &Op,
) -> Result<(), TestCaseError> {
    match op {
        Op::NewList { pred, compress } => {
            let pred = match pick(lids, *pred) {
                Some(l) => PredList::After(l),
                None => PredList::Start,
            };
            let hints = if *compress {
                ListHints::compressed()
            } else {
                ListHints::default()
            };
            let a = lld.new_list(pred, hints);
            let b = model.new_list(pred, hints);
            prop_assert_eq!(a.is_ok(), b.is_ok(), "new_list disagreement");
            if let Ok(l) = a {
                prop_assert_eq!(l, b.unwrap(), "lid allocation must match");
                lids.push(l);
            }
        }
        Op::DeleteList { lid } => {
            let Some(l) = pick(lids, *lid) else {
                return Ok(());
            };
            let dead_a = lld.list_blocks(l).unwrap_or_default();
            let a = lld.delete_list(l, None);
            let b = model.delete_list(l, None);
            prop_assert_eq!(&a, &b, "delete_list disagreement");
            if a.is_ok() {
                lids.retain(|&x| x != l);
                bids.retain(|x| !dead_a.contains(x));
            }
        }
        Op::NewBlock { lid, pred, small } => {
            let Some(l) = pick(lids, *lid) else {
                return Ok(());
            };
            let pred = match pick(bids, *pred) {
                Some(b) => Pred::After(b),
                None => Pred::Start,
            };
            let size = if *small { 256 } else { 4096 };
            let a = lld.new_block_with_size(l, pred, size);
            let b = model.new_block_with_size(l, pred, size);
            prop_assert_eq!(&a, &b, "new_block disagreement");
            if let Ok(bid) = a {
                bids.push(bid);
            }
        }
        Op::DeleteBlock { bid, hint } => {
            let Some(b) = pick(bids, *bid) else {
                return Ok(());
            };
            // Find the owning list from the model via brute force.
            let mut owner = None;
            for l in lids.iter() {
                if model.list_blocks(*l).is_ok_and(|bs| bs.contains(&b)) {
                    owner = Some(*l);
                    break;
                }
            }
            let Some(l) = owner else { return Ok(()) };
            let hint = if *hint { Some(b) } else { None }; // Deliberately wrong hint sometimes.
            let a = lld.delete_block(b, l, hint);
            let m = model.delete_block(b, l, hint);
            prop_assert_eq!(&a, &m, "delete_block disagreement");
            if a.is_ok() {
                bids.retain(|&x| x != b);
            }
        }
        Op::Write { bid, len, seed } => {
            let Some(b) = pick(bids, *bid) else {
                return Ok(());
            };
            let payload = data(*len, *seed);
            let a = lld.write(b, &payload);
            let m = model.write(b, &payload);
            prop_assert_eq!(&a, &m, "write disagreement");
        }
        Op::Read { bid } => {
            let Some(b) = pick(bids, *bid) else {
                return Ok(());
            };
            let mut ba = vec![0u8; 8192];
            let mut bm = vec![0u8; 8192];
            let a = lld.read(b, &mut ba);
            let m = model.read(b, &mut bm);
            prop_assert_eq!(&a, &m, "read disagreement");
            if let Ok(n) = a {
                prop_assert_eq!(&ba[..n], &bm[..n], "read contents disagree");
            }
        }
        Op::Flush => {
            prop_assert_eq!(
                lld.flush(FailureSet::PowerFailure),
                model.flush(FailureSet::PowerFailure)
            );
        }
        Op::AruBlock { lid, len, seed } => {
            let Some(l) = pick(lids, *lid) else {
                return Ok(());
            };
            let payload = data(*len, *seed);
            let a = ld_core::with_aru(lld, |ld| {
                let b = ld.new_block(l, Pred::Start)?;
                ld.write(b, &payload)?;
                Ok(b)
            });
            let m = ld_core::with_aru(model, |ld| {
                let b = ld.new_block(l, Pred::Start)?;
                ld.write(b, &payload)?;
                Ok(b)
            });
            prop_assert_eq!(&a, &m, "ARU disagreement");
            if let Ok(b) = a {
                bids.push(b);
            }
        }
        Op::MoveList { lid, pred } => {
            let Some(l) = pick(lids, *lid) else {
                return Ok(());
            };
            let pred = match pick(lids, *pred) {
                Some(p) if p != l => PredList::After(p),
                _ => PredList::Start,
            };
            let a = lld.move_list(l, pred);
            let m = model.move_list(l, pred);
            prop_assert_eq!(&a, &m, "move_list disagreement");
        }
        Op::Swap { a, b } => {
            let (Some(x), Some(y)) = (pick(bids, *a), pick(bids, *b)) else {
                return Ok(());
            };
            let ra = lld.swap_contents(x, y);
            let rm = model.swap_contents(x, y);
            prop_assert_eq!(&ra, &rm, "swap_contents disagreement");
        }
        Op::BlockAt { lid, index } => {
            let Some(l) = pick(lids, *lid) else {
                return Ok(());
            };
            prop_assert_eq!(
                lld.block_at(l, *index),
                model.block_at(l, *index),
                "block_at disagreement"
            );
        }
    }
    Ok(())
}

/// Checks full observable equivalence of the two implementations.
fn check_equivalent(
    lld: &mut Lld<MemDisk>,
    model: &mut ModelLd,
    lids: &[Lid],
    bids: &[Bid],
) -> Result<(), TestCaseError> {
    for l in lids {
        prop_assert_eq!(
            lld.list_blocks(*l),
            model.list_blocks(*l),
            "list {} structure",
            l
        );
    }
    for b in bids {
        let mut ba = vec![0u8; 8192];
        let mut bm = vec![0u8; 8192];
        let a = lld.read(*b, &mut ba);
        let m = model.read(*b, &mut bm);
        prop_assert_eq!(&a, &m, "final read of {}", b);
        if let Ok(n) = a {
            prop_assert_eq!(&ba[..n], &bm[..n], "final contents of {}", b);
        }
    }
    Ok(())
}

fn test_config() -> LldConfig {
    LldConfig {
        segment_bytes: 32 << 10,
        summary_bytes: 4 << 10,
        cleaning_reserve_segments: 3,
        cpu: lld::CpuModel::free(),
        compression_cost: ldcomp::CostModel::free(),
        ..LldConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// LLD behaves exactly like the reference model under random workloads.
    #[test]
    fn lld_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let disk = MemDisk::with_capacity(8 << 20);
        let mut lld = Lld::format(disk, test_config()).unwrap();
        // The model has a different capacity-accounting granularity; size it
        // identically to LLD's payload capacity so NoSpace agrees.
        let mut model = ModelLd::new(lld.capacity_bytes(), 4096);
        let mut lids = Vec::new();
        let mut bids = Vec::new();
        for op in &ops {
            apply_both(&mut lld, &mut model, &mut lids, &mut bids, op)?;
        }
        check_equivalent(&mut lld, &mut model, &lids, &bids)?;
    }

    /// After a crash, recovery reproduces exactly the model state as of the
    /// last flush; operations after it are absent (all or nothing per ARU).
    #[test]
    fn crash_recovers_last_flushed_state(
        ops in proptest::collection::vec(op_strategy(), 1..100),
        flush_at in 0usize..100,
    ) {
        let disk = MemDisk::with_capacity(8 << 20);
        let mut lld = Lld::format(disk, test_config()).unwrap();
        let mut model = ModelLd::new(lld.capacity_bytes(), 4096);
        let mut lids = Vec::new();
        let mut bids = Vec::new();

        // Run a prefix, then an explicit flush, snapshotting the model.
        let flush_at = flush_at.min(ops.len());
        for op in &ops[..flush_at] {
            apply_both(&mut lld, &mut model, &mut lids, &mut bids, op)?;
        }
        lld.flush(FailureSet::PowerFailure).unwrap();
        let snapshot = model.clone();
        let snap_lids = lids.clone();
        let snap_bids = bids.clone();

        // Run the rest without flushing (ops may still seal segments on
        // their own — those survive; that is allowed by the contract, but
        // for a *deterministic* oracle we only check that flushed state is
        // a lower bound and recovered state is consistent).
        let mut sealed_after = false;
        for op in &ops[flush_at..] {
            let before = lld.stats().segments_sealed + lld.stats().partial_segment_writes;
            apply_both(&mut lld, &mut model, &mut lids, &mut bids, op)?;
            if lld.stats().segments_sealed + lld.stats().partial_segment_writes != before {
                sealed_after = true;
            }
        }

        // Crash and recover. The raw post-crash image must already pass
        // offline consistency checking (ldck mirrors the §3.6 sweep).
        let config = lld.config().clone();
        let disk = lld.into_disk();
        let pre = ldck::check_image(&disk.image_bytes(), &config);
        prop_assert!(
            pre.is_clean(),
            "post-crash image has errors: {:?}",
            pre.findings
        );
        let mut rec = Lld::open(disk, config).unwrap();

        if !sealed_after {
            // Nothing after the flush reached the medium: recovered state
            // must equal the snapshot exactly.
            let mut snap = snapshot;
            check_equivalent(&mut rec, &mut snap, &snap_lids, &snap_bids)?;
            // Blocks created after the flush must not exist.
            for b in bids.iter().filter(|b| !snap_bids.contains(b)) {
                let r = rec.read(*b, &mut vec![0u8; 8192]);
                prop_assert_eq!(r, Err(LdError::UnknownBlock(*b)));
            }
        } else {
            // Some suffix state reached the disk on its own; recovery must
            // still produce an internally consistent LLD: every list walks
            // without error and every block on a list reads successfully.
            for l in rec.list_of_lists() {
                for b in rec.list_blocks(l).unwrap() {
                    let mut buf = vec![0u8; 8192];
                    prop_assert!(rec.read(b, &mut buf).is_ok(), "block {} unreadable", b);
                }
            }
        }

        // The medium must also check clean after recovery ran (the sweep
        // only rewrites the NVRAM tail, if any; the image stays valid).
        let config = rec.config().clone();
        let post = ldck::check_image(&rec.into_disk().image_bytes(), &config);
        prop_assert!(
            post.is_clean(),
            "post-recovery image has errors: {:?}",
            post.findings
        );
    }
}
