//! On-disk layout: checkpoint header region followed by fixed-size segments.
//!
//! ```text
//! sector 0                ckpt header (1 sector)
//! sector 1 ..             (reserved, currently unused)
//! sector HDR ..           segment 0:  [ data region | summary ]
//!                         segment 1:  [ data region | summary ]
//!                         ...
//! ```
//!
//! The summary sits at a *fixed offset at the end of every segment* — the
//! property the paper calls "vital for LLD's approach to recovery" (§3.2):
//! the recovery sweep reads exactly one summary region per segment, and
//! because the summary is written after (or together with) the data it
//! describes, a torn segment write leaves no valid summary and the whole
//! segment is ignored, which is precisely the paper's recovery guarantee
//! ("up to the last segment successfully written", §5.2).

use simdisk::SECTOR_SIZE;

/// Sectors reserved at the front of the disk for the checkpoint header.
pub const HEADER_SECTORS: u64 = 8;

/// Computed disk layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Total segments on the device.
    pub segments: u32,
    /// Sectors per segment.
    pub segment_sectors: u64,
    /// Bytes per segment.
    pub segment_bytes: usize,
    /// Bytes of each segment used for payload data.
    pub data_bytes: usize,
    /// Bytes of each segment used for the summary.
    pub summary_bytes: usize,
}

impl Layout {
    /// Computes the layout for a device of `total_sectors` sectors.
    ///
    /// # Panics
    ///
    /// Panics if the device cannot hold at least one segment plus the
    /// header region — a configuration error.
    pub fn compute(total_sectors: u64, segment_bytes: usize, summary_bytes: usize) -> Self {
        let segment_sectors = (segment_bytes / SECTOR_SIZE) as u64;
        let usable = total_sectors.saturating_sub(HEADER_SECTORS);
        let segments = usable / segment_sectors;
        assert!(
            segments >= 1,
            "device too small: {total_sectors} sectors cannot hold one {segment_bytes}-byte segment"
        );
        Self {
            segments: u32::try_from(segments).expect("segment count overflow"), // PANIC-OK: documented panic contract (see # Panics)
            segment_sectors,
            segment_bytes,
            data_bytes: segment_bytes - summary_bytes,
            summary_bytes,
        }
    }

    /// First sector of segment `seg`.
    pub fn segment_base(&self, seg: u32) -> u64 {
        assert!(seg < self.segments, "segment {seg} out of range");
        HEADER_SECTORS + u64::from(seg) * self.segment_sectors
    }

    /// First sector of segment `seg`'s summary region.
    pub fn summary_base(&self, seg: u32) -> u64 {
        self.segment_base(seg) + (self.data_bytes / SECTOR_SIZE) as u64
    }

    /// Sectors in each summary region.
    pub fn summary_sectors(&self) -> u64 {
        (self.summary_bytes / SECTOR_SIZE) as u64
    }

    /// The segment containing `sector`, or `None` for header sectors and
    /// sectors past the last whole segment.
    pub fn segment_of_sector(&self, sector: u64) -> Option<u32> {
        let rel = sector.checked_sub(HEADER_SECTORS)?;
        let seg = rel / self.segment_sectors;
        (seg < u64::from(self.segments)).then_some(seg as u32)
    }

    /// The sector range (start, count) covering byte range
    /// `offset..offset + len` of segment `seg`'s data region, aligned
    /// outward to sector boundaries.
    pub fn data_sector_span(&self, seg: u32, offset: usize, len: usize) -> (u64, u64) {
        assert!(offset + len <= self.data_bytes, "span beyond data region");
        let first = offset / SECTOR_SIZE;
        let last = (offset + len).div_ceil(SECTOR_SIZE);
        (self.segment_base(seg) + first as u64, (last - first) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_partitions_disk_into_segments() {
        // 1024 sectors of 512B = 512 KB + 8 header sectors.
        let l = Layout::compute(8 + 3 * 128, 64 << 10, 4 << 10);
        assert_eq!(l.segments, 3);
        assert_eq!(l.segment_sectors, 128);
        assert_eq!(l.segment_base(0), 8);
        assert_eq!(l.segment_base(2), 8 + 256);
        assert_eq!(l.data_bytes, 60 << 10);
        assert_eq!(l.summary_base(0), 8 + 120);
        assert_eq!(l.summary_sectors(), 8);
    }

    #[test]
    fn partial_trailing_segment_is_dropped() {
        let l = Layout::compute(8 + 128 + 100, 64 << 10, 4 << 10);
        assert_eq!(l.segments, 1);
    }

    #[test]
    fn data_sector_span_is_aligned_outward() {
        let l = Layout::compute(8 + 128, 64 << 10, 4 << 10);
        // Bytes 100..612 touch sectors 0 and 1.
        let (start, count) = l.data_sector_span(0, 100, 512);
        assert_eq!(start, 8);
        assert_eq!(count, 2);
        // Exactly one sector.
        let (start, count) = l.data_sector_span(0, 512, 512);
        assert_eq!(start, 9);
        assert_eq!(count, 1);
    }

    #[test]
    fn segment_of_sector_inverts_segment_base() {
        let l = Layout::compute(8 + 3 * 128, 64 << 10, 4 << 10);
        assert_eq!(l.segment_of_sector(0), None); // Header region.
        assert_eq!(l.segment_of_sector(7), None);
        assert_eq!(l.segment_of_sector(8), Some(0));
        assert_eq!(l.segment_of_sector(l.segment_base(2)), Some(2));
        assert_eq!(l.segment_of_sector(l.summary_base(2)), Some(2));
        assert_eq!(l.segment_of_sector(8 + 3 * 128), None); // Past the end.
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_device_rejected() {
        let _ = Layout::compute(8, 64 << 10, 4 << 10);
    }
}
