//! Segment cleaning, clustering, and the disk reorganizer (paper §3.5).
//!
//! The cleaner reclaims segments by copying their live blocks into the
//! segment being filled. Two victim-selection policies from Rosenblum &
//! Ousterhout are implemented (the paper notes "all of these can be used
//! for LLD as well"). While copying, blocks are reordered by their position
//! in their lists — the paper's "simplistic clustering strategy" that
//! "uses the list information to reorder the blocks to improve sequential
//! read performance".
//!
//! Cleaning a segment also rewrites the *live* metadata records from its
//! summary into the current segment and drops the dead ones — the paper's
//! "LLD also removes old logging information, such as old link tuples and
//! old EndARU tuples, from the segment summaries during cleaning". Without
//! this, freeing a segment could discard the only surviving record of a
//! link or an allocation and recovery would reconstruct a stale state.

use std::collections::{BTreeSet, HashSet};

use ld_core::Result;
use simdisk::BlockDev;

use crate::block_map::OPEN_SEG;
use crate::records::Record;
use crate::usage::SegState;
use crate::Lld;

/// Victim-selection policy for the cleaner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CleaningPolicy {
    /// Clean the segment with the fewest live bytes.
    Greedy,
    /// Sprite LFS cost-benefit: maximize `(1 - u) · age / (1 + u)`.
    #[default]
    CostBenefit,
}

impl<D: BlockDev> Lld<D> {
    /// Runs the cleaner until the free pool is back above the configured
    /// reserve (or no cleanable segment remains). Called automatically when
    /// a seal drains the pool; also available for explicit idle-time use.
    pub(crate) fn clean_to_reserve(&mut self) -> Result<()> {
        debug_assert!(!self.cleaning);
        self.cleaning = true;
        let cleaned0 = self.stats.segments_cleaned;
        let copied0 = self.stats.cleaner_bytes_copied;
        let result = self.clean_to_reserve_inner();
        self.cleaning = false;
        self.trace(ld_trace::Event::CleanerPass {
            reclaimed: self.stats.segments_cleaned - cleaned0,
            bytes_copied: self.stats.cleaner_bytes_copied - copied0,
        });
        result
    }

    fn clean_to_reserve_inner(&mut self) -> Result<()> {
        self.stats.cleaner_runs += 1;
        while self.usage.free_count() <= self.config.cleaning_reserve_segments {
            let batch = self.victim_batch();
            if batch == 1 {
                let victim = self.usage.pick_victim(
                    self.config.cleaning_policy,
                    self.layout.data_bytes as u64,
                    self.ts,
                    None,
                );
                let Some(victim) = victim else {
                    // Nothing cleanable beyond what is already pending.
                    self.drain_pending_if_starved()?;
                    return Ok(());
                };
                self.clean_segment(victim)?;
            } else {
                let victims = self.usage.pick_victims(
                    self.config.cleaning_policy,
                    self.layout.data_bytes as u64,
                    self.ts,
                    batch,
                );
                if victims.is_empty() {
                    self.drain_pending_if_starved()?;
                    return Ok(());
                }
                self.clean_batch(&victims)?;
            }
            self.drain_pending_if_starved()?;
        }
        Ok(())
    }

    /// Victims cleaned per cleaner iteration: one on the direct path,
    /// `queue_depth` when the command queue can prefetch them in one
    /// scheduler pass.
    fn victim_batch(&self) -> usize {
        if self.config.queue_depth >= 2 {
            self.config.queue_depth as usize
        } else {
            1
        }
    }

    /// Cleans a batch of victims, prefetching each victim's whole segment
    /// (data and summary are contiguous) as one queued read; the scheduler
    /// orders the batch by position instead of by cost-benefit rank. A
    /// victim whose prefetch fails falls back to [`Self::clean_segment`]'s
    /// per-span retry path.
    fn clean_batch(&mut self, victims: &[u32]) -> Result<()> {
        let images = self.prefetch_segments(victims)?;
        for (&victim, image) in victims.iter().zip(images) {
            self.clean_segment_with(victim, image)?;
        }
        Ok(())
    }

    /// Submits one whole-segment read per victim to the command queue and
    /// dispatches until all complete. Returns the segment images in victim
    /// order; a `None` means that read failed on a media fault (single
    /// attempt — the caller's fallback path owns retries). Write
    /// completions drained along the way propagate their errors.
    fn prefetch_segments(&mut self, victims: &[u32]) -> Result<Vec<Option<Vec<u8>>>> {
        let q = self.queue.as_mut().expect("batching requires a queue"); // PANIC-OK: victim_batch returns 1 when queueing is off
        let mut tags = Vec::with_capacity(victims.len());
        for &v in victims {
            tags.push(q.submit_read(
                &self.disk,
                self.layout.segment_base(v),
                self.layout.segment_sectors,
            ));
        }
        self.stats.queued_reads += victims.len() as u64;
        let mut images: Vec<Option<Vec<u8>>> = vec![None; victims.len()];
        let q = self.queue.as_mut().expect("still present"); // PANIC-OK: checked above
        while !q.is_empty() {
            let Some(c) = q.dispatch_one(&mut self.disk) else {
                break;
            };
            match c.result {
                Ok(Some(buf)) => {
                    if let Some(i) = tags.iter().position(|&t| t == c.tag) {
                        images[i] = Some(buf);
                    }
                }
                Ok(None) => {} // An in-flight seal landed on the way.
                Err(simdisk::DiskError::Unreadable { .. }) if !c.write => {
                    // Leave the image absent; the per-victim fallback
                    // re-reads with the retry budget and owns quarantine.
                }
                Err(e) => {
                    q.abandon();
                    return Err(crate::dev(e));
                }
            }
        }
        Ok(images)
    }

    /// Reclaimed victims wait in `pending_free` until their forwarded
    /// copies (sitting in the open segment buffer) are durable. Cleaning
    /// mostly-empty victims forwards so little data that no seal happens,
    /// and the pool can starve with plenty of reclaimed-but-unreleased
    /// segments. A partial write (§3.2 machinery) makes the open buffer
    /// durable and releases them.
    fn drain_pending_if_starved(&mut self) -> Result<()> {
        if !self.pending_free.is_empty()
            && self.usage.free_count() <= self.config.cleaning_reserve_segments
        {
            self.partial_flush()?;
        }
        Ok(())
    }

    /// Explicitly cleans up to `max_segments` segments (idle-time cleaning,
    /// paper §3: "If LLD runs out of empty segments while busy, it will
    /// call the segment cleaner"; the reorganizer calls this during idle
    /// periods). Returns how many segments were reclaimed.
    pub fn clean(&mut self, max_segments: u32) -> Result<u32> {
        self.check_up()?;
        self.cleaning = true;
        let cleaned0 = self.stats.segments_cleaned;
        let copied0 = self.stats.cleaner_bytes_copied;
        let mut cleaned = 0;
        let result = (|| {
            for _ in 0..max_segments {
                let victim = self.usage.pick_victim(
                    self.config.cleaning_policy,
                    self.layout.data_bytes as u64,
                    self.ts,
                    None,
                );
                match victim {
                    Some(v) => {
                        self.clean_segment(v)?;
                        self.drain_pending_if_starved()?;
                        cleaned += 1;
                    }
                    None => break,
                }
            }
            Ok(())
        })();
        self.cleaning = false;
        self.trace(ld_trace::Event::CleanerPass {
            reclaimed: self.stats.segments_cleaned - cleaned0,
            bytes_copied: self.stats.cleaner_bytes_copied - copied0,
        });
        result.map(|()| cleaned)
    }

    /// Cleans one victim segment: forwards its live blocks (in list order)
    /// and re-logs its live metadata records, then queues the segment for
    /// release once the forwarded copies are durable.
    fn clean_segment(&mut self, victim: u32) -> Result<()> {
        self.clean_segment_with(victim, None)
    }

    /// [`Self::clean_segment`] with an optional prefetched whole-segment
    /// image (data region followed by summary, as laid out on disk). With
    /// an image, the victim is cleaned without touching the medium again.
    fn clean_segment_with(&mut self, victim: u32, prefetch: Option<Vec<u8>>) -> Result<()> {
        debug_assert_eq!(self.usage.get(victim).state, SegState::Live);

        // Live blocks are found from the block-number map (authoritative);
        // the summary is only needed to know which entities' metadata
        // records must be re-logged before the summary is discarded.
        let mut live: Vec<u64> = self
            .map
            .iter()
            .filter_map(|(bid, e)| (e.seg == victim).then_some(bid))
            .collect();

        let mut mentioned_bids: HashSet<u64> = HashSet::new();
        let mut mentioned_lids: HashSet<u64> = HashSet::new();
        let mut swap_bids: HashSet<u64> = HashSet::new();
        let mut mentioned_sectors: HashSet<u64> = HashSet::new();
        let mut mentioned_quarantines: HashSet<u32> = HashSet::new();
        let summary = {
            let mut buf = vec![0u8; self.layout.summary_bytes];
            let readable = match &prefetch {
                Some(img) => {
                    buf.copy_from_slice(&img[self.layout.data_bytes..]);
                    true
                }
                None => self
                    .read_span_retrying(self.layout.summary_base(victim), &mut buf)?
                    .is_none(),
            };
            if !readable {
                // The summary holds the only copy of this segment's
                // metadata records; without it the segment cannot be
                // reclaimed safely. Retire it instead — the summary stays
                // on the medium for a later recovery sweep to retry.
                self.ensure_room(0, 1)?;
                self.log_internal(Record::Quarantine { seg: victim });
                self.usage.quarantine(victim);
                return Ok(());
            }
            crate::records::decode_summary(&buf)
        };
        if let Some(summary) = summary {
            for s in &summary.records {
                match s.rec {
                    Record::NewBlock { bid, .. }
                    | Record::DeleteBlock { bid }
                    | Record::Link { bid, .. }
                    | Record::WriteBlock { bid, .. } => {
                        mentioned_bids.insert(bid);
                    }
                    Record::ListHead { lid, .. }
                    | Record::NewList { lid, .. }
                    | Record::DeleteList { lid }
                    | Record::ListOrder { lid, .. } => {
                        mentioned_lids.insert(lid);
                    }
                    Record::EndAru => {}
                    Record::Swap { a, b } => {
                        // A Swap record redirects two mappings without a
                        // WriteBlock. Once this summary is discarded, replay
                        // would reconstruct the pre-swap mapping, so the
                        // affected blocks' data must be forwarded to make
                        // their current locations explicit.
                        mentioned_bids.insert(a);
                        mentioned_bids.insert(b);
                        swap_bids.insert(a);
                        swap_bids.insert(b);
                    }
                    Record::RetireSector { sector } => {
                        mentioned_sectors.insert(sector);
                    }
                    Record::Quarantine { seg } => {
                        mentioned_quarantines.insert(seg);
                    }
                }
            }
        }

        // Cluster: order the live blocks by their position in their lists
        // (interfile order = list-of-lists order, intrafile = list order).
        self.order_by_lists(&mut live);

        // Forward live blocks. Read the whole data region once — the
        // cleaner works in segment-sized I/O. If that streaming read hits
        // a bad sector even after retries, fall back to per-block reads so
        // one fault does not doom every live block in the segment.
        let mut unreadable_live = false;
        if !live.is_empty() {
            let mut data = vec![0u8; self.layout.data_bytes];
            let whole_region = match &prefetch {
                Some(img) => {
                    data.copy_from_slice(&img[..self.layout.data_bytes]);
                    true
                }
                None => self
                    .read_span_retrying(self.layout.segment_base(victim), &mut data)?
                    .is_none(),
            };
            for bid in live {
                let e = *self.map.get(bid).expect("liveness checked"); // PANIC-OK: the cleaner only visits bids its liveness check kept
                if e.seg != victim {
                    // A seal during this loop cannot move it, but be safe.
                    continue;
                }
                let bytes = if whole_region {
                    data[e.offset as usize..(e.offset + e.stored_len) as usize].to_vec()
                } else {
                    let (start, count) = self.layout.data_sector_span(
                        victim,
                        e.offset as usize,
                        e.stored_len as usize,
                    );
                    let mut sectors = vec![0u8; (count as usize) * simdisk::SECTOR_SIZE];
                    if self.read_span_retrying(start, &mut sectors)?.is_some() {
                        unreadable_live = true;
                        continue;
                    }
                    let begin = e.offset as usize % simdisk::SECTOR_SIZE;
                    sectors[begin..begin + e.stored_len as usize].to_vec()
                };
                self.ensure_room(bytes.len(), 1)?;
                let offset = self.open.append_data(&bytes);
                self.log_internal(Record::WriteBlock {
                    bid,
                    offset,
                    stored_len: e.stored_len,
                    logical_len: e.logical_len,
                    compressed: e.compressed,
                });
                let entry = self.map.get_mut(bid).expect("liveness checked"); // PANIC-OK: the cleaner only visits bids its liveness check kept
                entry.seg = OPEN_SEG;
                entry.offset = offset;
                self.usage.sub_live(victim, u64::from(e.stored_len));
                self.open_live += u64::from(e.stored_len);
                self.open_bids.push(bid);
                self.stats.cleaner_bytes_copied += u64::from(e.stored_len);
            }
        }

        // Force-forward live blocks whose mapping depends on a Swap record
        // in this summary, wherever their data currently lives.
        for bid in swap_bids {
            let Some(e) = self.map.get(bid).copied() else {
                continue;
            };
            if !e.on_disk() {
                continue; // Already in the open buffer.
            }
            let bytes = {
                let (start, count) =
                    self.layout
                        .data_sector_span(e.seg, e.offset as usize, e.stored_len as usize);
                let mut sectors = vec![0u8; (count as usize) * simdisk::SECTOR_SIZE];
                if self.read_span_retrying(start, &mut sectors)?.is_some() {
                    unreadable_live = true;
                    continue;
                }
                let begin = e.offset as usize % simdisk::SECTOR_SIZE;
                sectors[begin..begin + e.stored_len as usize].to_vec()
            };
            self.ensure_room(bytes.len(), 1)?;
            let still_there = self
                .map
                .get(bid)
                .is_some_and(|cur| cur.seg == e.seg && cur.offset == e.offset);
            if !still_there {
                continue;
            }
            let offset = self.open.append_data(&bytes);
            self.log_internal(Record::WriteBlock {
                bid,
                offset,
                stored_len: e.stored_len,
                logical_len: e.logical_len,
                compressed: e.compressed,
            });
            self.usage.sub_live(e.seg, u64::from(e.stored_len));
            let entry = self.map.get_mut(bid).expect("checked"); // PANIC-OK: presence checked on the lines above
            entry.seg = OPEN_SEG;
            entry.offset = offset;
            self.open_live += u64::from(e.stored_len);
            self.open_bids.push(bid);
            self.stats.cleaner_bytes_copied += u64::from(e.stored_len);
        }

        if unreadable_live {
            // Some live copy stayed unreadable after retries. Blocks
            // already forwarded are safe (their new records outrank the
            // old ones at replay); everything else — including the
            // summary, which may hold the only record of the stranded
            // blocks — must stay on the medium, so the segment is
            // retired rather than freed. A later scrub accounts for the
            // damage and retires the failing sectors.
            self.ensure_room(0, 1)?;
            self.log_internal(Record::Quarantine { seg: victim });
            self.usage.quarantine(victim);
            return Ok(());
        }

        // Re-log live metadata; drop dead records ("removes old logging
        // information"). One decision per entity.
        for bid in mentioned_bids {
            self.ensure_room(0, 2)?;
            match self.map.get(bid) {
                Some(e) => {
                    let (lid, size_class, next) = (e.list, e.size_class, e.next);
                    self.log_internal(Record::NewBlock {
                        bid,
                        lid,
                        size_class,
                    });
                    self.log_internal(Record::Link { bid, next });
                    self.stats.cleaner_records_relogged += 2;
                }
                None => {
                    self.log_internal(Record::DeleteBlock { bid });
                    self.stats.cleaner_records_relogged += 1;
                }
            }
        }
        for lid in mentioned_lids {
            self.ensure_room(0, 2)?;
            match self.lists.get(lid) {
                Some(e) => {
                    let (first, hints) = (e.first, e.hints);
                    let pred = self.lists.order_pred(lid);
                    self.log_internal(Record::NewList { lid, pred, hints });
                    self.log_internal(Record::ListHead { lid, first });
                    self.stats.cleaner_records_relogged += 2;
                }
                None => {
                    self.log_internal(Record::DeleteList { lid });
                    self.stats.cleaner_records_relogged += 1;
                }
            }
        }
        // Medium-health facts are monotone (a retired sector never comes
        // back), so any mentioned here is still current — re-log it before
        // this summary, possibly its only copy, is discarded.
        for sector in mentioned_sectors {
            if self.bad_sectors.contains(&sector) {
                self.ensure_room(0, 1)?;
                self.log_internal(Record::RetireSector { sector });
                self.stats.cleaner_records_relogged += 1;
            }
        }
        for seg in mentioned_quarantines {
            if self.usage.get(seg).state == SegState::Quarantined {
                self.ensure_room(0, 1)?;
                self.log_internal(Record::Quarantine { seg });
                self.stats.cleaner_records_relogged += 1;
            }
        }

        // The forwarded copies live in the open buffer; the victim may only
        // be overwritten after they are durable.
        self.pending_free.push(victim);
        // Take the victim out of the victim pool immediately.
        self.usage.set(
            victim,
            crate::usage::SegUsage {
                state: SegState::Scratch,
                live_bytes: 0,
                last_write_ts: 0,
            },
        );
        self.stats.segments_cleaned += 1;
        Ok(())
    }

    /// Orders block ids by (list-of-lists position, position within list);
    /// blocks not reachable from any list keep their relative order at the
    /// end.
    fn order_by_lists(&self, bids: &mut [u64]) {
        use std::collections::HashMap;
        let involved: HashSet<u64> = bids
            .iter()
            .filter_map(|&b| self.map.get(b).map(|e| e.list))
            .collect();
        let order = self.lists.order();
        let mut rank: HashMap<u64, (usize, usize)> = HashMap::new();
        for (li, lid) in order.iter().enumerate() {
            if !involved.contains(lid) {
                continue;
            }
            for (bi, bid) in self.walk_list(*lid).into_iter().enumerate() {
                rank.insert(bid, (li, bi));
            }
        }
        bids.sort_by_key(|b| rank.get(b).copied().unwrap_or((usize::MAX, usize::MAX)));
    }

    /// Idle-period disk reorganizer (paper §3: "During idle periods the
    /// reorganizer will try to improve the layout of blocks and lists on
    /// disk and to clean segments").
    ///
    /// Rewrites up to `max_lists` of the most fragmented lists in list
    /// order (physically clustering them) and then cleans up to
    /// `max_segments` low-utilization segments. Returns
    /// `(lists_rewritten, segments_cleaned)`.
    pub fn reorganize(&mut self, max_lists: u32, max_segments: u32) -> Result<(u32, u32)> {
        self.check_up()?;
        // Score lists by fragmentation: number of segment changes while
        // walking the list (0 = perfectly clustered).
        let mut scored: Vec<(u64, u64)> = Vec::new();
        for (lid, _) in self.lists.iter() {
            let blocks = self.walk_list(lid);
            if blocks.len() < 2 {
                continue;
            }
            let mut breaks = 0u64;
            let mut prev_seg: Option<u32> = None;
            for b in &blocks {
                let seg = self.map.get(*b).map(|e| e.seg);
                if let (Some(p), Some(s)) = (prev_seg, seg) {
                    if p != s {
                        breaks += 1;
                    }
                }
                prev_seg = seg;
            }
            if breaks > 0 {
                scored.push((breaks, lid));
            }
        }
        scored.sort_unstable_by(|a, b| b.cmp(a));

        let mut rewritten = 0u32;
        for (_, lid) in scored.into_iter().take(max_lists as usize) {
            if self.usage.free_count() <= self.config.cleaning_reserve_segments {
                self.clean_to_reserve()?;
            }
            self.cleaning = true;
            let result = self.rewrite_list(lid);
            self.cleaning = false;
            result?;
            rewritten += 1;
        }
        let cleaned = self.clean(max_segments)?;
        Ok((rewritten, cleaned))
    }

    /// Adaptive block rearrangement (§5.3, after Akyürek & Salem): collects
    /// the most frequently accessed blocks into a contiguous run of
    /// segments, so the head stays in a small hot region instead of
    /// sweeping the whole disk. Access frequencies are "acquired by
    /// monitoring the stream of disk accesses" — LLD counts every block
    /// read and write — and halved afterwards so the estimate adapts.
    ///
    /// Returns the number of blocks moved.
    pub fn reorganize_hot(&mut self, max_blocks: usize) -> Result<u32> {
        self.check_up()?;
        // Rank live on-disk blocks by heat.
        let mut hot: Vec<(u32, u64)> = self
            .map
            .iter()
            .filter(|(_, e)| e.on_disk())
            .map(|(bid, _)| {
                let h = self.heat.get(bid as usize).copied().unwrap_or(0);
                (h, bid)
            })
            .filter(|(h, _)| *h > 0)
            .collect();
        hot.sort_unstable_by(|a, b| b.cmp(a));
        hot.truncate(max_blocks);
        let mut bids: Vec<u64> = hot.into_iter().map(|(_, bid)| bid).collect();
        // Keep list order within the hot set so sequential runs survive.
        self.order_by_lists(&mut bids);

        // Start on a fresh segment so the hot region is contiguous.
        self.cleaning = true;
        let result = (|| -> Result<u32> {
            self.seal()?;
            let mut moved = 0u32;
            let chunk_bytes = self
                .config
                .cleaning_reserve_segments
                .saturating_sub(2)
                .max(1) as usize
                * self.layout.data_bytes;
            let mut streamed = 0usize;
            for bid in bids {
                if streamed >= chunk_bytes {
                    streamed = 0;
                    if self.usage.free_count() <= self.config.cleaning_reserve_segments {
                        self.cleaning = false;
                        let r = self.clean_to_reserve();
                        self.cleaning = true;
                        r?;
                    }
                }
                let Some(e) = self.map.get(bid).copied() else {
                    continue;
                };
                if !e.on_disk() {
                    continue;
                }
                let bytes = {
                    let (start, count) = self.layout.data_sector_span(
                        e.seg,
                        e.offset as usize,
                        e.stored_len as usize,
                    );
                    let mut sectors = vec![0u8; (count as usize) * simdisk::SECTOR_SIZE];
                    if self.read_span_retrying(start, &mut sectors)?.is_some() {
                        continue; // Unreadable: leave it; scrub handles it.
                    }
                    let begin = e.offset as usize % simdisk::SECTOR_SIZE;
                    sectors[begin..begin + e.stored_len as usize].to_vec()
                };
                self.ensure_room(bytes.len(), 1)?;
                let still_there = self
                    .map
                    .get(bid)
                    .is_some_and(|cur| cur.seg == e.seg && cur.offset == e.offset);
                if !still_there {
                    continue;
                }
                let offset = self.open.append_data(&bytes);
                self.log_internal(Record::WriteBlock {
                    bid,
                    offset,
                    stored_len: e.stored_len,
                    logical_len: e.logical_len,
                    compressed: e.compressed,
                });
                self.usage.sub_live(e.seg, u64::from(e.stored_len));
                let entry = self.map.get_mut(bid).expect("checked"); // PANIC-OK: presence checked on the lines above
                entry.seg = OPEN_SEG;
                entry.offset = offset;
                self.open_live += u64::from(e.stored_len);
                self.open_bids.push(bid);
                streamed += e.stored_len as usize;
                moved += 1;
            }
            self.seal()?;
            Ok(moved)
        })();
        self.cleaning = false;
        // Age the estimates.
        for h in &mut self.heat {
            *h /= 2;
        }
        result
    }

    /// Rewrites every block of a list, in list order, into the current
    /// segment — clustering the list physically.
    ///
    /// Cleaning is deferred while a chunk of the list streams out (the
    /// cleaner would interleave forwarded foreign blocks into the open
    /// segment and fragment the very list being clustered), but runs
    /// between chunks so long lists cannot starve the free pool.
    fn rewrite_list(&mut self, lid: u64) -> Result<()> {
        let chunk_bytes = self
            .config
            .cleaning_reserve_segments
            .saturating_sub(2)
            .max(1) as usize
            * self.layout.data_bytes;
        let mut streamed = 0usize;
        for bid in self.walk_list(lid) {
            if streamed >= chunk_bytes {
                streamed = 0;
                if self.usage.free_count() <= self.config.cleaning_reserve_segments {
                    self.cleaning = false;
                    let r = self.clean_to_reserve();
                    self.cleaning = true;
                    r?;
                }
            }
            let e = *self.map.get(bid).expect("walked"); // PANIC-OK: the bid was read off the chain just walked
            if !e.on_disk() {
                continue; // Already in memory (clustered by definition).
            }
            let bytes = {
                let (start, count) =
                    self.layout
                        .data_sector_span(e.seg, e.offset as usize, e.stored_len as usize);
                let mut sectors = vec![0u8; (count as usize) * simdisk::SECTOR_SIZE];
                if self.read_span_retrying(start, &mut sectors)?.is_some() {
                    continue; // Unreadable: leave it; scrub handles it.
                }
                let begin = e.offset as usize % simdisk::SECTOR_SIZE;
                sectors[begin..begin + e.stored_len as usize].to_vec()
            };
            self.ensure_room(bytes.len(), 1)?;
            // The seal inside ensure_room can trigger the cleaner, which
            // may itself have forwarded this block; only proceed if the
            // copy we read is still the live one.
            let still_there = self
                .map
                .get(bid)
                .is_some_and(|cur| cur.seg == e.seg && cur.offset == e.offset);
            if !still_there {
                continue;
            }
            let offset = self.open.append_data(&bytes);
            self.log_internal(Record::WriteBlock {
                bid,
                offset,
                stored_len: e.stored_len,
                logical_len: e.logical_len,
                compressed: e.compressed,
            });
            self.usage.sub_live(e.seg, u64::from(e.stored_len));
            let entry = self.map.get_mut(bid).expect("walked"); // PANIC-OK: the bid was read off the chain just walked
            entry.seg = OPEN_SEG;
            entry.offset = offset;
            self.open_live += u64::from(e.stored_len);
            self.open_bids.push(bid);
            streamed += e.stored_len as usize;
        }
        self.stats.reorganized_lists += 1;
        Ok(())
    }

    /// Proactive media scan: reads every segment region — data and summary
    /// alike — so failing sectors are discovered *before* a client read
    /// trips over them, then runs [`Self::scrub`] over whatever the scan
    /// (and any earlier read failures) recorded as suspect. Each segment is
    /// read whole first; only segments that stay unreadable after the
    /// retry budget are probed sector by sector to pin down the exact bad
    /// sectors. The checkpoint header region is not scanned — recovery
    /// already tolerates it failing ([`crate::checkpoint::try_load`]).
    ///
    /// Returns what the final scrub pass returns.
    pub fn media_scan(&mut self) -> Result<(u64, u64, u64)> {
        self.check_up()?;
        let mut region = vec![0u8; self.layout.segment_bytes];
        let mut probe = vec![0u8; simdisk::SECTOR_SIZE];
        for seg in 0..self.layout.segments {
            let base = self.layout.segment_base(seg);
            if self.read_span_retrying(base, &mut region)?.is_none() {
                continue;
            }
            // Something in this segment is persistently failing; locate
            // every bad sector (each failed probe records a suspect).
            for s in base..base + self.layout.segment_sectors {
                let _ = self.read_span_retrying(s, &mut probe)?;
            }
        }
        self.scrub()
    }

    /// Scrub/relocate pass over failing media.
    ///
    /// Probes every suspect sector recorded by earlier read failures —
    /// transient faults have recovered and drop out; persistent faults are
    /// confirmed bad. Segments owning a confirmed-bad sector (plus any
    /// segment already quarantined by the cleaner) have their live blocks
    /// relocated into the open segment via the cleaner's forwarding
    /// machinery, then are retired from circulation. Confirmed sectors no
    /// longer under any live block join the persistent bad-block remap
    /// table (durable from the next checkpoint) and are traced as
    /// `SectorRemap` events; a sector still covered by a live block that
    /// stayed unreadable remains suspect so the loss stays visible.
    ///
    /// Returns `(relocated, remapped, unreadable)`: live blocks moved off
    /// failing segments, sectors retired into the remap table, and live
    /// blocks that remained unreadable after all retries. Relocated copies
    /// sit in the open segment buffer until the next flush or seal makes
    /// them durable.
    pub fn scrub(&mut self) -> Result<(u64, u64, u64)> {
        self.check_up()?;
        // Probe suspects one sector at a time with the usual retry budget.
        let mut suspects: Vec<u64> = std::mem::take(&mut self.suspect_sectors)
            .into_iter()
            .filter(|s| !self.bad_sectors.contains(s))
            .collect();
        if self.config.queue_depth >= 2 && suspects.len() > 1 {
            // First pass: single-attempt probes through the command queue,
            // visited in scheduler order instead of sector order. Sectors
            // that read clean (transient faults) drop out here; only the
            // failures get the full retry-budget probe below.
            let q = self.queue.as_mut().expect("depth >= 2 implies a queue"); // PANIC-OK: the queue exists whenever queue_depth >= 1
            for &s in &suspects {
                q.submit_read(&self.disk, s, 1);
            }
            self.stats.queued_reads += suspects.len() as u64;
            let mut failed = Vec::new();
            while !q.is_empty() {
                let Some(c) = q.dispatch_one(&mut self.disk) else {
                    break;
                };
                match c.result {
                    Ok(_) => {}
                    Err(simdisk::DiskError::Unreadable { .. }) if !c.write => {
                        failed.push(c.sector);
                    }
                    Err(e) => {
                        q.abandon();
                        return Err(crate::dev(e));
                    }
                }
            }
            suspects = failed;
        }
        let mut confirmed: BTreeSet<u64> = BTreeSet::new();
        let mut probe = vec![0u8; simdisk::SECTOR_SIZE];
        for s in suspects {
            // A failed probe re-inserts `s` into the suspect set; it is
            // removed again below if the sector gets remapped.
            if self.read_span_retrying(s, &mut probe)?.is_some() {
                confirmed.insert(s);
            }
        }

        let mut targets: BTreeSet<u32> = confirmed
            .iter()
            .filter_map(|&s| self.layout.segment_of_sector(s))
            .collect();
        targets.extend(
            self.usage
                .iter()
                .filter(|(_, u)| u.state == SegState::Quarantined)
                .map(|(seg, _)| seg),
        );

        // Evacuate live blocks off every target segment (the cleaner's
        // forwarding idiom, per-block so one bad sector costs one block).
        let mut relocated = 0u64;
        let mut unreadable = 0u64;
        self.cleaning = true;
        let result = (|| -> Result<()> {
            for &seg in &targets {
                let live: Vec<u64> = self
                    .map
                    .iter()
                    .filter_map(|(bid, e)| (e.seg == seg).then_some(bid))
                    .collect();
                for bid in live {
                    let Some(e) = self.map.get(bid).copied() else {
                        continue;
                    };
                    if e.seg != seg {
                        continue;
                    }
                    if e.stored_len == 0 {
                        // Nothing stored on the medium; just re-point it.
                        continue;
                    }
                    let (start, count) = self.layout.data_sector_span(
                        seg,
                        e.offset as usize,
                        e.stored_len as usize,
                    );
                    let mut sectors = vec![0u8; (count as usize) * simdisk::SECTOR_SIZE];
                    if self.read_span_retrying(start, &mut sectors)?.is_some() {
                        unreadable += 1;
                        self.stats.unreadable_blocks += 1;
                        continue;
                    }
                    let begin = e.offset as usize % simdisk::SECTOR_SIZE;
                    let bytes = sectors[begin..begin + e.stored_len as usize].to_vec();
                    self.ensure_room(bytes.len(), 1)?;
                    // The seal inside ensure_room cannot clean (the
                    // cleaning guard is set) but be safe about moves.
                    let still_there = self
                        .map
                        .get(bid)
                        .is_some_and(|cur| cur.seg == e.seg && cur.offset == e.offset);
                    if !still_there {
                        continue;
                    }
                    let offset = self.open.append_data(&bytes);
                    self.log_internal(Record::WriteBlock {
                        bid,
                        offset,
                        stored_len: e.stored_len,
                        logical_len: e.logical_len,
                        compressed: e.compressed,
                    });
                    self.usage.sub_live(seg, u64::from(e.stored_len));
                    let entry = self.map.get_mut(bid).expect("checked"); // PANIC-OK: presence checked on the lines above
                    entry.seg = OPEN_SEG;
                    entry.offset = offset;
                    self.open_live += u64::from(e.stored_len);
                    self.open_bids.push(bid);
                    relocated += 1;
                }
            }
            Ok(())
        })();
        self.cleaning = false;
        result?;

        // Retire the targets. Their summaries stay on the medium (a
        // recovery sweep may still need them); the checkpoint carries the
        // quarantined state across clean restarts, and a `Quarantine`
        // record in the metadata log carries it through a recovery sweep.
        for &seg in &targets {
            if self.usage.get(seg).state != SegState::Quarantined {
                self.ensure_room(0, 1)?;
                self.log_internal(Record::Quarantine { seg });
            }
            self.usage.quarantine(seg);
        }

        // Sectors still covered by a live block could not be evacuated;
        // keep them suspect instead of declaring them remapped.
        let mut covered: BTreeSet<u64> = BTreeSet::new();
        for (_, e) in self.map.iter() {
            if e.on_disk() && e.stored_len > 0 && targets.contains(&e.seg) {
                let (start, count) =
                    self.layout
                        .data_sector_span(e.seg, e.offset as usize, e.stored_len as usize);
                covered.extend(start..start + count);
            }
        }
        let mut remapped = 0u64;
        for s in confirmed {
            if covered.contains(&s) {
                continue;
            }
            if !self.bad_sectors.contains(&s) {
                self.ensure_room(0, 1)?;
                self.bad_sectors.insert(s);
                self.log_internal(Record::RetireSector { sector: s });
                remapped += 1;
                self.stats.remapped_sectors += 1;
                self.trace(ld_trace::Event::SectorRemap { sector: s });
            }
            self.suspect_sectors.remove(&s);
        }
        self.trace(ld_trace::Event::ScrubPass {
            relocated,
            remapped,
            unreadable,
        });
        Ok((relocated, remapped, unreadable))
    }
}
