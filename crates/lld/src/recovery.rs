//! Failure recovery: the one-sweep summary scan (paper §3.6).
//!
//! After a failure, LLD "reads all of the segment summaries in a single
//! sweep over the disk and rebuilds its data structures from the
//! information stored therein". Every record carries a timestamp; the
//! newest record per entity wins. Atomic recovery units are honoured by the
//! paper's rule: records that do not end an ARU are queued until a record
//! that does commit arrives (their own `EndARU` or any more recently
//! committed operation); a trailing incomplete ARU is discarded.
//!
//! No checkpoints are taken during normal operation — recovery cost is one
//! summary read per segment, which §4.2 measures at 12 seconds for 788
//! summaries (experiment E6 reproduces this). A *clean* shutdown does write
//! a checkpoint ([`crate::checkpoint`]); `open` prefers it when valid.

use std::collections::HashSet;

use ld_core::Result;
use simdisk::BlockDev;

use crate::block_map::{BlockEntry, BlockMap, ListTable, NO_SEG};
use crate::records::{decode_summary, Record};
use crate::usage::{SegState, SegUsage, UsageTable};
use crate::{checkpoint, dev, Layout, Lld, LldConfig};

/// Owner sentinel for blocks reconstructed from a `WriteBlock`/`Link`
/// record before their `NewBlock` record was replayed.
pub const PROVISIONAL_LIST: u64 = u64::MAX;

/// Placeholder segment id for blocks whose data lives in the NVRAM image
/// until it is materialized into a real segment.
pub const NVRAM_SEG: u32 = u32::MAX - 3;

/// Opens an LLD from a device: checkpoint if valid, else recovery sweep.
pub(crate) fn open<D: BlockDev>(mut disk: D, config: LldConfig) -> Result<Lld<D>> {
    let layout = Layout::compute(
        disk.total_sectors(),
        config.segment_bytes,
        config.summary_bytes,
    );
    let mut retries = 0u64;
    if let Some(state) = checkpoint::try_load(&mut disk, &layout, config.read_retries, &mut retries)?
    {
        let mut lld = Lld::from_parts(
            disk,
            config,
            layout,
            state.map,
            state.lists,
            state.usage,
            state.ts,
            state.seq,
        );
        lld.bad_sectors = state.bad_sectors;
        lld.stats.recovered_from_checkpoint = true;
        lld.stats.retries += retries;
        return Ok(lld);
    }
    let mut lld = sweep(disk, config, layout)?;
    lld.stats.retries += retries;
    Ok(lld)
}

struct SortRec {
    ts: u64,
    seq: u64,
    idx: u32,
    seg: u32,
    ends_aru: bool,
    aru: Option<u64>,
    rec: Record,
}

/// The one-sweep recovery.
fn sweep<D: BlockDev>(mut disk: D, config: LldConfig, layout: Layout) -> Result<Lld<D>> {
    let t0 = disk.now_us();
    let mut all: Vec<SortRec> = Vec::new();
    let mut seg_has_summary = vec![false; layout.segments as usize];
    let mut seg_max_ts = vec![0u64; layout.segments as usize];
    let mut buf = vec![0u8; layout.summary_bytes];
    let mut sweep_retries = 0u64;

    for seg in 0..layout.segments {
        if crate::read_sectors_retrying(
            &mut disk,
            layout.summary_base(seg),
            &mut buf,
            config.read_retries,
            &mut sweep_retries,
        )?
        .is_some()
        {
            // A summary unreadable even after retries is treated like a
            // torn segment write: the segment contributes nothing to the
            // replay. The paper's guarantee ("up to the last segment
            // successfully written") degrades by exactly this segment.
            continue;
        }
        let Some(summary) = decode_summary(&buf) else {
            continue;
        };
        seg_has_summary[seg as usize] = true;
        for (idx, s) in summary.records.into_iter().enumerate() {
            seg_max_ts[seg as usize] = seg_max_ts[seg as usize].max(s.ts);
            all.push(SortRec {
                ts: s.ts,
                seq: summary.seq,
                idx: idx as u32,
                seg,
                ends_aru: s.ends_aru,
                aru: s.aru,
                rec: s.rec,
            });
        }
    }

    // The §5.3 NVRAM extension: a crash may have left the open segment's
    // tail in battery-backed NVRAM. Its records join the replay under a
    // placeholder segment id; the data is materialized afterwards.
    let mut nvram_image: Option<(Vec<u8>, Vec<u8>)> = None;
    let nv_capacity = disk.nvram_bytes();
    if config.use_nvram && nv_capacity > 0 {
        let mut raw = vec![0u8; nv_capacity];
        disk.nvram_read(0, &mut raw).map_err(dev)?;
        if let Some((summary_bytes, data)) = crate::nvram::decode_image(&raw) {
            if let Some(summary) = decode_summary(&summary_bytes) {
                for (idx, s) in summary.records.iter().enumerate() {
                    all.push(SortRec {
                        ts: s.ts,
                        seq: summary.seq,
                        idx: idx as u32,
                        seg: NVRAM_SEG,
                        ends_aru: s.ends_aru,
                        aru: s.aru,
                        rec: s.rec,
                    });
                }
                nvram_image = Some((summary_bytes, data));
            }
        }
    }

    // Medium-health records are monotone facts — a retired sector or a
    // quarantined segment never comes back — so they are collected outside
    // the timestamp replay (duplicates from cleaner re-logs collapse in
    // the sets) and applied after the usage rebuild below.
    let mut bad_sectors: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut quarantined: Vec<u32> = Vec::new();
    for r in &all {
        match r.rec {
            Record::RetireSector { sector } => {
                bad_sectors.insert(sector);
            }
            Record::Quarantine { seg } => quarantined.push(seg),
            _ => {}
        }
    }

    // Replay in global operation order. For equal timestamps (a partial
    // segment superseded by its sealed form carries the same records), the
    // later physical write wins.
    all.sort_by_key(|r| (r.ts, r.seq, r.idx));
    let max_ts = all.last().map_or(0, |r| r.ts);
    let max_seq = all.iter().map(|r| r.seq).max().unwrap_or(0);

    let mut map = BlockMap::new();
    let mut lists = ListTable::new();
    // Records of explicit ARUs are deferred, grouped by their unit id
    // (§5.4 concurrent extension; a serial ARU is the one-group case), and
    // applied when the unit's EndAru record arrives. Units that never
    // ended — the crash interrupted them — are discarded wholesale,
    // giving the all-or-nothing guarantee.
    let mut pending: std::collections::HashMap<u64, Vec<&SortRec>> =
        std::collections::HashMap::new();
    let mut discarded = 0u64;
    for (i, r) in all.iter().enumerate() {
        // A partial segment superseded by a later partial (or its seal)
        // carries the *same* records under a higher sequence number. The
        // timestamp uniquely identifies a logical record, so apply only
        // the newest physical copy — replaying duplicates would, for
        // non-idempotent records like Swap, undo themselves.
        if all.get(i + 1).is_some_and(|next| next.ts == r.ts) {
            continue;
        }
        match r.aru {
            Some(id) if !r.ends_aru => pending.entry(id).or_default().push(r),
            Some(id) => {
                // The unit's EndAru: commit its deferred records in order.
                for p in pending.remove(&id).unwrap_or_default() {
                    apply(&mut map, &mut lists, p);
                }
                apply(&mut map, &mut lists, r);
            }
            None => apply(&mut map, &mut lists, r),
        }
    }
    discarded += pending.values().map(|v| v.len() as u64).sum::<u64>();
    drop(pending);

    // Post-pass 1: assign list owners by walking every list (the summaries
    // do not log per-block ownership changes; ownership is derivable).
    let mut visited: HashSet<u64> = HashSet::new();
    let lids: Vec<u64> = lists.iter().map(|(l, _)| l).collect();
    for lid in lids {
        let mut prev: Option<u64> = None;
        let mut cur = lists.get(lid).and_then(|e| e.first);
        while let Some(b) = cur {
            if !visited.insert(b) {
                // Cycle or cross-linked lists: truncate defensively.
                break_chain(&mut map, &mut lists, lid, prev);
                break;
            }
            match map.get_mut(b) {
                Some(e) => {
                    e.list = lid;
                    prev = Some(b);
                    cur = e.next;
                }
                None => {
                    // Dangling link to a freed block: truncate.
                    break_chain(&mut map, &mut lists, lid, prev);
                    break;
                }
            }
        }
    }

    // Post-pass 2: drop blocks that no surviving record attached to a list.
    let orphan_bids: Vec<u64> = map
        .iter()
        .filter_map(|(bid, e)| (e.list == PROVISIONAL_LIST).then_some(bid))
        .collect();
    let orphans = orphan_bids.len() as u64;
    for bid in orphan_bids {
        map.remove_raw(bid);
    }
    // Blocks with a zero size class (provisional entries repaired by a
    // later NewBlock re-log always have one; be safe regardless).
    let fix: Vec<u64> = map
        .iter()
        .filter_map(|(bid, e)| (e.size_class == 0).then_some(bid))
        .collect();
    for bid in fix {
        let default = config.default_block_size as u32;
        let e = map.get_mut(bid).expect("listed above"); // PANIC-OK: the key comes from the snapshot being iterated
        e.size_class = e.logical_len.max(default);
    }

    map.rebuild_free_stack();
    lists.rebuild_free_stack();

    // Rebuild the segment usage table from the final block map. Segments
    // with a valid summary stay Live even at zero live bytes: their
    // summaries may hold the only copy of live metadata records, which the
    // cleaner re-logs before the segment is reused.
    let mut usage = UsageTable::new(layout.segments);
    let mut live = vec![0u64; layout.segments as usize];
    for (_, e) in map.iter() {
        if e.on_disk() && e.seg != NVRAM_SEG {
            live[e.seg as usize] += u64::from(e.stored_len);
        }
    }
    for seg in 0..layout.segments {
        if seg_has_summary[seg as usize] {
            usage.set(
                seg,
                SegUsage {
                    state: SegState::Live,
                    live_bytes: live[seg as usize],
                    last_write_ts: seg_max_ts[seg as usize],
                },
            );
        }
    }
    // Re-apply the medium's known damage before anything can allocate: a
    // quarantined segment must never rejoin the free pool, and every
    // retired sector's segment is quarantined (the invariant `ldck`
    // checks), whether or not its own Quarantine record survived.
    for &seg in &quarantined {
        if seg < layout.segments {
            usage.quarantine(seg);
        }
    }
    for &s in &bad_sectors {
        if let Some(seg) = layout.segment_of_sector(s) {
            usage.quarantine(seg);
        }
    }

    // Materialize the NVRAM image into a free segment if any live block
    // still points into it.
    let mut nvram_applied = false;
    let nvram_refs: Vec<u64> = map
        .iter()
        .filter_map(|(bid, e)| (e.seg == NVRAM_SEG).then_some(bid))
        .collect();
    if !nvram_refs.is_empty() {
        let (summary_bytes, data) = nvram_image
            .as_ref()
            .expect("NVRAM_SEG entries imply a decoded image"); // PANIC-OK: NVRAM_SEG entries exist only when the image decoded
        let target = usage
            .alloc_near(0)
            .ok_or_else(|| ld_core::LdError::Device("no free segment for NVRAM tail".into()))?;
        if !data.is_empty() {
            disk.write_sectors(layout.segment_base(target), data)
                .map_err(dev)?;
        }
        disk.write_sectors(layout.summary_base(target), summary_bytes)
            .map_err(dev)?;
        let mut live_bytes = 0u64;
        for bid in nvram_refs {
            let e = map.get_mut(bid).expect("listed above"); // PANIC-OK: the key comes from the snapshot being iterated
            e.seg = target;
            live_bytes += u64::from(e.stored_len);
        }
        usage.set(
            target,
            SegUsage {
                state: SegState::Live,
                live_bytes,
                last_write_ts: max_ts,
            },
        );
        nvram_applied = true;
    }

    let elapsed = disk.now_us() - t0;
    let mut lld = Lld::from_parts(
        disk,
        config,
        layout,
        map,
        lists,
        usage,
        max_ts + 1,
        max_seq + 1,
    );
    lld.bad_sectors = bad_sectors;
    // The image is now durable on disk; clear it.
    if nvram_applied {
        lld.invalidate_nvram();
    }
    lld.stats.recovery_summaries_read = u64::from(layout.segments);
    lld.stats.recovery_us = elapsed;
    lld.stats.retries += sweep_retries;
    lld.stats.recovery_records_discarded = discarded;
    lld.stats.recovery_orphans = orphans;
    lld.stats.recovery_nvram_applied = nvram_applied;
    Ok(lld)
}

/// Truncates a list after `prev` (or empties it when `prev` is `None`).
fn break_chain(map: &mut BlockMap, lists: &mut ListTable, lid: u64, prev: Option<u64>) {
    match prev {
        Some(p) => {
            if let Some(e) = map.get_mut(p) {
                e.next = None;
            }
        }
        None => {
            if let Some(l) = lists.get_mut(lid) {
                l.first = None;
            }
        }
    }
}

fn apply(map: &mut BlockMap, lists: &mut ListTable, r: &SortRec) {
    match r.rec {
        Record::NewBlock {
            bid,
            lid,
            size_class,
        } => match map.get_mut(bid) {
            // A cleaner re-log arriving after newer WriteBlock state must
            // not clobber the physical fields.
            Some(e) => {
                e.list = lid;
                e.size_class = size_class;
            }
            None => map.install(bid, BlockEntry::new(lid, size_class)),
        },
        Record::DeleteBlock { bid } => {
            map.remove_raw(bid);
        }
        Record::WriteBlock {
            bid,
            offset,
            stored_len,
            logical_len,
            compressed,
        } => {
            let e = ensure_block(map, bid);
            e.seg = r.seg;
            e.offset = offset;
            e.stored_len = stored_len;
            e.logical_len = logical_len;
            e.compressed = compressed;
        }
        Record::Link { bid, next } => {
            ensure_block(map, bid).next = next;
        }
        Record::ListHead { lid, first } => {
            if lists.get(lid).is_none() {
                lists.install(lid, None, ld_core::ListHints::default());
            }
            lists.get_mut(lid).expect("installed").first = first; // PANIC-OK: inserted a few lines up
        }
        Record::NewList { lid, pred, hints } => {
            lists.install(lid, pred, hints);
        }
        Record::DeleteList { lid } => {
            // Free the list's blocks as they are linked *right now* in the
            // replay (matching the runtime semantics at that timestamp).
            let mut cur = lists.get(lid).and_then(|e| e.first);
            let mut guard = map.capacity_slots() + 1;
            while let Some(b) = cur {
                cur = map.get(b).and_then(|e| e.next);
                map.remove_raw(b);
                guard -= 1;
                if guard == 0 {
                    break;
                }
            }
            lists.remove_raw(lid);
        }
        Record::ListOrder { lid, pred } => {
            if lists.get(lid).is_some() {
                lists.move_after(lid, pred.filter(|&p| lists.get(p).is_some()));
            } else {
                lists.install(lid, pred, ld_core::ListHints::default());
            }
        }
        Record::EndAru => {}
        Record::Swap { a, b } => {
            // Swap the physical fields; skip unless both blocks exist at
            // this point of the replay.
            if map.get(a).is_some() && map.get(b).is_some() {
                let ea = *map.get(a).expect("checked"); // PANIC-OK: presence checked on the lines above
                let eb = *map.get(b).expect("checked"); // PANIC-OK: presence checked on the lines above
                let ma = map.get_mut(a).expect("checked"); // PANIC-OK: presence checked on the lines above
                ma.seg = eb.seg;
                ma.offset = eb.offset;
                ma.stored_len = eb.stored_len;
                ma.logical_len = eb.logical_len;
                ma.compressed = eb.compressed;
                let mb = map.get_mut(b).expect("checked"); // PANIC-OK: presence checked on the lines above
                mb.seg = ea.seg;
                mb.offset = ea.offset;
                mb.stored_len = ea.stored_len;
                mb.logical_len = ea.logical_len;
                mb.compressed = ea.compressed;
            }
        }
        // Collected in a pre-pass (monotone facts, no ordering needed).
        Record::RetireSector { .. } | Record::Quarantine { .. } => {}
    }
}

fn ensure_block(map: &mut BlockMap, bid: u64) -> &mut BlockEntry {
    if map.get(bid).is_none() {
        let mut e = BlockEntry::new(PROVISIONAL_LIST, 0);
        e.seg = NO_SEG;
        map.install(bid, e);
    }
    map.get_mut(bid).expect("just installed") // PANIC-OK: inserted a few lines up
}
