//! Configuration of the log-structured Logical Disk.

use crate::cleaner::CleaningPolicy;

/// Modeled CPU costs charged to the simulated clock per LD operation.
///
/// The paper measured on a 33 MHz SPARCstation; these constants let the
/// CPU-bound effects it reports (most prominently the ~15 % list-maintenance
/// overhead during create/delete phases, §4.2) show up in simulated time.
/// Set everything to zero for a pure-I/O model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuModel {
    /// Cost of one LD command dispatch (argument checking, map lookup).
    pub per_command_us: u64,
    /// Cost of copying/checksumming one block into the segment buffer, per
    /// 4 KB of data.
    pub per_block_copy_us: u64,
    /// Cost of one list-maintenance step (link-tuple creation, predecessor
    /// search step, list-head update).
    pub per_list_op_us: u64,
}

impl Default for CpuModel {
    fn default() -> Self {
        Self {
            per_command_us: 30,
            per_block_copy_us: 120,
            per_list_op_us: 60,
        }
    }
}

impl CpuModel {
    /// A model with no CPU cost at all.
    pub fn free() -> Self {
        Self {
            per_command_us: 0,
            per_block_copy_us: 0,
            per_list_op_us: 0,
        }
    }
}

/// Configuration for [`crate::Lld`].
#[derive(Debug, Clone)]
pub struct LldConfig {
    /// Segment size in bytes (paper default: 512 KB; §4.2 sweeps 64–512 KB).
    pub segment_bytes: usize,
    /// Bytes at the fixed end of each segment reserved for the segment
    /// summary. Must be a multiple of the sector size.
    pub summary_bytes: usize,
    /// Default block size class (paper: 4 KB).
    pub default_block_size: usize,
    /// Fill fraction (percent) above which a `Flush` seals the segment as
    /// full instead of writing a partial segment (paper §3.2: "for example,
    /// 75% of its capacity").
    pub flush_threshold_pct: u32,
    /// Segments withheld from payload capacity so the cleaner always has
    /// room to compact into.
    pub cleaning_reserve_segments: u32,
    /// Which segments the cleaner picks first.
    pub cleaning_policy: CleaningPolicy,
    /// Maintain block lists (link tuples, clustering). Disabled only by the
    /// §4.2 list-overhead experiment; recovery of list structure is
    /// unsupported while disabled.
    pub maintain_lists: bool,
    /// Use the device's battery-backed NVRAM (if any) to absorb
    /// below-threshold flushes instead of writing partial segments —
    /// the Baker et al. extension the paper expects to carry over (§5.3).
    pub use_nvram: bool,
    /// Modeled CPU costs.
    pub cpu: CpuModel,
    /// Modeled compression bandwidth (see [`ldcomp::CostModel`]).
    pub compression_cost: ldcomp::CostModel,
    /// Read attempts per sector span before LLD declares it unreadable
    /// (bounded retry against transient media faults; each failed attempt
    /// costs real simulated disk time). Clamped to at least 1.
    pub read_retries: u32,
    /// Tagged-command-queue depth. `0` disables queueing entirely — every
    /// request takes the direct depth-1 path, bit-identical to an LLD
    /// built without the queue. `1` routes segment writes through the
    /// queue but drains synchronously after each submit (identical
    /// timing; exercised by the differential test). `>= 2` additionally
    /// enables batched cleaner victim reads and batched scrub probes at
    /// this depth.
    pub queue_depth: u32,
    /// Sealed segments allowed in flight (submitted but not yet on the
    /// medium) before a seal blocks and drains — write-behind. Clamped to
    /// `queue_depth - 1`; meaningless when `queue_depth <= 1`. A crash
    /// loses at most the in-flight (unacknowledged) seals, never an
    /// acknowledged flush.
    pub writeback_depth: u32,
    /// Scheduler ordering queued requests (see [`simdisk::Scheduler`]).
    /// Writes always dispatch in submission order regardless of policy;
    /// the scheduler only reorders reads between them.
    pub scheduler: simdisk::Scheduler,
}

impl Default for LldConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 512 << 10,
            summary_bytes: 8 << 10,
            default_block_size: 4096,
            flush_threshold_pct: 75,
            cleaning_reserve_segments: 4,
            cleaning_policy: CleaningPolicy::CostBenefit,
            maintain_lists: true,
            use_nvram: true,
            cpu: CpuModel::default(),
            compression_cost: ldcomp::CostModel::default(),
            read_retries: 4,
            queue_depth: 0,
            writeback_depth: 0,
            scheduler: simdisk::Scheduler::Fcfs,
        }
    }
}

impl LldConfig {
    /// A configuration convenient for unit tests: small segments, no CPU
    /// model, greedy cleaning.
    pub fn small_for_tests() -> Self {
        Self {
            segment_bytes: 64 << 10,
            summary_bytes: 4 << 10,
            flush_threshold_pct: 75,
            cleaning_reserve_segments: 3,
            cleaning_policy: CleaningPolicy::Greedy,
            cpu: CpuModel::free(),
            compression_cost: ldcomp::CostModel::free(),
            ..Self::default()
        }
    }

    /// Payload bytes available in each segment.
    pub fn segment_data_bytes(&self) -> usize {
        self.segment_bytes - self.summary_bytes
    }

    /// Sealed segments allowed in flight after a seal submits — the
    /// write-behind allowance actually applied at runtime (the configured
    /// `writeback_depth` clamped to the queue capacity).
    pub fn writeback_allowance(&self) -> usize {
        if self.queue_depth <= 1 {
            0
        } else {
            self.writeback_depth.min(self.queue_depth - 1) as usize
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations (zero sizes, summary larger
    /// than the segment, misaligned sizes) — these are programming errors,
    /// not runtime conditions.
    pub fn validate(&self) {
        let sector = simdisk::SECTOR_SIZE;
        assert!(self.segment_bytes > 0 && self.segment_bytes.is_multiple_of(sector));
        assert!(self.summary_bytes >= sector && self.summary_bytes.is_multiple_of(sector));
        assert!(
            self.summary_bytes < self.segment_bytes,
            "summary must leave room for data"
        );
        assert!(self.default_block_size > 0);
        assert!(
            self.default_block_size <= self.segment_data_bytes(),
            "a block must fit in one segment"
        );
        assert!((1..=100).contains(&self.flush_threshold_pct));
        assert!(
            self.cleaning_reserve_segments >= 2,
            "cleaner needs headroom"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_paper_shaped() {
        let c = LldConfig::default();
        c.validate();
        assert_eq!(c.segment_bytes, 512 << 10);
        assert_eq!(c.default_block_size, 4096);
        assert_eq!(c.flush_threshold_pct, 75);
    }

    #[test]
    #[should_panic(expected = "room for data")]
    fn oversized_summary_rejected() {
        let c = LldConfig {
            summary_bytes: 64 << 10,
            segment_bytes: 64 << 10,
            ..LldConfig::default()
        };
        c.validate();
    }

    #[test]
    fn segment_data_bytes_excludes_summary() {
        let c = LldConfig::default();
        assert_eq!(c.segment_data_bytes(), (512 << 10) - (8 << 10));
    }
}
