//! Operation counters exposed by LLD for the benchmark harness.

/// Counters accumulated by [`crate::Lld`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LldStats {
    /// Full segments written (sealed).
    pub segments_sealed: u64,
    /// Partial segments written by `Flush` below the threshold (§3.2).
    pub partial_segment_writes: u64,
    /// `Flush` calls that sealed because the fill was above the threshold.
    pub flush_seals: u64,
    /// Logical block writes accepted from the file system.
    pub block_writes: u64,
    /// Logical block reads served.
    pub block_reads: u64,
    /// Block reads served from the in-memory open segment.
    pub block_reads_from_memory: u64,
    /// Payload bytes accepted from the file system.
    pub user_bytes_written: u64,
    /// Payload bytes after compression (equals `user_bytes_written` when
    /// compression is off).
    pub stored_bytes_written: u64,
    /// Link tuples and other list records logged (the §4.2 list-overhead
    /// experiment reads this).
    pub list_records_logged: u64,
    /// All records logged.
    pub records_logged: u64,
    /// Cleaner invocations.
    pub cleaner_runs: u64,
    /// Segments reclaimed by the cleaner.
    pub segments_cleaned: u64,
    /// Live bytes the cleaner copied forward (write amplification).
    pub cleaner_bytes_copied: u64,
    /// Records the cleaner re-logged to keep metadata recoverable.
    pub cleaner_records_relogged: u64,
    /// Segments rewritten by the reorganizer.
    pub reorganized_lists: u64,
    /// Segment summaries read by the last recovery sweep.
    pub recovery_summaries_read: u64,
    /// Simulated microseconds the last recovery took.
    pub recovery_us: u64,
    /// Records discarded at recovery as part of an incomplete trailing ARU.
    pub recovery_records_discarded: u64,
    /// Blocks dropped at recovery because no surviving record named their
    /// owning list (diagnostic; should be zero).
    pub recovery_orphans: u64,
    /// Below-threshold flushes absorbed by NVRAM instead of partial
    /// segment writes (§5.3 extension).
    pub nvram_saves: u64,
    /// Whether the last recovery materialized an NVRAM-held segment tail.
    pub recovery_nvram_applied: bool,
    /// Whether the last startup used the clean-shutdown checkpoint instead
    /// of the recovery sweep.
    pub recovered_from_checkpoint: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_to_zero() {
        let s = LldStats::default();
        assert_eq!(s.segments_sealed, 0);
        assert!(!s.recovered_from_checkpoint);
    }
}
