//! Operation counters exposed by LLD for the benchmark harness.

/// Counters accumulated by [`crate::Lld`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LldStats {
    /// Full segments written (sealed).
    pub segments_sealed: u64,
    /// Partial segments written by `Flush` below the threshold (§3.2).
    pub partial_segment_writes: u64,
    /// `Flush` calls that sealed because the fill was above the threshold.
    pub flush_seals: u64,
    /// Logical block writes accepted from the file system.
    pub block_writes: u64,
    /// Logical block reads served.
    pub block_reads: u64,
    /// Block reads served from the in-memory open segment.
    pub block_reads_from_memory: u64,
    /// Payload bytes accepted from the file system.
    pub user_bytes_written: u64,
    /// Payload bytes after compression (equals `user_bytes_written` when
    /// compression is off).
    pub stored_bytes_written: u64,
    /// Link tuples and other list records logged (the §4.2 list-overhead
    /// experiment reads this).
    pub list_records_logged: u64,
    /// All records logged.
    pub records_logged: u64,
    /// Cleaner invocations.
    pub cleaner_runs: u64,
    /// Segments reclaimed by the cleaner.
    pub segments_cleaned: u64,
    /// Live bytes the cleaner copied forward (write amplification).
    pub cleaner_bytes_copied: u64,
    /// Records the cleaner re-logged to keep metadata recoverable.
    pub cleaner_records_relogged: u64,
    /// Segments rewritten by the reorganizer.
    pub reorganized_lists: u64,
    /// Segment summaries read by the last recovery sweep.
    pub recovery_summaries_read: u64,
    /// Simulated microseconds the last recovery took.
    pub recovery_us: u64,
    /// Records discarded at recovery as part of an incomplete trailing ARU.
    pub recovery_records_discarded: u64,
    /// Blocks dropped at recovery because no surviving record named their
    /// owning list (diagnostic; should be zero).
    pub recovery_orphans: u64,
    /// Below-threshold flushes absorbed by NVRAM instead of partial
    /// segment writes (§5.3 extension).
    pub nvram_saves: u64,
    /// Read attempts that failed on a media fault and were re-driven.
    pub retries: u64,
    /// Sectors retired into the persistent bad-block remap table.
    pub remapped_sectors: u64,
    /// Block reads (or scrub evacuations) that stayed unreadable after
    /// all retry attempts — data loss the caller was told about.
    pub unreadable_blocks: u64,
    /// Segment writes (seals and partial-flush images) submitted through
    /// the tagged command queue instead of the direct path.
    pub queued_segment_writes: u64,
    /// Reads submitted through the queue: batched cleaner victim
    /// prefetches and batched scrub probes.
    pub queued_reads: u64,
    /// Times a non-empty queue was drained to empty (every read, flush,
    /// and checkpoint fences behind all in-flight writes).
    pub queue_drains: u64,
    /// Whether the last recovery materialized an NVRAM-held segment tail.
    pub recovery_nvram_applied: bool,
    /// Whether the last startup used the clean-shutdown checkpoint instead
    /// of the recovery sweep.
    pub recovered_from_checkpoint: bool,
}

impl LldStats {
    /// Returns `self - earlier` on the monotone counters, for measuring a
    /// benchmark phase. The point-in-time fields (`recovery_*` snapshots
    /// of the last recovery, the two booleans) are carried over from
    /// `self` rather than subtracted.
    ///
    /// Returns `None` if `earlier` is not actually an earlier snapshot of
    /// the same counter set (any counter would underflow), e.g. across a
    /// [`crate::Lld::reset_stats`].
    pub fn delta_since(&self, earlier: &LldStats) -> Option<LldStats> {
        Some(LldStats {
            segments_sealed: self.segments_sealed.checked_sub(earlier.segments_sealed)?,
            partial_segment_writes: self
                .partial_segment_writes
                .checked_sub(earlier.partial_segment_writes)?,
            flush_seals: self.flush_seals.checked_sub(earlier.flush_seals)?,
            block_writes: self.block_writes.checked_sub(earlier.block_writes)?,
            block_reads: self.block_reads.checked_sub(earlier.block_reads)?,
            block_reads_from_memory: self
                .block_reads_from_memory
                .checked_sub(earlier.block_reads_from_memory)?,
            user_bytes_written: self
                .user_bytes_written
                .checked_sub(earlier.user_bytes_written)?,
            stored_bytes_written: self
                .stored_bytes_written
                .checked_sub(earlier.stored_bytes_written)?,
            list_records_logged: self
                .list_records_logged
                .checked_sub(earlier.list_records_logged)?,
            records_logged: self.records_logged.checked_sub(earlier.records_logged)?,
            cleaner_runs: self.cleaner_runs.checked_sub(earlier.cleaner_runs)?,
            segments_cleaned: self.segments_cleaned.checked_sub(earlier.segments_cleaned)?,
            cleaner_bytes_copied: self
                .cleaner_bytes_copied
                .checked_sub(earlier.cleaner_bytes_copied)?,
            cleaner_records_relogged: self
                .cleaner_records_relogged
                .checked_sub(earlier.cleaner_records_relogged)?,
            reorganized_lists: self
                .reorganized_lists
                .checked_sub(earlier.reorganized_lists)?,
            nvram_saves: self.nvram_saves.checked_sub(earlier.nvram_saves)?,
            retries: self.retries.checked_sub(earlier.retries)?,
            remapped_sectors: self.remapped_sectors.checked_sub(earlier.remapped_sectors)?,
            unreadable_blocks: self
                .unreadable_blocks
                .checked_sub(earlier.unreadable_blocks)?,
            queued_segment_writes: self
                .queued_segment_writes
                .checked_sub(earlier.queued_segment_writes)?,
            queued_reads: self.queued_reads.checked_sub(earlier.queued_reads)?,
            queue_drains: self.queue_drains.checked_sub(earlier.queue_drains)?,
            recovery_summaries_read: self.recovery_summaries_read,
            recovery_us: self.recovery_us,
            recovery_records_discarded: self.recovery_records_discarded,
            recovery_orphans: self.recovery_orphans,
            recovery_nvram_applied: self.recovery_nvram_applied,
            recovered_from_checkpoint: self.recovered_from_checkpoint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_to_zero() {
        let s = LldStats::default();
        assert_eq!(s.segments_sealed, 0);
        assert!(!s.recovered_from_checkpoint);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_snapshots() {
        let earlier = LldStats {
            segments_sealed: 2,
            block_writes: 10,
            ..LldStats::default()
        };
        let later = LldStats {
            segments_sealed: 5,
            block_writes: 25,
            recovery_us: 999,
            recovered_from_checkpoint: true,
            ..LldStats::default()
        };
        let d = later.delta_since(&earlier).expect("later is later");
        assert_eq!(d.segments_sealed, 3);
        assert_eq!(d.block_writes, 15);
        // Point-in-time fields carry over, not subtract.
        assert_eq!(d.recovery_us, 999);
        assert!(d.recovered_from_checkpoint);
        // Underflow is an absent delta, not a panic.
        assert_eq!(earlier.delta_since(&later), None);
    }
}
