//! Main-memory requirements of LLD (paper §3.4, Tables 2 and 3).
//!
//! The paper bills LLD's memory with these per-entry costs:
//!
//! - **block-number map**: 3 bytes physical address + 3 bytes successor per
//!   logical block; compression adds at most 2 bytes of length and 1 more
//!   address byte (9 bytes total) *and* fits 67 % more blocks on the same
//!   disk (at the assumed 60 % compression ratio);
//! - **list table**: 4 bytes per list;
//! - **segment usage table**: 3 bytes per segment.
//!
//! [`MemoryModel::paper`] evaluates that model for any configuration
//! (regenerating Table 2), [`MemoryModel::cost_percentage`] evaluates the
//! price comparison of Table 3, and [`crate::Lld::memory_report`] applies
//! the same per-entry billing to a live instance's actual table sizes.

use simdisk::BlockDev;

use crate::Lld;

/// Paper constants (§3.4).
const BYTES_PER_BLOCK: u64 = 6;
const BYTES_PER_BLOCK_COMPRESSED: u64 = 9;
const BYTES_PER_LIST: u64 = 4;
const BYTES_PER_SEGMENT: u64 = 3;
/// Assumed compression ratio (compressed size / original size).
const COMPRESSION_RATIO: f64 = 0.6;

/// How lists are allocated, which determines the list-table size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ListGranularity {
    /// One list for the whole file system (Table 2, first column).
    SingleList,
    /// One list per file with the given average file size (Table 2, second
    /// column uses 8 KB).
    PerFile {
        /// Average file size in bytes.
        avg_file_bytes: u64,
    },
}

/// A memory bill, in bytes, for LLD's three main-memory structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryModel {
    /// Block-number map bytes.
    pub block_map_bytes: u64,
    /// List table bytes.
    pub list_table_bytes: u64,
    /// Segment usage table bytes.
    pub usage_table_bytes: u64,
}

impl MemoryModel {
    /// Evaluates the paper's model (Table 2) for a disk of `disk_bytes`
    /// with the given average block size, segment size, compression
    /// setting, and list granularity.
    pub fn paper(
        disk_bytes: u64,
        avg_block_bytes: u64,
        segment_bytes: u64,
        compression: bool,
        lists: ListGranularity,
    ) -> Self {
        // Effective storage grows under compression: "67% more blocks will
        // fit (assuming the compression ratio is 60%)".
        let effective_bytes = if compression {
            (disk_bytes as f64 / COMPRESSION_RATIO) as u64
        } else {
            disk_bytes
        };
        let blocks = effective_bytes / avg_block_bytes;
        let per_block = if compression {
            BYTES_PER_BLOCK_COMPRESSED
        } else {
            BYTES_PER_BLOCK
        };
        let nlists = match lists {
            ListGranularity::SingleList => 1,
            ListGranularity::PerFile { avg_file_bytes } => effective_bytes / avg_file_bytes,
        };
        MemoryModel {
            block_map_bytes: blocks * per_block,
            list_table_bytes: nlists * BYTES_PER_LIST,
            usage_table_bytes: (disk_bytes / segment_bytes) * BYTES_PER_SEGMENT,
        }
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.block_map_bytes + self.list_table_bytes + self.usage_table_bytes
    }

    /// Table 3: the percentage LLD's memory adds to the price of the disk,
    /// given RAM price ($ per MB) and disk price ($ per GB) and the disk
    /// size this model was computed for.
    pub fn cost_percentage(&self, disk_bytes: u64, ram_per_mb: f64, disk_per_gb: f64) -> f64 {
        let mem_mb = self.total_bytes() as f64 / (1 << 20) as f64;
        let disk_gb = disk_bytes as f64 / (1 << 30) as f64;
        100.0 * (mem_mb * ram_per_mb) / (disk_gb * disk_per_gb)
    }
}

impl<D: BlockDev> Lld<D> {
    /// Bills the live instance's actual table sizes with the paper's
    /// per-entry costs (what this instance "costs" under §3.4 accounting).
    pub fn memory_report(&self) -> MemoryModel {
        let compression = self.map.iter().any(|(_, e)| e.compressed);
        let per_block = if compression {
            BYTES_PER_BLOCK_COMPRESSED
        } else {
            BYTES_PER_BLOCK
        };
        MemoryModel {
            block_map_bytes: self.map.capacity_slots() as u64 * per_block,
            list_table_bytes: self.lists.allocated() as u64 * BYTES_PER_LIST,
            usage_table_bytes: u64::from(self.usage.len()) * BYTES_PER_SEGMENT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;
    const MB: u64 = 1 << 20;

    #[test]
    fn table2_no_compression_single_list() {
        // Paper: 1.5 MB block map, 4 B list table, 6 KB usage table per GB
        // (4 KB blocks, 512 KB segments).
        let m = MemoryModel::paper(GB, 4096, 512 << 10, false, ListGranularity::SingleList);
        assert_eq!(m.block_map_bytes, 262_144 * 6); // = 1.5 MiB
        assert_eq!(m.block_map_bytes, 3 * MB / 2);
        assert_eq!(m.list_table_bytes, 4);
        assert_eq!(m.usage_table_bytes, 2048 * 3); // = 6 KiB
    }

    #[test]
    fn table2_compression_list_per_file() {
        // Paper: 3.8 MB block map, 0.8 MB list table per GB of physical
        // disk (1.7 GB effective), 8 KB average files.
        let m = MemoryModel::paper(
            GB,
            4096,
            512 << 10,
            true,
            ListGranularity::PerFile {
                avg_file_bytes: 8192,
            },
        );
        let map_mb = m.block_map_bytes as f64 / MB as f64;
        assert!((3.6..=4.0).contains(&map_mb), "map {map_mb:.2} MB ≈ 3.8 MB");
        let list_mb = m.list_table_bytes as f64 / MB as f64;
        assert!(
            (0.75..=0.90).contains(&list_mb),
            "list table {list_mb:.2} MB ≈ 0.8 MB"
        );
        let total_mb = m.total_bytes() as f64 / MB as f64;
        assert!(
            (4.4..=4.8).contains(&total_mb),
            "total {total_mb:.2} MB ≈ 4.6 MB"
        );
    }

    #[test]
    fn table3_cost_percentages() {
        // Paper Table 3: $50/MB RAM, $750/GB disk → 10% (best case,
        // 1.5 MB/GB) or 31% (worst case, 4.6 MB/GB).
        let best = MemoryModel::paper(GB, 4096, 512 << 10, false, ListGranularity::SingleList);
        let pct = best.cost_percentage(GB, 50.0, 750.0);
        assert!((9.0..=11.0).contains(&pct), "best case {pct:.1}% ≈ 10%");

        let worst = MemoryModel::paper(
            GB,
            4096,
            512 << 10,
            true,
            ListGranularity::PerFile {
                avg_file_bytes: 8192,
            },
        );
        let pct = worst.cost_percentage(GB, 50.0, 750.0);
        assert!((28.0..=33.0).contains(&pct), "worst case {pct:.1}% ≈ 31%");

        // Cheap RAM, expensive disk: $30/MB and $1500/GB → 3%.
        let pct = best.cost_percentage(GB, 30.0, 1500.0);
        assert!((2.5..=3.5).contains(&pct), "{pct:.1}% ≈ 3%");
    }
}
