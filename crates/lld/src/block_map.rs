//! The block-number map and the list table (paper Figure 2).
//!
//! The block-number map stores, for each logical block: its physical
//! address, its successor in its list, its length, and whether it is
//! compressed. The list table stores the first logical block of each list;
//! lists are singly linked through the successor fields, and the lists
//! themselves form a singly linked *list of lists*. Both tables live
//! entirely in main memory (§3.4 analyses the cost of that choice; the
//! `memory` module reproduces the analysis).

use ld_core::ListHints;

/// Sentinel segment id: the block's live copy is in the in-memory open
/// segment buffer (not yet durable).
pub const OPEN_SEG: u32 = u32::MAX;
/// Sentinel segment id: the block is allocated but has never been written.
pub const NO_SEG: u32 = u32::MAX - 1;

/// One entry of the block-number map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Physical segment holding the live copy, or a sentinel
    /// ([`OPEN_SEG`], [`NO_SEG`]).
    pub seg: u32,
    /// Byte offset of the stored bytes within the segment's data region.
    pub offset: u32,
    /// Stored length (compressed length when `compressed`).
    pub stored_len: u32,
    /// Logical length as last written by the file system.
    pub logical_len: u32,
    /// Size class fixed at allocation (write length limit).
    pub size_class: u32,
    /// Whether the stored bytes are compressed.
    pub compressed: bool,
    /// Successor in the owning list (`None` = last).
    pub next: Option<u64>,
    /// Owning list.
    pub list: u64,
}

impl BlockEntry {
    /// A fresh entry for a just-allocated, never-written block.
    pub fn new(list: u64, size_class: u32) -> Self {
        Self {
            seg: NO_SEG,
            offset: 0,
            stored_len: 0,
            logical_len: 0,
            size_class,
            compressed: false,
            next: None,
            list,
        }
    }

    /// Whether the live copy is on disk (not in-memory, not unwritten).
    pub fn on_disk(&self) -> bool {
        self.seg != OPEN_SEG && self.seg != NO_SEG
    }
}

/// The block-number map: logical block number → [`BlockEntry`].
///
/// Block numbers index a dense vector; freed numbers are recycled from a
/// free stack (block numbers are cheap names, and reuse keeps the map — and
/// therefore the paper's 6-bytes-per-block memory bill — dense).
#[derive(Debug, Default)]
pub struct BlockMap {
    entries: Vec<Option<BlockEntry>>,
    free: Vec<u64>,
}

impl BlockMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of allocated blocks.
    pub fn allocated(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// Size of the dense index (high-water mark of block numbers).
    pub fn capacity_slots(&self) -> usize {
        self.entries.len()
    }

    /// Allocates a fresh block number.
    pub fn alloc(&mut self, list: u64, size_class: u32) -> u64 {
        let entry = BlockEntry::new(list, size_class);
        match self.free.pop() {
            Some(bid) => {
                debug_assert!(self.entries[bid as usize].is_none());
                self.entries[bid as usize] = Some(entry);
                bid
            }
            None => {
                self.entries.push(Some(entry));
                (self.entries.len() - 1) as u64
            }
        }
    }

    /// Installs an entry under a specific number (recovery replay).
    pub fn install(&mut self, bid: u64, entry: BlockEntry) {
        let idx = bid as usize;
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, None);
        }
        self.entries[idx] = Some(entry);
    }

    /// Frees a block number for reuse. Returns the old entry.
    pub fn free(&mut self, bid: u64) -> Option<BlockEntry> {
        let e = self.entries.get_mut(bid as usize)?.take();
        if e.is_some() {
            self.free.push(bid);
        }
        e
    }

    /// Removes an entry without pushing the number onto the free stack
    /// (recovery replay, where the free stack is rebuilt afterwards).
    pub fn remove_raw(&mut self, bid: u64) -> Option<BlockEntry> {
        self.entries.get_mut(bid as usize)?.take()
    }

    /// Looks up a block.
    pub fn get(&self, bid: u64) -> Option<&BlockEntry> {
        self.entries.get(bid as usize)?.as_ref()
    }

    /// Looks up a block mutably.
    pub fn get_mut(&mut self, bid: u64) -> Option<&mut BlockEntry> {
        self.entries.get_mut(bid as usize)?.as_mut()
    }

    /// Iterates over `(bid, entry)` for all allocated blocks.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &BlockEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i as u64, e)))
    }

    /// Rebuilds the free stack from the dense index (after recovery
    /// replay). Free numbers are pushed in descending order so that
    /// low numbers are reused first.
    pub fn rebuild_free_stack(&mut self) {
        self.free = self
            .entries
            .iter()
            .enumerate()
            .rev()
            .filter_map(|(i, e)| e.is_none().then_some(i as u64))
            .collect();
    }
}

/// One entry of the list table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListEntry {
    /// First block on the list (`None` = empty list).
    pub first: Option<u64>,
    /// Successor in the list of lists.
    pub next_list: Option<u64>,
    /// Hints given at `NewList`.
    pub hints: ListHints,
}

/// The list table plus the list of lists.
#[derive(Debug, Default)]
pub struct ListTable {
    entries: Vec<Option<ListEntry>>,
    free: Vec<u64>,
    /// First list in the list of lists.
    head: Option<u64>,
}

impl ListTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of allocated lists.
    pub fn allocated(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// Allocates a new list after `pred` in the list of lists
    /// (`None` = front). Returns `None` if `pred` is not allocated.
    pub fn alloc(&mut self, pred: Option<u64>, hints: ListHints) -> Option<u64> {
        if let Some(p) = pred {
            self.get(p)?;
        }
        let lid = match self.free.pop() {
            Some(lid) => lid,
            None => {
                self.entries.push(None);
                (self.entries.len() - 1) as u64
            }
        };
        let next_list = match pred {
            None => self.head.replace(lid),
            Some(p) => {
                let pe = self.entries[p as usize].as_mut().expect("checked above"); // PANIC-OK: presence checked on the lines above
                pe.next_list.replace(lid)
            }
        };
        self.entries[lid as usize] = Some(ListEntry {
            first: None,
            next_list,
            hints,
        });
        Some(lid)
    }

    /// Installs a list under a specific id (recovery replay), inserting it
    /// after `pred` in the list of lists when `pred` still exists (a stale
    /// predecessor degrades to front insertion — order is a hint, not a
    /// correctness property).
    pub fn install(&mut self, lid: u64, pred: Option<u64>, hints: ListHints) {
        let idx = lid as usize;
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, None);
        }
        // If the list already exists (replayed twice), keep its first
        // pointer; otherwise create it empty.
        let first = self.entries[idx].map(|e| e.first).unwrap_or(None);
        // Remove from the order chain if present, then reinsert.
        if self.entries[idx].is_some() {
            self.unlink_from_order(lid);
        }
        let next_list = match pred.filter(|&p| p != lid && self.get(p).is_some()) {
            None => self.head.replace(lid),
            Some(p) => self.entries[p as usize]
                .as_mut()
                .expect("filtered") // PANIC-OK: the filter above keeps only Some entries
                .next_list
                .replace(lid),
        };
        self.entries[idx] = Some(ListEntry {
            first,
            next_list,
            hints,
        });
    }

    fn unlink_from_order(&mut self, lid: u64) {
        if self.head == Some(lid) {
            self.head = self.entries[lid as usize].and_then(|e| e.next_list);
            return;
        }
        let mut cur = self.head;
        while let Some(c) = cur {
            let next = self.entries[c as usize].and_then(|e| e.next_list);
            if next == Some(lid) {
                let target_next = self.entries[lid as usize].and_then(|e| e.next_list);
                self.entries[c as usize].as_mut().expect("walked").next_list = target_next; // PANIC-OK: the bid was read off the chain just walked
                return;
            }
            cur = next;
        }
    }

    /// Frees a list id. `pred_hint` names the predecessor in the list of
    /// lists; if absent or wrong, the chain is searched (paper Table 1).
    /// Returns the old entry.
    pub fn free(&mut self, lid: u64, pred_hint: Option<u64>) -> Option<ListEntry> {
        let entry = *self.entries.get(lid as usize)?.as_ref()?;
        // Fast path via the hint.
        let hint_ok =
            pred_hint.is_some_and(|p| self.get(p).is_some_and(|pe| pe.next_list == Some(lid)));
        if hint_ok {
            let p = pred_hint.expect("checked"); // PANIC-OK: presence checked on the lines above
            self.entries[p as usize]
                .as_mut()
                .expect("checked") // PANIC-OK: presence checked on the lines above
                .next_list = entry.next_list;
        } else {
            self.unlink_from_order(lid);
        }
        self.entries[lid as usize] = None;
        self.free.push(lid);
        Some(entry)
    }

    /// Removes an entry without recycling the id (recovery replay).
    pub fn remove_raw(&mut self, lid: u64) -> Option<ListEntry> {
        self.unlink_from_order(lid);
        self.entries.get_mut(lid as usize)?.take()
    }

    /// Moves `lid` after `pred` in the list of lists.
    pub fn move_after(&mut self, lid: u64, pred: Option<u64>) -> bool {
        if self.get(lid).is_none() {
            return false;
        }
        if let Some(p) = pred {
            if p == lid || self.get(p).is_none() {
                return false;
            }
        }
        self.unlink_from_order(lid);
        let next_list = match pred {
            None => self.head.replace(lid),
            Some(p) => self.entries[p as usize]
                .as_mut()
                .expect("checked") // PANIC-OK: presence checked on the lines above
                .next_list
                .replace(lid),
        };
        self.entries[lid as usize]
            .as_mut()
            .expect("checked") // PANIC-OK: presence checked on the lines above
            .next_list = next_list;
        true
    }

    /// Looks up a list.
    pub fn get(&self, lid: u64) -> Option<&ListEntry> {
        self.entries.get(lid as usize)?.as_ref()
    }

    /// Looks up a list mutably.
    pub fn get_mut(&mut self, lid: u64) -> Option<&mut ListEntry> {
        self.entries.get_mut(lid as usize)?.as_mut()
    }

    /// The list of lists, front to back.
    pub fn order(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.allocated());
        let mut cur = self.head;
        while let Some(lid) = cur {
            out.push(lid);
            cur = self.entries[lid as usize].and_then(|e| e.next_list);
        }
        out
    }

    /// The predecessor of `lid` in the list of lists (`None` if `lid` is
    /// the head).
    pub fn order_pred(&self, lid: u64) -> Option<u64> {
        let mut cur = self.head;
        while let Some(c) = cur {
            let next = self.entries[c as usize].and_then(|e| e.next_list);
            if next == Some(lid) {
                return Some(c);
            }
            cur = next;
        }
        None
    }

    /// Iterates over `(lid, entry)` for all allocated lists.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &ListEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i as u64, e)))
    }

    /// Rebuilds the free stack after recovery replay.
    pub fn rebuild_free_stack(&mut self) {
        self.free = self
            .entries
            .iter()
            .enumerate()
            .rev()
            .filter_map(|(i, e)| e.is_none().then_some(i as u64))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_numbers_are_recycled_lowest_first_after_rebuild() {
        let mut m = BlockMap::new();
        let a = m.alloc(0, 4096);
        let b = m.alloc(0, 4096);
        let c = m.alloc(0, 4096);
        assert_eq!((a, b, c), (0, 1, 2));
        m.free(a);
        m.free(c);
        m.rebuild_free_stack();
        assert_eq!(m.alloc(0, 64), a, "lowest free number reused first");
        assert_eq!(m.allocated(), 2);
    }

    #[test]
    fn freeing_twice_is_harmless() {
        let mut m = BlockMap::new();
        let a = m.alloc(0, 4096);
        assert!(m.free(a).is_some());
        assert!(m.free(a).is_none());
        assert_eq!(m.allocated(), 0);
    }

    #[test]
    fn list_of_lists_order_and_move() {
        let mut t = ListTable::new();
        let a = t.alloc(None, ListHints::default()).unwrap();
        let b = t.alloc(Some(a), ListHints::default()).unwrap();
        let c = t.alloc(Some(a), ListHints::default()).unwrap();
        assert_eq!(t.order(), vec![a, c, b]);
        assert!(t.move_after(b, None));
        assert_eq!(t.order(), vec![b, a, c]);
        assert!(t.move_after(b, Some(c)));
        assert_eq!(t.order(), vec![a, c, b]);
        assert_eq!(t.order_pred(c), Some(a));
        assert_eq!(t.order_pred(a), None);
    }

    #[test]
    fn free_list_uses_hint_or_scan() {
        let mut t = ListTable::new();
        let a = t.alloc(None, ListHints::default()).unwrap();
        let b = t.alloc(Some(a), ListHints::default()).unwrap();
        let c = t.alloc(Some(b), ListHints::default()).unwrap();
        // Wrong hint still works via scan.
        t.free(b, Some(c)).unwrap();
        assert_eq!(t.order(), vec![a, c]);
        // Correct hint.
        t.free(c, Some(a)).unwrap();
        assert_eq!(t.order(), vec![a]);
        // Head removal with no hint.
        t.free(a, None).unwrap();
        assert!(t.order().is_empty());
        assert_eq!(t.allocated(), 0);
    }

    #[test]
    fn alloc_with_dead_pred_fails() {
        let mut t = ListTable::new();
        let a = t.alloc(None, ListHints::default()).unwrap();
        t.free(a, None);
        assert_eq!(t.alloc(Some(a), ListHints::default()), None);
    }

    #[test]
    fn install_is_idempotent_and_preserves_first() {
        let mut t = ListTable::new();
        t.install(5, None, ListHints::default());
        t.get_mut(5).unwrap().first = Some(99);
        t.install(5, None, ListHints::compressed());
        assert_eq!(t.get(5).unwrap().first, Some(99));
        assert!(t.get(5).unwrap().hints.compress);
        assert_eq!(t.order(), vec![5]);
    }

    #[test]
    fn block_entry_tracks_disk_residence() {
        let e = BlockEntry::new(3, 4096);
        assert!(!e.on_disk());
        let mut e2 = e;
        e2.seg = 7;
        assert!(e2.on_disk());
        let mut e3 = e;
        e3.seg = OPEN_SEG;
        assert!(!e3.on_disk());
    }
}
