//! Clean-shutdown checkpoint (paper §3.6).
//!
//! "If LLD is shut down explicitly, it writes its data structures, a
//! timestamp, and a marker that the state stored is valid in a special
//! region on disk. ... In the case of explicit shut down, LLD reads its
//! data structures from the special area on disk, invalidates the marker,
//! and starts immediately."
//!
//! The fixed header region (the first sectors of the disk) holds only the
//! marker and a table of contents; the serialized tables themselves are
//! written into whole *free segments*, so checkpoint size is bounded by
//! free space, not by a fixed region. A checkpoint is strictly an
//! optimization: when no free segment is available (or the header is torn)
//! startup falls back to the recovery sweep.

use ld_core::{wire, LdError, ListHints, Result};
use simdisk::{BlockDev, SECTOR_SIZE};

use crate::block_map::{BlockEntry, BlockMap, ListTable};
use crate::layout::HEADER_SECTORS;
use crate::records::fnv1a64;
use crate::usage::{SegState, SegUsage, UsageTable};
use crate::{dev, Layout, Lld};

/// Magic number identifying a checkpoint header ("LDCP").
pub const CKPT_MAGIC: u32 = 0x4C44_4350;
/// Checkpoint format version.
pub const CKPT_VERSION: u16 = 1;

/// State reconstructed from a checkpoint.
pub(crate) struct LoadedState {
    pub map: BlockMap,
    pub lists: ListTable,
    pub usage: UsageTable,
    pub ts: u64,
    pub seq: u64,
    pub bad_sectors: std::collections::BTreeSet<u64>,
}

/// One block-map entry of a parsed checkpoint, as plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockView {
    /// Logical block number.
    pub bid: u64,
    /// Segment holding the live copy (may be a sentinel for never-written
    /// blocks).
    pub seg: u32,
    /// Byte offset within the segment's data region.
    pub offset: u32,
    /// Stored (possibly compressed) length.
    pub stored_len: u32,
    /// Logical length.
    pub logical_len: u32,
    /// Size class in bytes.
    pub size_class: u32,
    /// Whether the stored bytes are compressed.
    pub compressed: bool,
    /// Successor in the owning list.
    pub next: Option<u64>,
    /// Owning list id.
    pub list: u64,
}

/// One list-table entry of a parsed checkpoint, as plain data, in
/// list-of-lists order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListView {
    /// List id.
    pub lid: u64,
    /// First block of the list.
    pub first: Option<u64>,
    /// Clustering/compression hints.
    pub hints: ListHints,
}

/// Segment state recorded in a checkpoint's usage table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegStateView {
    /// No live data and no summary worth keeping.
    Free,
    /// Holds live data and/or a summary with live metadata records.
    Live,
    /// Durable scratch copy of a partial segment (§3.2).
    Scratch,
    /// Retired because of persistent media faults (never reused).
    Quarantined,
}

/// One usage-table entry of a parsed checkpoint, indexed by segment id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegUsageView {
    /// Segment state.
    pub state: SegStateView,
    /// Live payload bytes accounted to the segment.
    pub live_bytes: u64,
    /// Timestamp of the last write into the segment.
    pub last_write_ts: u64,
}

/// A checkpoint parsed from a raw image without touching the device — the
/// read-only counterpart of [`try_load`], used by offline tooling (`ldck`).
#[derive(Debug, Clone)]
pub struct CheckpointView {
    /// Operation-counter value at shutdown.
    pub ts: u64,
    /// Next physical-write sequence number at shutdown.
    pub seq: u64,
    /// Free segments the payload was written into, in chunk order.
    pub payload_segments: Vec<u32>,
    /// Block-number map entries.
    pub blocks: Vec<BlockView>,
    /// List-table entries in list-of-lists order.
    pub lists: Vec<ListView>,
    /// Usage table, one entry per segment.
    pub usage: Vec<SegUsageView>,
    /// Bad-block remap table: sectors retired after confirmed media
    /// faults, in ascending order. Empty for checkpoints written before
    /// any fault (the section is omitted from the payload entirely, so
    /// fault-free images are byte-identical to the pre-fault format).
    pub bad_sectors: Vec<u64>,
}

/// Outcome of peeking at a raw image's checkpoint region.
#[derive(Debug, Clone)]
pub enum CheckpointPeek {
    /// No valid-marked checkpoint header (never written, already consumed
    /// by a start-up, or torn before the marker was set) — the normal state
    /// after a crash; start-up falls back to the recovery sweep.
    Absent,
    /// The marker claims a valid checkpoint but it cannot be read back.
    /// Unreachable by a crash (the header sector is written last, after the
    /// payload, and sectors persist atomically) — this is corruption.
    Corrupt(String),
    /// A fully parsed checkpoint.
    Valid(CheckpointView),
}

/// Parses the checkpoint of a raw disk image **read-only**: unlike
/// [`try_load`] this never invalidates the marker, making it safe for
/// offline analysis of an image that may still be started from.
pub fn peek_image(image: &[u8], layout: &Layout) -> CheckpointPeek {
    let header_len = HEADER_SECTORS as usize * SECTOR_SIZE;
    let Some(header) = image.get(..header_len) else {
        return CheckpointPeek::Corrupt(format!(
            "image shorter than the {header_len}-byte checkpoint header"
        ));
    };
    let magic = wire::le_u32(header, 0);
    let version = wire::le_u16(header, 4);
    if magic != CKPT_MAGIC || version != CKPT_VERSION || header[6] != 1 {
        return CheckpointPeek::Absent;
    }
    let mut r = Reader {
        data: header,
        pos: 8,
    };
    let (Some(payload_len), Some(checksum), Some(nsegs)) = (r.u64(), r.u64(), r.u32()) else {
        return CheckpointPeek::Corrupt("checkpoint header fields truncated".into());
    };
    let mut segs = Vec::with_capacity(nsegs as usize);
    for _ in 0..nsegs {
        match r.u32() {
            Some(s) if s < layout.segments => segs.push(s),
            Some(s) => {
                return CheckpointPeek::Corrupt(format!(
                    "payload segment {s} out of range (disk has {})",
                    layout.segments
                ))
            }
            None => return CheckpointPeek::Corrupt("payload segment list truncated".into()),
        }
    }
    let payload_len = payload_len as usize;
    if payload_len > segs.len() * layout.segment_bytes {
        return CheckpointPeek::Corrupt(format!(
            "payload length {payload_len} exceeds the {} listed segments",
            segs.len()
        ));
    }
    let mut payload = Vec::with_capacity(segs.len() * layout.segment_bytes);
    for seg in &segs {
        let base = layout.segment_base(*seg) as usize * SECTOR_SIZE;
        let Some(chunk) = image.get(base..base + layout.segment_bytes) else {
            return CheckpointPeek::Corrupt(format!("image truncated inside segment {seg}"));
        };
        payload.extend_from_slice(chunk);
    }
    payload.truncate(payload_len);
    if fnv1a64(&payload) != checksum {
        return CheckpointPeek::Corrupt("payload checksum mismatch".into());
    }
    let Some(mut view) = deserialize_view(&payload) else {
        return CheckpointPeek::Corrupt("payload passed checksum but failed to parse".into());
    };
    if view.usage.len() != layout.segments as usize {
        return CheckpointPeek::Corrupt(format!(
            "usage table covers {} segments, disk has {}",
            view.usage.len(),
            layout.segments
        ));
    }
    view.payload_segments = segs;
    CheckpointPeek::Valid(view)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> Option<u64> {
        let b = self.data.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(wire::le_u64(b, 0))
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.data.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(wire::le_u32(b, 0))
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.data.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }
}

/// Serializes the LLD tables.
fn serialize<D: BlockDev>(lld: &Lld<D>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, lld.ts);
    put_u64(&mut out, lld.seq);

    // Block-number map.
    let blocks: Vec<(u64, &BlockEntry)> = lld.map.iter().collect();
    put_u64(&mut out, blocks.len() as u64);
    for (bid, e) in blocks {
        put_u64(&mut out, bid);
        put_u32(&mut out, e.seg);
        put_u32(&mut out, e.offset);
        put_u32(&mut out, e.stored_len);
        put_u32(&mut out, e.logical_len);
        put_u32(&mut out, e.size_class);
        out.push(e.compressed as u8);
        put_u64(&mut out, e.next.map_or(0, |n| n + 1));
        put_u64(&mut out, e.list);
    }

    // List table, serialized in list-of-lists order so the chain can be
    // rebuilt with plain installs.
    let order = lld.lists.order();
    put_u64(&mut out, order.len() as u64);
    for lid in &order {
        let e = lld.lists.get(*lid).expect("order() returns live lists"); // PANIC-OK: order() yields only lids present in the table
        put_u64(&mut out, *lid);
        put_u64(&mut out, e.first.map_or(0, |f| f + 1));
        let h = (e.hints.cluster as u8)
            | ((e.hints.compress as u8) << 1)
            | ((e.hints.interlist_cluster as u8) << 2);
        out.push(h);
    }

    // Segment usage table.
    put_u32(&mut out, lld.usage.len());
    for (_, u) in lld.usage.iter() {
        out.push(match u.state {
            SegState::Free => 0,
            SegState::Live => 1,
            SegState::Scratch => 2,
            SegState::Quarantined => 3,
        });
        put_u64(&mut out, u.live_bytes);
        put_u64(&mut out, u.last_write_ts);
    }

    // Bad-block remap table, appended only when non-empty so fault-free
    // checkpoints keep the original byte layout (readers length-gate it).
    if !lld.bad_sectors.is_empty() {
        put_u64(&mut out, lld.bad_sectors.len() as u64);
        for s in &lld.bad_sectors {
            put_u64(&mut out, *s);
        }
    }
    out
}

/// Parses a checkpoint payload into plain data. Shared by [`try_load`]
/// (which then builds live tables) and [`peek_image`] (read-only analysis),
/// so there is exactly one decoder for the wire format.
fn deserialize_view(data: &[u8]) -> Option<CheckpointView> {
    let mut r = Reader { data, pos: 0 };
    let ts = r.u64()?;
    let seq = r.u64()?;

    let nblocks = r.u64()?;
    let mut blocks = Vec::with_capacity(nblocks.min(1 << 24) as usize);
    for _ in 0..nblocks {
        let bid = r.u64()?;
        let seg = r.u32()?;
        let offset = r.u32()?;
        let stored_len = r.u32()?;
        let logical_len = r.u32()?;
        let size_class = r.u32()?;
        let compressed = r.u8()? != 0;
        let next = r.u64()?;
        let list = r.u64()?;
        blocks.push(BlockView {
            bid,
            seg,
            offset,
            stored_len,
            logical_len,
            size_class,
            compressed,
            next: (next != 0).then(|| next - 1),
            list,
        });
    }

    let nlists = r.u64()?;
    let mut lists = Vec::with_capacity(nlists.min(1 << 24) as usize);
    for _ in 0..nlists {
        let lid = r.u64()?;
        let first = r.u64()?;
        let h = r.u8()?;
        lists.push(ListView {
            lid,
            first: (first != 0).then(|| first - 1),
            hints: ListHints {
                cluster: h & 1 != 0,
                compress: h & 2 != 0,
                interlist_cluster: h & 4 != 0,
            },
        });
    }

    let nsegs = r.u32()?;
    let mut usage = Vec::with_capacity(nsegs.min(1 << 24) as usize);
    for _ in 0..nsegs {
        let state = match r.u8()? {
            0 => SegStateView::Free,
            1 => SegStateView::Live,
            2 => SegStateView::Scratch,
            3 => SegStateView::Quarantined,
            _ => return None,
        };
        usage.push(SegUsageView {
            state,
            live_bytes: r.u64()?,
            last_write_ts: r.u64()?,
        });
    }

    // Optional bad-block remap table: present iff payload bytes remain
    // (checkpoints written before any media fault omit it).
    let mut bad_sectors = Vec::new();
    if r.pos < data.len() {
        let nbad = r.u64()?;
        bad_sectors.reserve(nbad.min(1 << 24) as usize);
        for _ in 0..nbad {
            bad_sectors.push(r.u64()?);
        }
    }
    Some(CheckpointView {
        ts,
        seq,
        payload_segments: Vec::new(),
        blocks,
        lists,
        usage,
        bad_sectors,
    })
}

/// Builds live tables from a parsed view.
fn state_from_view(view: CheckpointView) -> LoadedState {
    let mut map = BlockMap::new();
    for b in &view.blocks {
        let mut e = BlockEntry::new(b.list, b.size_class);
        e.seg = b.seg;
        e.offset = b.offset;
        e.stored_len = b.stored_len;
        e.logical_len = b.logical_len;
        e.compressed = b.compressed;
        e.next = b.next;
        map.install(b.bid, e);
    }
    map.rebuild_free_stack();

    let mut lists = ListTable::new();
    let mut prev: Option<u64> = None;
    for l in &view.lists {
        lists.install(l.lid, prev, l.hints);
        lists.get_mut(l.lid).expect("installed").first = l.first; // PANIC-OK: inserted a few lines up
        prev = Some(l.lid);
    }
    lists.rebuild_free_stack();

    let mut usage = UsageTable::new(view.usage.len() as u32);
    for (seg, u) in view.usage.iter().enumerate() {
        usage.set(
            seg as u32,
            SegUsage {
                state: match u.state {
                    SegStateView::Free => SegState::Free,
                    SegStateView::Live => SegState::Live,
                    SegStateView::Scratch => SegState::Scratch,
                    SegStateView::Quarantined => SegState::Quarantined,
                },
                live_bytes: u.live_bytes,
                last_write_ts: u.last_write_ts,
            },
        );
    }
    LoadedState {
        map,
        lists,
        usage,
        ts: view.ts,
        seq: view.seq,
        bad_sectors: view.bad_sectors.iter().copied().collect(),
    }
}

/// Writes the checkpoint: payload into free segments, then the valid
/// header. Skipped silently (leaving the header invalid) when no free
/// segments can hold the payload — the next start will sweep instead.
pub(crate) fn write_checkpoint<D: BlockDev>(lld: &mut Lld<D>) -> Result<()> {
    let payload = serialize(lld);
    let seg_bytes = lld.layout.segment_bytes;
    let needed = payload.len().div_ceil(seg_bytes);
    let free = lld.usage.free_list();
    let header_capacity = (HEADER_SECTORS as usize * SECTOR_SIZE - 64) / 4;
    if free.len() < needed || needed > header_capacity {
        return Ok(());
    }
    let segs = &free[..needed];
    for (i, seg) in segs.iter().enumerate() {
        let start = i * seg_bytes;
        let end = (start + seg_bytes).min(payload.len());
        let mut chunk = payload[start..end].to_vec();
        chunk.resize(seg_bytes, 0);
        lld.disk
            .write_sectors(lld.layout.segment_base(*seg), &chunk)
            .map_err(dev)?;
    }

    let mut header = Vec::with_capacity(HEADER_SECTORS as usize * SECTOR_SIZE);
    put_u32(&mut header, CKPT_MAGIC);
    header.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    header.push(1); // Valid marker.
    header.push(0);
    put_u64(&mut header, payload.len() as u64);
    put_u64(&mut header, fnv1a64(&payload));
    put_u32(&mut header, segs.len() as u32);
    for seg in segs {
        put_u32(&mut header, *seg);
    }
    header.resize(HEADER_SECTORS as usize * SECTOR_SIZE, 0);
    lld.disk.write_sectors(0, &header).map_err(dev)?;
    Ok(())
}

/// Attempts to load (and invalidate) a checkpoint. `Ok(None)` means no
/// valid checkpoint; the caller falls back to the sweep. Reads are
/// re-driven up to `attempts` times against transient media faults
/// (`retries` counts the re-driven attempts); a persistently unreadable
/// header or payload invalidates the checkpoint and falls back to the
/// sweep, which never depends on the checkpoint region.
pub(crate) fn try_load<D: BlockDev>(
    disk: &mut D,
    layout: &Layout,
    attempts: u32,
    retries: &mut u64,
) -> Result<Option<LoadedState>> {
    let mut header = vec![0u8; HEADER_SECTORS as usize * SECTOR_SIZE];
    if crate::read_sectors_retrying(disk, 0, &mut header, attempts, retries)?.is_some() {
        // Unreadable header: invalidate it outright (writes still work on
        // this fault model) so a later, luckier read cannot resurrect a
        // checkpoint that this start-up's sweep is about to supersede.
        header.fill(0);
        disk.write_sectors(0, &header).map_err(dev)?;
        return Ok(None);
    }
    // Layout: u32 magic, u16 version, u8 valid marker, u8 pad, then fields.
    let magic = wire::le_u32(&header, 0);
    let version = wire::le_u16(&header, 4);
    if magic != CKPT_MAGIC || version != CKPT_VERSION || header[6] != 1 {
        return Ok(None);
    }
    let mut r = Reader {
        data: &header,
        pos: 8,
    };
    let (Some(payload_len), Some(checksum), Some(nsegs)) = (r.u64(), r.u64(), r.u32()) else {
        return Ok(None);
    };
    let mut segs = Vec::with_capacity(nsegs as usize);
    for _ in 0..nsegs {
        match r.u32() {
            Some(s) if s < layout.segments => segs.push(s),
            _ => return Ok(None),
        }
    }
    let payload_len = payload_len as usize;
    if payload_len > segs.len() * layout.segment_bytes {
        return Ok(None);
    }

    let mut payload = Vec::with_capacity(segs.len() * layout.segment_bytes);
    let mut chunk = vec![0u8; layout.segment_bytes];
    for seg in &segs {
        if crate::read_sectors_retrying(
            disk,
            layout.segment_base(*seg),
            &mut chunk,
            attempts,
            retries,
        )?
        .is_some()
        {
            // Unreadable payload: invalidate the marker and sweep instead.
            header[6] = 0;
            disk.write_sectors(0, &header).map_err(dev)?;
            return Ok(None);
        }
        payload.extend_from_slice(&chunk);
    }
    payload.truncate(payload_len);
    if fnv1a64(&payload) != checksum {
        return Ok(None);
    }
    let view = deserialize_view(&payload).ok_or_else(|| {
        LdError::Device("checkpoint payload passed checksum but failed to parse".into())
    })?;
    if view.usage.len() != layout.segments as usize {
        return Ok(None);
    }
    let state = state_from_view(view);

    // Invalidate the marker before handing the state out.
    header[6] = 0;
    disk.write_sectors(0, &header).map_err(dev)?;
    Ok(Some(state))
}

/// Byte offset just past the usage-table section of a checkpoint payload
/// (where the optional bad-block remap table begins).
fn usage_end_offset(data: &[u8]) -> Option<usize> {
    let mut r = Reader { data, pos: 0 };
    r.u64()?; // ts
    r.u64()?; // seq
    let nblocks = r.u64()?;
    for _ in 0..nblocks {
        r.u64()?;
        r.u32()?;
        r.u32()?;
        r.u32()?;
        r.u32()?;
        r.u32()?;
        r.u8()?;
        r.u64()?;
        r.u64()?;
    }
    let nlists = r.u64()?;
    for _ in 0..nlists {
        r.u64()?;
        r.u64()?;
        r.u8()?;
    }
    let nsegs = r.u32()?;
    for _ in 0..nsegs {
        r.u8()?;
        r.u64()?;
        r.u64()?;
    }
    Some(r.pos)
}

/// Rewrites the bad-block remap table of a checkpointed raw image in
/// place, recomputing the payload length and checksum so the image still
/// parses. `sectors` is written verbatim — unsorted or duplicated entries
/// are allowed on purpose. Test-fixture support: offline tooling needs
/// images whose remap table is malformed or disagrees with the block map
/// to exercise its cross-checks (`ldck --selftest`). Returns `false` when
/// the image holds no valid checkpoint or the new payload no longer fits
/// the segments listed in the header.
pub fn forge_bad_sector_table(image: &mut [u8], layout: &Layout, sectors: &[u64]) -> bool {
    let header_len = HEADER_SECTORS as usize * SECTOR_SIZE;
    if image.len() < header_len {
        return false;
    }
    let magic = wire::le_u32(image, 0);
    let version = wire::le_u16(image, 4);
    if magic != CKPT_MAGIC || version != CKPT_VERSION || image[6] != 1 {
        return false;
    }
    let mut r = Reader {
        data: &image[..header_len],
        pos: 8,
    };
    let (Some(payload_len), Some(_), Some(nsegs)) = (r.u64(), r.u64(), r.u32()) else {
        return false;
    };
    let mut segs = Vec::with_capacity(nsegs as usize);
    for _ in 0..nsegs {
        match r.u32() {
            Some(s) if s < layout.segments => segs.push(s),
            _ => return false,
        }
    }
    let payload_len = payload_len as usize;
    if payload_len > segs.len() * layout.segment_bytes {
        return false;
    }
    let mut payload = Vec::with_capacity(segs.len() * layout.segment_bytes);
    for seg in &segs {
        let base = layout.segment_base(*seg) as usize * SECTOR_SIZE;
        let Some(chunk) = image.get(base..base + layout.segment_bytes) else {
            return false;
        };
        payload.extend_from_slice(chunk);
    }
    payload.truncate(payload_len);
    let Some(end) = usage_end_offset(&payload) else {
        return false;
    };
    payload.truncate(end);
    if !sectors.is_empty() {
        put_u64(&mut payload, sectors.len() as u64);
        for s in sectors {
            put_u64(&mut payload, *s);
        }
    }
    if payload.len().div_ceil(layout.segment_bytes) > segs.len() {
        return false;
    }
    for (i, seg) in segs.iter().enumerate() {
        let base = layout.segment_base(*seg) as usize * SECTOR_SIZE;
        let start = i * layout.segment_bytes;
        let chunk = &mut image[base..base + layout.segment_bytes];
        chunk.fill(0);
        if start < payload.len() {
            let end = (start + layout.segment_bytes).min(payload.len());
            chunk[..end - start].copy_from_slice(&payload[start..end]);
        }
    }
    image[8..16].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    image[16..24].copy_from_slice(&fnv1a64(&payload).to_le_bytes());
    true
}
