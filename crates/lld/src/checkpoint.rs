//! Clean-shutdown checkpoint (paper §3.6).
//!
//! "If LLD is shut down explicitly, it writes its data structures, a
//! timestamp, and a marker that the state stored is valid in a special
//! region on disk. ... In the case of explicit shut down, LLD reads its
//! data structures from the special area on disk, invalidates the marker,
//! and starts immediately."
//!
//! The fixed header region (the first sectors of the disk) holds only the
//! marker and a table of contents; the serialized tables themselves are
//! written into whole *free segments*, so checkpoint size is bounded by
//! free space, not by a fixed region. A checkpoint is strictly an
//! optimization: when no free segment is available (or the header is torn)
//! startup falls back to the recovery sweep.

use ld_core::{LdError, ListHints, Result};
use simdisk::{BlockDev, SECTOR_SIZE};

use crate::block_map::{BlockEntry, BlockMap, ListTable};
use crate::layout::HEADER_SECTORS;
use crate::records::fnv1a64;
use crate::usage::{SegState, SegUsage, UsageTable};
use crate::{dev, Layout, Lld};

const CKPT_MAGIC: u32 = 0x4C44_4350; // "LDCP"
const CKPT_VERSION: u16 = 1;

/// State reconstructed from a checkpoint.
pub(crate) struct LoadedState {
    pub map: BlockMap,
    pub lists: ListTable,
    pub usage: UsageTable,
    pub ts: u64,
    pub seq: u64,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> Option<u64> {
        let b = self.data.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.data.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.data.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }
}

/// Serializes the LLD tables.
fn serialize<D: BlockDev>(lld: &Lld<D>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, lld.ts);
    put_u64(&mut out, lld.seq);

    // Block-number map.
    let blocks: Vec<(u64, &BlockEntry)> = lld.map.iter().collect();
    put_u64(&mut out, blocks.len() as u64);
    for (bid, e) in blocks {
        put_u64(&mut out, bid);
        put_u32(&mut out, e.seg);
        put_u32(&mut out, e.offset);
        put_u32(&mut out, e.stored_len);
        put_u32(&mut out, e.logical_len);
        put_u32(&mut out, e.size_class);
        out.push(e.compressed as u8);
        put_u64(&mut out, e.next.map_or(0, |n| n + 1));
        put_u64(&mut out, e.list);
    }

    // List table, serialized in list-of-lists order so the chain can be
    // rebuilt with plain installs.
    let order = lld.lists.order();
    put_u64(&mut out, order.len() as u64);
    for lid in &order {
        let e = lld.lists.get(*lid).expect("order() returns live lists");
        put_u64(&mut out, *lid);
        put_u64(&mut out, e.first.map_or(0, |f| f + 1));
        let h = (e.hints.cluster as u8)
            | ((e.hints.compress as u8) << 1)
            | ((e.hints.interlist_cluster as u8) << 2);
        out.push(h);
    }

    // Segment usage table.
    put_u32(&mut out, lld.usage.len());
    for (_, u) in lld.usage.iter() {
        out.push(match u.state {
            SegState::Free => 0,
            SegState::Live => 1,
            SegState::Scratch => 2,
        });
        put_u64(&mut out, u.live_bytes);
        put_u64(&mut out, u.last_write_ts);
    }
    out
}

fn deserialize(data: &[u8]) -> Option<LoadedState> {
    let mut r = Reader { data, pos: 0 };
    let ts = r.u64()?;
    let seq = r.u64()?;

    let mut map = BlockMap::new();
    let nblocks = r.u64()?;
    for _ in 0..nblocks {
        let bid = r.u64()?;
        let mut e = BlockEntry::new(0, 0);
        e.seg = r.u32()?;
        e.offset = r.u32()?;
        e.stored_len = r.u32()?;
        e.logical_len = r.u32()?;
        e.size_class = r.u32()?;
        e.compressed = r.u8()? != 0;
        let next = r.u64()?;
        e.next = (next != 0).then(|| next - 1);
        e.list = r.u64()?;
        map.install(bid, e);
    }
    map.rebuild_free_stack();

    let mut lists = ListTable::new();
    let nlists = r.u64()?;
    let mut prev: Option<u64> = None;
    for _ in 0..nlists {
        let lid = r.u64()?;
        let first = r.u64()?;
        let h = r.u8()?;
        let hints = ListHints {
            cluster: h & 1 != 0,
            compress: h & 2 != 0,
            interlist_cluster: h & 4 != 0,
        };
        lists.install(lid, prev, hints);
        lists.get_mut(lid).expect("installed").first = (first != 0).then(|| first - 1);
        prev = Some(lid);
    }
    lists.rebuild_free_stack();

    let nsegs = r.u32()?;
    let mut usage = UsageTable::new(nsegs);
    for seg in 0..nsegs {
        let state = match r.u8()? {
            0 => SegState::Free,
            1 => SegState::Live,
            2 => SegState::Scratch,
            _ => return None,
        };
        let live_bytes = r.u64()?;
        let last_write_ts = r.u64()?;
        usage.set(
            seg,
            SegUsage {
                state,
                live_bytes,
                last_write_ts,
            },
        );
    }
    Some(LoadedState {
        map,
        lists,
        usage,
        ts,
        seq,
    })
}

/// Writes the checkpoint: payload into free segments, then the valid
/// header. Skipped silently (leaving the header invalid) when no free
/// segments can hold the payload — the next start will sweep instead.
pub(crate) fn write_checkpoint<D: BlockDev>(lld: &mut Lld<D>) -> Result<()> {
    let payload = serialize(lld);
    let seg_bytes = lld.layout.segment_bytes;
    let needed = payload.len().div_ceil(seg_bytes);
    let free = lld.usage.free_list();
    let header_capacity = (HEADER_SECTORS as usize * SECTOR_SIZE - 64) / 4;
    if free.len() < needed || needed > header_capacity {
        return Ok(());
    }
    let segs = &free[..needed];
    for (i, seg) in segs.iter().enumerate() {
        let start = i * seg_bytes;
        let end = (start + seg_bytes).min(payload.len());
        let mut chunk = payload[start..end].to_vec();
        chunk.resize(seg_bytes, 0);
        lld.disk
            .write_sectors(lld.layout.segment_base(*seg), &chunk)
            .map_err(dev)?;
    }

    let mut header = Vec::with_capacity(HEADER_SECTORS as usize * SECTOR_SIZE);
    put_u32(&mut header, CKPT_MAGIC);
    header.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    header.push(1); // Valid marker.
    header.push(0);
    put_u64(&mut header, payload.len() as u64);
    put_u64(&mut header, fnv1a64(&payload));
    put_u32(&mut header, segs.len() as u32);
    for seg in segs {
        put_u32(&mut header, *seg);
    }
    header.resize(HEADER_SECTORS as usize * SECTOR_SIZE, 0);
    lld.disk.write_sectors(0, &header).map_err(dev)?;
    Ok(())
}

/// Attempts to load (and invalidate) a checkpoint. `Ok(None)` means no
/// valid checkpoint; the caller falls back to the sweep.
pub(crate) fn try_load<D: BlockDev>(disk: &mut D, layout: &Layout) -> Result<Option<LoadedState>> {
    let mut header = vec![0u8; HEADER_SECTORS as usize * SECTOR_SIZE];
    disk.read_sectors(0, &mut header).map_err(dev)?;
    // Layout: u32 magic, u16 version, u8 valid marker, u8 pad, then fields.
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("fixed size"));
    let version = u16::from_le_bytes(header[4..6].try_into().expect("fixed size"));
    if magic != CKPT_MAGIC || version != CKPT_VERSION || header[6] != 1 {
        return Ok(None);
    }
    let mut r = Reader {
        data: &header,
        pos: 8,
    };
    let (Some(payload_len), Some(checksum), Some(nsegs)) = (r.u64(), r.u64(), r.u32()) else {
        return Ok(None);
    };
    let mut segs = Vec::with_capacity(nsegs as usize);
    for _ in 0..nsegs {
        match r.u32() {
            Some(s) if s < layout.segments => segs.push(s),
            _ => return Ok(None),
        }
    }
    let payload_len = payload_len as usize;
    if payload_len > segs.len() * layout.segment_bytes {
        return Ok(None);
    }

    let mut payload = Vec::with_capacity(segs.len() * layout.segment_bytes);
    let mut chunk = vec![0u8; layout.segment_bytes];
    for seg in &segs {
        disk.read_sectors(layout.segment_base(*seg), &mut chunk)
            .map_err(dev)?;
        payload.extend_from_slice(&chunk);
    }
    payload.truncate(payload_len);
    if fnv1a64(&payload) != checksum {
        return Ok(None);
    }
    let state = deserialize(&payload).ok_or_else(|| {
        LdError::Device("checkpoint payload passed checksum but failed to parse".into())
    })?;
    if state.usage.len() != layout.segments {
        return Ok(None);
    }

    // Invalidate the marker before handing the state out.
    header[6] = 0;
    disk.write_sectors(0, &header).map_err(dev)?;
    Ok(Some(state))
}
