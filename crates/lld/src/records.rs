//! Segment-summary records and their wire format.
//!
//! Every LD state change is logged as a [`Record`] in the summary of the
//! segment being filled (paper §3: "segment summaries are used for logging
//! updates to LD's metadata"). Records carry a timestamp and the paper's
//! "ends an atomic recovery unit" bit (§3.1); recovery replays all records
//! from all summaries in timestamp order, deferring and finally discarding
//! the records of an incomplete trailing ARU.
//!
//! The encoding is deliberately compact — the paper budgets 7 bytes per
//! block entry and 12 per link tuple so that a segment's metadata fits in a
//! summary block. Here: one tag byte, a varint timestamp delta against the
//! previous record, and varint fields. A summary region holds a checksummed
//! header plus the record bodies; an invalid or torn summary fails
//! validation and the whole segment is ignored at recovery.

use ld_core::{wire, ListHints};

/// Magic number identifying a valid segment summary.
const SUMMARY_MAGIC: u32 = 0x4C44_5353; // "LDSS"
/// Summary format version.
const SUMMARY_VERSION: u16 = 1;
/// Bytes of the fixed summary header.
pub const SUMMARY_HEADER_LEN: usize = 4 + 2 + 2 + 8 + 8 + 4 + 4 + 8;

/// A logged state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Record {
    /// Block `bid` allocated on list `lid` with the given size class.
    NewBlock {
        /// The allocated block number.
        bid: u64,
        /// Owning list.
        lid: u64,
        /// Size class in bytes.
        size_class: u32,
    },
    /// Block `bid` freed.
    DeleteBlock {
        /// The freed block number.
        bid: u64,
    },
    /// Block contents written at `offset` in the data region of the segment
    /// whose summary holds this record.
    WriteBlock {
        /// The written block.
        bid: u64,
        /// Byte offset within this segment's data region.
        offset: u32,
        /// Stored (possibly compressed) length in bytes.
        stored_len: u32,
        /// Logical (uncompressed) length in bytes.
        logical_len: u32,
        /// Whether the stored bytes are compressed.
        compressed: bool,
    },
    /// Link tuple: the successor of `bid` in its list is now `next`
    /// (paper §3.1: "a timestamp, a block number, and the new value for the
    /// successor field").
    Link {
        /// The block whose successor changed.
        bid: u64,
        /// New successor, or `None` for end of list.
        next: Option<u64>,
    },
    /// The first block of list `lid` is now `first`.
    ListHead {
        /// The list whose head changed.
        lid: u64,
        /// New first block, or `None` for an empty list.
        first: Option<u64>,
    },
    /// List `lid` created after `pred` in the list of lists.
    NewList {
        /// The created list.
        lid: u64,
        /// Predecessor in the list of lists (`None` = front).
        pred: Option<u64>,
        /// Clustering/compression hints.
        hints: ListHints,
    },
    /// List `lid` deleted (with all its blocks).
    DeleteList {
        /// The deleted list.
        lid: u64,
    },
    /// List `lid` moved after `pred` in the list of lists.
    ListOrder {
        /// The moved list.
        lid: u64,
        /// New predecessor (`None` = front).
        pred: Option<u64>,
    },
    /// Explicit end of an atomic recovery unit.
    EndAru,
    /// The physical contents of `a` and `b` traded places
    /// (`SwapContents`, §5.4).
    Swap {
        /// First block.
        a: u64,
        /// Second block.
        b: u64,
    },
    /// Sector `sector` retired into the persistent bad-block remap table
    /// after a scrub confirmed it unreadable. Medium health is monotone —
    /// a retired sector never comes back — so recovery applies these
    /// regardless of ordering, and the cleaner re-logs them like any other
    /// live metadata.
    RetireSector {
        /// The retired physical sector.
        sector: u64,
    },
    /// Segment `seg` quarantined: its medium is failing, so it is excluded
    /// from allocation and cleaning forever.
    Quarantine {
        /// The quarantined segment.
        seg: u32,
    },
}

/// A record with its timestamp and ARU tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped {
    /// Global operation timestamp (a monotone counter, not wall clock).
    pub ts: u64,
    /// Whether this record ends an atomic recovery unit. Records issued
    /// outside an explicit ARU each end their own implicit unit, so this is
    /// `true` for them (paper §3.1).
    pub ends_aru: bool,
    /// The explicit atomic recovery unit this record belongs to, if any —
    /// the §5.4 concurrent-ARU extension ("each operation could take an
    /// atomic recovery unit identifier as an argument; BeginARU would
    /// generate these identifiers"). Recovery groups deferred records by
    /// this id and commits each group on its own `EndAru`.
    pub aru: Option<u64>,
    /// The state change itself.
    pub rec: Record,
}

// Record type tags (low nibble of the tag byte).
const T_NEW_BLOCK: u8 = 1;
const T_DELETE_BLOCK: u8 = 2;
const T_WRITE_BLOCK: u8 = 3;
const T_LINK: u8 = 4;
const T_LIST_HEAD: u8 = 5;
const T_NEW_LIST: u8 = 6;
const T_DELETE_LIST: u8 = 7;
const T_LIST_ORDER: u8 = 8;
const T_END_ARU: u8 = 9;
const T_SWAP: u8 = 10;
const T_RETIRE_SECTOR: u8 = 11;
const T_QUARANTINE: u8 = 12;
// Tag byte flags.
const F_ENDS_ARU: u8 = 0x80;
const F_COMPRESSED: u8 = 0x40;
const F_HAS_ARU_ID: u8 = 0x20;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

fn put_opt(out: &mut Vec<u8>, v: Option<u64>) {
    // `None` encodes as 0, `Some(x)` as x + 1.
    put_varint(out, v.map_or(0, |x| x + 1));
}

fn get_opt(data: &[u8], pos: &mut usize) -> Option<Option<u64>> {
    let raw = get_varint(data, pos)?;
    Some(if raw == 0 { None } else { Some(raw - 1) })
}

/// Incrementally builds the record body of a segment summary.
///
/// The segment writer uses [`encoded_len`](Self::encoded_len) to seal the
/// segment before the summary would overflow its fixed region.
#[derive(Debug, Clone)]
pub struct SummaryBuilder {
    body: Vec<u8>,
    base_ts: Option<u64>,
    prev_ts: u64,
    count: u32,
}

impl Default for SummaryBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SummaryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            body: Vec::new(),
            base_ts: None,
            prev_ts: 0,
            count: 0,
        }
    }

    /// Number of records added.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Bytes the summary would occupy on disk right now (header + body).
    pub fn encoded_len(&self) -> usize {
        SUMMARY_HEADER_LEN + self.body.len()
    }

    /// Worst-case bytes one more record could add to the body (tag byte +
    /// up to six varints: timestamp delta, optional ARU id, four fields).
    pub const MAX_RECORD_LEN: usize = 1 + 10 * 6;

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics if timestamps are not monotonically non-decreasing — the
    /// writer owns the global counter, so a violation is a logic error.
    pub fn push(&mut self, s: Stamped) {
        let base = *self.base_ts.get_or_insert(s.ts);
        assert!(
            s.ts >= base && s.ts >= self.prev_ts,
            "timestamps must be monotone"
        );
        let delta = s.ts - self.prev_ts.max(base);
        let mut tag = match s.rec {
            Record::NewBlock { .. } => T_NEW_BLOCK,
            Record::DeleteBlock { .. } => T_DELETE_BLOCK,
            Record::WriteBlock { .. } => T_WRITE_BLOCK,
            Record::Link { .. } => T_LINK,
            Record::ListHead { .. } => T_LIST_HEAD,
            Record::NewList { .. } => T_NEW_LIST,
            Record::DeleteList { .. } => T_DELETE_LIST,
            Record::ListOrder { .. } => T_LIST_ORDER,
            Record::EndAru => T_END_ARU,
            Record::Swap { .. } => T_SWAP,
            Record::RetireSector { .. } => T_RETIRE_SECTOR,
            Record::Quarantine { .. } => T_QUARANTINE,
        };
        if s.ends_aru {
            tag |= F_ENDS_ARU;
        }
        if let Record::WriteBlock {
            compressed: true, ..
        } = s.rec
        {
            tag |= F_COMPRESSED;
        }
        if s.aru.is_some() {
            tag |= F_HAS_ARU_ID;
        }
        self.body.push(tag);
        put_varint(&mut self.body, delta);
        if let Some(id) = s.aru {
            put_varint(&mut self.body, id);
        }
        match s.rec {
            Record::NewBlock {
                bid,
                lid,
                size_class,
            } => {
                put_varint(&mut self.body, bid);
                put_varint(&mut self.body, lid);
                put_varint(&mut self.body, u64::from(size_class));
            }
            Record::DeleteBlock { bid } => put_varint(&mut self.body, bid),
            Record::WriteBlock {
                bid,
                offset,
                stored_len,
                logical_len,
                compressed: _,
            } => {
                put_varint(&mut self.body, bid);
                put_varint(&mut self.body, u64::from(offset));
                put_varint(&mut self.body, u64::from(stored_len));
                put_varint(&mut self.body, u64::from(logical_len));
            }
            Record::Link { bid, next } => {
                put_varint(&mut self.body, bid);
                put_opt(&mut self.body, next);
            }
            Record::ListHead { lid, first } => {
                put_varint(&mut self.body, lid);
                put_opt(&mut self.body, first);
            }
            Record::NewList { lid, pred, hints } => {
                put_varint(&mut self.body, lid);
                put_opt(&mut self.body, pred);
                let h = (hints.cluster as u64)
                    | ((hints.compress as u64) << 1)
                    | ((hints.interlist_cluster as u64) << 2);
                put_varint(&mut self.body, h);
            }
            Record::DeleteList { lid } => put_varint(&mut self.body, lid),
            Record::ListOrder { lid, pred } => {
                put_varint(&mut self.body, lid);
                put_opt(&mut self.body, pred);
            }
            Record::EndAru => {}
            Record::Swap { a, b } => {
                put_varint(&mut self.body, a);
                put_varint(&mut self.body, b);
            }
            Record::RetireSector { sector } => put_varint(&mut self.body, sector),
            Record::Quarantine { seg } => put_varint(&mut self.body, u64::from(seg)),
        }
        self.prev_ts = s.ts;
        self.count += 1;
    }

    /// Serializes the summary into exactly `summary_bytes` bytes (padded
    /// with zeroes), stamped with the physical-write sequence number `seq`.
    ///
    /// # Panics
    ///
    /// Panics if the summary does not fit — the writer must seal earlier.
    pub fn finish(&self, seq: u64, summary_bytes: usize) -> Vec<u8> {
        assert!(
            self.encoded_len() <= summary_bytes,
            "summary overflow: {} > {summary_bytes}",
            self.encoded_len()
        );
        let mut out = Vec::with_capacity(summary_bytes);
        out.extend_from_slice(&SUMMARY_MAGIC.to_le_bytes());
        out.extend_from_slice(&SUMMARY_VERSION.to_le_bytes());
        out.extend_from_slice(&[0u8; 2]); // Reserved.
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&self.base_ts.unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        // The checksum covers the variable header fields (a corrupt seq or
        // base timestamp would silently misorder recovery) and the body.
        let mut hashed = out[8..32].to_vec();
        hashed.extend_from_slice(&self.body);
        out.extend_from_slice(&fnv1a64(&hashed).to_le_bytes());
        out.extend_from_slice(&self.body);
        out.resize(summary_bytes, 0);
        out
    }
}

/// A decoded segment summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Physical-write sequence number: strictly increasing across every
    /// segment write, used to order two copies of records with equal
    /// timestamps (a partial segment superseded by its sealed form, §3.2).
    pub seq: u64,
    /// The records, in the order they were logged.
    pub records: Vec<Stamped>,
}

/// Decodes a summary region read from disk. Returns `None` when the region
/// does not contain a valid summary (never-written, torn, or corrupt) —
/// recovery then ignores the whole segment.
pub fn decode_summary(data: &[u8]) -> Option<Summary> {
    if data.len() < SUMMARY_HEADER_LEN {
        return None;
    }
    let magic = wire::le_u32(data, 0);
    let version = wire::le_u16(data, 4);
    if magic != SUMMARY_MAGIC || version != SUMMARY_VERSION || data[6] != 0 || data[7] != 0 {
        return None;
    }
    let seq = wire::le_u64(data, 8);
    let base_ts = wire::le_u64(data, 16);
    let count = wire::le_u32(data, 24);
    let body_len = wire::le_u32(data, 28) as usize;
    let checksum = wire::le_u64(data, 32);
    let body = data.get(SUMMARY_HEADER_LEN..SUMMARY_HEADER_LEN + body_len)?;
    let mut hashed = data[8..32].to_vec();
    hashed.extend_from_slice(body);
    if fnv1a64(&hashed) != checksum {
        return None;
    }

    let mut records = Vec::with_capacity(count as usize);
    let mut pos = 0usize;
    let mut prev_ts = base_ts;
    for _ in 0..count {
        let tag = *body.get(pos)?;
        pos += 1;
        let ends_aru = tag & F_ENDS_ARU != 0;
        let compressed = tag & F_COMPRESSED != 0;
        let delta = get_varint(body, &mut pos)?;
        let ts = prev_ts + delta;
        let aru = if tag & F_HAS_ARU_ID != 0 {
            Some(get_varint(body, &mut pos)?)
        } else {
            None
        };
        let rec = match tag & 0x0F {
            T_NEW_BLOCK => Record::NewBlock {
                bid: get_varint(body, &mut pos)?,
                lid: get_varint(body, &mut pos)?,
                size_class: get_varint(body, &mut pos)? as u32,
            },
            T_DELETE_BLOCK => Record::DeleteBlock {
                bid: get_varint(body, &mut pos)?,
            },
            T_WRITE_BLOCK => Record::WriteBlock {
                bid: get_varint(body, &mut pos)?,
                offset: get_varint(body, &mut pos)? as u32,
                stored_len: get_varint(body, &mut pos)? as u32,
                logical_len: get_varint(body, &mut pos)? as u32,
                compressed,
            },
            T_LINK => Record::Link {
                bid: get_varint(body, &mut pos)?,
                next: get_opt(body, &mut pos)?,
            },
            T_LIST_HEAD => Record::ListHead {
                lid: get_varint(body, &mut pos)?,
                first: get_opt(body, &mut pos)?,
            },
            T_NEW_LIST => {
                let lid = get_varint(body, &mut pos)?;
                let pred = get_opt(body, &mut pos)?;
                let h = get_varint(body, &mut pos)?;
                Record::NewList {
                    lid,
                    pred,
                    hints: ListHints {
                        cluster: h & 1 != 0,
                        compress: h & 2 != 0,
                        interlist_cluster: h & 4 != 0,
                    },
                }
            }
            T_DELETE_LIST => Record::DeleteList {
                lid: get_varint(body, &mut pos)?,
            },
            T_LIST_ORDER => Record::ListOrder {
                lid: get_varint(body, &mut pos)?,
                pred: get_opt(body, &mut pos)?,
            },
            T_END_ARU => Record::EndAru,
            T_SWAP => Record::Swap {
                a: get_varint(body, &mut pos)?,
                b: get_varint(body, &mut pos)?,
            },
            T_RETIRE_SECTOR => Record::RetireSector {
                sector: get_varint(body, &mut pos)?,
            },
            T_QUARANTINE => Record::Quarantine {
                seg: get_varint(body, &mut pos)? as u32,
            },
            _ => return None,
        };
        records.push(Stamped {
            ts,
            ends_aru,
            aru,
            rec,
        });
        prev_ts = ts;
    }
    if pos != body_len {
        return None;
    }
    Some(Summary { seq, records })
}

/// FNV-1a 64-bit hash, used as the summary checksum.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Stamped> {
        vec![
            Stamped {
                ts: 100,
                ends_aru: true,
                aru: None,
                rec: Record::NewList {
                    lid: 1,
                    pred: None,
                    hints: ListHints::compressed(),
                },
            },
            Stamped {
                ts: 101,
                ends_aru: false,
                aru: None,
                rec: Record::NewBlock {
                    bid: 7,
                    lid: 1,
                    size_class: 4096,
                },
            },
            Stamped {
                ts: 101,
                ends_aru: false,
                aru: None,
                rec: Record::ListHead {
                    lid: 1,
                    first: Some(7),
                },
            },
            Stamped {
                ts: 102,
                ends_aru: false,
                aru: None,
                rec: Record::WriteBlock {
                    bid: 7,
                    offset: 0,
                    stored_len: 2048,
                    logical_len: 4096,
                    compressed: true,
                },
            },
            Stamped {
                ts: 103,
                ends_aru: false,
                aru: None,
                rec: Record::Link { bid: 7, next: None },
            },
            Stamped {
                ts: 104,
                ends_aru: true,
                aru: None,
                rec: Record::EndAru,
            },
            Stamped {
                ts: 110,
                ends_aru: true,
                aru: None,
                rec: Record::DeleteBlock { bid: 7 },
            },
            Stamped {
                ts: 111,
                ends_aru: true,
                aru: None,
                rec: Record::ListOrder {
                    lid: 1,
                    pred: Some(0),
                },
            },
            Stamped {
                ts: 112,
                ends_aru: true,
                aru: None,
                rec: Record::DeleteList { lid: 1 },
            },
            Stamped {
                ts: 113,
                ends_aru: true,
                aru: None,
                rec: Record::Swap { a: 3, b: 9 },
            },
            Stamped {
                ts: 114,
                ends_aru: true,
                aru: None,
                rec: Record::RetireSector { sector: 123_456 },
            },
            Stamped {
                ts: 114,
                ends_aru: true,
                aru: None,
                rec: Record::Quarantine { seg: 17 },
            },
        ]
    }

    #[test]
    fn summary_roundtrip() {
        let mut b = SummaryBuilder::new();
        for r in sample_records() {
            b.push(r);
        }
        let bytes = b.finish(42, 4096);
        assert_eq!(bytes.len(), 4096);
        let s = decode_summary(&bytes).expect("valid summary");
        assert_eq!(s.seq, 42);
        assert_eq!(s.records, sample_records());
    }

    #[test]
    fn empty_summary_roundtrips() {
        let b = SummaryBuilder::new();
        let bytes = b.finish(1, 512);
        let s = decode_summary(&bytes).unwrap();
        assert_eq!(s.seq, 1);
        assert!(s.records.is_empty());
    }

    #[test]
    fn zeroed_region_is_not_a_summary() {
        assert_eq!(decode_summary(&[0u8; 4096]), None);
        assert_eq!(decode_summary(&[]), None);
    }

    #[test]
    fn corruption_anywhere_invalidates() {
        let mut b = SummaryBuilder::new();
        for r in sample_records() {
            b.push(r);
        }
        let bytes = b.finish(42, 4096);
        // Flip only header + encoded body bytes; padding is not covered.
        let used = b.encoded_len();
        for i in 0..used {
            let mut c = bytes.clone();
            c[i] ^= 0x01;
            let decoded = decode_summary(&c);
            // Either rejected outright or decodes to something different;
            // never a panic. (A flip in padding is impossible here because
            // we only flip used bytes.)
            if let Some(s) = decoded {
                assert_ne!(s.records, sample_records(), "flip at {i} went unnoticed");
            }
        }
    }

    #[test]
    fn truncated_summaries_are_rejected_not_panicking() {
        let mut b = SummaryBuilder::new();
        for r in sample_records() {
            b.push(r);
        }
        let bytes = b.finish(7, 4096);
        for l in 0..SUMMARY_HEADER_LEN + 32 {
            assert_eq!(decode_summary(&bytes[..l]), None);
        }
    }

    #[test]
    fn encoded_len_grows_monotonically_and_bounds_hold() {
        let mut b = SummaryBuilder::new();
        let mut prev = b.encoded_len();
        assert_eq!(prev, SUMMARY_HEADER_LEN);
        for (i, r) in sample_records().into_iter().enumerate() {
            b.push(r);
            let now = b.encoded_len();
            assert!(now > prev);
            assert!(
                now - prev <= SummaryBuilder::MAX_RECORD_LEN,
                "record {i} exceeded MAX_RECORD_LEN"
            );
            prev = now;
        }
    }

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a("") and FNV-1a("a") published test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
